// Word-alignment boundary contract for the bit-packed engines: the packed
// kernels (src/core/packed_kernels.hpp) and the threaded engine
// (src/core/threaded.hpp, 64-cell chunk alignment) must be bit-for-bit
// equal to the scalar step_synchronous at sizes straddling the 64-cell
// word boundary: n in {1, 63, 64, 65, 127, 128}. (The packed ring kernels
// require n >= 3 — radius-1 ring — and n >= 5 for radius 2, so n=1 is
// covered by the threaded engine and the shift primitives only.)

#include <gtest/gtest.h>

#include <random>

#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/synchronous.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"
#include "graph/builders.hpp"
#include "rules/rule.hpp"

namespace tca::core {
namespace {

constexpr std::size_t kBoundarySizes[] = {1, 63, 64, 65, 127, 128};

Configuration random_config(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<State>(rng() & 1u));
  }
  return c;
}

class PackedBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackedBoundary, ThreadedMatchesScalarAcrossWordBoundaries) {
  const std::size_t n = GetParam();
  // Ring substrate when it exists; a single self-input cell for n < 3.
  const auto a = n >= 3
                     ? Automaton::line(n, 1, Boundary::kRing,
                                       rules::majority(), Memory::kWith)
                     : Automaton::from_graph(graph::path(
                           static_cast<graph::NodeId>(n)),
                           rules::majority(), Memory::kWith);
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    Configuration current = random_config(n, 0x5EED0 + n);
    Configuration scalar(n), threaded(n);
    for (int step = 0; step < 8; ++step) {
      step_synchronous(a, current, scalar);
      step_synchronous_threaded(a, current, threaded, pool);
      ASSERT_EQ(scalar, threaded)
          << "n=" << n << " threads=" << threads << " step=" << step;
      current = scalar;
    }
  }
}

TEST_P(PackedBoundary, RingShiftsInvertAcrossWordBoundaries) {
  const std::size_t n = GetParam();
  const auto c = random_config(n, 0xF00D0 + n);
  Configuration up(n), back(n);
  ring_shift_up(c, up);
  ring_shift_down(up, back);
  EXPECT_EQ(back, c) << "n=" << n;
  // Shift semantics at the seam: cell 0 of the up-shift is cell n-1.
  EXPECT_EQ(up.get(0), c.get(n - 1)) << "n=" << n;
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_EQ(up.get(i), c.get(i - 1)) << "n=" << n << " i=" << i;
  }
}

TEST_P(PackedBoundary, Majority3KernelMatchesScalar) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "radius-1 ring needs n >= 3";
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  PackedScratch scratch(n);
  Configuration current = random_config(n, 0xAB + n);
  Configuration scalar(n), packed(n);
  for (int step = 0; step < 8; ++step) {
    step_synchronous(a, current, scalar);
    step_ring_majority3_packed(current, packed, scratch);
    ASSERT_EQ(scalar, packed) << "n=" << n << " step=" << step;
    current = scalar;
  }
}

TEST_P(PackedBoundary, Majority5KernelMatchesScalar) {
  const std::size_t n = GetParam();
  if (n < 5) GTEST_SKIP() << "radius-2 ring needs n >= 5";
  const auto a = Automaton::line(n, 2, Boundary::kRing,
                                 rules::majority_k_of(5), Memory::kWith);
  PackedScratch scratch(n);
  Configuration current = random_config(n, 0xCD + n);
  Configuration scalar(n), packed(n);
  for (int step = 0; step < 8; ++step) {
    step_synchronous(a, current, scalar);
    step_ring_majority5_packed(current, packed, scratch);
    ASSERT_EQ(scalar, packed) << "n=" << n << " step=" << step;
    current = scalar;
  }
}

TEST_P(PackedBoundary, ParityKernelMatchesScalar) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "radius-1 ring needs n >= 3";
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  PackedScratch scratch(n);
  Configuration current = random_config(n, 0xEF + n);
  Configuration scalar(n), packed(n);
  for (int step = 0; step < 8; ++step) {
    step_synchronous(a, current, scalar);
    step_ring_parity3_packed(current, packed, scratch);
    ASSERT_EQ(scalar, packed) << "n=" << n << " step=" << step;
    current = scalar;
  }
}

TEST_P(PackedBoundary, Table3KernelMatchesScalarForWolframRules) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "radius-1 ring needs n >= 3";
  PackedScratch scratch(n);
  for (std::uint32_t code : {30u, 90u, 110u, 184u}) {
    const auto table = rules::wolfram(code);
    const auto a = Automaton::line(n, 1, Boundary::kRing,
                                   rules::Rule{table}, Memory::kWith);
    Configuration current = random_config(n, 0x1234 + n + code);
    Configuration scalar(n), packed(n);
    for (int step = 0; step < 4; ++step) {
      step_synchronous(a, current, scalar);
      step_ring_table3_packed(table, current, packed, scratch);
      ASSERT_EQ(scalar, packed)
          << "n=" << n << " rule=" << code << " step=" << step;
      current = scalar;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundarySizes, PackedBoundary,
                         ::testing::ValuesIn(kBoundarySizes));

}  // namespace
}  // namespace tca::core
