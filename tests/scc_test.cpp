// Unit tests for the generic SCC decomposition (src/phasespace/scc.hpp).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "phasespace/scc.hpp"

namespace tca::phasespace {
namespace {

// Helper: run SCC over an explicit adjacency list.
SccResult run(const std::vector<std::vector<std::uint64_t>>& adj) {
  return strongly_connected_components(
      adj.size(),
      [&](std::uint64_t s) { return static_cast<std::uint32_t>(adj[s].size()); },
      [&](std::uint64_t s, std::uint32_t i) { return adj[s][i]; });
}

TEST(Scc, SingletonNoEdges) {
  const auto r = run({{}});
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.component_size[0], 1u);
}

TEST(Scc, DirectedPathIsAllSingletons) {
  const auto r = run({{1}, {2}, {3}, {}});
  EXPECT_EQ(r.num_components, 4u);
  for (auto size : r.component_size) EXPECT_EQ(size, 1u);
}

TEST(Scc, DirectedCycleIsOneComponent) {
  const auto r = run({{1}, {2}, {0}});
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.component_size[r.component[0]], 3u);
}

TEST(Scc, TwoCyclesJoinedByBridge) {
  // 0 <-> 1 -> 2 <-> 3
  const auto r = run({{1}, {0, 2}, {3}, {2}});
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
}

TEST(Scc, SelfLoopStaysSingleton) {
  const auto r = run({{0}, {}});
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.component_size[r.component[0]], 1u);
}

TEST(Scc, ComponentIdsAreReverseTopological) {
  // Tarjan emits components in reverse topological order of the DAG:
  // a component gets a smaller id than components that can reach it.
  const auto r = run({{1}, {2}, {}});  // 0 -> 1 -> 2
  EXPECT_LT(r.component[2], r.component[1]);
  EXPECT_LT(r.component[1], r.component[0]);
}

TEST(Scc, ParallelEdgesAndDenseGraph) {
  const auto r = run({{1, 1, 2}, {0, 2}, {0}});
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.component_size[0], 3u);
}

TEST(Scc, SizesSumToStateCount) {
  const auto r = run({{1}, {2, 3}, {0}, {4}, {3}});
  std::uint64_t total = 0;
  for (auto s : r.component_size) total += s;
  EXPECT_EQ(total, 5u);
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 100k-node chain exercises the iterative DFS.
  std::vector<std::vector<std::uint64_t>> adj(100000);
  for (std::uint64_t i = 0; i + 1 < adj.size(); ++i) adj[i] = {i + 1};
  const auto r = run(adj);
  EXPECT_EQ(r.num_components, 100000u);
}

}  // namespace
}  // namespace tca::phasespace
