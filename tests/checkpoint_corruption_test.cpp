// Corruption-mode coverage for the checkpoint loader
// (src/runtime/checkpoint.cpp): each damage class must be rejected with
// its own DISTINCT tca::ErrorCode — truncation, payload corruption, and
// version mismatch are different operational situations (retry, delete,
// migrate) and must be distinguishable. Also asserts the observability
// contract: every rejection bumps "checkpoint.load_failures" and emits a
// "checkpoint.rejected" event.

#include "runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::runtime {
namespace {

namespace fs = std::filesystem;

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "tca_ckpt_corruption_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "state.ckpt").string();
    Checkpoint ck;
    ck.payload = "sweep=demo\ndone=exp1|PASS|all good\n";
    save_checkpoint(path_, ck);
  }

  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_file() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void write_file(const std::string& blob) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  /// Expects load_checkpoint to throw CheckpointError with exactly `code`,
  /// and the rejection to be observable (counter + structured event).
  void expect_rejection(ErrorCode code) const {
    obs::Counter& failures = obs::counter("checkpoint.load_failures");
    const std::uint64_t before = failures.value();
    std::vector<obs::LogRecord> captured;
    obs::ScopedLogSink sink(
        [&](const obs::LogRecord& r) { captured.push_back(r); });
    try {
      (void)load_checkpoint(path_);
      FAIL() << "expected CheckpointError(" << error_code_name(code) << ")";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.code(), code) << e.what();
    }
    EXPECT_EQ(failures.value(), before + 1);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].event, "checkpoint.rejected");
    EXPECT_EQ(try_load_checkpoint(path_), std::nullopt)
        << "try_load must map the failure to nullopt";
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointCorruptionTest, IntactCheckpointRoundTrips) {
  const Checkpoint ck = load_checkpoint(path_);
  EXPECT_EQ(ck.version, kCheckpointVersion);
  EXPECT_EQ(ck.payload, "sweep=demo\ndone=exp1|PASS|all good\n");
}

TEST_F(CheckpointCorruptionTest, TruncatedPayloadIsDistinct) {
  const std::string blob = read_file();
  ASSERT_GT(blob.size(), 7u);
  write_file(blob.substr(0, blob.size() - 7));
  expect_rejection(ErrorCode::kCheckpointTruncated);
}

TEST_F(CheckpointCorruptionTest, PaddedPayloadIsAlsoTruncationClass) {
  write_file(read_file() + "trailing junk");
  expect_rejection(ErrorCode::kCheckpointTruncated);
}

TEST_F(CheckpointCorruptionTest, BitFlippedPayloadIsCorrupt) {
  std::string blob = read_file();
  // Flip one bit in the payload (well past the framing header).
  blob[blob.size() - 3] = static_cast<char>(blob[blob.size() - 3] ^ 0x01);
  write_file(blob);
  expect_rejection(ErrorCode::kCheckpointCorrupt);
}

TEST_F(CheckpointCorruptionTest, WrongVersionIsDistinct) {
  std::string blob = read_file();
  const std::string tag = "TCA-CKPT v1";
  ASSERT_EQ(blob.rfind(tag, 0), 0u);
  blob.replace(0, tag.size(), "TCA-CKPT v9");
  write_file(blob);
  expect_rejection(ErrorCode::kCheckpointVersion);
}

TEST_F(CheckpointCorruptionTest, BadMagicIsCorrupt) {
  std::string blob = read_file();
  blob[0] = 'X';
  write_file(blob);
  expect_rejection(ErrorCode::kCheckpointCorrupt);
}

TEST_F(CheckpointCorruptionTest, GarbageFileIsCorrupt) {
  write_file("not a checkpoint at all\n");
  expect_rejection(ErrorCode::kCheckpointCorrupt);
}

TEST_F(CheckpointCorruptionTest, MissingFileIsIoNotCorruption) {
  fs::remove(path_);
  try {
    (void)load_checkpoint(path_);
    FAIL() << "expected CheckpointError(kIo)";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  EXPECT_EQ(try_load_checkpoint(path_), std::nullopt);
}

// Regression for the save-side error path (found by the static-analysis
// burn-down, PR 5): a failed WRITE used to strand `<path>.tmp` on disk,
// violating the durability contract "old complete checkpoint or new
// complete checkpoint, and nothing else". The fault plan's
// checkpoint_write_at knob makes the k-th save's write fail after the tmp
// file exists — exactly the shape of a disk filling up mid-write.
TEST_F(CheckpointCorruptionTest, FailedWriteRemovesTmpAndKeepsOldCheckpoint) {
  const std::string before = read_file();
  const std::string tmp = path_ + ".tmp";
  {
    ScopedFaultPlan plan({.checkpoint_write_at = 1});
    Checkpoint ck;
    ck.payload = "sweep=demo\ndone=exp2|PASS|newer\n";
    try {
      save_checkpoint(path_, ck);
      FAIL() << "expected CheckpointError(kIo)";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIo);
    }
  }
  EXPECT_FALSE(fs::exists(tmp)) << "failed write must clean up its tmp file";
  EXPECT_EQ(read_file(), before) << "old checkpoint must survive untouched";
  const auto resumed = try_load_checkpoint(path_);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->payload, "sweep=demo\ndone=exp1|PASS|all good\n");
}

// The fault knob fires exactly once: the save after the failed one
// succeeds and replaces the checkpoint atomically.
TEST_F(CheckpointCorruptionTest, SaveAfterFailedWriteSucceeds) {
  ScopedFaultPlan plan({.checkpoint_write_at = 1});
  Checkpoint ck;
  ck.payload = "second attempt\n";
  EXPECT_THROW(save_checkpoint(path_, ck), CheckpointError);
  save_checkpoint(path_, ck);
  const auto loaded = load_checkpoint(path_);
  EXPECT_EQ(loaded.payload, "second attempt\n");
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

// The fault plan's read knob makes load_checkpoint reject an INTACT file
// as checksum-corrupt — same ErrorCode, same counter, same event as real
// bit rot — and fires exactly once, so the identical load then succeeds.
// This is the hook the chaos sweep and the generational store's recovery
// tests inject read-path corruption through without damaging any bytes.
TEST_F(CheckpointCorruptionTest, InjectedReadCorruptionFiresOnce) {
  obs::Counter& failures = obs::counter("checkpoint.load_failures");
  const std::uint64_t before = failures.value();
  ScopedFaultPlan plan({.checkpoint_read_corrupt_at = 1});
  try {
    (void)load_checkpoint(path_);
    FAIL() << "expected injected CheckpointError(kCheckpointCorrupt)";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt) << e.what();
  }
  EXPECT_EQ(failures.value(), before + 1)
      << "injected corruption must be as observable as real corruption";
  // The knob is consumed and the file was never actually damaged: the
  // identical load now succeeds.
  const Checkpoint ck = load_checkpoint(path_);
  EXPECT_EQ(ck.payload, "sweep=demo\ndone=exp1|PASS|all good\n");
}

TEST_F(CheckpointCorruptionTest, InjectedReadCorruptionTargetsTheKthLoad) {
  ScopedFaultPlan plan({.checkpoint_read_corrupt_at = 2});
  EXPECT_NO_THROW((void)load_checkpoint(path_));
  EXPECT_THROW((void)load_checkpoint(path_), CheckpointError);
  EXPECT_NO_THROW((void)load_checkpoint(path_));
}

// The three corruption codes really are three different values (the whole
// point of the distinct-code contract).
TEST(CheckpointErrorCodes, AreDistinct) {
  EXPECT_NE(ErrorCode::kCheckpointTruncated, ErrorCode::kCheckpointCorrupt);
  EXPECT_NE(ErrorCode::kCheckpointTruncated, ErrorCode::kCheckpointVersion);
  EXPECT_NE(ErrorCode::kCheckpointCorrupt, ErrorCode::kCheckpointVersion);
  EXPECT_STREQ(error_code_name(ErrorCode::kCheckpointTruncated),
               "checkpoint-truncated");
}

}  // namespace
}  // namespace tca::runtime
