// Integration tests: the paper's formal results verified end-to-end across
// modules (engines x phase spaces x energy certificates), plus
// cross-validation of all engine implementations against each other.

#include <gtest/gtest.h>

#include <random>

#include "analysis/census.hpp"
#include "analysis/energy.hpp"
#include "core/automaton.hpp"
#include "core/block_sequential.hpp"
#include "core/packed_kernels.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"
#include "graph/properties.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"
#include "rules/enumerate.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

Automaton majority_ring(std::size_t n, std::uint32_t r = 1) {
  return Automaton::line(n, r, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

// ---------------------------------------------------------------- Lemma 1

TEST(Lemma1, PartI_ParallelMajorityHasTwoCycle) {
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u, 16u, 20u}) {
    const auto a = majority_ring(n);
    Configuration alt(n);
    for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
    Configuration other = core::step_synchronous(a, alt);
    EXPECT_NE(other, alt) << n;
    EXPECT_EQ(core::step_synchronous(a, other), alt) << n;
  }
}

TEST(Lemma1, PartII_SequentialMajorityCycleFreeAllOrders) {
  // SCC over the full nondeterministic choice digraph: no directed cycle
  // through >= 2 states exists, so NO update sequence can ever cycle.
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u, 14u}) {
    const phasespace::ChoiceDigraph g(majority_ring(n));
    EXPECT_FALSE(phasespace::analyze(g).has_proper_cycle()) << n;
  }
}

TEST(Lemma1, PartII_RandomFairSchedulesConvergeOnLargerRings) {
  // Beyond explicit phase spaces: n = 24, many random schedules, always a
  // fixed point within the energy bound.
  const std::size_t n = 24;
  const auto a = majority_ring(n);
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    core::RandomSweepSchedule schedule(n, rng());
    const auto updates = core::run_schedule_to_fixed_point(a, c, schedule,
                                                           1000 * n);
    ASSERT_TRUE(updates.has_value()) << "trial " << trial;
    EXPECT_TRUE(core::is_fixed_point_sequential(a, c));
  }
}

// ---------------------------------------------------------------- Theorem 1

TEST(Theorem1, AllMonotoneSymmetricSequentialRulesAreCycleFree) {
  // Every monotone symmetric rule of arity 3 (radius 1 with memory), every
  // ring size up to 10: the choice digraph has no proper cycles.
  for (const auto& rule : rules::all_monotone_symmetric(3)) {
    for (const std::size_t n : {3u, 5u, 8u, 10u}) {
      const auto a = Automaton::line(n, 1, Boundary::kRing, rules::Rule{rule},
                                     Memory::kWith);
      const phasespace::ChoiceDigraph g(a);
      EXPECT_FALSE(phasespace::analyze(g).has_proper_cycle())
          << rules::describe(rules::Rule{rule}) << " n=" << n;
    }
  }
}

TEST(Theorem1, NonMonotoneRuleBreaksTheConclusion) {
  // Control: parity (symmetric but NOT monotone) does cycle sequentially.
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  EXPECT_TRUE(phasespace::analyze(phasespace::ChoiceDigraph(a))
                  .has_proper_cycle());
}

TEST(Theorem1, EnergyCertificateAgreesWithSccCertificate) {
  // Both proofs of cycle-freeness executed on the same systems: the SCC
  // check (exhaustive over the choice digraph) and the strict-decrease
  // Lyapunov argument (exhaustive over states x nodes).
  for (const std::size_t n : {6u, 8u}) {
    const auto net =
        analysis::ThresholdNetwork::majority(graph::ring(n), true);
    const auto a = net.automaton();
    // (a) SCC certificate.
    EXPECT_FALSE(phasespace::analyze(phasespace::ChoiceDigraph(a))
                     .has_proper_cycle());
    // (b) Energy certificate: any changing update drops E by >= 1.
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
      const auto c = Configuration::from_bits(bits, n);
      const auto before = analysis::sequential_energy(net, c);
      for (graph::NodeId v = 0; v < n; ++v) {
        auto d = c;
        if (core::update_node(a, d, v)) {
          EXPECT_LE(analysis::sequential_energy(net, d), before - 1);
        }
      }
    }
  }
}

// ---------------------------------------------------------------- Lemma 2

TEST(Lemma2, PartI_RadiusTwoParallelTwoCycle) {
  // r = 2: blocks of 00 11 alternate (period-2 under 3-of-5 majority).
  for (const std::size_t n : {8u, 12u, 16u}) {
    const auto a = majority_ring(n, 2);
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((i / 2) % 2 == 1) c.set(i, 1);  // 0011 0011 ...
    }
    const auto orbit = core::find_orbit_synchronous(a, c, 64);
    ASSERT_TRUE(orbit.has_value()) << n;
    EXPECT_EQ(orbit->transient, 0u) << n;
    EXPECT_EQ(orbit->period, 2u) << n;
  }
}

TEST(Lemma2, PartII_RadiusTwoSequentialCycleFree) {
  for (const std::size_t n : {5u, 8u, 11u, 13u}) {
    const phasespace::ChoiceDigraph g(majority_ring(n, 2));
    EXPECT_FALSE(phasespace::analyze(g).has_proper_cycle()) << n;
  }
}

// ------------------------------------------------------------- Corollary 1

TEST(Corollary1, EveryRadiusHasATwoCycle) {
  // (0^r 1^r)^* is a two-cycle for radius-r MAJORITY on suitable rings.
  for (const std::uint32_t r : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const std::size_t n = 4 * r;  // two full 0^r 1^r blocks
    const auto a = majority_ring(n, r);
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((i / r) % 2 == 1) c.set(i, 1);
    }
    const auto orbit = core::find_orbit_synchronous(a, c, 16);
    ASSERT_TRUE(orbit.has_value()) << "r=" << r;
    EXPECT_EQ(orbit->period, 2u) << "r=" << r;
    EXPECT_EQ(orbit->transient, 0u) << "r=" << r;
  }
}

TEST(Corollary1, OddRadiusHasASecondDistinctTwoCycle) {
  // For odd r the single-cell-alternating configuration (01)^* is ALSO a
  // two-cycle, distinct from the block cycle (paper: "at least two
  // distinct two-cycles").
  for (const std::uint32_t r : {1u, 3u, 5u}) {
    const std::size_t n = 4 * r + (r == 1 ? 4 : 0);  // even, >= 2r+1
    const auto a = majority_ring(n, r);
    Configuration alt(n);
    for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
    const auto orbit = core::find_orbit_synchronous(a, alt, 16);
    ASSERT_TRUE(orbit.has_value()) << "r=" << r;
    EXPECT_EQ(orbit->period, 2u) << "r=" << r;
  }
}

// ---------------------------------------------------------- Proposition 1

TEST(Proposition1, ParallelThresholdPeriodsAreAtMostTwo) {
  // Exhaustive over all configurations for several rings and thresholds:
  // F^{t+2} = F^t eventually; equivalently every attractor period <= 2.
  for (const std::size_t n : {8u, 10u, 12u}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      const auto a = Automaton::line(n, 1, Boundary::kRing,
                                     rules::Rule{rules::KOfNRule{k}},
                                     Memory::kWith);
      const auto cls = phasespace::classify(
          phasespace::FunctionalGraph::synchronous(a));
      EXPECT_LE(cls.max_period(), 2u) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Proposition1, HoldsOnNonRingCellularSpaces) {
  for (const auto& g :
       {graph::grid2d(3, 4), graph::hypercube(3), graph::complete_bipartite(3, 3),
        graph::ring(12, 2)}) {
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_LE(cls.max_period(), 2u) << g.summary();
  }
}

TEST(Proposition1, ParityViolatesIt) {
  // Control: parity is not a threshold rule, and indeed has cycles of
  // period > 2 (period 3 on the 5-ring, period 7 on the 7-ring).
  for (const std::size_t n : {5u, 7u}) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                   Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_GT(cls.max_period(), 2u) << n;
  }
}

// ---------------------------------- Bipartite extension (Section 3.2 end)

TEST(BipartiteExtension, ThresholdCAOnBipartiteSpacesHaveTwoCycles) {
  // 2D grids (tori), hypercubes, complete bipartite graphs: set one side of
  // the bipartition to 1 — majority flips sides every step.
  for (const auto& g : {graph::grid2d(4, 4, true), graph::hypercube(3),
                        graph::complete_bipartite(3, 3)}) {
    const auto coloring = graph::bipartition(g);
    ASSERT_TRUE(coloring.has_value()) << g.summary();
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    Configuration c(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if ((*coloring)[v] == 1) c.set(v, 1);
    }
    const auto orbit = core::find_orbit_synchronous(a, c, 16);
    ASSERT_TRUE(orbit.has_value()) << g.summary();
    EXPECT_EQ(orbit->period, 2u) << g.summary();
  }
}

// --------------------------------------------- Engine cross-validation

TEST(EngineCrossValidation, AllSynchronousImplementationsAgree) {
  const std::size_t n = 193;
  const auto a = majority_ring(n);
  core::ThreadPool pool(4);
  core::PackedScratch scratch(n);
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    Configuration generic(n), threaded(n), packed(n);
    core::step_synchronous(a, c, generic);
    core::step_synchronous_threaded(a, c, threaded, pool);
    core::step_ring_majority3_packed(c, packed, scratch);
    Configuration block = c;
    core::step_block_sequential(a, block, core::BlockOrder::synchronous(n));
    EXPECT_EQ(generic, threaded);
    EXPECT_EQ(generic, packed);
    EXPECT_EQ(generic, block);
  }
}

TEST(EngineCrossValidation, SweepEqualsSingletonBlocks) {
  const std::size_t n = 40;
  const auto a = majority_ring(n);
  std::mt19937_64 rng(5);
  const auto order = core::random_permutation(n, rng);
  Configuration c(n);
  for (std::size_t i = 0; i < n; i += 3) c.set(i, 1);
  Configuration c2 = c;
  core::apply_sequence(a, c, order);
  core::step_block_sequential(a, c2, core::BlockOrder::sequential(order));
  EXPECT_EQ(c, c2);
}

// ---------------------------------------------- Fairness (footnote 2)

TEST(Fairness, BoundedFairSchedulesConvergeUnfairOnesNeedNot) {
  const std::size_t n = 12;
  const auto a = majority_ring(n);
  // Fair: cyclic permutation — converges.
  {
    Configuration c = Configuration::from_string("010101010101");
    core::CyclicSchedule fair(core::identity_order(n));
    EXPECT_TRUE(core::run_schedule_to_fixed_point(a, c, fair, 10000)
                    .has_value());
  }
  // Unfair: starving a node that must change blocks convergence from a
  // state whose only enabled update is that node.
  {
    Configuration c(n);
    c.set(3, 1);  // isolated 1: only node 3 can change
    core::StarvingSchedule unfair(n, 3);
    EXPECT_FALSE(core::run_schedule_to_fixed_point(a, c, unfair, 10000)
                     .has_value());
  }
}

}  // namespace
}  // namespace tca
