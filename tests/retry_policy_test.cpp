// Retry-policy determinism and the failure-classification matrix
// (src/runtime/retry.hpp, docs/robustness.md).
//
// The supervised-execution contract leans on two properties pinned here:
//  * backoff schedules are pure functions of (policy, attempt) — same
//    seed, same schedule, so a chaos repro replays the exact delays;
//  * every tca::ErrorCode maps to exactly one retry verdict, and the
//    transient/terminal split matches the documented table.

#include "runtime/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>
#include <vector>

#include "runtime/error.hpp"

namespace tca::runtime {
namespace {

using std::chrono::milliseconds;

RetryPolicy policy_with_seed(std::uint64_t seed) {
  RetryPolicy p;
  p.max_attempts = 6;
  p.initial_backoff = milliseconds{10};
  p.multiplier = 2.0;
  p.max_backoff = milliseconds{2000};
  p.jitter = 0.25;
  p.seed = seed;
  return p;
}

TEST(BackoffDelay, SameSeedSameSchedule) {
  const RetryPolicy p = policy_with_seed(0xDEC0DEull);
  const auto first = backoff_schedule(p);
  const auto second = backoff_schedule(p);
  ASSERT_EQ(first.size(), 5u);
  EXPECT_EQ(first, second);
  // And the schedule is exactly the per-attempt function, element-wise.
  for (std::uint32_t attempt = 1; attempt < p.max_attempts; ++attempt) {
    EXPECT_EQ(first[attempt - 1], backoff_delay(p, attempt))
        << "attempt " << attempt;
  }
}

TEST(BackoffDelay, DifferentSeedsDiverge) {
  const auto a = backoff_schedule(policy_with_seed(1));
  const auto b = backoff_schedule(policy_with_seed(2));
  EXPECT_NE(a, b) << "jittered schedules from different seeds should differ";
}

TEST(BackoffDelay, ZeroJitterIsExactExponential) {
  RetryPolicy p = policy_with_seed(42);
  p.jitter = 0.0;
  EXPECT_EQ(backoff_delay(p, 1), milliseconds{10});
  EXPECT_EQ(backoff_delay(p, 2), milliseconds{20});
  EXPECT_EQ(backoff_delay(p, 3), milliseconds{40});
  EXPECT_EQ(backoff_delay(p, 4), milliseconds{80});
  // Far past the cap the delay saturates at max_backoff.
  EXPECT_EQ(backoff_delay(p, 30), p.max_backoff);
}

TEST(BackoffDelay, JitteredDelayStaysInEnvelope) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const RetryPolicy p = policy_with_seed(seed);
    for (std::uint32_t attempt = 1; attempt < p.max_attempts; ++attempt) {
      const double base =
          std::min(10.0 * (1ull << (attempt - 1)),
                   static_cast<double>(p.max_backoff.count()));
      const auto delay = backoff_delay(p, attempt);
      // [base*(1-jitter), base*(1+jitter)], rounded, capped at max_backoff.
      EXPECT_GE(delay.count(), static_cast<std::int64_t>(base * 0.75) - 1)
          << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(delay.count(),
                std::min<std::int64_t>(
                    static_cast<std::int64_t>(base * 1.25) + 1,
                    p.max_backoff.count()))
          << "seed " << seed << " attempt " << attempt;
    }
  }
}

TEST(BackoffDelay, DegenerateInputsAreZeroOrEmpty) {
  RetryPolicy p = policy_with_seed(7);
  EXPECT_EQ(backoff_delay(p, 0), milliseconds{0}) << "attempt is 1-based";
  p.initial_backoff = milliseconds{0};
  EXPECT_EQ(backoff_delay(p, 3), milliseconds{0});

  RetryPolicy one = policy_with_seed(7);
  one.max_attempts = 1;
  EXPECT_TRUE(backoff_schedule(one).empty());
  one.max_attempts = 0;
  EXPECT_TRUE(backoff_schedule(one).empty());
}

TEST(BackoffDelay, SubUnityMultiplierIsClampedNotShrinking) {
  RetryPolicy p = policy_with_seed(9);
  p.jitter = 0.0;
  p.multiplier = 0.5;  // would shrink; policy clamps to flat
  EXPECT_EQ(backoff_delay(p, 1), milliseconds{10});
  EXPECT_EQ(backoff_delay(p, 4), milliseconds{10});
}

// ---------------------------------------------------------------------------
// Classification matrix. Pinning the WHOLE table (not just a sample) is the
// point: adding an ErrorCode without deciding its retry class should break
// this test, not silently default.

TEST(ClassifyErrorCode, TransientSet) {
  const ErrorCode transient[] = {
      ErrorCode::kFaultInjected,       ErrorCode::kIo,
      ErrorCode::kCheckpointCorrupt,   ErrorCode::kCheckpointTruncated,
      ErrorCode::kNotConverged,
  };
  for (const ErrorCode code : transient) {
    const FailureVerdict v = classify_error_code(code);
    EXPECT_EQ(v.cls, FailureClass::kTransient) << error_code_name(code);
    EXPECT_EQ(v.code, code);
  }
  // Only the injected-fault code (repeated chunk failure) walks the ladder.
  EXPECT_TRUE(classify_error_code(ErrorCode::kFaultInjected).degrade);
  EXPECT_FALSE(classify_error_code(ErrorCode::kIo).degrade);
  EXPECT_FALSE(classify_error_code(ErrorCode::kCheckpointCorrupt).degrade);
}

TEST(ClassifyErrorCode, TerminalSet) {
  const ErrorCode terminal[] = {
      ErrorCode::kUnknown,        ErrorCode::kInvalidArgument,
      ErrorCode::kSizeMismatch,   ErrorCode::kOutOfRange,
      ErrorCode::kDomainTooLarge, ErrorCode::kInvalidState,
      ErrorCode::kCancelled,      ErrorCode::kBudgetExhausted,
      ErrorCode::kCheckpointVersion,
  };
  for (const ErrorCode code : terminal) {
    const FailureVerdict v = classify_error_code(code);
    EXPECT_EQ(v.cls, FailureClass::kTerminal) << error_code_name(code);
    EXPECT_FALSE(v.degrade) << error_code_name(code);
  }
}

template <typename Thrown>
FailureVerdict classify_thrown(Thrown&& thrown) {
  try {
    throw std::forward<Thrown>(thrown);
  } catch (...) {
    return classify_failure(std::current_exception());
  }
}

TEST(ClassifyFailure, InjectedFaultIsTransientAndDegrades) {
  const FailureVerdict v =
      classify_thrown(tca::InjectedFaultError("chunk 3 exploded"));
  EXPECT_EQ(v.cls, FailureClass::kTransient);
  EXPECT_TRUE(v.degrade);
  EXPECT_EQ(v.code, ErrorCode::kFaultInjected);
  EXPECT_EQ(v.what, "chunk 3 exploded");
}

TEST(ClassifyFailure, BadAllocIsMemoryPressure) {
  const FailureVerdict v = classify_thrown(std::bad_alloc{});
  EXPECT_EQ(v.cls, FailureClass::kTransient);
  EXPECT_TRUE(v.degrade) << "pressure retries one rung down the ladder";
  EXPECT_EQ(v.code, ErrorCode::kUnknown);
}

TEST(ClassifyFailure, CancellationIsTerminal) {
  const FailureVerdict v =
      classify_thrown(tca::CancelledError("watchdog tripped"));
  EXPECT_EQ(v.cls, FailureClass::kTerminal);
  EXPECT_EQ(v.code, ErrorCode::kCancelled);
}

TEST(ClassifyFailure, CheckpointCodesSplitByRecoverability) {
  // Corrupt/truncated: the generational store can fall back -> transient.
  EXPECT_EQ(classify_thrown(tca::CheckpointError(
                                "bad checksum", ErrorCode::kCheckpointCorrupt))
                .cls,
            FailureClass::kTransient);
  // Version mismatch: retrying cannot rewrite history -> terminal.
  EXPECT_EQ(classify_thrown(tca::CheckpointError(
                                "v9", ErrorCode::kCheckpointVersion))
                .cls,
            FailureClass::kTerminal);
}

TEST(ClassifyFailure, ForeignExceptionsAreTerminal) {
  const FailureVerdict std_v =
      classify_thrown(std::runtime_error("no tca code"));
  EXPECT_EQ(std_v.cls, FailureClass::kTerminal);
  EXPECT_EQ(std_v.code, ErrorCode::kUnknown);
  EXPECT_EQ(std_v.what, "no tca code");

  const FailureVerdict odd_v = classify_thrown(42);
  EXPECT_EQ(odd_v.cls, FailureClass::kTerminal);
  EXPECT_EQ(odd_v.what, "non-standard exception");

  const FailureVerdict null_v = classify_failure(nullptr);
  EXPECT_EQ(null_v.cls, FailureClass::kTerminal);
}

TEST(ClassifyFailure, NamesAreStable) {
  EXPECT_STREQ(failure_class_name(FailureClass::kTransient), "transient");
  EXPECT_STREQ(failure_class_name(FailureClass::kTerminal), "terminal");
}

}  // namespace
}  // namespace tca::runtime
