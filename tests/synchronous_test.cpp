// Unit tests for the synchronous engine (src/core/synchronous.hpp),
// including the paper's concrete parallel phase-space facts.

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

Automaton two_node_xor() {
  // The paper's Section 3.1 example: two nodes, each computing XOR of its
  // own state and its only neighbor's.
  const auto g = graph::complete(2);
  return Automaton::from_graph(g, rules::parity(), Memory::kWith);
}

TEST(Synchronous, TwoNodeXorMap) {
  const auto a = two_node_xor();
  const auto step = [&](const std::string& s) {
    return step_synchronous(a, Configuration::from_string(s)).to_string();
  };
  EXPECT_EQ(step("00"), "00");
  EXPECT_EQ(step("01"), "11");
  EXPECT_EQ(step("10"), "11");
  EXPECT_EQ(step("11"), "00");
}

TEST(Synchronous, TwoNodeXorSinkReachedInTwoSteps) {
  // Paper: "regardless of the starting configuration, after at most two
  // parallel steps, the fixed point sink state will be reached."
  const auto a = two_node_xor();
  for (const char* start : {"00", "01", "10", "11"}) {
    Configuration c = Configuration::from_string(start);
    advance_synchronous(a, c, 2);
    EXPECT_EQ(c.to_string(), "00") << start;
  }
}

TEST(Synchronous, MajorityRingTwoCycle) {
  // Lemma 1(i): the alternating configurations form a two-cycle.
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto alt = Configuration::from_string("01010101");
  const auto flip = Configuration::from_string("10101010");
  EXPECT_EQ(step_synchronous(a, alt), flip);
  EXPECT_EQ(step_synchronous(a, flip), alt);
}

TEST(Synchronous, MajorityFixedPoints) {
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  for (const char* fp : {"00000000", "11111111", "11110000", "00111100"}) {
    const auto c = Configuration::from_string(fp);
    EXPECT_TRUE(is_fixed_point_synchronous(a, c)) << fp;
    EXPECT_EQ(step_synchronous(a, c), c);
  }
  EXPECT_FALSE(is_fixed_point_synchronous(
      a, Configuration::from_string("01010101")));
}

TEST(Synchronous, MajorityIsolatedOnesDie) {
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Configuration c = Configuration::from_string("01000100");
  advance_synchronous(a, c, 1);
  EXPECT_EQ(c.to_string(), "00000000");
}

TEST(Synchronous, Rule2GliderMovesLeft) {
  // Wolfram rule 2 maps only (0,0,1) to 1: a lone 1 moves left each step.
  const auto a = Automaton::line(6, 1, Boundary::kRing,
                                 rules::Rule{rules::wolfram(2)}, Memory::kWith);
  Configuration c = Configuration::from_string("000100");
  advance_synchronous(a, c, 1);
  EXPECT_EQ(c.to_string(), "001000");
  advance_synchronous(a, c, 2);
  EXPECT_EQ(c.to_string(), "100000");
  advance_synchronous(a, c, 1);  // wraps around the ring
  EXPECT_EQ(c.to_string(), "000001");
}

TEST(Synchronous, Rule90SierpinskiRow) {
  // Rule 90 = XOR of the two outer neighbors (memory ignored by the rule).
  const auto a = Automaton::line(8, 1, Boundary::kRing,
                                 rules::Rule{rules::wolfram(90)}, Memory::kWith);
  Configuration c = Configuration::from_string("00010000");
  advance_synchronous(a, c, 1);
  EXPECT_EQ(c.to_string(), "00101000");
  advance_synchronous(a, c, 1);
  EXPECT_EQ(c.to_string(), "01000100");
}

TEST(Synchronous, OutputBufferVariantMatchesReturnVariant) {
  const auto a = Automaton::line(12, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto c = Configuration::from_string("011010011010");
  Configuration out(12);
  step_synchronous(a, c, out);
  EXPECT_EQ(out, step_synchronous(a, c));
}

TEST(Synchronous, InPlaceStepRejected) {
  const auto a = Automaton::line(4, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Configuration c(4);
  EXPECT_THROW(step_synchronous(a, c, c), std::invalid_argument);
}

TEST(Synchronous, SizeMismatchRejected) {
  const auto a = Automaton::line(4, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Configuration c(5);
  Configuration out(4);
  EXPECT_THROW(step_synchronous(a, c, out), std::invalid_argument);
}

TEST(Synchronous, AdvanceZeroStepsIsIdentity) {
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Configuration c = Configuration::from_string("010101");
  const Configuration before = c;
  advance_synchronous(a, c, 0);
  EXPECT_EQ(c, before);
}

TEST(Synchronous, GridMajorityCheckerboardTwoCycle) {
  // Bipartite extension: on a 4x4 torus the checkerboard blinks.
  const auto g = graph::grid2d(4, 4, /*torus=*/true);
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
  Configuration c(16);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      if ((r + col) % 2 == 0) c.set(r * 4 + col, 1);
    }
  }
  const Configuration start = c;
  advance_synchronous(a, c, 1);
  EXPECT_NE(c, start);
  advance_synchronous(a, c, 1);
  EXPECT_EQ(c, start);
}

TEST(Synchronous, MemorylessMajorityOnRing) {
  // Without memory the rule sees only the two neighbors; ties go to 0, so
  // a solid block shrinks from nothing — all-ones stays, single 1 dies.
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWithout);
  EXPECT_EQ(step_synchronous(a, Configuration::from_string("111111")),
            Configuration::from_string("111111"));
  EXPECT_EQ(step_synchronous(a, Configuration::from_string("010000")),
            Configuration::from_string("000000"));
  // Alternating: each node's two neighbors agree and disagree with it.
  EXPECT_EQ(step_synchronous(a, Configuration::from_string("010101")),
            Configuration::from_string("101010"));
}

}  // namespace
}  // namespace tca::core
