// Differential fuzzing across engines and invariants: random automata
// (random graphs x random rules x random states, all seeded) must satisfy
// every cross-implementation equivalence and every theorem-level invariant
// the library promises. One parameterized suite, many seeds.

#include <gtest/gtest.h>

#include <random>

#include "analysis/energy.hpp"
#include "core/automaton.hpp"
#include "core/block_sequential.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"
#include "graph/builders.hpp"
#include "phasespace/classify.hpp"
#include "rules/enumerate.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::Configuration;
using core::Memory;

rules::Rule random_rule(std::mt19937_64& rng) {
  switch (rng() % 5) {
    case 0: return rules::majority();
    case 1: return rules::parity();
    case 2: return rules::Rule{rules::KOfNRule{
        1 + static_cast<std::uint32_t>(rng() % 4)}};
    case 3: {
      // random symmetric rule over the graph's max arity — built lazily by
      // callers that know the arity; here default arity-agnostic parity.
      return rules::parity();
    }
    default: return rules::Rule{rules::MajorityRule{rules::MajorityTie::kOne}};
  }
}

graph::Graph random_space(std::mt19937_64& rng) {
  switch (rng() % 5) {
    case 0: return graph::ring(5 + rng() % 8);
    case 1: return graph::random_gnp(
        static_cast<graph::NodeId>(6 + rng() % 6), 0.4, rng());
    case 2: return graph::grid2d(3, static_cast<graph::NodeId>(3 + rng() % 3));
    case 3: return graph::hypercube(3);
    default: return graph::random_regular(
        static_cast<graph::NodeId>(8 + 2 * (rng() % 3)), 3, rng());
  }
}

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AllSynchronousEnginePathsAgree) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const auto g = random_space(rng);
    const auto rule = random_rule(rng);
    const auto memory = (rng() & 1u) != 0 ? Memory::kWith : Memory::kWithout;
    const auto a = Automaton::from_graph(g, rule, memory);
    const auto c = random_config(a.size(), rng);

    Configuration generic(a.size()), fast(a.size());
    core::step_synchronous(a, c, generic);
    core::step_synchronous_fast(a, c, fast);
    ASSERT_EQ(generic, fast) << g.summary() << " " << rules::describe(rule);

    Configuration block = c;
    core::step_block_sequential(a, block,
                                core::BlockOrder::synchronous(a.size()));
    ASSERT_EQ(generic, block);
  }
}

TEST_P(DifferentialFuzz, ThreadedEngineAgrees) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  core::ThreadPool pool(1 + GetParam() % 4);
  for (int round = 0; round < 5; ++round) {
    const auto g = random_space(rng);
    const auto a = Automaton::from_graph(g, random_rule(rng), Memory::kWith);
    const auto c = random_config(a.size(), rng);
    Configuration generic(a.size()), threaded(a.size());
    core::step_synchronous(a, c, generic);
    core::step_synchronous_threaded(a, c, threaded, pool);
    ASSERT_EQ(generic, threaded);
  }
}

TEST_P(DifferentialFuzz, SweepEqualsSingletonBlocksEqualsUpdateChain) {
  std::mt19937_64 rng(GetParam() * 97 + 1);
  for (int round = 0; round < 5; ++round) {
    const auto g = random_space(rng);
    const auto a = Automaton::from_graph(g, random_rule(rng), Memory::kWith);
    const auto order = core::random_permutation(a.size(), rng);
    const auto c = random_config(a.size(), rng);

    Configuration via_sequence = c;
    core::apply_sequence(a, via_sequence, order);

    Configuration via_blocks = c;
    core::step_block_sequential(a, via_blocks,
                                core::BlockOrder::sequential(order));

    Configuration via_updates = c;
    for (const auto v : order) core::update_node(a, via_updates, v);

    ASSERT_EQ(via_sequence, via_blocks);
    ASSERT_EQ(via_sequence, via_updates);
  }
}

TEST_P(DifferentialFuzz, MonotoneSymmetricInvariantsHold) {
  // For random monotone symmetric rules on random spaces: the energy
  // decreases on changing updates and random fair schedules converge.
  std::mt19937_64 rng(GetParam() * 13 + 3);
  for (int round = 0; round < 4; ++round) {
    const auto g = random_space(rng);
    const auto k = 1 + static_cast<std::uint32_t>(rng() % 3);
    const auto net = analysis::ThresholdNetwork::homogeneous(g, k, true);
    const auto a = net.automaton();
    auto c = random_config(a.size(), rng);
    // Energy strictly decreases on 64 random changing updates (or until a
    // fixed point shows up).
    for (int step = 0; step < 64; ++step) {
      const auto before = analysis::sequential_energy(net, c);
      const auto v = static_cast<core::NodeId>(rng() % a.size());
      if (core::update_node(a, c, v)) {
        ASSERT_LE(analysis::sequential_energy(net, c), before - 1);
      }
    }
    // Random schedule converges.
    core::RandomUniformSchedule schedule(a.size(), rng());
    ASSERT_TRUE(
        core::run_schedule_to_fixed_point(a, c, schedule, 100000).has_value())
        << g.summary() << " k=" << k;
  }
}

TEST_P(DifferentialFuzz, ParallelPeriodBoundForThresholds) {
  std::mt19937_64 rng(GetParam() * 101 + 9);
  for (int round = 0; round < 3; ++round) {
    const auto g = random_space(rng);
    if (g.num_nodes() > 14) continue;  // keep phase spaces explicit
    const auto k = 1 + static_cast<std::uint32_t>(rng() % 3);
    const auto a = Automaton::from_graph(g, rules::Rule{rules::KOfNRule{k}},
                                         Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    ASSERT_LE(cls.max_period(), 2u) << g.summary() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tca
