// Differential fuzzing across engines and invariants, driven by the
// property-based harness (src/testing/): every registered oracle runs over
// seeded random cases, and any failure is delta-debug shrunk to a
// 1-minimal counterexample and reported with a one-line seeded repro
// command. Default seeds are fixed, so CI runs are deterministic;
// set TCA_PBT_SEED / TCA_PBT_CASES to explore, TCA_PBT_REPRO to replay a
// printed failure exactly (see docs/testing.md).
//
// This file replaces the pre-harness monolithic fuzzer. Notable fix over
// that version: its "random symmetric rule" branch silently degenerated to
// parity, so random totalistic rules were never exercised; the harness
// generator draws a genuine random accept mask (RuleSpec::kSymmetric), and
// GeneratorCoversRandomSymmetricRules pins that.

#include <gtest/gtest.h>

#include <set>

#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/runner.hpp"

namespace tca::testing {
namespace {

/// Runs one registry oracle under the env-configurable options and fails
/// with the full shrunk-counterexample report if any case breaks.
void run_oracle(const char* name) {
  const Oracle* oracle = find_oracle(name);
  ASSERT_NE(oracle, nullptr) << "oracle not registered: " << name;
  const auto failure = check_property(*oracle, RunOptions::from_env());
  EXPECT_FALSE(failure.has_value()) << failure->report();
}

// Cross-engine equalities: generic vs monomorphized vs threaded vs
// trivial-block synchronous paths, and the three sequential-sweep paths.
TEST(DifferentialFuzz, EnginesAgree) { run_oracle("engines-agree"); }
TEST(DifferentialFuzz, SweepConsistency) { run_oracle("sweep-consistency"); }

// Theorem-level oracles.
TEST(DifferentialFuzz, ScaNoCycle) { run_oracle("sca-no-cycle"); }
TEST(DifferentialFuzz, ParallelPeriodAtMostTwo) {
  run_oracle("parallel-period-two");
}
TEST(DifferentialFuzz, EnergyDescent) { run_oracle("energy-descent"); }
TEST(DifferentialFuzz, BipartiteTwoCycle) {
  run_oracle("bipartite-two-cycle");
}
TEST(DifferentialFuzz, AcaSubsumption) { run_oracle("aca-subsumption"); }
TEST(DifferentialFuzz, ReachSubsumption) { run_oracle("reach-subsumption"); }

// Robustness oracle: budgets truncate explicit builds into exact,
// well-reported prefixes (docs/robustness.md).
TEST(DifferentialFuzz, BudgetTruncation) { run_oracle("budget-truncation"); }

// Cross-ISA oracle: every compiled-and-available SIMD tier of the wide
// batch engine agrees lane-exactly with the 64-lane scalar bit-slice
// reference on random automata (docs/performance.md).
TEST(DifferentialFuzz, BatchIsaAgree) { run_oracle("batch-isa-agree"); }

// Supervised-equivalence oracle: a supervised build absorbing one
// injected transient failure (seed-rotated start rung) ends bit-identical
// to the fault-free baseline (docs/robustness.md).
TEST(DifferentialFuzz, SupervisedEquivalence) {
  run_oracle("supervised-equivalence");
}

// Service-vs-library oracle: the full in-process tcad request path
// (parse -> canonicalize -> cache -> coalesce -> engine -> JSON) answers
// bit-identically to direct phase-space library calls, and the cached
// replay is byte-identical to the computed response (docs/service.md).
TEST(DifferentialFuzz, ServiceVsLibrary) { run_oracle("service-vs-library"); }

// Storage-backend oracle: the sharded work-stealing build writes a
// bit-identical successor table through every SuccessorStore backend
// (flat / packed n-bit / disk-spilled), across seed-rotated worker
// counts, shard sizes, and engine rungs, and classify summaries derived
// through each backend agree (docs/performance.md "successor storage
// hierarchy").
TEST(DifferentialFuzz, StoreBackendAgree) { run_oracle("store-backend-agree"); }

// The registry and this file must not drift apart: every registered oracle
// has a TEST above (checked by name).
TEST(DifferentialFuzz, EveryRegisteredOracleIsDriven) {
  const std::set<std::string> driven = {
      "engines-agree",     "sweep-consistency",   "sca-no-cycle",
      "parallel-period-two", "energy-descent",
      "bipartite-two-cycle", "aca-subsumption",
      "reach-subsumption", "budget-truncation", "batch-isa-agree",
      "supervised-equivalence", "service-vs-library", "store-backend-agree"};
  for (const auto& o : oracles()) {
    EXPECT_TRUE(driven.contains(o.name))
        << "oracle '" << o.name << "' is registered but has no fuzz TEST";
  }
  EXPECT_EQ(driven.size(), oracles().size());
}

// The fixed generator actually produces random totalistic rules that are
// NOT parity (the bug the old fuzzer shipped with).
TEST(DifferentialFuzz, GeneratorCoversRandomSymmetricRules) {
  CaseOptions any;
  std::set<std::uint64_t> masks;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto c = random_case(mix_seed(0xFEEDu, i), any);
    if (c.rule.kind == RuleSpec::Kind::kSymmetric) masks.insert(c.rule.bits);
  }
  // Many distinct accept masks, not one degenerate value.
  EXPECT_GE(masks.size(), 10u);
  // And materialized at arity 3 they are not all the parity table 0...0101.
  std::set<std::string> tables;
  for (const auto bits : masks) {
    const auto rule = RuleSpec{RuleSpec::Kind::kSymmetric, 1, bits}
                          .materialize(3);
    tables.insert(rules::describe(rule));
  }
  EXPECT_GE(tables.size(), 5u);
}

}  // namespace
}  // namespace tca::testing
