// Unit tests for GF(2) linear algebra (src/analysis/gf2.hpp).

#include <gtest/gtest.h>

#include <random>

#include "analysis/gf2.hpp"

namespace tca::analysis {
namespace {

Gf2Matrix from_rows(const std::vector<std::vector<int>>& rows) {
  Gf2Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      m.set(r, c, rows[r][c] != 0);
    }
  }
  return m;
}

TEST(Gf2Matrix, GetSetRoundTrip) {
  Gf2Matrix m(3, 130);  // multi-word rows
  m.set(1, 0, true);
  m.set(1, 64, true);
  m.set(2, 129, true);
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 64));
  EXPECT_TRUE(m.get(2, 129));
  EXPECT_FALSE(m.get(0, 0));
  m.set(1, 64, false);
  EXPECT_FALSE(m.get(1, 64));
}

TEST(Gf2Matrix, IdentityMultiplication) {
  const auto a = from_rows({{1, 0, 1}, {0, 1, 1}, {1, 1, 0}});
  EXPECT_EQ(a.multiply(Gf2Matrix::identity(3)), a);
  EXPECT_EQ(Gf2Matrix::identity(3).multiply(a), a);
}

TEST(Gf2Matrix, KnownProduct) {
  const auto a = from_rows({{1, 1}, {0, 1}});
  const auto b = from_rows({{1, 0}, {1, 1}});
  // a*b over GF(2): [[1+1, 0+1], [1, 1]] = [[0,1],[1,1]].
  EXPECT_EQ(a.multiply(b), from_rows({{0, 1}, {1, 1}}));
}

TEST(Gf2Matrix, AddIsXor) {
  const auto a = from_rows({{1, 1}, {0, 1}});
  const auto b = from_rows({{1, 0}, {1, 1}});
  EXPECT_EQ(a.add(b), from_rows({{0, 1}, {1, 0}}));
  EXPECT_EQ(a.add(a), Gf2Matrix(2, 2));
}

TEST(Gf2Matrix, PowerMatchesRepeatedMultiply) {
  const auto a = from_rows({{1, 1, 0}, {0, 1, 1}, {1, 0, 1}});
  Gf2Matrix manual = Gf2Matrix::identity(3);
  for (int i = 0; i < 13; ++i) manual = manual.multiply(a);
  EXPECT_EQ(a.power(13), manual);
  EXPECT_EQ(a.power(0), Gf2Matrix::identity(3));
}

TEST(Gf2Matrix, ApplyMatchesDefinition) {
  const auto a = from_rows({{1, 1, 0}, {0, 0, 1}});
  std::vector<std::uint64_t> x{0b011};  // x0 = 1, x1 = 1, x2 = 0
  const auto y = a.apply(x);
  EXPECT_FALSE(get_bit(y, 0));  // 1 ^ 1 = 0
  EXPECT_FALSE(get_bit(y, 1));  // x2 = 0
}

TEST(Gf2Matrix, RankOfKnownMatrices) {
  EXPECT_EQ(Gf2Matrix::identity(5).rank(), 5u);
  EXPECT_EQ(Gf2Matrix(4, 4).rank(), 0u);
  // Rank-2 matrix: third row is the XOR of the first two.
  EXPECT_EQ(from_rows({{1, 0, 1}, {0, 1, 1}, {1, 1, 0}}).rank(), 2u);
  // Non-square.
  EXPECT_EQ(from_rows({{1, 0, 1, 1}, {0, 1, 0, 1}}).rank(), 2u);
}

TEST(Gf2Matrix, KernelBasisSpansTheKernel) {
  const auto a = from_rows({{1, 0, 1}, {0, 1, 1}, {1, 1, 0}});
  const auto basis = a.kernel_basis();
  ASSERT_EQ(basis.size(), a.nullity());
  ASSERT_EQ(basis.size(), 1u);
  // Every basis vector maps to zero.
  for (const auto& v : basis) {
    const auto y = a.apply(v);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      EXPECT_FALSE(get_bit(y, i));
    }
  }
  // The kernel of this matrix is {000, 111}.
  EXPECT_TRUE(get_bit(basis[0], 0));
  EXPECT_TRUE(get_bit(basis[0], 1));
  EXPECT_TRUE(get_bit(basis[0], 2));
}

TEST(Gf2Matrix, SolveConsistentSystem) {
  const auto a = from_rows({{1, 1, 0}, {0, 1, 1}});
  std::vector<std::uint64_t> b{0b01};  // y0 = 1, y1 = 0
  const auto x = a.solve(b);
  ASSERT_TRUE(x.has_value());
  const auto y = a.apply(*x);
  EXPECT_TRUE(get_bit(y, 0));
  EXPECT_FALSE(get_bit(y, 1));
}

TEST(Gf2Matrix, SolveDetectsInconsistency) {
  // Rows 0 and 1 identical: b with different bits is inconsistent.
  const auto a = from_rows({{1, 1}, {1, 1}});
  std::vector<std::uint64_t> b{0b01};
  EXPECT_EQ(a.solve(b), std::nullopt);
  std::vector<std::uint64_t> ok{0b11};
  EXPECT_TRUE(a.solve(ok).has_value());
}

TEST(Gf2Matrix, RandomRankNullityConsistency) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng() % 12;
    Gf2Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m.set(r, c, (rng() & 1u) != 0);
      }
    }
    EXPECT_EQ(m.rank() + m.kernel_basis().size(), n);
    // Every kernel basis vector is annihilated.
    for (const auto& v : m.kernel_basis()) {
      const auto y = m.apply(v);
      for (std::size_t i = 0; i < n; ++i) EXPECT_FALSE(get_bit(y, i));
    }
  }
}

TEST(Gf2Matrix, MultiWordRankAndSolve) {
  // 100x100 identity plus one dependent row pattern.
  const std::size_t n = 100;
  Gf2Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  // Make row 99 = row 0 ^ row 1 (destroying its own pivot).
  m.set(99, 99, false);
  m.set(99, 0, true);
  m.set(99, 1, true);
  EXPECT_EQ(m.rank(), 99u);
  EXPECT_EQ(m.nullity(), 1u);
}

}  // namespace
}  // namespace tca::analysis
