// Additional edge-case coverage across modules: paths that the focused
// unit suites do not reach (phantom-boundary ACA, memoryless preimages,
// multi-offset circulants, long packed-engine compositions, degenerate
// sizes).

#include <gtest/gtest.h>

#include <random>

#include "aca/aca.hpp"
#include "aca/explorer.hpp"
#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"
#include "graph/properties.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"
#include "rules/rule.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

TEST(Coverage, CirculantMultipleOffsets) {
  const std::vector<graph::NodeId> offsets{1, 2};
  const auto g = graph::circulant(8, offsets);
  EXPECT_EQ(g, graph::ring(8, 2));
  const std::vector<graph::NodeId> skip{2, 4};
  const auto h = graph::circulant(8, skip);
  EXPECT_EQ(graph::regular_degree(h), graph::NodeId{3});  // 4 is n/2
  EXPECT_EQ(graph::component_count(h), 2u);  // even-only and odd-only parts
}

TEST(Coverage, MooreTorusDegrees) {
  const auto g = graph::grid2d(4, 5, true, graph::GridNeighborhood::kMoore);
  EXPECT_EQ(graph::regular_degree(g), graph::NodeId{8});
  EXPECT_EQ(g.num_edges(), 4u * 5u * 8u / 2u);
}

TEST(Coverage, AcaWithPhantomBoundary) {
  // kFixedZero lines create phantom inputs; the ACA must route them as
  // constant-zero reads, not channels.
  const auto a = Automaton::line(5, 1, Boundary::kFixedZero, rules::majority(),
                                 Memory::kWith);
  const aca::AcaSystem sys(a);
  // 2 channels per interior pair; phantom slots don't create channels:
  // node 0 and node 4 each have only ONE real neighbor.
  EXPECT_EQ(sys.num_channels(), 8u);
  // Macro steps still match the engines.
  for (phasespace::StateCode x = 0; x < 32; ++x) {
    const auto after = sys.synchronous_macro_step(sys.initial(x));
    const auto c = Configuration::from_bits(x, 5);
    EXPECT_EQ(sys.config_of(after), core::step_synchronous(a, c).to_bits())
        << x;
  }
  // Subsumption holds on the open line too.
  const auto verdict = aca::compare_reach_sets(a, 0b01010);
  EXPECT_TRUE(verdict.contains_synchronous);
  EXPECT_TRUE(verdict.contains_sequential);
}

TEST(Coverage, MemorylessPreimageCrossValidation) {
  const auto rule = rules::majority();
  const std::size_t n = 9;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rule,
                                 Memory::kWithout);
  const auto fg = phasespace::FunctionalGraph::synchronous(a);
  const auto indeg = phasespace::in_degrees(fg);
  const phasespace::RingPreimageSolver solver(rule, 1, Memory::kWithout);
  for (phasespace::StateCode s = 0; s < fg.num_states(); ++s) {
    EXPECT_EQ(solver.count(Configuration::from_bits(s, n)), indeg[s]) << s;
  }
}

TEST(Coverage, MemorylessFixedPointCount) {
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              Memory::kWithout);
  for (const std::size_t n : {5u, 8u, 11u}) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                   Memory::kWithout);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_EQ(phasespace::count_fixed_points_ring(solver, n),
              cls.num_fixed_points)
        << n;
  }
}

TEST(Coverage, PackedLongCompositionMatchesGeneric) {
  // 500 packed steps vs 500 generic steps, awkward ring size.
  const std::size_t n = 131;
  const auto a = Automaton::line(n, 1, Boundary::kRing,
                                 rules::Rule{rules::wolfram(30)},
                                 Memory::kWith);
  std::mt19937_64 rng(8);
  Configuration generic(n);
  for (std::size_t i = 0; i < n; ++i) {
    generic.set(i, static_cast<core::State>(rng() & 1u));
  }
  Configuration packed = generic;
  const auto rule = rules::wolfram(30);
  core::PackedScratch scratch(n);
  Configuration out(n);
  for (int t = 0; t < 500; ++t) {
    core::step_ring_table3_packed(rule, packed, out, scratch);
    std::swap(packed, out);
  }
  core::advance_synchronous(a, generic, 500);
  EXPECT_EQ(packed, generic);
}

TEST(Coverage, SingleCellRingRejected) {
  // n = 1 < 2r+1 for any radius — constructor must refuse.
  EXPECT_THROW(
      Automaton::line(1, 1, Boundary::kRing, rules::majority(), Memory::kWith),
      std::invalid_argument);
  // But a single-cell FIXED boundary line is fine (phantoms both sides).
  const auto a = Automaton::line(1, 1, Boundary::kFixedZero, rules::majority(),
                                 Memory::kWith);
  // majority(0, x, 0) = 0: the lone cell always dies.
  auto c = Configuration::from_string("1");
  core::advance_synchronous(a, c, 1);
  EXPECT_EQ(c.popcount(), 0u);
}

TEST(Coverage, EmptyInputRules) {
  // Arity-generic rules on zero inputs: majority of nothing is 0 (tie->0),
  // parity of nothing is 0, 1-of-n of nothing is 0, 0-of-n is 1.
  const std::vector<rules::State> none;
  EXPECT_EQ(rules::eval(rules::majority(), none), 0);
  EXPECT_EQ(rules::eval(rules::parity(), none), 0);
  EXPECT_EQ(rules::eval(rules::Rule{rules::KOfNRule{1}}, none), 0);
  EXPECT_EQ(rules::eval(rules::Rule{rules::KOfNRule{0}}, none), 1);
}

TEST(Coverage, IsolatedNodeAutomaton) {
  // An edgeless graph with memory: every node sees only itself; majority
  // of one input is the identity — every state is a fixed point.
  const graph::Graph g(4, std::vector<graph::Edge>{});
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
  const auto cls =
      phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
  EXPECT_EQ(cls.num_fixed_points, 16u);
  EXPECT_EQ(cls.num_transient_states, 0u);
}

TEST(Coverage, SequentialEngineOnPerNodeMixedMemoryless) {
  // Non-homogeneous memoryless automaton exercises rule(v) dispatch in the
  // sequential path.
  const auto g = graph::ring(6);
  std::vector<rules::Rule> rs;
  for (std::size_t v = 0; v < 6; ++v) {
    rs.emplace_back(v % 2 == 0 ? rules::Rule{rules::KOfNRule{1}}
                               : rules::Rule{rules::KOfNRule{2}});
  }
  const auto a = Automaton::from_graph_per_node(g, rs, Memory::kWithout);
  auto c = Configuration::from_string("100000");
  // node 1 (2-of-2 of neighbors {0,2} = {1,0}) stays 0; node 5 (2-of-2 of
  // {4,0} = {0,1}) stays 0; node 0 (1-of-2 of {1,5} = {0,0}) -> 0.
  EXPECT_FALSE(core::update_node(a, c, 1));
  EXPECT_FALSE(core::update_node(a, c, 5));
  EXPECT_TRUE(core::update_node(a, c, 0));
  EXPECT_EQ(c.popcount(), 0u);
}

TEST(Coverage, ReachSetsOnDisconnectedGraph) {
  // Components evolve independently; the reach sets factor.
  const graph::Graph g(4, std::vector<graph::Edge>{{0, 1}, {2, 3}});
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const auto seq = aca::reach_sequential(a, 0b0101);
  // Parity pair dynamics never reach 00 within a component from 01.
  for (const auto s : seq) {
    EXPECT_NE(s & 0b0011u, 0u) << s;  // low pair never both-zero
    EXPECT_NE(s & 0b1100u, 0u) << s;  // high pair never both-zero
  }
}

}  // namespace
}  // namespace tca
