// Trace spans (src/obs/trace.hpp) and the structured log sink
// (src/obs/log.hpp), including the end-to-end path the observability issue
// called out: ThreadPool spawn degradation must surface as a counter plus
// a structured warning event instead of a raw fprintf. Labeled
// `sanitizer;faultinject` — the spawn-degrade case uses the fault plan,
// and the span recorder must stay clean under tsan.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"

namespace tca::obs {
namespace {

TEST(Trace, SpansRecordWhileTracingIsOn) {
  start_tracing();
  {
    TCA_SPAN("outer_span");
    TCA_SPAN("inner_span");
  }
  stop_tracing();
  EXPECT_EQ(trace_event_count(), 2u);
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("outer_span"), std::string::npos);
  EXPECT_NE(json.find("inner_span"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  clear_trace();
}

TEST(Trace, NoEventsWhenTracingIsOff) {
  clear_trace();
  ASSERT_FALSE(tracing_enabled());
  {
    TCA_SPAN("invisible");
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(Trace, NestedSpansCarryDepth) {
  start_tracing();
  {
    TCA_SPAN("depth_outer");
    {
      TCA_SPAN("depth_inner");
    }
  }
  stop_tracing();
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"depth\":0"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
  clear_trace();
}

TEST(Trace, ConcurrentSpansAllRecorded) {
  start_tracing();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TCA_SPAN("worker_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_tracing();
  EXPECT_EQ(trace_event_count(), kThreads * kSpansPerThread);
  clear_trace();
}

TEST(Trace, WriteChromeTraceProducesFile) {
  start_tracing();
  {
    TCA_SPAN("exported_span");
  }
  stop_tracing();
  const std::string path =
      (std::filesystem::temp_directory_path() / "tca_obs_trace_test.json")
          .string();
  write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("exported_span"), std::string::npos);
  std::filesystem::remove(path);
  clear_trace();
}

TEST(Log, ScopedSinkCapturesRecords) {
  std::vector<LogRecord> captured;
  std::mutex mutex;
  {
    ScopedLogSink sink([&](const LogRecord& r) {
      const std::lock_guard<std::mutex> lock(mutex);
      captured.push_back(r);
    });
    log_event(LogLevel::kWarn, "test.event",
              {{"name", "value"}, {"count", 7}, {"ratio", 0.5}, {"ok", true}});
  }
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kWarn);
  EXPECT_EQ(captured[0].event, "test.event");
  ASSERT_EQ(captured[0].fields.size(), 4u);
  EXPECT_EQ(captured[0].fields[0].key, "name");
  EXPECT_GT(captured[0].unix_ms, 0u);
}

TEST(Log, RenderJsonlShapesTheRecord) {
  LogRecord r;
  r.level = LogLevel::kError;
  r.event = "render.test";
  r.unix_ms = 1234;
  r.fields.push_back({"text", "needs \"escaping\"\n"});
  r.fields.push_back({"n", 42});
  const std::string line = render_jsonl(r);
  EXPECT_NE(line.find("\"ts_ms\":1234"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"render.test\""), std::string::npos);
  EXPECT_NE(line.find("needs \\\"escaping\\\"\\n"), std::string::npos);
  EXPECT_NE(line.find("\"n\":42"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "rendered record must be a single line";
}

TEST(Log, MinLevelFiltersBelow) {
  std::vector<LogRecord> captured;
  ScopedLogSink sink([&](const LogRecord& r) { captured.push_back(r); });
  ASSERT_EQ(min_log_level(), LogLevel::kInfo);
  log_event(LogLevel::kDebug, "test.dropped");
  EXPECT_TRUE(captured.empty());
  set_min_log_level(LogLevel::kError);
  log_event(LogLevel::kWarn, "test.also_dropped");
  EXPECT_TRUE(captured.empty());
  log_event(LogLevel::kError, "test.kept");
  EXPECT_EQ(captured.size(), 1u);
  set_min_log_level(LogLevel::kInfo);
}

TEST(Log, EventsBumpTheLevelCounter) {
  ScopedLogSink sink([](const LogRecord&) {});
  Counter& warns = counter("log.events.warn");
  const std::uint64_t before = warns.value();
  log_event(LogLevel::kWarn, "test.counted");
  EXPECT_EQ(warns.value(), before + 1);
}

// The issue's satellite: spawn degradation routes through the structured
// sink with a counter tests can assert on — no more raw stderr.
TEST(Log, ThreadPoolSpawnDegradeEmitsCounterAndEvent) {
  std::vector<LogRecord> captured;
  std::mutex mutex;
  ScopedLogSink sink([&](const LogRecord& r) {
    const std::lock_guard<std::mutex> lock(mutex);
    captured.push_back(r);
  });
  Counter& degraded = counter("thread_pool.spawn_degraded");
  const std::uint64_t before = degraded.value();
  runtime::ScopedFaultPlan plan({.fail_thread_spawn = true});
  core::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(degraded.value(), before + 1);
  bool found = false;
  for (const LogRecord& r : captured) {
    if (r.event != "thread_pool.spawn_degraded") continue;
    found = true;
    EXPECT_EQ(r.level, LogLevel::kWarn);
    bool has_requested = false;
    for (const LogField& f : r.fields) {
      if (f.key == "requested_workers") has_requested = true;
    }
    EXPECT_TRUE(has_requested);
  }
  EXPECT_TRUE(found) << "expected a thread_pool.spawn_degraded warn event";
}

}  // namespace
}  // namespace tca::obs
