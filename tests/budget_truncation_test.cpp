// Budget-truncation semantics across every budgeted engine
// (docs/robustness.md): when a RunControl trips, each engine must return a
// well-formed PARTIAL result — an exact prefix (serial builds), an exact
// subset (BFS/DFS reach sets), or counts-only (parallel builds) — with
// `truncated` and a correct stop_reason, and a generous budget must
// reproduce the unbudgeted result bit-for-bit. Fixed tiny instances keep
// every expectation deterministic.

#include <gtest/gtest.h>

#include <algorithm>

#include "aca/explorer.hpp"
#include "core/automaton.hpp"
#include "core/thread_pool.hpp"
#include "interleave/explorer.hpp"
#include "interleave/vm.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/preimage.hpp"
#include "rules/rule.hpp"
#include "runtime/budget.hpp"

namespace tca {
namespace {

using phasespace::FunctionalGraph;
using runtime::RunBudget;
using runtime::RunControl;
using runtime::StopReason;

core::Automaton majority_ring(std::uint32_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

core::Automaton parity_ring(std::uint32_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::parity(),
                               core::Memory::kWith);
}

TEST(BudgetTruncation, SerialBuildStopsWithExactPrefix) {
  const auto a = parity_ring(8);  // 256 states
  const auto full = FunctionalGraph::synchronous(a);

  RunControl control(RunBudget{.max_states = 40});
  const auto build = FunctionalGraph::build_synchronous(a, control);
  ASSERT_TRUE(build.truncated());
  EXPECT_FALSE(build.graph.has_value());
  EXPECT_EQ(build.status.stop_reason, StopReason::kMaxStates);
  // The budget admits 40 notes and trips on the 41st.
  EXPECT_EQ(build.states_built, 40u);
  ASSERT_EQ(build.partial_succ.size(), build.states_built);
  for (std::uint64_t s = 0; s < build.states_built; ++s) {
    EXPECT_EQ(build.partial_succ[s], full.succ(s)) << "state " << s;
  }
}

TEST(BudgetTruncation, SweepBuildStopsWithExactPrefix) {
  const auto a = majority_ring(7);
  std::vector<core::NodeId> order{3, 1, 4, 0, 5, 2, 6};
  const auto full = FunctionalGraph::sweep(a, order);

  RunControl control(RunBudget{.max_states = 25});
  const auto build = FunctionalGraph::build_sweep(a, order, control);
  ASSERT_TRUE(build.truncated());
  EXPECT_EQ(build.status.stop_reason, StopReason::kMaxStates);
  EXPECT_EQ(build.states_built, 25u);
  for (std::uint64_t s = 0; s < build.states_built; ++s) {
    EXPECT_EQ(build.partial_succ[s], full.succ(s)) << "state " << s;
  }
}

TEST(BudgetTruncation, GenerousBudgetReproducesTheUnbudgetedTable) {
  const auto a = majority_ring(8);
  const auto full = FunctionalGraph::synchronous(a);

  RunControl control;  // unlimited
  const auto build = FunctionalGraph::build_synchronous(a, control);
  ASSERT_TRUE(build.complete());
  EXPECT_EQ(build.status.stop_reason, StopReason::kNone);
  EXPECT_EQ(build.graph->successors(), full.successors());
  EXPECT_TRUE(build.partial_succ.empty());  // table lives in `graph`
}

TEST(BudgetTruncation, ParallelBuildReportsCountsOnlyWhenTruncated) {
  const auto a = parity_ring(12);  // 4096 states, several 1024-wide chunks
  core::ThreadPool pool(2);

  RunControl control(RunBudget{.max_states = 64});
  const auto build =
      FunctionalGraph::build_synchronous_parallel(a, pool, control);
  ASSERT_TRUE(build.truncated());
  EXPECT_EQ(build.status.stop_reason, StopReason::kMaxStates);
  // Chunks complete in nondeterministic order, so no prefix is promised —
  // only counts (states_built counts CHARGED visits, bulk-noted 1024 at a
  // time, so it can overshoot the 64-state budget but not reach the total:
  // each participant observes the trip at its first bulk note).
  EXPECT_TRUE(build.partial_succ.empty());
  EXPECT_GT(build.states_built, 0u);
  EXPECT_LT(build.states_built, std::uint64_t{1} << 12);

  // And with no budget the parallel build completes, matching serial.
  RunControl unlimited;
  const auto ok =
      FunctionalGraph::build_synchronous_parallel(a, pool, unlimited);
  ASSERT_TRUE(ok.complete());
  EXPECT_EQ(ok.graph->successors(),
            FunctionalGraph::synchronous(a).successors());
}

TEST(BudgetTruncation, ByteBudgetRejectsTheTableUpFront) {
  const auto a = parity_ring(12);  // 4096 states x 8 bytes
  RunControl control(RunBudget{.max_bytes = 1024});
  const auto build = FunctionalGraph::build_synchronous(a, control);
  ASSERT_TRUE(build.truncated());
  EXPECT_EQ(build.status.stop_reason, StopReason::kMaxBytes);
}

TEST(BudgetTruncation, AcaExploreReturnsSubsetOfFullReachSet) {
  const auto a = majority_ring(5);
  const aca::AcaSystem sys(a);
  const auto full = aca::explore(sys, 0b00101);
  ASSERT_FALSE(full.truncated);

  RunControl control(RunBudget{.max_states = 40});
  const auto partial = aca::explore(sys, 0b00101, control);
  ASSERT_TRUE(partial.truncated);
  EXPECT_EQ(partial.stop_reason, StopReason::kMaxStates);
  EXPECT_LT(partial.global_states, full.global_states);
  EXPECT_TRUE(std::includes(full.configs.begin(), full.configs.end(),
                            partial.configs.begin(), partial.configs.end()));

  // A budget larger than the space reproduces the full exploration.
  RunControl roomy(RunBudget{.max_states = 1u << 20});
  const auto again = aca::explore(sys, 0b00101, roomy);
  EXPECT_FALSE(again.truncated);
  EXPECT_EQ(again.configs, full.configs);
  EXPECT_EQ(again.global_states, full.global_states);
}

TEST(BudgetTruncation, TruncatedSubsumptionVerdictIsFlaggedMeaningless) {
  const auto a = majority_ring(5);
  RunControl control(RunBudget{.max_states = 8});
  const auto verdict = aca::compare_reach_sets(a, 0b00101, control);
  ASSERT_TRUE(verdict.truncated);
  EXPECT_NE(verdict.stop_reason, StopReason::kNone);
  // Containment flags stay false on truncation: callers must skip.
  EXPECT_FALSE(verdict.contains_synchronous);
  EXPECT_FALSE(verdict.contains_sequential);
}

TEST(BudgetTruncation, InterleaveExplorerReturnsOutcomeSubset) {
  const auto m = interleave::machine_level_example(7, 9);
  const auto initial = m.initial({0});
  const auto full = interleaving_outcomes(m, initial);

  RunControl control(RunBudget{.max_states = 10});
  const auto partial = interleaving_outcomes(m, initial, control);
  ASSERT_TRUE(partial.truncated);
  EXPECT_EQ(partial.stop_reason, StopReason::kMaxStates);
  EXPECT_TRUE(std::includes(full.begin(), full.end(),
                            partial.outcomes.begin(), partial.outcomes.end()));

  RunControl unlimited;
  const auto complete = interleaving_outcomes(m, initial, unlimited);
  EXPECT_FALSE(complete.truncated);
  EXPECT_EQ(complete.outcomes, full);
}

TEST(BudgetTruncation, GoeCensusScansAnExactPrefix) {
  phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                        core::Memory::kWith);
  const std::size_t n = 10;
  const auto full = phasespace::count_gardens_of_eden_ring(solver, n);

  RunControl control(RunBudget{.max_states = 100});
  const auto census =
      phasespace::count_gardens_of_eden_ring(solver, n, control);
  ASSERT_TRUE(census.truncated);
  EXPECT_EQ(census.stop_reason, StopReason::kMaxStates);
  EXPECT_EQ(census.scanned, 100u);
  // Recount the same prefix directly: scan order is ascending state code.
  std::uint64_t expect = 0;
  for (std::uint64_t code = 0; code < census.scanned; ++code) {
    core::Configuration target(n);
    for (std::size_t i = 0; i < n; ++i) target.set(i, (code >> i) & 1u);
    if (solver.is_garden_of_eden(target)) ++expect;
  }
  EXPECT_EQ(census.gardens, expect);

  RunControl unlimited;
  const auto complete =
      phasespace::count_gardens_of_eden_ring(solver, n, unlimited);
  EXPECT_FALSE(complete.truncated);
  EXPECT_EQ(complete.gardens, full);
  EXPECT_EQ(complete.scanned, std::uint64_t{1} << n);
}

TEST(BudgetTruncation, PreCancelledControlStopsEveryEngineImmediately) {
  RunBudget unlimited;
  runtime::CancelToken token;
  token.cancel();

  const auto a = majority_ring(6);
  {
    RunControl control(unlimited, token);
    const auto build = FunctionalGraph::build_synchronous(a, control);
    EXPECT_TRUE(build.truncated());
    EXPECT_EQ(build.status.stop_reason, StopReason::kCancelled);
    EXPECT_EQ(build.states_built, 0u);
  }
  {
    RunControl control(unlimited, token);
    const aca::AcaSystem sys(a);
    const auto reach = aca::explore(sys, 0, control);
    EXPECT_TRUE(reach.truncated);
    EXPECT_EQ(reach.stop_reason, StopReason::kCancelled);
  }
  {
    RunControl control(unlimited, token);
    phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                          core::Memory::kWith);
    const auto census =
        phasespace::count_gardens_of_eden_ring(solver, 8, control);
    EXPECT_TRUE(census.truncated);
    EXPECT_EQ(census.stop_reason, StopReason::kCancelled);
    EXPECT_EQ(census.scanned, 0u);
  }
}

}  // namespace
}  // namespace tca
