// Unit tests for the Lyapunov energy machinery (src/analysis/energy.hpp) —
// the analytic certificate behind Theorem 1 and Proposition 1.

#include <gtest/gtest.h>

#include "analysis/energy.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"

namespace tca::analysis {
namespace {

using core::Configuration;

TEST(ThresholdNetwork, MajorityThresholds) {
  const auto net = ThresholdNetwork::majority(graph::ring(6), true);
  // Ring: arity 3 with memory, strict majority k = 2.
  for (std::uint32_t kv : net.k) EXPECT_EQ(kv, 2u);
  const auto net5 = ThresholdNetwork::majority(graph::ring(8, 2), true);
  for (std::uint32_t kv : net5.k) EXPECT_EQ(kv, 3u);  // 3-of-5
}

TEST(ThresholdNetwork, AutomatonAgreesWithMajorityRule) {
  const auto g = graph::ring(8);
  const auto net = ThresholdNetwork::majority(g, true);
  const auto a = net.automaton();
  const auto b = core::Automaton::from_graph(g, rules::majority(),
                                             core::Memory::kWith);
  for (std::uint64_t bits = 0; bits < 256; ++bits) {
    const auto c = Configuration::from_bits(bits, 8);
    EXPECT_EQ(core::step_synchronous(a, c), core::step_synchronous(b, c))
        << bits;
  }
}

TEST(SequentialEnergy, KnownValuesOnSmallRing) {
  // Ring n=4, k=2 (majority with memory): E = -2*#{11 edges} + sum 2(k-1)x
  // = -2*#{11 edges} + 2*popcount.
  const auto net = ThresholdNetwork::majority(graph::ring(4), true);
  EXPECT_EQ(sequential_energy(net, Configuration::from_string("0000")), 0);
  EXPECT_EQ(sequential_energy(net, Configuration::from_string("1111")),
            -2 * 4 + 2 * 4);  // 4 edges all 11
  EXPECT_EQ(sequential_energy(net, Configuration::from_string("1100")),
            -2 * 1 + 2 * 2);
  EXPECT_EQ(sequential_energy(net, Configuration::from_string("0101")),
            0 + 2 * 2);
}

// The core certificate: EVERY state-changing sequential update strictly
// decreases the energy (by at least 1), exhaustively over all states, all
// nodes, several graphs, with and without memory.
class EnergyDecrease
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(EnergyDecrease, EveryChangingUpdateStrictlyDecreasesE) {
  const auto [graph_id, with_memory] = GetParam();
  graph::Graph g;
  switch (graph_id) {
    case 0: g = graph::ring(8); break;
    case 1: g = graph::ring(9, 2); break;
    case 2: g = graph::grid2d(3, 4); break;
    case 3: g = graph::hypercube(3); break;
    case 4: g = graph::complete_bipartite(3, 4); break;
    case 5: g = graph::path(9); break;
    default: FAIL();
  }
  const auto net = ThresholdNetwork::majority(g, with_memory);
  const auto a = net.automaton();
  const auto n = g.num_nodes();
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    const auto c = Configuration::from_bits(bits, n);
    const std::int64_t before = sequential_energy(net, c);
    for (graph::NodeId v = 0; v < n; ++v) {
      auto d = c;
      if (core::update_node(a, d, v)) {
        EXPECT_LE(sequential_energy(net, d), before - 1)
            << "state " << c.to_string() << " node " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndMemory, EnergyDecrease,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Bool()));

// Non-majority thresholds satisfy the same certificate.
class EnergyDecreaseK : public ::testing::TestWithParam<int> {};

TEST_P(EnergyDecreaseK, HoldsForEveryThresholdK) {
  const auto k = static_cast<std::uint32_t>(GetParam());
  const auto net = ThresholdNetwork::homogeneous(graph::ring(8), k, true);
  const auto a = net.automaton();
  for (std::uint64_t bits = 0; bits < 256; ++bits) {
    const auto c = Configuration::from_bits(bits, 8);
    const std::int64_t before = sequential_energy(net, c);
    for (graph::NodeId v = 0; v < 8; ++v) {
      auto d = c;
      if (core::update_node(a, d, v)) {
        EXPECT_LE(sequential_energy(net, d), before - 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EnergyDecreaseK,
                         ::testing::Values(1, 2, 3));

TEST(PairEnergy, NonincreasingAlongSynchronousTrajectories) {
  // Goles' synchronous argument: E2(x(t), x(t+1)) never increases.
  const auto net = ThresholdNetwork::majority(graph::ring(10), true);
  const auto a = net.automaton();
  for (std::uint64_t bits = 0; bits < 1024; ++bits) {
    auto x = Configuration::from_bits(bits, 10);
    auto y = core::step_synchronous(a, x);
    std::int64_t prev = synchronous_pair_energy(net, x, y);
    for (int t = 0; t < 16; ++t) {
      const auto z = core::step_synchronous(a, y);
      const std::int64_t cur = synchronous_pair_energy(net, y, z);
      EXPECT_LE(cur, prev) << "start " << bits << " t " << t;
      prev = cur;
      x = y;
      y = z;
    }
  }
}

TEST(PairEnergy, SymmetricInItsTwoArguments) {
  const auto net = ThresholdNetwork::majority(graph::ring(6), true);
  const auto x = Configuration::from_string("011010");
  const auto y = Configuration::from_string("110100");
  EXPECT_EQ(synchronous_pair_energy(net, x, y),
            synchronous_pair_energy(net, y, x));
}

TEST(ChangeBound, SequentialRunsRespectTheBound) {
  const auto net = ThresholdNetwork::majority(graph::ring(16), true);
  const auto a = net.automaton();
  const std::int64_t bound = sequential_change_bound(net);
  core::RandomUniformSchedule schedule(16, 5);
  for (std::uint64_t seed_state :
       {0xAAAAULL, 0x1234ULL, 0xF0F0ULL, 0x7777ULL}) {
    auto c = Configuration::from_bits(seed_state, 16);
    std::int64_t changes = 0;
    for (int t = 0; t < 100000 && !core::is_fixed_point_sequential(a, c);
         ++t) {
      if (core::update_node(a, c, schedule.next())) ++changes;
    }
    EXPECT_TRUE(core::is_fixed_point_sequential(a, c));
    EXPECT_LE(changes, bound);
  }
}

TEST(EnergyErrors, SizeMismatchThrows) {
  const auto net = ThresholdNetwork::majority(graph::ring(6), true);
  EXPECT_THROW(sequential_energy(net, Configuration(5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tca::analysis
