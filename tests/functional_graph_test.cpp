// Unit tests for deterministic phase spaces (src/phasespace) — including
// the parallel side of the paper's Fig. 1.

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/synchronous.hpp"
#include "core/thread_pool.hpp"
#include "graph/builders.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/functional_graph.hpp"

namespace tca::phasespace {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

Automaton two_node_xor() {
  return Automaton::from_graph(graph::complete(2), rules::parity(),
                               Memory::kWith);
}

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(FunctionalGraph, TwoNodeXorSuccessorTable) {
  const auto fg = FunctionalGraph::synchronous(two_node_xor());
  ASSERT_EQ(fg.num_states(), 4u);
  // Encoding: bit 0 = node 0. States: 00=0, 10=1, 01=2, 11=3.
  EXPECT_EQ(fg.succ(0b00), 0b00u);
  EXPECT_EQ(fg.succ(0b01), 0b11u);
  EXPECT_EQ(fg.succ(0b10), 0b11u);
  EXPECT_EQ(fg.succ(0b11), 0b00u);
}

TEST(FunctionalGraph, RejectsTooManyCells) {
  const auto a = majority_ring(30);
  EXPECT_THROW(FunctionalGraph::synchronous(a), std::invalid_argument);
}

TEST(Classify, Fig1aParallelXor) {
  // Fig. 1(a): 00 is the unique fixed point (a sink / stable attractor);
  // every other state is transient; no proper cycles.
  const auto cls = classify(FunctionalGraph::synchronous(two_node_xor()));
  EXPECT_EQ(cls.num_fixed_points, 1u);
  EXPECT_EQ(cls.kind[0b00], StateKind::kFixedPoint);
  EXPECT_EQ(cls.num_cycle_states, 0u);
  EXPECT_EQ(cls.num_transient_states, 3u);
  EXPECT_FALSE(cls.has_proper_cycle());
  // "after at most two parallel steps" the sink is reached:
  EXPECT_EQ(cls.max_transient, 2u);
  ASSERT_EQ(cls.attractors.size(), 1u);
  EXPECT_EQ(cls.attractors[0].basin_size, 4u);
}

TEST(Classify, XorRingOfFourHasProperCyclesInParallel) {
  // Paper, Section 3.1: "if one considers XOR CA on four nodes with
  // circular boundary conditions, these XOR CA do have nontrivial cycles
  // in the parallel case as well."
  const auto a = Automaton::line(4, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto cls = classify(FunctionalGraph::synchronous(a));
  EXPECT_TRUE(cls.has_proper_cycle());
}

TEST(Classify, MajorityRingParallelHasExactlyTwoCycleStates) {
  // Lemma 1(i) + the rarity remark: the two alternating states form the
  // unique proper cycle on an even ring (n >= 4, radius 1).
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u}) {
    const auto cls = classify(FunctionalGraph::synchronous(majority_ring(n)));
    EXPECT_TRUE(cls.has_proper_cycle()) << n;
    EXPECT_EQ(cls.num_cycle_states, 2u) << n;
    EXPECT_EQ(cls.max_period(), 2u) << n;
  }
}

TEST(Classify, MajorityOddRingIsCycleFreeInParallel) {
  // Odd rings admit no alternating configuration; with radius 1 the
  // parallel majority CA has only fixed points.
  for (const std::size_t n : {5u, 7u, 9u, 11u}) {
    const auto cls = classify(FunctionalGraph::synchronous(majority_ring(n)));
    EXPECT_FALSE(cls.has_proper_cycle()) << n;
  }
}

TEST(Classify, CyclePeriodRecordedPerState) {
  const auto a = Automaton::line(4, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto fg = FunctionalGraph::synchronous(a);
  const auto cls = classify(fg);
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    if (cls.kind[s] == StateKind::kCycle) {
      const auto& attractor = cls.attractors[cls.attractor[s]];
      EXPECT_GE(attractor.period, 2u);
      // Following succ period times returns to s.
      StateCode t = s;
      for (std::uint64_t i = 0; i < attractor.period; ++i) t = fg.succ(t);
      EXPECT_EQ(t, s);
    }
  }
}

TEST(Classify, BasinSizesSumToStateCount) {
  const auto fg = FunctionalGraph::synchronous(majority_ring(10));
  const auto cls = classify(fg);
  std::uint64_t total = 0;
  for (const auto& a : cls.attractors) total += a.basin_size;
  EXPECT_EQ(total, fg.num_states());
}

TEST(InDegrees, SumEqualsStateCount) {
  const auto fg = FunctionalGraph::synchronous(majority_ring(8));
  const auto indeg = in_degrees(fg);
  std::uint64_t total = 0;
  for (auto d : indeg) total += d;
  EXPECT_EQ(total, fg.num_states());
}

TEST(InDegrees, GardensOfEdenDetected) {
  // For two-node XOR: preimages are {00,11}->00 {01,10}->11; states 01 and
  // 10 have no preimage (Gardens of Eden).
  const auto fg = FunctionalGraph::synchronous(two_node_xor());
  const auto indeg = in_degrees(fg);
  EXPECT_EQ(indeg[0b00], 2u);
  EXPECT_EQ(indeg[0b11], 2u);
  EXPECT_EQ(indeg[0b01], 0u);
  EXPECT_EQ(indeg[0b10], 0u);
  const auto cls = classify(fg);
  EXPECT_EQ(cls.num_gardens_of_eden, 2u);
}

TEST(SweepPhaseSpace, MajoritySweepHasOnlyFixedPointAttractors) {
  // Theorem 1 in functional-graph form: a fixed sweep order is one
  // deterministic map; its phase space must be cycle-free.
  const auto a = majority_ring(10);
  for (const auto& order : {core::identity_order(10), core::reversed_order(10)}) {
    const auto cls = classify(FunctionalGraph::sweep(a, order));
    EXPECT_FALSE(cls.has_proper_cycle());
    EXPECT_EQ(cls.max_period(), 1u);
  }
}

TEST(SweepPhaseSpace, SweepFixedPointsEqualParallelFixedPoints) {
  const auto a = majority_ring(8);
  const auto parallel = classify(FunctionalGraph::synchronous(a));
  const auto sweep = classify(FunctionalGraph::sweep(a, core::identity_order(8)));
  EXPECT_EQ(parallel.num_fixed_points, sweep.num_fixed_points);
}

TEST(ParallelBuild, MatchesSerialBuild) {
  core::ThreadPool pool(4);
  for (const std::size_t n : {4u, 10u, 14u}) {
    const auto a = majority_ring(n);
    const auto serial = FunctionalGraph::synchronous(a);
    const auto parallel = FunctionalGraph::synchronous_parallel(a, pool);
    ASSERT_EQ(parallel.num_states(), serial.num_states()) << n;
    for (StateCode s = 0; s < serial.num_states(); ++s) {
      ASSERT_EQ(parallel.succ(s), serial.succ(s)) << "n=" << n << " s=" << s;
    }
  }
}

TEST(ParallelBuild, WorksWithParityAndSingleThread) {
  core::ThreadPool pool(1);
  const auto a = Automaton::line(9, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto serial = FunctionalGraph::synchronous(a);
  const auto parallel = FunctionalGraph::synchronous_parallel(a, pool);
  for (StateCode s = 0; s < serial.num_states(); ++s) {
    ASSERT_EQ(parallel.succ(s), serial.succ(s)) << s;
  }
}

TEST(CodeStep, AdapterMatchesConfigurationEngine) {
  const auto a = majority_ring(12);
  const auto step = synchronous_code_step(a);
  for (StateCode s = 0; s < 4096; s += 97) {
    const auto c = core::Configuration::from_bits(s, 12);
    EXPECT_EQ(step(s), core::step_synchronous(a, c).to_bits());
  }
}

}  // namespace
}  // namespace tca::phasespace
