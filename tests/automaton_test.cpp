// Unit tests for the Automaton (src/core/automaton.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

using rules::Rule;

std::vector<NodeId> to_vec(std::span<const NodeId> s) {
  return {s.begin(), s.end()};
}

TEST(AutomatonFromGraph, SelfFirstThenSortedNeighbors) {
  const auto g = graph::ring(5);
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(to_vec(a.inputs(0)), (std::vector<NodeId>{0, 1, 4}));
  EXPECT_EQ(to_vec(a.inputs(2)), (std::vector<NodeId>{2, 1, 3}));
}

TEST(AutomatonFromGraph, MemorylessOmitsSelf) {
  const auto g = graph::ring(5);
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWithout);
  EXPECT_EQ(to_vec(a.inputs(0)), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(a.memory(), Memory::kWithout);
}

TEST(AutomatonLine, RingNeighborhoodIsSpatiallyOrdered) {
  const auto a = Automaton::line(5, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  EXPECT_EQ(to_vec(a.inputs(0)), (std::vector<NodeId>{4, 0, 1}));
  EXPECT_EQ(to_vec(a.inputs(2)), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(to_vec(a.inputs(4)), (std::vector<NodeId>{3, 4, 0}));
}

TEST(AutomatonLine, RadiusTwoRing) {
  const auto a = Automaton::line(7, 2, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  EXPECT_EQ(to_vec(a.inputs(0)), (std::vector<NodeId>{5, 6, 0, 1, 2}));
  EXPECT_EQ(a.max_arity(), 5u);
}

TEST(AutomatonLine, FixedZeroBoundaryUsesPhantoms) {
  const auto a = Automaton::line(4, 1, Boundary::kFixedZero, rules::majority(),
                                 Memory::kWith);
  EXPECT_EQ(to_vec(a.inputs(0)), (std::vector<NodeId>{kConstZero, 0, 1}));
  EXPECT_EQ(to_vec(a.inputs(3)), (std::vector<NodeId>{2, 3, kConstZero}));
  EXPECT_EQ(a.max_arity(), 3u);  // phantoms keep the arity fixed
}

TEST(AutomatonLine, ClipBoundaryShrinksNeighborhoods) {
  const auto a = Automaton::line(4, 1, Boundary::kClip, rules::majority(),
                                 Memory::kWith);
  EXPECT_EQ(to_vec(a.inputs(0)), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(to_vec(a.inputs(1)), (std::vector<NodeId>{0, 1, 2}));
}

TEST(AutomatonLine, RejectsTooSmallRing) {
  EXPECT_THROW(
      Automaton::line(4, 2, Boundary::kRing, rules::majority(), Memory::kWith),
      std::invalid_argument);
}

TEST(AutomatonLine, RejectsZeroSizeOrRadius) {
  EXPECT_THROW(
      Automaton::line(0, 1, Boundary::kRing, rules::majority(), Memory::kWith),
      std::invalid_argument);
  EXPECT_THROW(
      Automaton::line(5, 0, Boundary::kRing, rules::majority(), Memory::kWith),
      std::invalid_argument);
}

TEST(AutomatonValidation, FixedArityRuleMustMatch) {
  // Wolfram rules need arity 3: a memoryless radius-1 ring gives arity 2.
  EXPECT_THROW(Automaton::line(5, 1, Boundary::kRing, Rule{rules::wolfram(30)},
                               Memory::kWithout),
               std::invalid_argument);
  EXPECT_NO_THROW(Automaton::line(5, 1, Boundary::kRing,
                                  Rule{rules::wolfram(30)}, Memory::kWith));
}

TEST(AutomatonValidation, ClipBoundaryBreaksFixedArityRules) {
  EXPECT_THROW(Automaton::line(5, 1, Boundary::kClip, Rule{rules::wolfram(30)},
                               Memory::kWith),
               std::invalid_argument);
}

TEST(AutomatonPerNode, RulesPerNode) {
  const auto g = graph::ring(3);
  std::vector<Rule> rules{rules::majority(), rules::parity(),
                          Rule{rules::KOfNRule{1}}};
  const auto a = Automaton::from_graph_per_node(g, rules, Memory::kWith);
  EXPECT_FALSE(a.homogeneous());
  EXPECT_EQ(rules::describe(a.rule(1)), "parity");
}

TEST(AutomatonPerNode, WrongRuleCountThrows) {
  const auto g = graph::ring(3);
  std::vector<Rule> rules{rules::majority()};
  EXPECT_THROW(Automaton::from_graph_per_node(g, rules, Memory::kWith),
               std::invalid_argument);
}

TEST(EvalNode, MajorityOnRing) {
  const auto a = Automaton::line(4, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto c = Configuration::from_string("1100");
  // node 0: inputs (3,0,1) = (0,1,1) -> 1
  EXPECT_EQ(a.eval_node(0, c), 1);
  // node 2: inputs (1,2,3) = (1,0,0) -> 0
  EXPECT_EQ(a.eval_node(2, c), 0);
}

TEST(EvalNode, PhantomReadsZero) {
  const auto a = Automaton::line(3, 1, Boundary::kFixedZero, rules::majority(),
                                 Memory::kWith);
  const auto c = Configuration::from_string("110");
  // node 0: inputs (phantom, 0, 1) = (0, 1, 1) -> 1
  EXPECT_EQ(a.eval_node(0, c), 1);
  // node 2: inputs (1, 2, phantom) = (1, 0, 0) -> 0
  EXPECT_EQ(a.eval_node(2, c), 0);
}

TEST(EvalNode, WolframOrientation) {
  // Rule 2: only neighborhood (0,0,1) maps to 1 — a left-moving glider.
  const auto a = Automaton::line(5, 1, Boundary::kRing,
                                 Rule{rules::wolfram(2)}, Memory::kWith);
  const auto c = Configuration::from_string("00100");
  // node 1: (left,self,right) = (cell0, cell1, cell2) = (0,0,1) -> 1.
  EXPECT_EQ(a.eval_node(1, c), 1);
  // node 3: (cell2, cell3, cell4) = (1,0,0) -> 0.
  EXPECT_EQ(a.eval_node(3, c), 0);
}

TEST(EvalNode, HighDegreeNodeUsesHeapBuffer) {
  // Star with 70 leaves: center has arity 71 (> the 64-slot stack buffer).
  const auto g = graph::star(71);
  const auto a = Automaton::from_graph(g, Rule{rules::KOfNRule{35}},
                                       Memory::kWith);
  Configuration c(71);
  for (std::size_t i = 1; i <= 40; ++i) c.set(i, 1);
  EXPECT_EQ(a.eval_node(0, c), 1);  // 40 >= 35
  Configuration d(71);
  for (std::size_t i = 1; i <= 30; ++i) d.set(i, 1);
  EXPECT_EQ(a.eval_node(0, d), 0);
}

TEST(Homogeneous, SharedRuleReportedForAllNodes) {
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  EXPECT_TRUE(a.homogeneous());
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(rules::describe(a.rule(v)), "majority(tie->0)");
  }
}

}  // namespace
}  // namespace tca::core
