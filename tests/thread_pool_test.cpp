// Edge-case, stress, and FAILURE-PATH coverage for core::ThreadPool
// (src/core/thread_pool.hpp): empty ranges, ranges smaller than the
// alignment unit, alignment larger than the range, pool size 1 vs
// hardware_concurrency, a repeated fork-join stress loop — plus the
// robustness paths (docs/robustness.md): chunk exceptions rethrown at the
// join barrier without deadlock, cooperative cancellation between chunks,
// and spawn-failure degradation to serial execution. The stress tests are
// what the TSan CI job exercises (ctest -L sanitizer under
// -DTCA_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"
#include "graph/builders.hpp"
#include "runtime/budget.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::core {
namespace {

TEST(ThreadPoolEdge, EmptyRangeNeverInvokesChunkFn) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, 64, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(17, 17, 1, [&](std::size_t, std::size_t) { ++calls; });
  // begin > end counts as empty, not as a wrapped range.
  pool.parallel_for(5, 3, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolEdge, RangeSmallerThanAlignRunsAsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for(0, 10, 64, [&](std::size_t b, std::size_t e) {
    ++chunks;
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 1) << "a sub-align range must not be split";
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolEdge, AlignLargerThanRangeWithOffsetBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(40);
  pool.parallel_for(8, 40, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i < 8 ? 0 : 1) << i;
  }
}

TEST(ThreadPoolEdge, ChunkBoundariesAreAlignMultiples) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(0, 300, 64, [&](std::size_t b, std::size_t e) {
    std::lock_guard lock(m);
    chunks.emplace_back(b, e);
  });
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b % 64, 0u) << "chunk start must be 64-aligned";
    EXPECT_TRUE(e % 64 == 0 || e == 300) << "chunk end " << e;
    covered += e - b;
  }
  EXPECT_EQ(covered, 300u);
}

TEST(ThreadPoolEdge, PoolSizeOneRunsEverythingOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<long> data(1000, 1);
  std::atomic<bool> foreign{false};
  pool.parallel_for(0, data.size(), 1, [&](std::size_t b, std::size_t e) {
    if (std::this_thread::get_id() != caller) foreign = true;
    for (std::size_t i = b; i < e; ++i) data[i] = static_cast<long>(i);
  });
  EXPECT_FALSE(foreign.load());
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0L), 999L * 1000 / 2);
}

TEST(ThreadPoolEdge, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), std::max(1u, std::thread::hardware_concurrency()));
  std::atomic<long> sum{0};
  pool.parallel_for(0, 4096, 64, [&](std::size_t b, std::size_t e) {
    long local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), 4095L * 4096 / 2);
}

TEST(ThreadPoolStress, RepeatedForkJoin) {
  // Many small fork-join rounds through one pool: the handoff protocol
  // (generation counter, pending count, both condition variables) gets
  // hammered; TSan checks the protocol, the sum checks exactly-once
  // execution.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(0, 256, 1, [&](std::size_t b, std::size_t e) {
      sum += static_cast<long>(e - b);
    });
  }
  EXPECT_EQ(sum.load(), 256L * kRounds);
}

TEST(ThreadPoolStress, RepeatedThreadedStepsMatchScalar) {
  // Fork-join stress through the real engine: many threaded steps on a
  // ring spanning several 64-cell words, checked against the scalar
  // engine every step.
  ThreadPool pool(4);
  const auto a = Automaton::from_graph(graph::ring(200), rules::majority(),
                                       Memory::kWith);
  Configuration current(a.size());
  for (std::size_t i = 0; i < current.size(); i += 3) current.set(i, 1);
  Configuration scalar(a.size()), threaded(a.size());
  for (int step = 0; step < 100; ++step) {
    step_synchronous(a, current, scalar);
    step_synchronous_threaded(a, current, threaded, pool);
    ASSERT_EQ(scalar, threaded) << "step " << step;
    current = scalar;
  }
}

TEST(ThreadPoolStress, ManyPoolsConstructedAndDestroyed) {
  // Construction/destruction is part of the protocol too (stopping_ flag
  // vs worker wakeup): churn pools of every small size.
  for (int iter = 0; iter < 50; ++iter) {
    for (unsigned threads = 1; threads <= 5; ++threads) {
      ThreadPool pool(threads);
      std::atomic<int> hits{0};
      pool.parallel_for(0, 64, 16, [&](std::size_t b, std::size_t e) {
        hits += static_cast<int>(e - b);
      });
      ASSERT_EQ(hits.load(), 64);
    }
  }
}

TEST(ThreadPoolFailure, ChunkExceptionRethrownAtJoinWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  const auto boom = [&](std::size_t b, std::size_t) {
    ++ran;
    if (b == 0) throw std::runtime_error("chunk 0 failed");
  };
  EXPECT_THROW(pool.parallel_for(0, 4096, 1, boom), std::runtime_error);
  EXPECT_GE(ran.load(), 1);

  // The pool stays fully usable: the next run executes exactly once over
  // the whole range.
  std::atomic<long> sum{0};
  pool.parallel_for(0, 4096, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 4095L * 4096 / 2);
}

TEST(ThreadPoolFailure, EveryChunkThrowingStillRethrowsExactlyOnce) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        pool.parallel_for(0, 1000, 1,
                          [](std::size_t, std::size_t) {
                            throw std::logic_error("all chunks fail");
                          }),
        std::logic_error)
        << "round " << round;
  }
}

TEST(ThreadPoolFailure, ExceptionStopsRemainingChunks) {
  // After a chunk throws, other participants must stop picking up new
  // chunks (abandon flag), so on a big range most chunks never run.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(0, 1 << 20, 1,
                                 [&](std::size_t, std::size_t) {
                                   ++ran;
                                   throw std::runtime_error("first");
                                 }),
               std::runtime_error);
  // At most one in-flight chunk per participant before the flag is seen.
  EXPECT_LE(ran.load(), static_cast<int>(pool.size()));
}

TEST(ThreadPoolFailure, CancellationBetweenChunksLeavesBufferConsistent) {
  ThreadPool pool(4);
  runtime::RunBudget budget;
  budget.max_steps = 1;  // trips after the first charged chunk
  runtime::RunControl control(budget);

  std::vector<int> data(1 << 16, 0);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> completed;
  const auto reason = pool.parallel_for(
      0, data.size(), 64,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) data[i] = static_cast<int>(i) + 1;
        control.note_steps();
        const std::lock_guard lock(m);
        completed.emplace_back(b, e);
      },
      &control);
  EXPECT_EQ(reason, runtime::StopReason::kMaxSteps);

  // Buffer consistency: every element is either untouched or fully
  // written, matching exactly the chunks that completed — a chunk is never
  // half-applied by cancellation (it is only checked between chunks).
  std::vector<bool> expected(data.size(), false);
  for (const auto& [b, e] : completed) {
    for (std::size_t i = b; i < e; ++i) expected[i] = true;
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i] != 0, expected[i]) << "element " << i;
    if (data[i] != 0) ASSERT_EQ(data[i], static_cast<int>(i) + 1);
  }
  // Cancellation really pruned work: nowhere near the full range ran.
  EXPECT_LT(completed.size() * 64, data.size());
}

TEST(ThreadPoolFailure, PreCancelledControlRunsNoChunks) {
  ThreadPool pool(4);
  runtime::CancelToken token;
  token.cancel();
  runtime::RunControl control(runtime::RunBudget::unlimited(), token);
  std::atomic<int> ran{0};
  const auto reason = pool.parallel_for(
      0, 4096, 1, [&](std::size_t, std::size_t) { ++ran; }, &control);
  EXPECT_EQ(reason, runtime::StopReason::kCancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolFailure, InjectedChunkFaultSurfacesAsInjectedFaultError) {
  ThreadPool pool(2);
  runtime::ScopedFaultPlan plan({.chunk_exception_at = 1});
  EXPECT_THROW(
      pool.parallel_for(0, 1024, 1, [](std::size_t, std::size_t) {}),
      tca::InjectedFaultError);
  // Plan consumed: the next run is clean.
  std::atomic<int> hits{0};
  pool.parallel_for(0, 1024, 1, [&](std::size_t b, std::size_t e) {
    hits += static_cast<int>(e - b);
  });
  EXPECT_EQ(hits.load(), 1024);
}

TEST(ThreadPoolFailure, SpawnFailureDegradesToCallerOnlyExecution) {
  runtime::ScopedFaultPlan plan({.fail_thread_spawn = true});
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 1u) << "all spawns failed: caller-only pool";
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> foreign{false};
  std::atomic<long> sum{0};
  pool.parallel_for(0, 1000, 1, [&](std::size_t b, std::size_t e) {
    if (std::this_thread::get_id() != caller) foreign = true;
    for (std::size_t i = b; i < e; ++i) sum += static_cast<long>(i);
  });
  EXPECT_FALSE(foreign.load());
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

// Regression tests for the lock-discipline rework (docs/static-analysis.md):
// the per-run descriptor is snapshotted under the pool mutex by every
// participant, and the first-error latch lives entirely under its own
// error mutex. These pin the observable contracts that rework protects.

// Back-to-back runs with different ranges and chunk functions: a stale
// run descriptor (the bug class the GUARDED_BY annotations exclude) would
// re-run an old range or an old function and break the exactly-once count.
TEST(ThreadPoolDiscipline, BackToBackRunsNeverLeakTheirPredecessors) {
  ThreadPool pool(4);
  for (int round = 1; round <= 64; ++round) {
    const auto n = static_cast<std::size_t>(round * 7 + 1);
    std::vector<std::atomic<int>> hits(n);
    const int stamp = round;
    pool.parallel_for(0, n, 1, [&, stamp](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(stamp);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), stamp) << "round " << round << " index " << i;
    }
  }
}

// After a throwing run, the error latch must be consumed: the next clean
// run must not rethrow, and a later throwing run must surface its OWN
// exception, not a stale one.
TEST(ThreadPoolDiscipline, ErrorLatchIsConsumedAcrossRuns) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1024, 1,
                        [](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("first");
                        }),
      std::runtime_error);

  std::atomic<int> hits{0};
  pool.parallel_for(0, 128, 1, [&](std::size_t b, std::size_t e) {
    hits += static_cast<int>(e - b);
  });
  EXPECT_EQ(hits.load(), 128) << "clean run after a throwing run";

  try {
    pool.parallel_for(0, 1024, 1, [](std::size_t b, std::size_t) {
      if (b == 0) throw std::runtime_error("second");
    });
    FAIL() << "expected the second run's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "second") << "stale latched exception leaked";
  }
}

}  // namespace
}  // namespace tca::core
