// Unit tests for the thread pool and the multithreaded synchronous step
// (src/core/thread_pool.hpp, src/core/threaded.hpp).

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <vector>

#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"

namespace tca::core {
namespace {

TEST(ThreadPool, SizeCountsCallingThread) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  ThreadPool single(1);
  EXPECT_EQ(single.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, AlignmentRespected) {
  ThreadPool pool(3);
  std::vector<std::pair<std::size_t, std::size_t>> chunks(3);
  std::atomic<std::size_t> idx{0};
  pool.parallel_for(0, 100, 64, [&](std::size_t b, std::size_t e) {
    chunks[idx.fetch_add(1)] = {b, e};
  });
  for (std::size_t i = 0; i < idx.load(); ++i) {
    EXPECT_EQ(chunks[i].first % 64, 0u) << "chunk " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(0, 64, 1, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 6400u);
}

class ThreadedStepEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadedStepEquivalence, MatchesSingleThreadedStep) {
  const unsigned threads = GetParam();
  ThreadPool pool(threads);
  const std::size_t n = 500;
  const auto a = Automaton::line(n, 2, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  std::mt19937_64 rng(threads);
  for (int trial = 0; trial < 8; ++trial) {
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<State>(rng() & 1u));
    }
    Configuration expected(n), actual(n);
    step_synchronous(a, c, expected);
    step_synchronous_threaded(a, c, actual, pool);
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ThreadedStepEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(ThreadedAdvance, MultiStepTrajectoriesAgree) {
  ThreadPool pool(4);
  const std::size_t n = 300;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  Configuration c1(n), c2(n);
  for (std::size_t i = 0; i < n; i += 7) {
    c1.set(i, 1);
    c2.set(i, 1);
  }
  advance_synchronous(a, c1, 50);
  advance_synchronous_threaded(a, c2, 50, pool);
  EXPECT_EQ(c1, c2);
}

TEST(ThreadedStep, RejectsAliasedBuffers) {
  ThreadPool pool(2);
  const auto a = Automaton::line(64, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Configuration c(64);
  EXPECT_THROW(step_synchronous_threaded(a, c, c, pool),
               std::invalid_argument);
}

}  // namespace
}  // namespace tca::core
