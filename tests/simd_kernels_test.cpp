// Differential tests for the SIMD-widened batch kernels
// (core/batch_kernels_{scalar,avx2,avx512,neon}.cpp, core/batch_isa.hpp):
// every ISA tier available on this host must be lane-exact with the
// scalar reference engines — step_synchronous / apply_sequence, the
// 64-lane bit-slice BatchStepper, and the packed ring kernels — across
// rule families (threshold r=1/2, parity, outer-totalistic, minterms)
// and ring sizes straddling every word and lane boundary. Also covers the
// wide transposes (inverses, LSB-first convention, ragged zero-padding)
// and the per-tier counter contract. Tiers absent from this host are
// covered by the same loops on hosts that have them; the scalar tier is
// always present, so the suite never collapses to nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/batch_isa.hpp"
#include "core/batch_kernels.hpp"
#include "core/packed_kernels.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "phasespace/functional_graph.hpp"
#include "rules/rule.hpp"
#include "runtime/error.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::BatchIsa;
using core::BatchSlice;
using core::BatchStepper;
using core::Boundary;
using core::Configuration;
using core::Memory;
using phasespace::StateCode;

/// Every tier this host can actually run (always contains kScalar).
std::vector<BatchIsa> available_tiers() {
  std::vector<BatchIsa> tiers;
  for (unsigned i = 0; i < core::kNumBatchIsa; ++i) {
    const auto isa = static_cast<BatchIsa>(i);
    if (core::isa_available(isa)) tiers.push_back(isa);
  }
  return tiers;
}

/// Ring sizes straddling every plane-word and lane boundary the wide
/// layout cares about (64-cell config words; 64/256/512-lane blocks).
const std::vector<std::size_t>& boundary_sizes() {
  static const std::vector<std::size_t> sizes = {
      3, 63, 64, 65, 127, 128, 255, 256, 257, 511, 512, 513};
  return sizes;
}

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

struct RuleCase {
  const char* label;
  rules::Rule rule;
  std::uint32_t radius;
};

/// The ISSUE's rule families: threshold at radius 1 and 2, parity,
/// outer-totalistic, and a minterm (truth-table) rule.
std::vector<RuleCase> rule_cases(std::mt19937_64& rng) {
  std::vector<RuleCase> cases;
  cases.push_back({"threshold-r1", rules::majority(), 1});
  cases.push_back({"threshold-r2", rules::majority(), 2});
  cases.push_back({"parity", rules::parity(), 1});
  rules::OuterTotalisticRule outer;
  outer.self_index = 1;  // radius-1 ring with memory: (left, self, right)
  outer.born = {1, 0, 0};
  outer.survive = {0, 1, 1};
  cases.push_back({"outer-totalistic", outer, 1});
  rules::TableRule minterm;
  minterm.table.resize(8);
  for (auto& v : minterm.table) v = static_cast<rules::State>(rng() & 1u);
  cases.push_back({"minterm", minterm, 1});
  return cases;
}

TEST(TransposeWide, MatchesDefinitionAndRoundTrips) {
  std::mt19937_64 rng(31);
  for (const unsigned w : {1u, 4u, 8u}) {
    const unsigned dim = 64 * w;
    std::vector<std::uint64_t> orig(std::size_t{dim} * w);
    for (auto& word : orig) word = rng();
    std::vector<std::uint64_t> t = orig;
    core::transpose_wide(t.data(), w);
    for (unsigned r = 0; r < dim; ++r) {
      for (unsigned c = 0; c < dim; ++c) {
        const auto at = [&](const std::vector<std::uint64_t>& m, unsigned row,
                            unsigned col) {
          return (m[std::size_t{row} * w + col / 64] >> (col % 64)) & 1u;
        };
        ASSERT_EQ(at(orig, r, c), at(t, c, r))
            << "W=" << w << " entry (" << r << "," << c << ")";
      }
    }
    // Involution: transposing twice restores the input exactly.
    core::transpose_wide(t.data(), w);
    EXPECT_EQ(t, orig) << "W=" << w;
  }
}

TEST(TransposeWide, WidthOneIsTranspose64) {
  std::mt19937_64 rng(37);
  std::uint64_t a[64];
  std::uint64_t b[64];
  for (int i = 0; i < 64; ++i) a[i] = b[i] = rng();
  core::transpose64(a);
  core::transpose_wide(b, 1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], b[i]) << "row " << i;
}

TEST(WideBatchSlice, CodeRoundTripWithRaggedTopBlock) {
  std::mt19937_64 rng(41);
  for (const unsigned w : {1u, 4u, 8u}) {
    for (const std::size_t n : {1u, 3u, 20u, 63u, 64u}) {
      const std::uint64_t lo_mask =
          n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
      const unsigned count = 64 * w - 13;  // ragged top block
      std::vector<std::uint64_t> codes(count);
      for (auto& c : codes) c = rng() & lo_mask;
      BatchSlice slice(n, w);
      slice.load_codes(codes);
      EXPECT_EQ(slice.count(), count);
      EXPECT_EQ(slice.lane_words(), w);
      EXPECT_EQ(slice.capacity(), 64 * w);
      std::vector<std::uint64_t> out(count, ~std::uint64_t{0});
      slice.store_codes(out);
      EXPECT_EQ(out, codes) << "W=" << w << " n=" << n;
      // The ragged top block's unused lanes are zero-padded on load.
      const unsigned top = count / 64;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t word = slice.planes()[i * w + top];
        EXPECT_EQ(word >> (count % 64), 0u)
            << "W=" << w << " n=" << n << " plane " << i;
      }
    }
  }
}

TEST(WideBatchSlice, LsbFirstConventionIsFixed) {
  // Lane 0 lives in bit 0 of word 0 of every plane, for every width: the
  // scalar engine's layout is a strict prefix of the wide one.
  const std::size_t n = 8;
  const std::uint64_t code = 0b10110101;
  for (const unsigned w : {1u, 4u, 8u}) {
    BatchSlice slice(n, w);
    slice.load_codes(std::vector<std::uint64_t>{code});
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(slice.planes()[i * w] & 1u, (code >> i) & 1u)
          << "W=" << w << " plane " << i;
    }
  }
}

TEST(WideBatchSlice, AlignedRangeFastPathMatchesGeneralLoad) {
  for (const unsigned w : {1u, 4u, 8u}) {
    for (const std::uint64_t first :
         {std::uint64_t{0}, std::uint64_t{1} << 12}) {
      const std::size_t n = 20;
      const unsigned count = 64 * w - 7;  // ragged, 64-aligned base
      BatchSlice fast(n, w);
      fast.load_code_range(first, count);  // pattern path
      std::vector<std::uint64_t> codes(count);
      for (unsigned j = 0; j < count; ++j) codes[j] = first + j;
      BatchSlice general(n, w);
      general.load_codes(codes);
      // Compare through store_codes: the pattern path may fill garbage
      // lanes past count() that the general load zero-pads.
      std::vector<std::uint64_t> from_fast(count);
      std::vector<std::uint64_t> from_general(count);
      fast.store_codes(from_fast);
      general.store_codes(from_general);
      EXPECT_EQ(from_fast, from_general) << "W=" << w << " first=" << first;
    }
  }
}

TEST(WideBatchSlice, ConfigurationRoundTripPastWordBoundaries) {
  std::mt19937_64 rng(43);
  for (const unsigned w : {1u, 4u, 8u}) {
    for (const std::size_t n : boundary_sizes()) {
      const unsigned count = 64 * w - 3;  // ragged top block
      std::vector<Configuration> in;
      for (unsigned j = 0; j < count; ++j) in.push_back(random_config(n, rng));
      BatchSlice slice(n, w);
      slice.load_configurations(in);
      std::vector<Configuration> out(in.size(), Configuration(n));
      slice.store_configurations(out);
      for (std::size_t j = 0; j < in.size(); ++j) {
        ASSERT_EQ(out[j], in[j]) << "W=" << w << " n=" << n << " lane " << j;
      }
    }
  }
}

TEST(SimdKernels, EveryTierMatchesScalarAndBitsliceAcrossRulesAndSizes) {
  std::mt19937_64 rng(47);
  const auto tiers = available_tiers();
  for (const auto& rc : rule_cases(rng)) {
    for (const std::size_t n : boundary_sizes()) {
      if (n < 2 * rc.radius + 1) continue;  // ring needs distinct neighbors
      const auto a =
          Automaton::line(n, rc.radius, Boundary::kRing, rc.rule,
                          Memory::kWith);
      ASSERT_TRUE(core::batch_support(a).ok) << rc.label;
      // Shared inputs: enough lanes to fill the widest tier raggedly.
      std::vector<Configuration> in;
      for (unsigned j = 0; j < 8 * 64 - 5; ++j) {
        in.push_back(random_config(n, rng));
      }
      // Scalar reference.
      std::vector<Configuration> want;
      want.reserve(in.size());
      for (const auto& c : in) want.push_back(core::step_synchronous(a, c));
      // 64-lane bit-slice reference agrees with scalar.
      {
        BatchStepper ref(a);
        BatchSlice src(n);
        BatchSlice dst(n);
        for (std::size_t done = 0; done < in.size(); done += 64) {
          const std::size_t take = std::min<std::size_t>(64, in.size() - done);
          src.load_configurations(
              std::span<const Configuration>(in.data() + done, take));
          ref.step(src, dst);
          std::vector<Configuration> got(take, Configuration(n));
          dst.store_configurations(got);
          for (std::size_t j = 0; j < take; ++j) {
            ASSERT_EQ(got[j], want[done + j])
                << rc.label << " n=" << n << " bit-slice lane " << done + j;
          }
        }
      }
      // Every available tier agrees, lane-exactly.
      for (const auto isa : tiers) {
        const auto stepper = core::make_wide_stepper(a, isa);
        ASSERT_EQ(stepper->isa(), isa);
        const unsigned w = stepper->lane_words();
        BatchSlice src(n, w);
        BatchSlice dst(n, w);
        for (std::size_t done = 0; done < in.size(); done += 64 * w) {
          const std::size_t take =
              std::min<std::size_t>(64 * w, in.size() - done);
          src.load_configurations(
              std::span<const Configuration>(in.data() + done, take));
          stepper->step(src, dst);
          std::vector<Configuration> got(take, Configuration(n));
          dst.store_configurations(got);
          for (std::size_t j = 0; j < take; ++j) {
            ASSERT_EQ(got[j], want[done + j])
                << rc.label << " n=" << n << " tier " << core::isa_name(isa)
                << " lane " << done + j;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, EveryTierMatchesPackedRingKernels) {
  std::mt19937_64 rng(53);
  const auto tiers = available_tiers();
  struct PackedCase {
    const char* label;
    rules::Rule rule;
    void (*kernel)(const Configuration&, Configuration&, core::PackedScratch&);
  };
  const PackedCase cases[] = {
      {"majority3", rules::majority(), core::step_ring_majority3_packed},
      {"parity3", rules::parity(), core::step_ring_parity3_packed},
  };
  for (const auto& pc : cases) {
    for (const std::size_t n : {63u, 64u, 65u, 127u, 128u, 257u}) {
      const auto a =
          Automaton::line(n, 1, Boundary::kRing, pc.rule, Memory::kWith);
      std::vector<Configuration> in;
      for (unsigned j = 0; j < 100; ++j) in.push_back(random_config(n, rng));
      core::PackedScratch scratch(n);
      std::vector<Configuration> want;
      for (const auto& c : in) {
        Configuration out(n);
        pc.kernel(c, out, scratch);
        want.push_back(out);
      }
      for (const auto isa : tiers) {
        const auto stepper = core::make_wide_stepper(a, isa);
        const unsigned w = stepper->lane_words();
        BatchSlice src(n, w);
        BatchSlice dst(n, w);
        std::vector<Configuration> got(in.size(), Configuration(n));
        for (std::size_t done = 0; done < in.size(); done += 64 * w) {
          const std::size_t take =
              std::min<std::size_t>(64 * w, in.size() - done);
          src.load_configurations(
              std::span<const Configuration>(in.data() + done, take));
          stepper->step(src, dst);
          dst.store_configurations(
              std::span<Configuration>(got.data() + done, take));
        }
        for (std::size_t j = 0; j < in.size(); ++j) {
          ASSERT_EQ(got[j], want[j]) << pc.label << " n=" << n << " tier "
                                     << core::isa_name(isa) << " lane " << j;
        }
      }
    }
  }
}

TEST(SimdKernels, SingleCellAutomatonAcrossTiers) {
  // n = 1 has no ring; a lone node with memory sees only itself.
  const graph::Graph g(1, {});
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
  for (const auto isa : available_tiers()) {
    const auto stepper = core::make_wide_stepper(a, isa);
    const unsigned w = stepper->lane_words();
    BatchSlice src(1, w);
    BatchSlice dst(1, w);
    src.load_code_range(0, 2);
    stepper->step(src, dst);
    std::uint64_t out[2];
    dst.store_codes(out);
    EXPECT_EQ(out[0], 0u) << core::isa_name(isa);
    EXPECT_EQ(out[1], 1u) << core::isa_name(isa);
  }
}

TEST(SimdKernels, SweepMatchesApplySequenceAcrossTiers) {
  std::mt19937_64 rng(59);
  const auto tiers = available_tiers();
  for (const std::size_t n : {9u, 63u, 64u, 65u, 127u}) {
    std::vector<core::NodeId> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<core::NodeId>(i);
    }
    std::shuffle(order.begin(), order.end(), rng);
    for (const auto& rc : rule_cases(rng)) {
      if (n < 2 * rc.radius + 1) continue;
      const auto a =
          Automaton::line(n, rc.radius, Boundary::kRing, rc.rule,
                          Memory::kWith);
      for (const auto isa : tiers) {
        const auto stepper = core::make_wide_stepper(a, isa);
        const unsigned w = stepper->lane_words();
        const unsigned count = 64 * w - 9;  // ragged
        std::vector<Configuration> in;
        for (unsigned j = 0; j < count; ++j) {
          in.push_back(random_config(n, rng));
        }
        BatchSlice slice(n, w);
        slice.load_configurations(in);
        stepper->sweep(slice, order);
        std::vector<Configuration> got(in.size(), Configuration(n));
        slice.store_configurations(got);
        for (std::size_t j = 0; j < in.size(); ++j) {
          Configuration want = in[j];
          core::apply_sequence(a, want, order);
          ASSERT_EQ(got[j], want) << rc.label << " n=" << n << " tier "
                                  << core::isa_name(isa) << " lane " << j;
        }
      }
    }
  }
}

TEST(SimdKernels, CodeRangePipelineMatchesScalarAdapterAcrossTiers) {
  std::mt19937_64 rng(61);
  const auto tiers = available_tiers();
  for (const auto& rc : rule_cases(rng)) {
    const std::size_t n = 11;
    if (n < 2 * rc.radius + 1) continue;
    const auto a = Automaton::line(n, rc.radius, Boundary::kRing, rc.rule,
                                   Memory::kWith);
    const auto scalar = phasespace::synchronous_code_step(a);
    for (const auto isa : tiers) {
      const auto stepper = core::make_wide_stepper(a, isa);
      // Unaligned start, count spanning several wide batches, ragged end.
      const std::uint64_t first = 37;
      const std::size_t count = 3 * 64 * stepper->lane_words() + 21;
      std::vector<StateCode> got(count);
      stepper->step_code_range(first, count, got.data());
      for (std::size_t j = 0; j < count; ++j) {
        ASSERT_EQ(got[j], scalar(first + j))
            << rc.label << " tier " << core::isa_name(isa) << " code "
            << first + j;
      }
    }
  }
}

TEST(SimdKernels, SweepCodeRangeMatchesScalarAdapterAcrossTiers) {
  const std::size_t n = 8;
  const std::vector<core::NodeId> order = {5, 2, 7, 0, 1, 6, 3, 4};
  const auto a =
      Automaton::line(n, 1, Boundary::kRing, rules::parity(), Memory::kWith);
  const auto scalar = phasespace::sweep_code_step(a, order);
  for (const auto isa : available_tiers()) {
    const auto stepper = core::make_wide_stepper(a, isa);
    std::vector<StateCode> got(StateCode{1} << n);
    stepper->sweep_code_range(0, got.size(), order, got.data());
    for (StateCode s = 0; s < got.size(); ++s) {
      ASSERT_EQ(got[s], scalar(s)) << core::isa_name(isa) << " code " << s;
    }
  }
}

TEST(SimdKernels, PerTierStepCountersCharge) {
  const std::size_t n = 10;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  for (const auto isa : available_tiers()) {
    const auto stepper = core::make_wide_stepper(a, isa);
    const unsigned w = stepper->lane_words();
    const std::string tier_name =
        std::string("engine.batch.steps.") + core::isa_name(isa);
    obs::Counter& tier_steps = obs::counter(tier_name);
    obs::Counter& steps = obs::counter("engine.batch.steps");
    obs::Counter& lanes = obs::counter("engine.batch.lanes");
    const auto tier_before = tier_steps.value();
    const auto steps_before = steps.value();
    const auto lanes_before = lanes.value();
    const std::size_t count = StateCode{1} << n;
    std::vector<StateCode> got(count);
    stepper->step_code_range(0, count, got.data());
    const std::uint64_t batches = (count + 64 * w - 1) / (64 * w);
    EXPECT_EQ(tier_steps.value(), tier_before + batches)
        << core::isa_name(isa);
    EXPECT_EQ(steps.value(), steps_before + batches) << core::isa_name(isa);
    EXPECT_EQ(lanes.value(), lanes_before + count) << core::isa_name(isa);
  }
}

TEST(SimdKernels, MismatchedSliceWidthIsRejected) {
  const std::size_t n = 6;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto tiers = available_tiers();
  if (tiers.size() < 2) {
    GTEST_SKIP() << "only the scalar tier is available on this host";
  }
  const auto wide = core::make_wide_stepper(a, tiers.back());
  BatchSlice narrow_in(n, 1);
  BatchSlice narrow_out(n, 1);
  narrow_in.load_code_range(0, 2);
  EXPECT_THROW(wide->step(narrow_in, narrow_out), tca::InvalidArgumentError);
  BatchStepper bitslice(a);
  BatchSlice wide_in(n, wide->lane_words());
  BatchSlice wide_out(n, wide->lane_words());
  wide_in.load_code_range(0, 2);
  EXPECT_THROW(bitslice.step(wide_in, wide_out), tca::InvalidArgumentError);
}

TEST(SimdKernels, UnavailableTierFactoryThrows) {
  const std::size_t n = 6;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  for (unsigned i = 0; i < core::kNumBatchIsa; ++i) {
    const auto isa = static_cast<BatchIsa>(i);
    if (core::isa_available(isa)) continue;
    EXPECT_THROW(
        { const auto s = core::make_wide_stepper(a, isa); },
        tca::InvalidArgumentError)
        << core::isa_name(isa);
  }
}

}  // namespace
}  // namespace tca
