// Unit tests for the SDS layer (src/sds/sds.hpp).

#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "graph/builders.hpp"
#include "phasespace/classify.hpp"
#include "sds/sds.hpp"

namespace tca::sds {
namespace {

using core::Boundary;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

Automaton parity_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                         Memory::kWith);
}

TEST(Sds, ValidatesPermutation) {
  const auto a = majority_ring(4);
  EXPECT_THROW(Sds(a, {0, 1, 2}), std::invalid_argument);      // wrong size
  EXPECT_THROW(Sds(a, {0, 1, 2, 2}), std::invalid_argument);   // duplicate
  EXPECT_THROW(Sds(a, {0, 1, 2, 4}), std::invalid_argument);   // range
  EXPECT_NO_THROW(Sds(a, {3, 1, 0, 2}));
}

TEST(Sds, SweepMatchesSequentialEngine) {
  const auto a = majority_ring(8);
  const Sds sds(a, core::reversed_order(8));
  // 01010101 as a code: bits 1,3,5,7 set = 0xAA.
  const auto result = sds.sweep(0xAA);
  auto c = core::Configuration::from_bits(0xAA, 8);
  core::apply_sequence(a, c, core::reversed_order(8));
  EXPECT_EQ(result, c.to_bits());
}

TEST(Sds, PhaseSpaceOfMajoritySweepIsCycleFree) {
  const auto a = majority_ring(9);
  const Sds sds(a, core::identity_order(9));
  const auto cls = phasespace::classify(sds.phase_space());
  EXPECT_FALSE(cls.has_proper_cycle());
}

TEST(Invertibility, MajoritySweepIsNotInvertible) {
  const auto a = majority_ring(6);
  EXPECT_FALSE(is_invertible(Sds(a, core::identity_order(6))));
}

TEST(Invertibility, SingleNodeIdentityLikeSystemIsInvertible) {
  // A 1-of-1 rule on an edgeless graph: each node copies itself — the
  // sweep map is the identity, trivially a bijection.
  const graph::Graph g(3, std::vector<graph::Edge>{});
  const auto a = Automaton::from_graph(g, rules::Rule{rules::KOfNRule{1}},
                                       Memory::kWith);
  EXPECT_TRUE(is_invertible(Sds(a, core::identity_order(3))));
}

TEST(GardensOfEden, MajoritySweepHasGoEStates) {
  // [3]: sequential threshold systems generically have Gardens of Eden.
  const auto a = majority_ring(8);
  const auto goe = gardens_of_eden(Sds(a, core::identity_order(8)));
  EXPECT_GT(goe.count, 0u);
  EXPECT_LE(goe.examples.size(), 16u);
  // Examples really have no preimage: verify one against the whole space.
  const auto fg = Sds(a, core::identity_order(8)).phase_space();
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    EXPECT_NE(fg.succ(s), goe.examples.front());
  }
}

TEST(GardensOfEden, InvertibleSystemHasNone) {
  const graph::Graph g(3, std::vector<graph::Edge>{});
  const auto a = Automaton::from_graph(g, rules::Rule{rules::KOfNRule{1}},
                                       Memory::kWith);
  EXPECT_EQ(gardens_of_eden(Sds(a, core::identity_order(3))).count, 0u);
}

TEST(FunctionalEquivalence, SameOrderIsEquivalent) {
  const auto a = majority_ring(6);
  EXPECT_TRUE(functionally_equivalent(a, core::identity_order(6),
                                      core::identity_order(6)));
}

TEST(FunctionalEquivalence, NonAdjacentSwapIsEquivalent) {
  // Nodes 0 and 2 are not adjacent on the 6-ring: swapping them in the
  // order cannot change the sweep map.
  const auto a = majority_ring(6);
  const std::vector<NodeId> o1{0, 2, 1, 3, 4, 5};
  const std::vector<NodeId> o2{2, 0, 1, 3, 4, 5};
  EXPECT_TRUE(functionally_equivalent(a, o1, o2));
}

TEST(FunctionalEquivalence, AdjacentSwapChangesParitySweep) {
  // For parity rules, swapping ADJACENT nodes in the order genuinely
  // changes the map.
  const auto a = parity_ring(5);
  const std::vector<NodeId> o1{0, 1, 2, 3, 4};
  const std::vector<NodeId> o2{1, 0, 2, 3, 4};
  EXPECT_FALSE(functionally_equivalent(a, o1, o2));
}

TEST(Sds, ParitySweepIsInvertible) {
  // Each parity update x_v <- x_v XOR (sum of neighbors) is an involution
  // in x_v given the neighbors, so every sweep factor is a bijection and
  // the composed sweep map is too.
  const auto a = parity_ring(5);
  EXPECT_TRUE(is_invertible(Sds(a, core::identity_order(5))));
  EXPECT_EQ(gardens_of_eden(Sds(a, core::identity_order(5))).count, 0u);
}

}  // namespace
}  // namespace tca::sds
