// Correctness of the metrics registry (src/obs/metrics.hpp): exact
// concurrent sums, the documented closed-below/open-above histogram bucket
// semantics, the disabled fast path, and snapshot-while-incrementing.
// Registered with the `sanitizer` label: CI re-runs this binary under the
// tsan preset, which is the actual race-freedom proof.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tca::obs {
namespace {

// Metric handles are process-lifetime (the registry never evicts), so
// every test uses its own names to stay independent of run order.

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  Counter& c = counter("test.metrics.concurrent_sum");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, AddWithArgumentAccumulates) {
  Counter& c = counter("test.metrics.add_n");
  c.add(5);
  c.add(7);
  c.add(0);
  EXPECT_EQ(c.value(), 12u);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  Counter& a = counter("test.metrics.same_ref");
  Counter& b = counter("test.metrics.same_ref");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = gauge("test.metrics.same_gauge");
  Gauge& g2 = gauge("test.metrics.same_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = histogram("test.metrics.same_hist", {1, 2, 3});
  // Later lookups ignore the bounds argument.
  Histogram& h2 = histogram("test.metrics.same_hist", {9});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Metrics, DisabledMetricsRecordNothing) {
  Counter& c = counter("test.metrics.disabled");
  Gauge& g = gauge("test.metrics.disabled_gauge");
  Histogram& h = histogram("test.metrics.disabled_hist", {10});
  set_metrics_enabled(false);
  c.add();
  g.set(42);
  h.record(5);
  set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add();
  EXPECT_EQ(c.value(), 1u) << "re-enabling resumes recording";
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge& g = gauge("test.metrics.gauge");
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-100);
  EXPECT_EQ(g.value(), -100);
}

// The documented bucket contract: value v lands in the FIRST bucket whose
// upper bound is strictly greater than v — bucket i covers
// [bounds[i-1], bounds[i]), so a value equal to a bound lands ABOVE it,
// and v >= bounds.back() lands in the overflow bucket.
TEST(Metrics, HistogramBucketBoundaries) {
  Histogram& h = histogram("test.metrics.boundaries", {10, 100});
  h.record(0);     // [0, 10)
  h.record(9);     // [0, 10)
  h.record(10);    // [10, 100) — equal to a bound goes above
  h.record(99);    // [10, 100)
  h.record(100);   // overflow — equal to the last bound
  h.record(5000);  // overflow
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<std::uint64_t>{10, 100}));
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 9 + 10 + 99 + 100 + 5000);
}

TEST(Metrics, HistogramConcurrentRecordsSumExactly) {
  Histogram& h = histogram("test.metrics.concurrent_hist", {8, 64});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i % 100);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  // Each thread records 0..99 cyclically: per 100 records, 8 land in
  // [0,8), 56 in [8,64), 36 in the overflow bucket.
  EXPECT_EQ(snap.counts[0], kThreads * kPerThread / 100 * 8);
  EXPECT_EQ(snap.counts[1], kThreads * kPerThread / 100 * 56);
  EXPECT_EQ(snap.counts[2], kThreads * kPerThread / 100 * 36);
}

// Snapshots taken while another thread increments must be race-free (every
// cell is atomic) and monotone in the counter's case.
TEST(Metrics, SnapshotWhileIncrementingIsMonotone) {
  Counter& c = counter("test.metrics.snapshot_race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.add();
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const MetricsSnapshot snap = snapshot_metrics();
    const auto it = snap.counters.find("test.metrics.snapshot_race");
    ASSERT_NE(it, snap.counters.end());
    EXPECT_GE(it->second, last);
    last = it->second;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_LE(last, c.value());
}

TEST(Metrics, SnapshotContainsAllKinds) {
  counter("test.metrics.snap_counter").add(3);
  gauge("test.metrics.snap_gauge").set(-7);
  histogram("test.metrics.snap_hist", {50}).record(10);
  const MetricsSnapshot snap = snapshot_metrics();
  EXPECT_EQ(snap.counters.at("test.metrics.snap_counter"), 3u);
  EXPECT_EQ(snap.gauges.at("test.metrics.snap_gauge"), -7);
  const HistogramSnapshot& h = snap.histograms.at("test.metrics.snap_hist");
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 10u);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);
}

TEST(Metrics, DefaultLatencyBoundsAreAscending) {
  const std::vector<std::uint64_t>& bounds = default_latency_bounds_us();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace tca::obs
