// Sharded work-stealing phase-space builds (docs/performance.md):
// shard-boundary exactness against the serial table, determinism across
// worker counts and steal interleavings, the budget/truncation contract,
// NUMA topology probing, and disk-backed resume through the supervised
// wrapper.

#include "phasespace/sharded_build.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "phasespace/classify.hpp"
#include "runtime/budget.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {
namespace {

namespace fs = std::filesystem;

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing,
                               rules::majority(), core::Memory::kWith);
}

std::vector<StateCode> table_of(const SuccessorStore& store) {
  std::vector<StateCode> v(static_cast<std::size_t>(store.num_entries()));
  store.read_range(0, v.size(), v.data());
  return v;
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("tca-sharded-test-") + tag)) {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(NumaTopology, ProbeAlwaysYieldsAtLeastOneGroupWithCpus) {
  const NumaTopology topo = probe_numa_topology();
  ASSERT_GE(topo.groups.size(), 1u);
  EXPECT_GE(topo.total_cpus(), 1u);
  for (std::size_t g = 1; g < topo.groups.size(); ++g) {
    EXPECT_LT(topo.groups[g - 1].node, topo.groups[g].node)
        << "groups must be sorted by node id";
  }
}

// Satellite: shard sizes 1/63/64/65 — the degenerate single-entry shard
// and the sizes that straddle packed 64-bit words both ways — must all
// reproduce the serial table exactly on every backend.
TEST(ShardedBuild, ShardBoundaryExactness) {
  const auto a = majority_ring(10);
  const auto serial = FunctionalGraph::synchronous(a);
  for (const StateCode shard : {1ull, 63ull, 64ull, 65ull}) {
    for (const StoreKind kind : {StoreKind::kFlat, StoreKind::kPacked}) {
      SCOPED_TRACE("shard_states=" + std::to_string(shard) + " kind=" +
                   store_kind_name(kind));
      ShardedBuildOptions options;
      options.store = kind;
      options.shard_states = shard;
      options.workers = 3;
      runtime::RunControl control{runtime::RunBudget{}};
      const ShardedBuild out = build_synchronous_sharded(a, options, control);
      ASSERT_TRUE(out.complete());
      ASSERT_NE(out.store, nullptr);
      EXPECT_EQ(out.stats.shards_total,
                (serial.num_states() + shard - 1) / shard);
      EXPECT_EQ(out.stats.shards_claimed + out.stats.shards_stolen,
                out.stats.shards_total);
      EXPECT_EQ(table_of(*out.store), serial.successors());
    }
  }
}

// Satellite: the table is a pure function of (automaton, bits) — worker
// count, group layout, and steal interleaving must not matter.
TEST(ShardedBuild, DeterministicAcrossWorkerCounts) {
  const auto a = majority_ring(11);
  const auto serial = FunctionalGraph::synchronous(a);
  for (const unsigned workers : {1u, 2u, 3u, 7u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ShardedBuildOptions options;
    options.store = StoreKind::kPacked;
    options.shard_states = 128;
    options.workers = workers;
    runtime::RunControl control{runtime::RunBudget{}};
    const ShardedBuild out = build_synchronous_sharded(a, options, control);
    ASSERT_TRUE(out.complete());
    EXPECT_EQ(out.stats.workers, workers);
    EXPECT_EQ(table_of(*out.store), serial.successors());
  }
}

TEST(ShardedBuild, SweepMatchesSerialSweep) {
  const auto a = majority_ring(9);
  std::vector<core::NodeId> order{3, 1, 4, 0, 8, 2, 7, 5, 6};
  const auto serial = FunctionalGraph::sweep(a, order);
  ShardedBuildOptions options;
  options.store = StoreKind::kPacked;
  options.shard_states = 100;
  options.workers = 2;
  runtime::RunControl control{runtime::RunBudget{}};
  const ShardedBuild out = build_sweep_sharded(a, order, options, control);
  ASSERT_TRUE(out.complete());
  EXPECT_EQ(table_of(*out.store), serial.successors());
}

// Truncation contract: a tripped budget yields counts only (no graph, no
// store for RAM backends), exactly like build_synchronous_parallel.
TEST(ShardedBuild, BudgetTruncationReportsCountsOnly) {
  const auto a = majority_ring(10);
  runtime::RunBudget budget;
  budget.max_states = 300;
  runtime::RunControl control(budget);
  ShardedBuildOptions options;
  options.store = StoreKind::kPacked;
  options.shard_states = 64;
  options.workers = 2;
  const ShardedBuild out = build_synchronous_sharded(a, options, control);
  EXPECT_FALSE(out.complete());
  EXPECT_FALSE(out.build.graph.has_value());
  EXPECT_EQ(out.store, nullptr);
  EXPECT_EQ(out.build.status.stop_reason, runtime::StopReason::kMaxStates);
  EXPECT_LE(out.build.states_built, 1024u);
}

// Disk truncation finalizes the manifest, and a resume build skips every
// digest-valid shard already spilled — then ends bit-identical.
TEST(ShardedBuild, DiskTruncationThenResumeIsBitIdentical) {
  TempDir dir("resume");
  const auto a = majority_ring(11);
  const auto serial = FunctionalGraph::synchronous(a);

  ShardedBuildOptions options;
  options.store = StoreKind::kDisk;
  options.disk_dir = dir.path().string();
  options.shard_states = kPutAlign;
  options.workers = 1;

  // Pass 1: budget trips mid-build; some whole shards land on disk.
  {
    runtime::RunBudget budget;
    budget.max_states = 700;  // > 1 shard, < all 4
    runtime::RunControl control(budget);
    const ShardedBuild out = build_synchronous_sharded(a, options, control);
    ASSERT_FALSE(out.complete());
    ASSERT_NE(out.store, nullptr);  // partial disk store, for resume
  }
  // Pass 2: resume skips the spilled shards and completes the rest.
  options.resume = true;
  runtime::RunControl control{runtime::RunBudget{}};
  const ShardedBuild out = build_synchronous_sharded(a, options, control);
  ASSERT_TRUE(out.complete());
  EXPECT_GT(out.stats.resumed_states, 0u);
  EXPECT_EQ(table_of(*out.store), serial.successors());
}

// The supervised wrapper walks the ladder on an injected transient and
// still produces the exact table.
TEST(ShardedBuild, SupervisedAbsorbsInjectedTransient) {
  const auto a = majority_ring(9);
  const auto serial = FunctionalGraph::synchronous(a);
  ShardedBuildOptions options;
  options.store = StoreKind::kPacked;
  options.workers = 2;
  runtime::SupervisorOptions sup;
  sup.retry.max_attempts = 4;
  sup.retry.initial_backoff = std::chrono::milliseconds(1);
  sup.apply_backoff = false;
  runtime::ScopedFaultPlan plan({.retry_transient_at = 1});
  const SupervisedShardedBuild out =
      supervised_synchronous_sharded(a, options, sup);
  ASSERT_EQ(out.report.state, runtime::SupervisedState::kCompleted);
  EXPECT_EQ(out.report.attempts, 2u);
  ASSERT_TRUE(out.build.complete());
  EXPECT_EQ(table_of(*out.build.store), serial.successors());
}

// Spawn failure degrades to fewer workers instead of failing the build.
TEST(ShardedBuild, SpawnFailureDegradesGracefully) {
  const auto a = majority_ring(9);
  const auto serial = FunctionalGraph::synchronous(a);
  ShardedBuildOptions options;
  options.store = StoreKind::kFlat;
  options.workers = 4;
  runtime::ScopedFaultPlan plan({.fail_thread_spawn = true});
  runtime::RunControl control{runtime::RunBudget{}};
  const ShardedBuild out = build_synchronous_sharded(a, options, control);
  ASSERT_TRUE(out.complete());
  EXPECT_EQ(table_of(*out.store), serial.successors());
}

// Classification through a sharded-built store matches the serial path
// end to end (the surface the service tier uses).
TEST(ShardedBuild, ClassifyThroughPackedStoreMatchesSerial) {
  const auto a = majority_ring(10);
  const auto want = classify(FunctionalGraph::synchronous(a));
  ShardedBuildOptions options;
  options.store = StoreKind::kPacked;
  options.workers = 2;
  runtime::RunControl control{runtime::RunBudget{}};
  const ShardedBuild out = build_synchronous_sharded(a, options, control);
  ASSERT_TRUE(out.complete());
  const Classification got = classify(*out.build.graph);
  EXPECT_EQ(got.num_fixed_points, want.num_fixed_points);
  EXPECT_EQ(got.num_cycle_states, want.num_cycle_states);
  EXPECT_EQ(got.num_transient_states, want.num_transient_states);
  EXPECT_EQ(got.num_gardens_of_eden, want.num_gardens_of_eden);
  EXPECT_EQ(got.max_period(), want.max_period());
  EXPECT_EQ(got.max_transient, want.max_transient);
}

}  // namespace
}  // namespace tca::phasespace
