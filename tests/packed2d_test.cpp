// Cross-validation of the bit-sliced 2-D torus engine
// (src/core/packed2d.hpp) against the generic graph engine, plus
// Game-of-Life ground truths.

#include <gtest/gtest.h>

#include <random>

#include "core/automaton.hpp"
#include "core/packed2d.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<State>(rng() & 1u));
  }
  return c;
}

TEST(TorusGrid, GetSetAndConversionRoundTrip) {
  std::mt19937_64 rng(1);
  const std::size_t rows = 5, cols = 70;  // multi-word rows
  const auto config = random_config(rows * cols, rng);
  const auto grid = TorusGrid::from_configuration(config, rows, cols);
  EXPECT_EQ(grid.to_configuration(), config);
  EXPECT_EQ(grid.popcount(), config.popcount());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(grid.get(r, c), config.get(r * cols + c));
    }
  }
}

TEST(TorusGrid, Validation) {
  EXPECT_THROW(TorusGrid(0, 5), std::invalid_argument);
  EXPECT_THROW(TorusGrid::from_configuration(Configuration(10), 3, 4),
               std::invalid_argument);
}

class Packed2dEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Packed2dEquivalence, LifeMatchesGenericEngine) {
  const auto [rows, cols] = GetParam();
  const auto g = graph::grid2d(static_cast<graph::NodeId>(rows),
                               static_cast<graph::NodeId>(cols), true,
                               graph::GridNeighborhood::kMoore);
  const auto a = Automaton::from_graph(g, rules::Rule{rules::game_of_life()},
                                       Memory::kWith);
  std::mt19937_64 rng(rows * 1000 + cols);
  Packed2dScratch scratch(rows, cols);
  for (int trial = 0; trial < 8; ++trial) {
    const auto config = random_config(rows * cols, rng);
    const auto expected = step_synchronous(a, config);
    const auto grid = TorusGrid::from_configuration(config, rows, cols);
    TorusGrid out(rows, cols);
    step_life_packed(grid, out, scratch);
    EXPECT_EQ(out.to_configuration(), expected)
        << rows << "x" << cols << " trial " << trial;
  }
}

TEST_P(Packed2dEquivalence, ArbitraryBSRuleMatchesGenericEngine) {
  const auto [rows, cols] = GetParam();
  // HighLife (B36/S23) — distinguishes the generic B/S path from Life.
  const std::uint32_t born[] = {3, 6};
  const std::uint32_t survive[] = {2, 3};
  const auto rule = rules::life_like(born, survive, 8);
  const auto g = graph::grid2d(static_cast<graph::NodeId>(rows),
                               static_cast<graph::NodeId>(cols), true,
                               graph::GridNeighborhood::kMoore);
  const auto a = Automaton::from_graph(g, rules::Rule{rule}, Memory::kWith);
  std::mt19937_64 rng(rows + cols);
  Packed2dScratch scratch(rows, cols);
  for (int trial = 0; trial < 4; ++trial) {
    const auto config = random_config(rows * cols, rng);
    const auto expected = step_synchronous(a, config);
    const auto grid = TorusGrid::from_configuration(config, rows, cols);
    TorusGrid out(rows, cols);
    step_outer_totalistic_packed(rule, grid, out, scratch);
    EXPECT_EQ(out.to_configuration(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, Packed2dEquivalence,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(3, 3),
                      std::make_pair<std::size_t, std::size_t>(4, 7),
                      std::make_pair<std::size_t, std::size_t>(5, 63),
                      std::make_pair<std::size_t, std::size_t>(6, 64),
                      std::make_pair<std::size_t, std::size_t>(3, 65),
                      std::make_pair<std::size_t, std::size_t>(8, 128),
                      std::make_pair<std::size_t, std::size_t>(16, 130)));

TEST(Packed2d, GliderPeriodFourTranslation) {
  const std::size_t rows = 16, cols = 16;
  TorusGrid grid(rows, cols);
  grid.set(1, 2, 1);
  grid.set(2, 3, 1);
  grid.set(3, 1, 1);
  grid.set(3, 2, 1);
  grid.set(3, 3, 1);
  Packed2dScratch scratch(rows, cols);
  TorusGrid out(rows, cols);
  TorusGrid expect(rows, cols);
  // After 4 steps the glider translates by (+1, +1).
  expect.set(2, 3, 1);
  expect.set(3, 4, 1);
  expect.set(4, 2, 1);
  expect.set(4, 3, 1);
  expect.set(4, 4, 1);
  TorusGrid current = grid;
  for (int t = 0; t < 4; ++t) {
    step_life_packed(current, out, scratch);
    std::swap(current, out);
  }
  EXPECT_EQ(current, expect);
}

TEST(Packed2d, BlockAndBlinkerGroundTruths) {
  const std::size_t rows = 8, cols = 8;
  Packed2dScratch scratch(rows, cols);
  {
    TorusGrid block(rows, cols);
    block.set(2, 2, 1);
    block.set(2, 3, 1);
    block.set(3, 2, 1);
    block.set(3, 3, 1);
    TorusGrid out(rows, cols);
    step_life_packed(block, out, scratch);
    EXPECT_EQ(out, block);
  }
  {
    TorusGrid blinker(rows, cols);
    blinker.set(3, 2, 1);
    blinker.set(3, 3, 1);
    blinker.set(3, 4, 1);
    TorusGrid out(rows, cols), back(rows, cols);
    step_life_packed(blinker, out, scratch);
    EXPECT_NE(out, blinker);
    step_life_packed(out, back, scratch);
    EXPECT_EQ(back, blinker);
  }
}

TEST(Packed2d, Validation) {
  TorusGrid grid(4, 4), out(4, 4), small(3, 5);
  Packed2dScratch scratch(4, 4);
  EXPECT_THROW(step_life_packed(grid, small, scratch), std::invalid_argument);
  EXPECT_THROW(step_life_packed(grid, grid, scratch), std::invalid_argument);
  TorusGrid tiny(2, 4), tiny_out(2, 4);
  Packed2dScratch tiny_scratch(2, 4);
  EXPECT_THROW(step_life_packed(tiny, tiny_out, tiny_scratch),
               std::invalid_argument);
  // Non-Moore arity rejected.
  const std::uint32_t born[] = {1};
  const auto bad = rules::life_like(born, {}, 4);
  EXPECT_THROW(step_outer_totalistic_packed(bad, grid, out, scratch),
               std::invalid_argument);
}

}  // namespace
}  // namespace tca::core
