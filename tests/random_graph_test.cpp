// Unit tests for random graph builders plus property sweeps extending the
// paper's theorems to arbitrary (random) cellular spaces — the Section 4
// "arbitrary rather than only regular graphs" direction.

#include <gtest/gtest.h>

#include "analysis/energy.hpp"
#include "core/automaton.hpp"
#include "core/block_sequential.hpp"
#include "core/sequential.hpp"
#include "graph/builders.hpp"
#include "graph/properties.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::Configuration;
using core::Memory;

TEST(RandomGnp, DeterministicUnderSeed) {
  EXPECT_EQ(graph::random_gnp(20, 0.3, 7), graph::random_gnp(20, 0.3, 7));
  EXPECT_NE(graph::random_gnp(20, 0.3, 7), graph::random_gnp(20, 0.3, 8));
}

TEST(RandomGnp, ExtremesAreEmptyAndComplete) {
  EXPECT_EQ(graph::random_gnp(10, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(graph::random_gnp(10, 1.0, 1).num_edges(), 45u);
}

TEST(RandomGnp, EdgeCountNearExpectation) {
  const auto g = graph::random_gnp(100, 0.25, 42);
  const double expected = 0.25 * 100 * 99 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(RandomGnp, RejectsBadProbability) {
  EXPECT_THROW(graph::random_gnp(5, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(graph::random_gnp(5, 1.5, 1), std::invalid_argument);
}

TEST(RandomRegular, ProducesRegularSimpleGraphs) {
  for (const auto [n, d] : {std::pair<graph::NodeId, graph::NodeId>{10, 3},
                            {16, 4}, {9, 2}, {20, 5}}) {
    const auto g = graph::random_regular(n, d, n * 31 + d);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(graph::regular_degree(g), d) << "n=" << n << " d=" << d;
  }
}

TEST(RandomRegular, DeterministicUnderSeed) {
  EXPECT_EQ(graph::random_regular(12, 3, 5), graph::random_regular(12, 3, 5));
}

TEST(RandomRegular, ValidatesArguments) {
  EXPECT_THROW(graph::random_regular(5, 3, 1), std::invalid_argument);  // odd
  EXPECT_THROW(graph::random_regular(4, 4, 1), std::invalid_argument);  // d>=n
}

// ---- the paper's theorems on random cellular spaces ----

TEST(RandomSpaces, SequentialMajorityCycleFreeOnRandomGraphs) {
  // Theorem 1's mechanism (threshold network + sequential updates) is
  // graph-agnostic: the choice digraph is cycle-free on arbitrary random
  // graphs too.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = graph::random_gnp(10, 0.35, seed);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle())
        << "seed " << seed;
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto g = graph::random_regular(10, 3, seed);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle())
        << "regular seed " << seed;
  }
}

TEST(RandomSpaces, ParallelMajorityPeriodAtMostTwoOnRandomGraphs) {
  // Goles-Martinez holds for any symmetric network, not just lattices.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = graph::random_gnp(12, 0.3, seed * 11);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_LE(cls.max_period(), 2u) << "seed " << seed;
  }
}

TEST(RandomSpaces, EnergyCertificateHoldsOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto g = graph::random_gnp(9, 0.4, seed * 17);
    const auto net = analysis::ThresholdNetwork::majority(g, true);
    const auto a = net.automaton();
    for (std::uint64_t bits = 0; bits < 512; ++bits) {
      const auto c = Configuration::from_bits(bits, 9);
      const auto before = analysis::sequential_energy(net, c);
      for (graph::NodeId v = 0; v < 9; ++v) {
        auto d = c;
        if (core::update_node(a, d, v)) {
          EXPECT_LE(analysis::sequential_energy(net, d), before - 1);
        }
      }
    }
  }
}

// ---- even/odd (checkerboard) block scheme ----

TEST(EvenOdd, BlocksAreIndependentSetsOnEvenRings) {
  const auto g = graph::ring(10);
  const auto order = core::BlockOrder::even_odd(10);
  for (const auto& block : order.blocks()) {
    for (const auto u : block) {
      for (const auto v : block) {
        if (u != v) EXPECT_FALSE(g.has_edge(u, v));
      }
    }
  }
}

TEST(EvenOdd, EqualsEvensThenOddsSequentialOnEvenRing) {
  // Because each block is an independent set (radius-1, even n), the
  // block-parallel sweep equals the fully sequential evens-then-odds
  // sweep.
  const std::size_t n = 10;
  const auto a = Automaton::line(n, 1, core::Boundary::kRing,
                                 rules::majority(), Memory::kWith);
  std::vector<core::NodeId> seq_order;
  for (std::size_t v = 0; v < n; v += 2) {
    seq_order.push_back(static_cast<core::NodeId>(v));
  }
  for (std::size_t v = 1; v < n; v += 2) {
    seq_order.push_back(static_cast<core::NodeId>(v));
  }
  const auto block = core::BlockOrder::even_odd(n);
  for (std::uint64_t bits = 0; bits < 1024; bits += 7) {
    auto c1 = Configuration::from_bits(bits, n);
    auto c2 = c1;
    core::step_block_sequential(a, c1, block);
    core::apply_sequence(a, c2, seq_order);
    EXPECT_EQ(c1, c2) << bits;
  }
}

TEST(EvenOdd, CheckerboardSchemeIsCycleFreeForMajority) {
  // The even/odd sweep is a composition of single-node updates, so the
  // Lyapunov argument forbids cycles.
  const std::size_t n = 10;
  const auto a = Automaton::line(n, 1, core::Boundary::kRing,
                                 rules::majority(), Memory::kWith);
  const auto block = core::BlockOrder::even_odd(n);
  const phasespace::FunctionalGraph fg(
      static_cast<std::uint32_t>(n), [&](phasespace::StateCode s) {
        auto c = Configuration::from_bits(s, n);
        core::step_block_sequential(a, c, block);
        return c.to_bits();
      });
  EXPECT_FALSE(phasespace::classify(fg).has_proper_cycle());
}

TEST(EvenOdd, SingleNodeCase) {
  const auto order = core::BlockOrder::even_odd(1);
  EXPECT_EQ(order.blocks().size(), 1u);
}

}  // namespace
}  // namespace tca
