// SuccessorStore backends (docs/performance.md "successor storage
// hierarchy"): n-bit packed round-trips at the width boundaries, the
// shared packed byte format on disk, digest-gated resume, and the
// factory/validation surface. Shard-level parallel-write exactness lives
// in sharded_build_test.cpp; cross-backend agreement on real phase
// spaces is the store-backend-agree PBT oracle.

#include "phasespace/successor_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "runtime/error.hpp"

namespace tca::phasespace {
namespace {

namespace fs = std::filesystem;

/// Deterministic n-bit value pattern exercising 0, the all-ones mask,
/// and mixed bit patterns at every position.
std::vector<StateCode> boundary_pattern(std::uint32_t bits,
                                        std::size_t count) {
  const StateCode mask =
      bits >= 64 ? ~StateCode{0} : (StateCode{1} << bits) - 1;
  std::vector<StateCode> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0: v[i] = 0; break;
      case 1: v[i] = mask; break;  // 2^n - 1: every payload bit set
      case 2: v[i] = (0x9E3779B97F4A7C15ull * (i + 1)) & mask; break;
      default: v[i] = StateCode{1} << (i % bits); break;
    }
  }
  return v;
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("tca-store-test-") + tag)) {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// --- packed: n-bit boundary round-trips -------------------------------

TEST(PackedStore, RoundTripsBoundaryWidths) {
  // n=1 (minimum, 64 entries/word), n=26 (the flat cap), n=27 (past it —
  // only reachable through the packed backend). Capacity is kept small:
  // the bit-packing logic is identical at any entry count.
  for (const std::uint32_t bits : {1u, 26u, 27u}) {
    SCOPED_TRACE("bits=" + std::to_string(bits));
    constexpr std::size_t kEntries = 1031;  // prime: every word phase hit
    PackedStore store(bits, kEntries);
    EXPECT_EQ(store.kind(), StoreKind::kPacked);
    EXPECT_EQ(store.bits(), bits);
    EXPECT_EQ(store.num_entries(), kEntries);
    EXPECT_EQ(store.packed_bits(), std::uint64_t{kEntries} * bits);

    const std::vector<StateCode> want = boundary_pattern(bits, kEntries);
    store.put_range(0, kEntries, want.data());

    // Random access...
    for (std::size_t i = 0; i < kEntries; ++i) {
      ASSERT_EQ(store.get(i), want[i]) << "entry " << i;
    }
    // ...bulk decode (including an unaligned interior window)...
    std::vector<StateCode> got(kEntries, ~StateCode{0});
    store.read_range(0, kEntries, got.data());
    EXPECT_EQ(got, want);
    std::vector<StateCode> window(63, ~StateCode{0});
    store.read_range(517, 63, window.data());
    for (std::size_t i = 0; i < 63; ++i) {
      ASSERT_EQ(window[i], want[517 + i]) << "window entry " << i;
    }
    // ...and the streaming surface all censuses use.
    std::size_t streamed = 0;
    store.for_each_range(
        [&](StateCode first, std::size_t count, const StateCode* block) {
          for (std::size_t j = 0; j < count; ++j) {
            ASSERT_EQ(block[j], want[first + j]);
          }
          streamed += count;
        });
    EXPECT_EQ(streamed, kEntries);
  }
}

TEST(PackedStore, ExtremeValuesAtFirstAndLastEntry) {
  for (const std::uint32_t bits : {1u, 26u, 27u}) {
    SCOPED_TRACE("bits=" + std::to_string(bits));
    const StateCode mask = (StateCode{1} << bits) - 1;
    PackedStore store(bits, 257);
    std::vector<StateCode> v(257, 0);
    v.front() = mask;  // 2^n - 1 in the first slot
    v.back() = mask;   // and in the last (guard-word adjacency)
    store.put_range(0, v.size(), v.data());
    EXPECT_EQ(store.get(0), mask);
    EXPECT_EQ(store.get(256), mask);
    for (std::size_t i = 1; i < 256; ++i) ASSERT_EQ(store.get(i), 0u);
  }
}

TEST(PackedStore, DisjointUnalignedPutsMergeExactly) {
  // Split one table into ranges whose boundaries straddle packed words
  // (27 bits/entry: every boundary except multiples of 64 splits a
  // word). The CAS merge must preserve both sides.
  constexpr std::uint32_t kBits = 27;
  constexpr std::size_t kEntries = 513;
  const std::vector<StateCode> want = boundary_pattern(kBits, kEntries);
  PackedStore store(kBits, kEntries);
  std::size_t at = 0;
  for (const std::size_t piece : {1ul, 63ul, 64ul, 65ul, 320ul}) {
    store.put_range(at, piece, want.data() + at);
    at += piece;
  }
  ASSERT_EQ(at, kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    ASSERT_EQ(store.get(i), want[i]) << "entry " << i;
  }
}

TEST(PackedStore, RejectsOutOfRangeWrites) {
  PackedStore store(8, 100);
  std::vector<StateCode> v(8, 0);
  EXPECT_THROW(store.put_range(96, 8, v.data()), tca::StateError);
}

// --- flat --------------------------------------------------------------

TEST(FlatStore, WrapsExternallyBuiltTable) {
  std::vector<StateCode> table{3, 2, 1, 0};
  FlatStore store(2, std::move(table));
  EXPECT_EQ(store.kind(), StoreKind::kFlat);
  EXPECT_EQ(store.num_entries(), 4u);
  EXPECT_EQ(store.get(0), 3u);
  EXPECT_EQ(store.get(3), 0u);
  ASSERT_NE(store.flat_table(), nullptr);
  EXPECT_EQ(store.flat_table()->size(), 4u);
  // for_each_range on a flat store is zero-copy over the vector.
  store.for_each_range(
      [&](StateCode first, std::size_t count, const StateCode* block) {
        EXPECT_EQ(first, 0u);
        EXPECT_EQ(count, 4u);
        EXPECT_EQ(block, store.flat_table()->data());
      });
}

// --- disk --------------------------------------------------------------

TEST(DiskStore, SpillsAlignedExtentsAndReadsThemBack) {
  TempDir dir("basic");
  constexpr std::uint32_t kBits = 13;
  constexpr std::size_t kEntries = 3 * kPutAlign + 100;  // ragged tail
  const std::vector<StateCode> want = boundary_pattern(kBits, kEntries);

  DiskStore store(kBits, dir.path().string(), kEntries);
  for (std::size_t at = 0; at < kEntries; at += kPutAlign) {
    const std::size_t n = std::min<std::size_t>(kPutAlign, kEntries - at);
    store.put_range(at, n, want.data() + at);
  }
  EXPECT_TRUE(store.complete());
  EXPECT_GT(store.spilled_bytes(), 0u);
  store.finalize();

  std::vector<StateCode> got(kEntries, ~StateCode{0});
  store.read_range(0, kEntries, got.data());
  EXPECT_EQ(got, want);
  EXPECT_EQ(store.get(0), want[0]);
  EXPECT_EQ(store.get(kEntries - 1), want[kEntries - 1]);
}

TEST(DiskStore, RejectsUnalignedAndPostFinalizeWrites) {
  TempDir dir("align");
  DiskStore store(10, dir.path().string(), 2 * kPutAlign);
  std::vector<StateCode> v(kPutAlign, 0);
  // Misaligned first entry.
  EXPECT_THROW(store.put_range(7, kPutAlign, v.data()), tca::StateError);
  // Interior range with a ragged count (only the FINAL range may be).
  EXPECT_THROW(store.put_range(0, 100, v.data()), tca::StateError);
  store.put_range(0, kPutAlign, v.data());
  store.put_range(kPutAlign, kPutAlign, v.data());
  store.finalize();
  EXPECT_THROW(store.put_range(0, kPutAlign, v.data()), tca::StateError);
}

TEST(DiskStore, ResumeKeepsDigestValidExtentsOnly) {
  TempDir dir("resume");
  constexpr std::uint32_t kBits = 11;
  constexpr std::size_t kEntries = 4 * kPutAlign;
  const std::vector<StateCode> want = boundary_pattern(kBits, kEntries);
  {
    DiskStore store(kBits, dir.path().string(), kEntries);
    // Simulated crash mid-build: only 3 of 4 extents spilled, then
    // finalize (the sharded builder finalizes truncated disk builds for
    // exactly this resume path).
    for (std::size_t at = 0; at < 3 * kPutAlign; at += kPutAlign) {
      store.put_range(at, kPutAlign, want.data() + at);
    }
    store.finalize();
    EXPECT_FALSE(store.complete());
  }
  // Corrupt one byte inside the SECOND extent's packed bytes (a torn
  // pwrite / bit rot survivor).
  {
    const fs::path data = dir.path() / "succ.dat";
    std::fstream f(data, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    const std::uint64_t byte =
        (std::uint64_t{kPutAlign} * kBits) / 8 + 5;  // inside extent 2
    f.seekg(static_cast<std::streamoff>(byte));
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(byte));
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  DiskStore reopened(kBits, dir.path().string(), kEntries);
  const std::vector<DiskStore::Extent> kept = reopened.resume();
  // Extents 1 and 3 revalidate; the corrupted extent 2 is dropped.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].first, 0u);
  EXPECT_EQ(kept[1].first, 2 * kPutAlign);
  EXPECT_FALSE(reopened.complete());
  // Rebuilding exactly the dropped + missing ranges completes the store
  // with the original contents.
  reopened.put_range(kPutAlign, kPutAlign, want.data() + kPutAlign);
  reopened.put_range(3 * kPutAlign, kPutAlign, want.data() + 3 * kPutAlign);
  EXPECT_TRUE(reopened.complete());
  reopened.finalize();
  std::vector<StateCode> got(kEntries);
  reopened.read_range(0, kEntries, got.data());
  EXPECT_EQ(got, want);
}

TEST(DiskStore, ResumeSurvivesTruncatedDataFile) {
  TempDir dir("truncated");
  constexpr std::uint32_t kBits = 9;
  constexpr std::size_t kEntries = 2 * kPutAlign;
  const std::vector<StateCode> want = boundary_pattern(kBits, kEntries);
  {
    DiskStore store(kBits, dir.path().string(), kEntries);
    store.put_range(0, kPutAlign, want.data());
    store.put_range(kPutAlign, kPutAlign, want.data() + kPutAlign);
    store.finalize();
  }
  // SIGKILL-style torn state: the data file lost its tail but the
  // manifest still names both extents.
  fs::resize_file(dir.path() / "succ.dat",
                  (std::uint64_t{kPutAlign} * kBits) / 8 + 10);
  DiskStore reopened(kBits, dir.path().string(), kEntries);
  const auto kept = reopened.resume();
  // The torn second extent reads back short (zero-filled) and fails its
  // digest; only the intact first extent survives.
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].first, 0u);
  EXPECT_EQ(kept[0].count, kPutAlign);
}

TEST(DiskStore, ResumeOnEmptyDirectoryIsEmpty) {
  TempDir dir("empty");
  DiskStore store(8, dir.path().string(), kPutAlign);
  EXPECT_TRUE(store.resume().empty());
  EXPECT_FALSE(store.complete());
}

// --- factory / caps ----------------------------------------------------

TEST(MakeStore, EnforcesPerBackendCaps) {
  EXPECT_THROW((void)make_store(StoreKind::kFlat, 27),
               tca::InvalidArgumentError);
  EXPECT_THROW((void)make_store(StoreKind::kPacked, 30),
               tca::InvalidArgumentError);
  EXPECT_THROW((void)make_store(StoreKind::kDisk, 33, "/tmp/x"),
               tca::InvalidArgumentError);
  EXPECT_THROW((void)make_store(StoreKind::kDisk, 20),
               tca::InvalidArgumentError);  // no directory
  EXPECT_EQ(max_explicit_bits(StoreKind::kFlat), 26u);
  EXPECT_EQ(max_explicit_bits(StoreKind::kPacked), 29u);
  EXPECT_EQ(max_explicit_bits(StoreKind::kDisk), 32u);
}

TEST(MakeStore, BuildsEachBackend) {
  TempDir dir("factory");
  const auto flat = make_store(StoreKind::kFlat, 4);
  EXPECT_EQ(flat->kind(), StoreKind::kFlat);
  EXPECT_EQ(flat->num_entries(), 16u);
  const auto packed = make_store(StoreKind::kPacked, 4);
  EXPECT_EQ(packed->kind(), StoreKind::kPacked);
  const auto disk = make_store(StoreKind::kDisk, 4, dir.path().string());
  EXPECT_EQ(disk->kind(), StoreKind::kDisk);
  EXPECT_EQ(std::string(store_kind_name(StoreKind::kFlat)), "flat");
  EXPECT_EQ(std::string(store_kind_name(StoreKind::kPacked)), "packed");
  EXPECT_EQ(std::string(store_kind_name(StoreKind::kDisk)), "disk");
}

}  // namespace
}  // namespace tca::phasespace
