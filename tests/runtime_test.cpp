// Unit tests for the fault-tolerant runtime primitives
// (docs/robustness.md): RunBudget/RunControl accounting and latching,
// CancelToken propagation, the tca::Error hierarchy, and the versioned
// checksummed checkpoint format including its corruption/version failure
// modes.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>

#include "runtime/budget.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/error.hpp"

namespace tca::runtime {
namespace {

using tca::ErrorCode;

// ---------------------------------------------------------------- budgets

TEST(RunControl, UnlimitedNeverStops) {
  RunControl control;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(control.note_states(), StopReason::kNone);
    EXPECT_EQ(control.note_steps(), StopReason::kNone);
    EXPECT_EQ(control.note_bytes(1 << 20), StopReason::kNone);
  }
  EXPECT_FALSE(control.should_stop());
  EXPECT_FALSE(control.status().truncated());
}

TEST(RunControl, MaxStatesTripsAtExactCount) {
  RunBudget budget;
  budget.max_states = 10;
  RunControl control(budget);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(control.note_states(), StopReason::kNone) << "visit " << i;
  }
  EXPECT_EQ(control.note_states(), StopReason::kMaxStates);
  EXPECT_TRUE(control.should_stop());
  EXPECT_EQ(control.status().stop_reason, StopReason::kMaxStates);
  EXPECT_EQ(control.status().states, 11u);  // the tripping visit counts
}

TEST(RunControl, FirstTrippedReasonIsLatched) {
  RunBudget budget;
  budget.max_steps = 1;
  budget.max_states = 1;
  RunControl control(budget);
  EXPECT_EQ(control.note_steps(2), StopReason::kMaxSteps);
  // A later states trip reports the latched first reason.
  EXPECT_EQ(control.note_states(5), StopReason::kMaxSteps);
  EXPECT_EQ(control.status().stop_reason, StopReason::kMaxSteps);
}

TEST(RunControl, BulkNotesChargeTheWholeIncrement) {
  RunBudget budget;
  budget.max_bytes = 100;
  RunControl control(budget);
  EXPECT_EQ(control.note_bytes(60), StopReason::kNone);
  EXPECT_EQ(control.note_bytes(60), StopReason::kMaxBytes);
  EXPECT_EQ(control.status().bytes, 120u);
}

TEST(RunControl, BytesWouldFitPredictsWithoutCharging) {
  RunBudget budget;
  budget.max_bytes = 100;
  RunControl control(budget);
  EXPECT_TRUE(control.bytes_would_fit(100));
  EXPECT_FALSE(control.bytes_would_fit(101));
  EXPECT_EQ(control.status().bytes, 0u);
  EXPECT_FALSE(control.should_stop());
}

TEST(RunControl, DeadlineTripsViaCheck) {
  RunBudget budget;
  budget.wall_limit = std::chrono::milliseconds(1);
  RunControl control(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(control.check(), StopReason::kDeadline);
  EXPECT_TRUE(control.status().truncated());
}

TEST(RunControl, CancelTokenObservedFromAnotherThread) {
  CancelToken token;
  RunControl control(RunBudget::unlimited(), token);
  EXPECT_FALSE(control.should_stop());
  std::thread canceller([token] { token.cancel(); });
  canceller.join();
  EXPECT_EQ(control.check(), StopReason::kCancelled);
  EXPECT_TRUE(control.should_stop());
}

TEST(RunControl, TokenCopiesShareTheFlag) {
  CancelToken a;
  const CancelToken b = a;
  a.cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(StopReasonNames, AreStable) {
  EXPECT_STREQ(stop_reason_name(StopReason::kNone), "none");
  EXPECT_STREQ(stop_reason_name(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(stop_reason_name(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(stop_reason_name(StopReason::kMaxSteps), "max-steps");
  EXPECT_STREQ(stop_reason_name(StopReason::kMaxStates), "max-states");
  EXPECT_STREQ(stop_reason_name(StopReason::kMaxBytes), "max-bytes");
}

// ----------------------------------------------------------------- errors

TEST(ErrorHierarchy, DerivesFromTheStandardTypesItReplaced) {
  // Pre-existing EXPECT_THROW(..., std::invalid_argument) sites must keep
  // passing after the sweep to the tca hierarchy.
  EXPECT_THROW(throw tca::InvalidArgumentError("x"), std::invalid_argument);
  EXPECT_THROW(throw tca::DomainTooLargeError("x"), std::invalid_argument);
  EXPECT_THROW(throw tca::StateError("x"), std::logic_error);
  EXPECT_THROW(throw tca::RuntimeError("x"), std::runtime_error);
  EXPECT_THROW(throw tca::CancelledError("x"), std::runtime_error);
  EXPECT_THROW(throw tca::InjectedFaultError("x"), std::runtime_error);
}

TEST(ErrorHierarchy, MixinCarriesTheCode) {
  try {
    throw tca::DomainTooLargeError("too big");
  } catch (const tca::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDomainTooLarge);
  }
  try {
    throw tca::InvalidArgumentError("mismatch", ErrorCode::kSizeMismatch);
  } catch (const tca::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSizeMismatch);
  }
  try {
    throw tca::CheckpointError("bad", ErrorCode::kCheckpointCorrupt);
  } catch (const tca::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt);
  }
}

TEST(ErrorHierarchy, CodeNamesAreStable) {
  EXPECT_STREQ(tca::error_code_name(ErrorCode::kInvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(tca::error_code_name(ErrorCode::kDomainTooLarge),
               "domain-too-large");
  EXPECT_STREQ(tca::error_code_name(ErrorCode::kCheckpointCorrupt),
               "checkpoint-corrupt");
  EXPECT_STREQ(tca::error_code_name(ErrorCode::kFaultInjected),
               "fault-injected");
}

TEST(RequireExplicitBits, PassesAtTheLimitThrowsPastIt) {
  EXPECT_NO_THROW(tca::require_explicit_bits(26, 26, "t"));
  EXPECT_THROW(tca::require_explicit_bits(27, 26, "t"),
               tca::DomainTooLargeError);
  try {
    tca::require_explicit_bits(30, 26, "my_context");
  } catch (const tca::DomainTooLargeError& e) {
    EXPECT_NE(std::string(e.what()).find("my_context"), std::string::npos);
    EXPECT_EQ(e.code(), ErrorCode::kDomainTooLarge);
  }
}

// ------------------------------------------------------------ checkpoints

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tca_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, RoundTripsArbitraryPayloads) {
  Checkpoint ck;
  ck.payload = "sweep=demo\ndone=a|PASS|detail with | pipe\n\x01\xff binary";
  save_checkpoint(path("rt.ckpt"), ck);
  const Checkpoint back = load_checkpoint(path("rt.ckpt"));
  EXPECT_EQ(back.version, kCheckpointVersion);
  EXPECT_EQ(back.payload, ck.payload);
  // The atomic tmp+rename write leaves no temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path("rt.ckpt") + ".tmp"));
}

TEST_F(CheckpointTest, EmptyPayloadRoundTrips) {
  save_checkpoint(path("empty.ckpt"), Checkpoint{});
  EXPECT_EQ(load_checkpoint(path("empty.ckpt")).payload, "");
}

TEST_F(CheckpointTest, FlippedPayloadByteFailsTheChecksum) {
  Checkpoint ck;
  ck.payload = "sweep=demo\ndone=a|PASS|x\n";
  save_checkpoint(path("c.ckpt"), ck);
  std::string raw;
  {
    std::ifstream in(path("c.ckpt"), std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in), {});
  }
  raw[raw.size() - 3] ^= 0x20;
  {
    std::ofstream out(path("c.ckpt"), std::ios::binary | std::ios::trunc);
    out << raw;
  }
  try {
    (void)load_checkpoint(path("c.ckpt"));
    FAIL() << "corrupt checkpoint loaded";
  } catch (const tca::CheckpointError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt);
  }
}

TEST_F(CheckpointTest, TruncatedFileHasDistinctCode) {
  Checkpoint ck;
  ck.payload = std::string(1000, 'x');
  save_checkpoint(path("t.ckpt"), ck);
  std::string raw;
  {
    std::ifstream in(path("t.ckpt"), std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path("t.ckpt"), std::ios::binary | std::ios::trunc);
    out << raw.substr(0, raw.size() / 2);
  }
  try {
    (void)load_checkpoint(path("t.ckpt"));
    FAIL() << "truncated checkpoint loaded";
  } catch (const tca::CheckpointError& e) {
    // Truncation is its own failure mode, distinct from payload
    // corruption (tests/checkpoint_corruption_test.cpp has the full
    // damage matrix).
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointTruncated);
  }
}

TEST_F(CheckpointTest, WrongMagicIsCorrupt) {
  {
    std::ofstream out(path("m.ckpt"), std::ios::binary);
    out << "NOT-A-CHECKPOINT\n";
  }
  try {
    (void)load_checkpoint(path("m.ckpt"));
    FAIL() << "bogus file loaded";
  } catch (const tca::CheckpointError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt);
  }
}

TEST_F(CheckpointTest, FutureVersionIsRejectedAsVersionError) {
  save_checkpoint(path("v.ckpt"), Checkpoint{});
  std::string raw;
  {
    std::ifstream in(path("v.ckpt"), std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string magic = "TCA-CKPT v1";
  raw.replace(raw.find(magic), magic.size(), "TCA-CKPT v9");
  {
    std::ofstream out(path("v.ckpt"), std::ios::binary | std::ios::trunc);
    out << raw;
  }
  try {
    (void)load_checkpoint(path("v.ckpt"));
    FAIL() << "future-version checkpoint loaded";
  } catch (const tca::CheckpointError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointVersion);
  }
}

TEST_F(CheckpointTest, TryLoadReturnsNulloptInsteadOfThrowing) {
  EXPECT_FALSE(try_load_checkpoint(path("missing.ckpt")).has_value());
  {
    std::ofstream out(path("junk.ckpt"), std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(try_load_checkpoint(path("junk.ckpt")).has_value());
  Checkpoint ck;
  ck.payload = "ok";
  save_checkpoint(path("good.ckpt"), ck);
  const auto loaded = try_load_checkpoint(path("good.ckpt"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "ok");
}

TEST_F(CheckpointTest, SaveIntoMissingDirectoryThrowsIoError) {
  try {
    save_checkpoint(path("no/such/dir/x.ckpt"), Checkpoint{});
    FAIL() << "save into a missing directory succeeded";
  } catch (const tca::CheckpointError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace tca::runtime
