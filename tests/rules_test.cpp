// Unit tests for local rule evaluation (src/rules/rule.hpp).

#include <gtest/gtest.h>

#include <vector>

#include "rules/rule.hpp"

namespace tca::rules {
namespace {

State run(const Rule& r, std::vector<State> in) { return eval(r, in); }

TEST(MajorityRule, OddArityMajority) {
  const Rule r = majority();
  EXPECT_EQ(run(r, {0, 0, 0}), 0);
  EXPECT_EQ(run(r, {1, 0, 0}), 0);
  EXPECT_EQ(run(r, {1, 1, 0}), 1);
  EXPECT_EQ(run(r, {1, 1, 1}), 1);
  EXPECT_EQ(run(r, {1, 0, 1, 0, 1}), 1);
  EXPECT_EQ(run(r, {1, 0, 1, 0, 0}), 0);
}

TEST(MajorityRule, TieBreaking) {
  const Rule to_zero = MajorityRule{MajorityTie::kZero};
  const Rule to_one = MajorityRule{MajorityTie::kOne};
  EXPECT_EQ(run(to_zero, {1, 0, 1, 0}), 0);
  EXPECT_EQ(run(to_one, {1, 0, 1, 0}), 1);
  // No tie: both agree.
  EXPECT_EQ(run(to_zero, {1, 1, 1, 0}), 1);
  EXPECT_EQ(run(to_one, {1, 1, 1, 0}), 1);
}

TEST(KOfNRule, ThresholdSemantics) {
  EXPECT_EQ(run(KOfNRule{2}, {1, 0, 0}), 0);
  EXPECT_EQ(run(KOfNRule{2}, {1, 1, 0}), 1);
  EXPECT_EQ(run(KOfNRule{1}, {0, 0, 0, 0}), 0);
  EXPECT_EQ(run(KOfNRule{1}, {0, 0, 0, 1}), 1);
}

TEST(KOfNRule, DegenerateThresholds) {
  EXPECT_EQ(run(KOfNRule{0}, {0, 0}), 1);  // constant 1
  EXPECT_EQ(run(KOfNRule{5}, {1, 1, 1}), 0);  // k > arity: constant 0
}

TEST(KOfNRule, MajorityShorthandMatchesMajorityRule) {
  const Rule k = majority_k_of(5);
  const Rule m = majority();
  for (std::uint32_t bits = 0; bits < 32; ++bits) {
    std::vector<State> in(5);
    for (std::uint32_t b = 0; b < 5; ++b) {
      in[b] = static_cast<State>((bits >> b) & 1u);
    }
    EXPECT_EQ(eval(k, in), eval(m, in)) << "bits=" << bits;
  }
}

TEST(KOfNRule, MajorityKOfRejectsEvenArity) {
  EXPECT_THROW(majority_k_of(4), std::invalid_argument);
}

TEST(SymmetricRule, AcceptVectorSemantics) {
  // Arity 3, accept exactly one or three ones (parity).
  const SymmetricRule r{{0, 1, 0, 1}};
  EXPECT_EQ(run(Rule{r}, {0, 0, 0}), 0);
  EXPECT_EQ(run(Rule{r}, {1, 0, 0}), 1);
  EXPECT_EQ(run(Rule{r}, {1, 1, 0}), 0);
  EXPECT_EQ(run(Rule{r}, {1, 1, 1}), 1);
}

TEST(SymmetricRule, WrongAritySizeThrows) {
  const SymmetricRule r{{0, 1}};  // arity 1
  EXPECT_THROW(run(Rule{r}, {1, 0}), std::invalid_argument);
}

TEST(ParityRule, XorOfAllInputs) {
  EXPECT_EQ(run(parity(), {0, 0}), 0);
  EXPECT_EQ(run(parity(), {1, 0}), 1);
  EXPECT_EQ(run(parity(), {1, 1}), 0);
  EXPECT_EQ(run(parity(), {1, 1, 1}), 1);
}

TEST(TableRule, FirstInputIsMostSignificant) {
  // Table for f(a, b) = a (projection to the first input).
  const TableRule r{{0, 0, 1, 1}};
  EXPECT_EQ(run(Rule{r}, {0, 0}), 0);
  EXPECT_EQ(run(Rule{r}, {0, 1}), 0);
  EXPECT_EQ(run(Rule{r}, {1, 0}), 1);
  EXPECT_EQ(run(Rule{r}, {1, 1}), 1);
}

TEST(TableRule, WrongAritySizeThrows) {
  const TableRule r{{0, 1}};  // arity 1
  EXPECT_THROW(run(Rule{r}, {1, 0}), std::invalid_argument);
}

TEST(WolframRule, Rule110Lookups) {
  // Rule 110 truth table, neighborhoods (l, s, r) from 111 down to 000:
  // 0 1 1 0 1 1 1 0.
  const TableRule r = wolfram(110);
  const auto f = [&](State l, State s, State right) {
    return eval(r, std::vector<State>{l, s, right});
  };
  EXPECT_EQ(f(1, 1, 1), 0);
  EXPECT_EQ(f(1, 1, 0), 1);
  EXPECT_EQ(f(1, 0, 1), 1);
  EXPECT_EQ(f(1, 0, 0), 0);
  EXPECT_EQ(f(0, 1, 1), 1);
  EXPECT_EQ(f(0, 1, 0), 1);
  EXPECT_EQ(f(0, 0, 1), 1);
  EXPECT_EQ(f(0, 0, 0), 0);
}

TEST(WolframRule, Rule150IsParity) {
  const TableRule r = wolfram(150);
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    std::vector<State> in{static_cast<State>((bits >> 2) & 1u),
                          static_cast<State>((bits >> 1) & 1u),
                          static_cast<State>(bits & 1u)};
    EXPECT_EQ(eval(Rule{r}, in), eval(parity(), in)) << "bits=" << bits;
  }
}

TEST(WolframRule, Rule232IsMajority) {
  const TableRule r = wolfram(232);
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    std::vector<State> in{static_cast<State>((bits >> 2) & 1u),
                          static_cast<State>((bits >> 1) & 1u),
                          static_cast<State>(bits & 1u)};
    EXPECT_EQ(eval(Rule{r}, in), eval(majority(), in)) << "bits=" << bits;
  }
}

TEST(WolframRule, RejectsCodeAbove255) {
  EXPECT_THROW(wolfram(256), std::invalid_argument);
}

TEST(WeightedThresholdRule, WeightedSum) {
  const WeightedThresholdRule r{{2, -1, 1}, 2};
  EXPECT_EQ(run(Rule{r}, {1, 0, 0}), 1);  // 2 >= 2
  EXPECT_EQ(run(Rule{r}, {1, 1, 0}), 0);  // 1 < 2
  EXPECT_EQ(run(Rule{r}, {1, 1, 1}), 1);  // 2 >= 2
  EXPECT_EQ(run(Rule{r}, {0, 0, 1}), 0);  // 1 < 2
}

TEST(WeightedThresholdRule, WrongArityThrows) {
  const WeightedThresholdRule r{{1, 1}, 1};
  EXPECT_THROW(run(Rule{r}, {1, 1, 1}), std::invalid_argument);
}

TEST(RequiredArity, FixedVersusGeneric) {
  EXPECT_EQ(required_arity(majority()), 0u);
  EXPECT_EQ(required_arity(Rule{KOfNRule{3}}), 0u);
  EXPECT_EQ(required_arity(parity()), 0u);
  EXPECT_EQ(required_arity(Rule{SymmetricRule{{0, 1, 1}}}), 2u);
  EXPECT_EQ(required_arity(Rule{wolfram(30)}), 3u);
  EXPECT_EQ(required_arity(Rule{WeightedThresholdRule{{1, 1, 1, 1}, 2}}), 4u);
}

TEST(Describe, NamesAreStable) {
  EXPECT_EQ(describe(majority()), "majority(tie->0)");
  EXPECT_EQ(describe(Rule{KOfNRule{3}}), "3-of-n");
  EXPECT_EQ(describe(parity()), "parity");
  EXPECT_EQ(describe(Rule{SymmetricRule{{0, 1, 1}}}), "symmetric[011]");
}

TEST(CountOnes, CountsSetInputs) {
  const std::vector<State> in{1, 0, 1, 1, 0};
  EXPECT_EQ(count_ones(in), 3u);
  EXPECT_EQ(count_ones(std::vector<State>{}), 0u);
}

}  // namespace
}  // namespace tca::rules
