// Unit tests for the linear-CA algebra (src/analysis/linear_ca.hpp):
// algebraic predictions cross-validated against the engines, the preimage
// solver, and explicit phase spaces.

#include <gtest/gtest.h>

#include <random>

#include "analysis/linear_ca.hpp"
#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"

namespace tca::analysis {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

TEST(LinearCoefficients, DetectsLinearRules) {
  // Rule 90 = left XOR right; rule 150 = left XOR self XOR right.
  const auto c90 = linear_coefficients(rules::Rule{rules::wolfram(90)}, 3);
  ASSERT_TRUE(c90.has_value());
  EXPECT_EQ(*c90, (std::vector<rules::State>{1, 0, 1}));
  const auto c150 = linear_coefficients(rules::Rule{rules::wolfram(150)}, 3);
  ASSERT_TRUE(c150.has_value());
  EXPECT_EQ(*c150, (std::vector<rules::State>{1, 1, 1}));
  const auto cparity = linear_coefficients(rules::parity(), 5);
  ASSERT_TRUE(cparity.has_value());
  EXPECT_EQ(*cparity, (std::vector<rules::State>(5, 1)));
}

TEST(LinearCoefficients, RejectsNonlinearRules) {
  EXPECT_FALSE(linear_coefficients(rules::majority(), 3).has_value());
  EXPECT_FALSE(
      linear_coefficients(rules::Rule{rules::wolfram(110)}, 3).has_value());
  // Rule 105 = NOT(l ^ s ^ r): affine but with constant term 1.
  EXPECT_FALSE(
      linear_coefficients(rules::Rule{rules::wolfram(105)}, 3).has_value());
}

TEST(LinearRingCA, StepMatchesEngine) {
  for (const std::uint32_t code : {90u, 150u, 60u, 102u}) {
    const std::size_t n = 12;
    const auto a = Automaton::line(n, 1, Boundary::kRing,
                                   rules::Rule{rules::wolfram(code)},
                                   Memory::kWith);
    const auto linear =
        LinearRingCA::from_rule(rules::Rule{rules::wolfram(code)}, 1, n);
    std::mt19937_64 rng(code);
    for (int trial = 0; trial < 10; ++trial) {
      const auto x = Configuration::from_bits(rng() & 0xFFF, n);
      EXPECT_EQ(linear.step(x), core::step_synchronous(a, x))
          << "code " << code;
    }
  }
}

TEST(LinearRingCA, StepManyMatchesIteratedEngine) {
  const std::size_t n = 14;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto linear = LinearRingCA::from_rule(rules::parity(), 1, n);
  auto x = Configuration::from_bits(0b10110111001011 & ((1 << 14) - 1), n);
  auto iterated = x;
  core::advance_synchronous(a, iterated, 1000);
  EXPECT_EQ(linear.step_many(x, 1000), iterated);
}

TEST(LinearRingCA, FromRuleRejectsNonlinear) {
  EXPECT_THROW(LinearRingCA::from_rule(rules::majority(), 1, 8),
               std::invalid_argument);
}

TEST(LinearRingCA, ReversibilityByCirculantPolynomialGcd) {
  // The circulant of rule 90 is x + x^{n-1} ~ x(1 + x^{n-2}); its gcd with
  // x^n + 1 always contains 1 + x, so rule 90 is NEVER bijective on a
  // ring. Rule 150's polynomial 1 + x + x^2 divides x^3 + 1, so rule 150
  // is bijective exactly when 3 does not divide n.
  for (std::size_t n = 4; n <= 13; ++n) {
    const auto r90 =
        LinearRingCA::from_rule(rules::Rule{rules::wolfram(90)}, 1, n);
    EXPECT_FALSE(r90.is_reversible()) << n;
    const auto r150 =
        LinearRingCA::from_rule(rules::Rule{rules::wolfram(150)}, 1, n);
    EXPECT_EQ(r150.is_reversible(), n % 3 != 0) << n;
  }
}

TEST(LinearRingCA, ReversibilityAgreesWithPreimageSolver) {
  // Independent ground truth: bijective iff every state has exactly one
  // preimage.
  for (const std::uint32_t code : {90u, 150u}) {
    for (const std::size_t n : {7u, 9u, 10u}) {
      const auto linear =
          LinearRingCA::from_rule(rules::Rule{rules::wolfram(code)}, 1, n);
      const phasespace::RingPreimageSolver solver(
          rules::Rule{rules::wolfram(code)}, 1, Memory::kWith);
      bool all_unique = true;
      for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
        if (solver.count(Configuration::from_bits(bits, n)) != 1) {
          all_unique = false;
          break;
        }
      }
      EXPECT_EQ(linear.is_reversible(), all_unique)
          << "code " << code << " n " << n;
    }
  }
}

TEST(LinearRingCA, PreimageCountsMatchTransferMatrix) {
  // Algebra (2^nullity for reachable states, 0 for GoE) vs the de Bruijn
  // solver, for every target.
  for (const std::uint32_t code : {90u, 150u}) {
    const std::size_t n = 10;
    const auto linear =
        LinearRingCA::from_rule(rules::Rule{rules::wolfram(code)}, 1, n);
    const phasespace::RingPreimageSolver solver(
        rules::Rule{rules::wolfram(code)}, 1, Memory::kWith);
    const std::uint64_t expected = linear.preimages_per_reachable_state();
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
      const auto y = Configuration::from_bits(bits, n);
      const auto count = solver.count(y);
      EXPECT_TRUE(count == 0 || count == expected)
          << "code " << code << " y " << bits << " count " << count;
    }
  }
}

TEST(LinearRingCA, GardenOfEdenCountMatchesCensus) {
  for (const std::uint32_t code : {90u, 150u, 60u}) {
    const std::size_t n = 12;
    const auto linear =
        LinearRingCA::from_rule(rules::Rule{rules::wolfram(code)}, 1, n);
    const phasespace::RingPreimageSolver solver(
        rules::Rule{rules::wolfram(code)}, 1, Memory::kWith);
    EXPECT_EQ(linear.garden_of_eden_count(),
              phasespace::count_gardens_of_eden_ring(solver, n))
        << "code " << code;
  }
}

TEST(LinearRingCA, PreimageSolvesTheSystem) {
  const std::size_t n = 12;
  const auto linear = LinearRingCA::from_rule(rules::parity(), 1, n);
  std::mt19937_64 rng(7);
  int reachable = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto y = Configuration::from_bits(rng() & 0xFFF, n);
    const auto x = linear.preimage(y);
    if (x) {
      ++reachable;
      EXPECT_EQ(linear.step(*x), y);
    }
  }
  EXPECT_GT(reachable, 0);
}

TEST(LinearRingCA, RankPredictsExplicitImageSize) {
  // |image(F)| = 2^rank — checked against the explicit phase space.
  const std::size_t n = 10;
  const auto a = Automaton::line(n, 1, Boundary::kRing,
                                 rules::Rule{rules::wolfram(90)},
                                 Memory::kWith);
  const auto linear =
      LinearRingCA::from_rule(rules::Rule{rules::wolfram(90)}, 1, n);
  const auto fg = phasespace::FunctionalGraph::synchronous(a);
  std::vector<bool> in_image(fg.num_states(), false);
  for (phasespace::StateCode s = 0; s < fg.num_states(); ++s) {
    in_image[fg.succ(s)] = true;
  }
  std::uint64_t image = 0;
  for (const bool b : in_image) image += b ? 1 : 0;
  EXPECT_EQ(image, std::uint64_t{1} << linear.rank());
}

TEST(LinearRingCA, ValidatesArguments) {
  EXPECT_THROW(LinearRingCA({1, 0}, 8), std::invalid_argument);  // even len
  EXPECT_THROW(LinearRingCA({1, 1, 1}, 2), std::invalid_argument);  // small n
  const auto linear = LinearRingCA::from_rule(rules::parity(), 1, 8);
  EXPECT_THROW(linear.step(Configuration(7)), std::invalid_argument);
}

}  // namespace
}  // namespace tca::analysis
