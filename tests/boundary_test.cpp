// Property tests extending the paper's dichotomy to finite lines with
// fixed boundaries and to non-ring cellular spaces — the settings the
// paper waves at ("finite line graph", "2D grid", "hypercube") but only
// proves for rings.

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

TEST(FixedBoundary, SequentialMajorityCycleFreeOnLines) {
  // Phantom-zero boundaries are just threshold networks on path graphs
  // with extra constant-0 inputs; the Lyapunov argument is unaffected.
  for (const std::size_t n : {4u, 7u, 10u}) {
    for (const auto boundary : {Boundary::kFixedZero, Boundary::kClip}) {
      const auto a = Automaton::line(n, 1, boundary, rules::majority(),
                                     Memory::kWith);
      EXPECT_FALSE(
          phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle())
          << "n=" << n;
    }
  }
}

TEST(FixedBoundary, ParallelMajorityPeriodAtMostTwoOnLines) {
  for (const std::size_t n : {6u, 9u, 12u}) {
    for (const auto boundary : {Boundary::kFixedZero, Boundary::kClip}) {
      const auto a = Automaton::line(n, 1, boundary, rules::majority(),
                                     Memory::kWith);
      const auto cls =
          phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
      EXPECT_LE(cls.max_period(), 2u) << "n=" << n;
    }
  }
}

TEST(FixedBoundary, OpenLineHasNoBlinker) {
  // The alternating state is NOT a two-cycle on an open line: the
  // boundary cells see phantom zeros and break the symmetry.
  const std::size_t n = 8;
  const auto a = Automaton::line(n, 1, Boundary::kFixedZero, rules::majority(),
                                 Memory::kWith);
  Configuration alt(n);
  for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
  const auto orbit = core::find_orbit_synchronous(a, alt, 64);
  ASSERT_TRUE(orbit.has_value());
  EXPECT_EQ(orbit->period, 1u);  // decays to a fixed point instead
}

TEST(FixedBoundary, ClipAndPhantomCoincideAtRadiusOne) {
  // At radius 1 the two boundary conventions agree: majority of {x, y}
  // with tie -> 0 equals majority of (0, x, y). Verified over all states.
  const std::size_t n = 6;
  const auto clip = Automaton::line(n, 1, Boundary::kClip, rules::majority(),
                                    Memory::kWith);
  const auto phantom = Automaton::line(n, 1, Boundary::kFixedZero,
                                       rules::majority(), Memory::kWith);
  for (std::uint64_t bits = 0; bits < 64; ++bits) {
    const auto c = Configuration::from_bits(bits, n);
    EXPECT_EQ(core::step_synchronous(clip, c),
              core::step_synchronous(phantom, c))
        << bits;
  }
}

TEST(FixedBoundary, ClipAndPhantomDifferAtRadiusTwo) {
  // At radius 2 the edge cell has 3 inputs under clip (2-of-3 majority)
  // but 5 under phantom (3-of-5 with two constant zeros): the state
  // 110000... flips cell 0 differently.
  const std::size_t n = 8;
  const auto clip = Automaton::line(n, 2, Boundary::kClip, rules::majority(),
                                    Memory::kWith);
  const auto phantom = Automaton::line(n, 2, Boundary::kFixedZero,
                                       rules::majority(), Memory::kWith);
  const auto c = Configuration::from_string("11000000");
  // clip: cell 0 sees {1, 1, 0} -> 1; phantom: (0, 0, 1, 1, 0) -> 0.
  EXPECT_EQ(core::step_synchronous(clip, c).get(0), 1);
  EXPECT_EQ(core::step_synchronous(phantom, c).get(0), 0);
}

TEST(NonRingSpaces, SequentialMajorityCycleFreeOnGridAndHypercube) {
  // The grid/hypercube versions of Lemma 1(ii), exhaustive over the
  // choice digraph.
  {
    const auto g = graph::grid2d(3, 3);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle());
  }
  {
    const auto g = graph::grid2d(3, 4, true);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle());
  }
  {
    const auto g = graph::hypercube(3);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle());
  }
  {
    const auto g = graph::complete_bipartite(3, 3);
    const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle());
  }
}

TEST(NonRingSpaces, StarGraphThresholds) {
  // Extreme irregularity: a star's center sees everything. Still a
  // threshold network, still sequentially cycle-free.
  const auto g = graph::star(9);
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
  EXPECT_FALSE(
      phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle());
  const auto cls =
      phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
  EXPECT_LE(cls.max_period(), 2u);
}

TEST(NonRingSpaces, MemorylessMajoritySequentialCycleFree) {
  // The paper's default is CA WITH memory; the energy argument also
  // covers memoryless threshold networks (w_vv = 0), so the sequential
  // dichotomy persists.
  for (const std::size_t n : {6u, 9u}) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                   Memory::kWithout);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle())
        << n;
  }
}

TEST(NonRingSpaces, MemorylessMajorityParallelStillBlinks) {
  const std::size_t n = 8;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWithout);
  Configuration alt(n);
  for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
  const auto orbit = core::find_orbit_synchronous(a, alt, 16);
  ASSERT_TRUE(orbit.has_value());
  EXPECT_EQ(orbit->period, 2u);
}

}  // namespace
}  // namespace tca
