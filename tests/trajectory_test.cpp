// Unit tests for orbit detection (src/core/trajectory.hpp).

#include <gtest/gtest.h>

#include <random>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(FindOrbit, FixedPointHasPeriodOne) {
  const auto a = majority_ring(8);
  const auto orbit = find_orbit_synchronous(
      a, Configuration::from_string("11110000"), 100);
  ASSERT_TRUE(orbit.has_value());
  EXPECT_EQ(orbit->transient, 0u);
  EXPECT_EQ(orbit->period, 1u);
  EXPECT_EQ(orbit->entry.to_string(), "11110000");
}

TEST(FindOrbit, BlinkerHasPeriodTwo) {
  const auto a = majority_ring(8);
  const auto orbit = find_orbit_synchronous(
      a, Configuration::from_string("01010101"), 100);
  ASSERT_TRUE(orbit.has_value());
  EXPECT_EQ(orbit->transient, 0u);
  EXPECT_EQ(orbit->period, 2u);
}

TEST(FindOrbit, TransientIntoFixedPoint) {
  const auto a = majority_ring(8);
  // An isolated 1 dies in one step, landing on the all-zero fixed point.
  const auto orbit = find_orbit_synchronous(
      a, Configuration::from_string("01000000"), 100);
  ASSERT_TRUE(orbit.has_value());
  EXPECT_EQ(orbit->transient, 1u);
  EXPECT_EQ(orbit->period, 1u);
  EXPECT_EQ(orbit->entry.popcount(), 0u);
}

TEST(FindOrbit, XorTwoNodeTransient) {
  const auto g = graph::complete(2);
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const auto orbit =
      find_orbit_synchronous(a, Configuration::from_string("01"), 100);
  ASSERT_TRUE(orbit.has_value());
  EXPECT_EQ(orbit->transient, 2u);  // 01 -> 11 -> 00
  EXPECT_EQ(orbit->period, 1u);
  EXPECT_EQ(orbit->entry.to_string(), "00");
}

TEST(FindOrbit, MaxStepsExceededReturnsNullopt) {
  // Parity on a 5-ring has long orbits; max_steps = 1 cannot find them
  // from a state that is not on a tiny cycle.
  const auto a = Automaton::line(5, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto orbit =
      find_orbit_synchronous(a, Configuration::from_string("10000"), 1);
  EXPECT_FALSE(orbit.has_value());
}

TEST(FindOrbitSweep, SequentialMajorityAlwaysPeriodOne) {
  const auto a = majority_ring(10);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto start = Configuration::from_bits(rng() & 1023, 10);
    const auto orbit = find_orbit_sweep(a, start, identity_order(10), 10000);
    ASSERT_TRUE(orbit.has_value());
    EXPECT_EQ(orbit->period, 1u) << start.to_string();
  }
}

TEST(TraceOrbit, RecordsAllVisitedStates) {
  const auto g = graph::complete(2);
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const auto trace =
      trace_orbit(synchronous_step_fn(a), Configuration::from_string("01"), 10);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->transient, 2u);
  EXPECT_EQ(trace->period, 1u);
  ASSERT_EQ(trace->states.size(), 3u);
  EXPECT_EQ(trace->states[0].to_string(), "01");
  EXPECT_EQ(trace->states[1].to_string(), "11");
  EXPECT_EQ(trace->states[2].to_string(), "00");
}

TEST(TraceOrbit, CapRespected) {
  const auto a = Automaton::line(9, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto trace = trace_orbit(synchronous_step_fn(a),
                                 Configuration::from_string("100000000"), 3);
  EXPECT_FALSE(trace.has_value());
}

TEST(BrentVersusTrace, AgreeOnRandomParityOrbits) {
  // Property check: the O(1)-memory Brent detector and the hash tracer must
  // report identical (transient, period) on arbitrary orbits. Parity CA
  // give rich nontrivial cycle structure.
  const auto a = Automaton::line(10, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  std::mt19937_64 rng(17);
  const auto step = synchronous_step_fn(a);
  for (int trial = 0; trial < 30; ++trial) {
    const auto start = Configuration::from_bits(rng() & 1023, 10);
    const auto brent = find_orbit(step, start, 100000);
    const auto traced = trace_orbit(step, start, 100000);
    ASSERT_TRUE(brent.has_value());
    ASSERT_TRUE(traced.has_value());
    EXPECT_EQ(brent->transient, traced->transient) << start.to_string();
    EXPECT_EQ(brent->period, traced->period) << start.to_string();
  }
}

TEST(BrentEntryState, IsOnTheCycle) {
  const auto a = Automaton::line(10, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto step = synchronous_step_fn(a);
  const auto orbit = find_orbit(step, Configuration::from_bits(0b1011, 10),
                                100000);
  ASSERT_TRUE(orbit.has_value());
  Configuration c = orbit->entry;
  for (std::uint64_t i = 0; i < orbit->period; ++i) c = step(c);
  EXPECT_EQ(c, orbit->entry);
}

}  // namespace
}  // namespace tca::core
