// Unit tests for the nondeterministic sequential phase space
// (src/phasespace/choice_digraph.hpp) — the paper's Fig. 1(b) and the
// "irrespective of update order" quantification.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"

namespace tca::phasespace {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

Automaton two_node_xor() {
  return Automaton::from_graph(graph::complete(2), rules::parity(),
                               Memory::kWith);
}

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(ChoiceDigraph, TwoNodeXorTransitions) {
  const ChoiceDigraph g(two_node_xor());
  ASSERT_EQ(g.num_states(), 4u);
  ASSERT_EQ(g.num_choices(), 2u);
  // State encoding: bit v = node v. From 01 (= code 0b01, node0=1? NO:
  // from_bits: bit i = cell i, so code 0b01 means node0 = 1).
  // Use explicit codes: code 1 = "10" (node0 on), code 2 = "01" (node1 on).
  // From code 2 ("01"): updating node 0 -> 0^1=1 -> code 3 ("11");
  //                     updating node 1 -> 1^0=1 -> stays code 2.
  EXPECT_EQ(g.succ(2, 0), 3u);
  EXPECT_EQ(g.succ(2, 1), 2u);
  // From code 3 ("11"): either node computes 1^1=0.
  EXPECT_EQ(g.succ(3, 0), 2u);
  EXPECT_EQ(g.succ(3, 1), 1u);
  // 00 is fixed under both choices.
  EXPECT_EQ(g.succ(0, 0), 0u);
  EXPECT_EQ(g.succ(0, 1), 0u);
}

TEST(ChoiceAnalysis, Fig1bXorFacts) {
  // The paper's Fig. 1(b): 00 is a FP unreachable from anywhere else;
  // 01 and 10 are pseudo-fixed points; there are two temporal two-cycles
  // ({01,11} and {10,11}); so 01, 10, 11 all lie on proper cycles.
  const ChoiceDigraph g(two_node_xor());
  const auto analysis = analyze(g);
  EXPECT_EQ(analysis.num_fixed_points, 1u);
  EXPECT_EQ(analysis.fixed_points, (std::vector<StateCode>{0}));
  EXPECT_EQ(analysis.num_pseudo_fixed_points, 2u);
  EXPECT_EQ(analysis.pseudo_fixed_points, (std::vector<StateCode>{1, 2}));
  EXPECT_TRUE(analysis.has_proper_cycle());
  EXPECT_EQ(analysis.num_proper_cycle_states, 3u);  // 01, 10, 11
}

TEST(ChoiceAnalysis, Fig1bSinkUnreachableSequentially) {
  // "the union of all possible sequential computations cannot fully capture
  // the concurrent computation: consider reachability of the state 00."
  const ChoiceDigraph g(two_node_xor());
  const auto from = can_reach(g, 0b00);
  EXPECT_TRUE(from[0b00]);
  EXPECT_FALSE(from[0b01]);
  EXPECT_FALSE(from[0b10]);
  EXPECT_FALSE(from[0b11]);
}

TEST(ChoiceAnalysis, Fig1bReachableSetsFromEachState) {
  const ChoiceDigraph g(two_node_xor());
  // From 11 every nonzero state is reachable, but never 00.
  const auto r = reachable_from(g, 0b11);
  EXPECT_FALSE(r[0b00]);
  EXPECT_TRUE(r[0b01]);
  EXPECT_TRUE(r[0b10]);
  EXPECT_TRUE(r[0b11]);
}

TEST(ChoiceAnalysis, MajorityRingsAreCycleFreeForAllOrders) {
  // Lemma 1(ii), fully quantified: the choice digraph contains NO directed
  // cycle through two or more states, hence no update sequence of any kind
  // (permutation or not) can ever cycle.
  for (const std::size_t n : {4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u}) {
    const ChoiceDigraph g(majority_ring(n));
    const auto analysis = analyze(g);
    EXPECT_FALSE(analysis.has_proper_cycle()) << "n=" << n;
  }
}

TEST(ChoiceAnalysis, MajorityRadiusTwoCycleFree) {
  // Lemma 2(ii).
  for (const std::size_t n : {5u, 6u, 8u, 10u, 12u}) {
    const auto a = Automaton::line(n, 2, Boundary::kRing, rules::majority(),
                                   Memory::kWith);
    EXPECT_FALSE(analyze(ChoiceDigraph(a)).has_proper_cycle()) << "n=" << n;
  }
}

TEST(ChoiceAnalysis, MajorityFixedPointsMatchParallelOnes) {
  const auto a = majority_ring(8);
  const ChoiceDigraph g(a);
  const auto analysis = analyze(g);
  // 11110000 (code with cells 0-3 set = 0b00001111) and the uniform states
  // are fixed points.
  const auto is_fp = [&](StateCode s) {
    return std::find(analysis.fixed_points.begin(), analysis.fixed_points.end(),
                     s) != analysis.fixed_points.end();
  };
  EXPECT_TRUE(is_fp(0b00000000));
  EXPECT_TRUE(is_fp(0b11111111));
  EXPECT_TRUE(is_fp(0b00001111));
  EXPECT_FALSE(is_fp(0b01010101));
}

TEST(ChoiceAnalysis, AlternatingStateIsNotPseudoFixedForMajority) {
  // From the alternating state every single-node update changes the state
  // (each isolated cell flips): no self-loops at all.
  const ChoiceDigraph g(majority_ring(6));
  const StateCode alt = 0b010101;
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_NE(g.succ(alt, v), alt) << "node " << v;
  }
}

TEST(ChoiceAnalysis, XorRingPseudoFixedPointsExist) {
  // Larger XOR systems keep the Fig. 1(b) flavor: pseudo-FPs exist.
  const auto a = Automaton::line(4, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto analysis = analyze(ChoiceDigraph(a));
  EXPECT_GT(analysis.num_pseudo_fixed_points, 0u);
}

TEST(ChoiceDigraph, RejectsTooManyCells) {
  const auto a = majority_ring(23);
  EXPECT_THROW(
      {
        const ChoiceDigraph g(a);
        (void)g;
      },
      std::invalid_argument);
}

TEST(ReachableFrom, IncludesStartAndIsClosedUnderSuccessors) {
  const ChoiceDigraph g(majority_ring(6));
  const auto r = reachable_from(g, 0b010101);
  EXPECT_TRUE(r[0b010101]);
  for (StateCode s = 0; s < g.num_states(); ++s) {
    if (!r[s]) continue;
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      EXPECT_TRUE(r[g.succ(s, v)]);
    }
  }
}

TEST(CanReach, IsConsistentWithForwardReachability) {
  const ChoiceDigraph g(two_node_xor());
  for (StateCode target = 0; target < 4; ++target) {
    const auto backward = can_reach(g, target);
    for (StateCode s = 0; s < 4; ++s) {
      EXPECT_EQ(static_cast<bool>(backward[s]),
                static_cast<bool>(reachable_from(g, s)[target]))
          << "s=" << s << " target=" << target;
    }
  }
}

}  // namespace
}  // namespace tca::phasespace
