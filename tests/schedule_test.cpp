// Unit tests for update schedules (src/core/schedule.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/schedule.hpp"

namespace tca::core {
namespace {

TEST(CyclicSchedule, RepeatsThePermutation) {
  CyclicSchedule s({2, 0, 1});
  const auto seq = take(s, 7);
  EXPECT_EQ(seq, (std::vector<NodeId>{2, 0, 1, 2, 0, 1, 2}));
}

TEST(CyclicSchedule, EmptyOrderThrows) {
  EXPECT_THROW(CyclicSchedule({}), std::invalid_argument);
}

TEST(CyclicSchedule, ResetRestarts) {
  CyclicSchedule s({0, 1});
  (void)s.next();
  s.reset();
  EXPECT_EQ(s.next(), 0u);
}

TEST(RandomUniformSchedule, DeterministicUnderSeed) {
  RandomUniformSchedule a(8, 123);
  RandomUniformSchedule b(8, 123);
  EXPECT_EQ(take(a, 100), take(b, 100));
}

TEST(RandomUniformSchedule, DifferentSeedsDiffer) {
  RandomUniformSchedule a(8, 1);
  RandomUniformSchedule b(8, 2);
  EXPECT_NE(take(a, 100), take(b, 100));
}

TEST(RandomUniformSchedule, StaysInRangeAndCoversAllNodes) {
  RandomUniformSchedule s(5, 99);
  std::set<NodeId> seen;
  for (const NodeId v : take(s, 500)) {
    ASSERT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomSweepSchedule, EverySweepIsAPermutation) {
  RandomSweepSchedule s(6, 42);
  const auto seq = take(s, 30);  // five sweeps
  for (std::size_t sweep = 0; sweep < 5; ++sweep) {
    std::set<NodeId> nodes(seq.begin() + static_cast<std::ptrdiff_t>(sweep * 6),
                           seq.begin() + static_cast<std::ptrdiff_t>((sweep + 1) * 6));
    EXPECT_EQ(nodes.size(), 6u) << "sweep " << sweep;
  }
}

TEST(RandomSweepSchedule, IsBoundedFair) {
  RandomSweepSchedule s(6, 7);
  const auto seq = take(s, 600);
  // Consecutive sweeps guarantee every window of 2n-1 covers all nodes.
  EXPECT_TRUE(is_bounded_fair(seq, 6, 11));
}

TEST(StarvingSchedule, NeverPicksStarvedNode) {
  StarvingSchedule s(5, 2);
  for (const NodeId v : take(s, 100)) EXPECT_NE(v, 2u);
}

TEST(StarvingSchedule, CoversEveryOtherNode) {
  StarvingSchedule s(5, 2);
  const std::set<NodeId> seen = [&] {
    const auto seq = take(s, 20);
    return std::set<NodeId>(seq.begin(), seq.end());
  }();
  EXPECT_EQ(seen, (std::set<NodeId>{0, 1, 3, 4}));
}

TEST(StarvingSchedule, ValidatesArguments) {
  EXPECT_THROW(StarvingSchedule(1, 0), std::invalid_argument);
  EXPECT_THROW(StarvingSchedule(4, 4), std::invalid_argument);
}

TEST(Orders, IdentityAndReversed) {
  EXPECT_EQ(identity_order(4), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(reversed_order(4), (std::vector<NodeId>{3, 2, 1, 0}));
}

TEST(Orders, RandomPermutationIsPermutation) {
  std::mt19937_64 rng(5);
  auto perm = random_permutation(10, rng);
  std::sort(perm.begin(), perm.end());
  EXPECT_EQ(perm, identity_order(10));
}

TEST(BoundedFair, CyclicIsFairWithBoundN) {
  CyclicSchedule s({0, 1, 2, 3});
  const auto seq = take(s, 40);
  EXPECT_TRUE(is_bounded_fair(seq, 4, 4));
  EXPECT_FALSE(is_bounded_fair(seq, 4, 3));  // bound below n is impossible
}

TEST(BoundedFair, StarvingIsNeverFair) {
  StarvingSchedule s(4, 0);
  const auto seq = take(s, 100);
  EXPECT_FALSE(is_bounded_fair(seq, 4, 50));
}

TEST(BoundedFair, TooShortPrefixIsNotFair) {
  const std::vector<NodeId> seq{0, 1};
  EXPECT_FALSE(is_bounded_fair(seq, 2, 4));
}

}  // namespace
}  // namespace tca::core
