// Unit tests for CA interleaving reproducibility (src/interleave/
// ca_interleave.hpp) — the paper's central question made executable.

#include <gtest/gtest.h>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"
#include "interleave/ca_interleave.hpp"

namespace tca::interleave {
namespace {

using core::Boundary;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(ReachParallelStep, FixedPointTriviallyReachable) {
  const auto a = majority_ring(6);
  const auto witness =
      reach_parallel_step(a, Configuration::from_string("111000"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST(ReachParallelStep, SimpleDecayReachableWithWitness) {
  const auto a = majority_ring(6);
  const auto x = Configuration::from_string("010000");
  const auto witness = reach_parallel_step(a, x);
  ASSERT_TRUE(witness.has_value());
  // Replaying the witness reproduces F(x).
  Configuration c = x;
  for (const NodeId v : *witness) core::update_node(a, c, v);
  EXPECT_EQ(c, core::step_synchronous(a, x));
}

TEST(ReachParallelStep, MajorityBlinkerStepIsUnreachable) {
  // Lemma 1: from the alternating state, the parallel successor (the
  // complementary alternating state) is not reachable by ANY sequence of
  // single-node updates.
  for (const std::size_t n : {4u, 6u, 8u, 10u}) {
    std::string alt;
    for (std::size_t i = 0; i < n; ++i) alt += (i % 2 == 0 ? '0' : '1');
    const auto a = majority_ring(n);
    EXPECT_FALSE(
        reach_parallel_step(a, Configuration::from_string(alt)).has_value())
        << "n=" << n;
  }
}

TEST(ReachParallelStep, XorTwoNodeAnnihilationIsUnreachable) {
  // Fig. 1: 11 ->parallel 00, but sequentially 00 cannot be reached.
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  EXPECT_FALSE(
      reach_parallel_step(a, Configuration::from_string("11")).has_value());
}

TEST(ReachParallelStep, XorTwoNodeGrowthIsReachable) {
  // 01 ->parallel 11 is reachable sequentially (update node 0).
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  const auto witness =
      reach_parallel_step(a, Configuration::from_string("01"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(*witness, (std::vector<NodeId>{0}));
}

TEST(PermutationSweep, ReproducesMonotoneDecaySteps) {
  const auto a = majority_ring(6);
  const auto x = Configuration::from_string("010000");
  const auto perm = permutation_sweep_reproduces(a, x);
  ASSERT_TRUE(perm.has_value());
  Configuration c = x;
  core::apply_sequence(a, c, *perm);
  EXPECT_EQ(c, core::step_synchronous(a, x));
}

TEST(PermutationSweep, CannotReproduceTheBlinker) {
  const auto a = majority_ring(6);
  EXPECT_FALSE(
      permutation_sweep_reproduces(a, Configuration::from_string("010101"))
          .has_value());
}

TEST(PermutationSweep, RejectsLargeSystems) {
  const auto a = majority_ring(12);
  EXPECT_THROW(
      permutation_sweep_reproduces(a, Configuration(12)),
      std::invalid_argument);
}

TEST(FirstIrreproducibleStep, BlinkerFailsAtStepZero) {
  const auto a = majority_ring(8);
  EXPECT_EQ(first_irreproducible_step(
                a, Configuration::from_string("01010101")),
            0u);
}

TEST(FirstIrreproducibleStep, DecayingOrbitsAreFullyReproducible) {
  const auto a = majority_ring(8);
  EXPECT_EQ(first_irreproducible_step(
                a, Configuration::from_string("01100100")),
            std::nullopt);
}

TEST(FirstIrreproducibleStep, TransientIntoBlinkerFailsWhenItArrives) {
  // 2-of-3 threshold differs from majority only off the main cases; build a
  // state that decays INTO the blinker: with radius-1 majority that cannot
  // happen (cycles have no incoming transients), so instead check the XOR
  // two-node system: 01 -> 11 -> 00; step 0 (01->11) is reproducible,
  // step 1 (11->00) is not.
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  EXPECT_EQ(first_irreproducible_step(a, Configuration::from_string("01")),
            1u);
}

}  // namespace
}  // namespace tca::interleave
