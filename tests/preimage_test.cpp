// Unit tests for the de Bruijn transfer-matrix preimage solver
// (src/phasespace/preimage.hpp), cross-validated against explicit
// phase-space in-degrees.

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"

namespace tca::phasespace {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

TEST(Preimage, WindowTableMatchesRule) {
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  // Window bits MSB-first (left, self, right): 0b110 -> maj(1,1,0) = 1.
  EXPECT_EQ(solver.window_output(0b110), 1);
  EXPECT_EQ(solver.window_output(0b100), 0);
  EXPECT_EQ(solver.window_output(0b111), 1);
  EXPECT_EQ(solver.window_output(0b000), 0);
}

TEST(Preimage, MemorylessDropsMiddleCell) {
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWithout);
  // Window (l, s, r) = (1, 0, 1): memoryless majority of {1,1} = 1.
  EXPECT_EQ(solver.window_output(0b101), 1);
  // (1, 1, 0): majority of {1, 0} with tie->0 = 0.
  EXPECT_EQ(solver.window_output(0b110), 0);
}

TEST(Preimage, RejectsBadArguments) {
  EXPECT_THROW(RingPreimageSolver(rules::majority(), 0, Memory::kWith),
               std::invalid_argument);
  EXPECT_THROW(RingPreimageSolver(rules::majority(), 4, Memory::kWith),
               std::invalid_argument);
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  EXPECT_THROW(solver.count(Configuration(2)), std::invalid_argument);
}

// Counts must equal the in-degrees of the explicit phase space, for every
// target, across rules and ring sizes.
class PreimageCrossValidation
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static rules::Rule rule_for(int id) {
    switch (id) {
      case 0: return rules::majority();
      case 1: return rules::parity();
      case 2: return rules::Rule{rules::wolfram(110)};
      case 3: return rules::Rule{rules::wolfram(30)};
      default: return rules::Rule{rules::KOfNRule{1}};
    }
  }
};

TEST_P(PreimageCrossValidation, CountsMatchExplicitInDegrees) {
  const auto [rule_id, n] = GetParam();
  const auto rule = rule_for(rule_id);
  const auto a = Automaton::line(static_cast<std::size_t>(n), 1,
                                 Boundary::kRing, rule, Memory::kWith);
  const auto fg = FunctionalGraph::synchronous(a);
  const auto indeg = in_degrees(fg);
  const RingPreimageSolver solver(rule, 1, Memory::kWith);
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    const auto target =
        Configuration::from_bits(s, static_cast<std::size_t>(n));
    EXPECT_EQ(solver.count(target), indeg[s])
        << "rule " << rule_id << " n " << n << " state " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RulesAndSizes, PreimageCrossValidation,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(3, 5, 8, 11)));

TEST(Preimage, RadiusTwoCrossValidation) {
  const auto rule = rules::majority();
  const std::size_t n = 9;
  const auto a = Automaton::line(n, 2, Boundary::kRing, rule, Memory::kWith);
  const auto fg = FunctionalGraph::synchronous(a);
  const auto indeg = in_degrees(fg);
  const RingPreimageSolver solver(rule, 2, Memory::kWith);
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    EXPECT_EQ(solver.count(Configuration::from_bits(s, n)), indeg[s]) << s;
  }
}

TEST(Preimage, ConservationSumEqualsTwoToN) {
  // Sum of preimage counts over all targets must be 2^n (F is a function).
  const RingPreimageSolver solver(rules::Rule{rules::wolfram(90)}, 1,
                                  Memory::kWith);
  const std::size_t n = 10;
  std::uint64_t total = 0;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    total += solver.count(Configuration::from_bits(bits, n));
  }
  EXPECT_EQ(total, std::uint64_t{1} << n);
}

TEST(Preimage, GardenOfEdenDetection) {
  // For two-cell... smallest interesting: majority ring n=4; states with an
  // isolated 1 adjacent to nothing cannot be produced? Verify against the
  // classifier's in-degree-0 states.
  const std::size_t n = 8;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto fg = FunctionalGraph::synchronous(a);
  const auto indeg = in_degrees(fg);
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  std::uint64_t expected_goe = 0;
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    const bool goe = solver.is_garden_of_eden(Configuration::from_bits(s, n));
    EXPECT_EQ(goe, indeg[s] == 0) << s;
    if (indeg[s] == 0) ++expected_goe;
  }
  EXPECT_EQ(count_gardens_of_eden_ring(solver, n), expected_goe);
}

TEST(Preimage, EnumerateMatchesCountAndSteps) {
  const std::size_t n = 10;
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  for (const char* target_str :
       {"0000000000", "1111100000", "0110011001", "1111111111"}) {
    const auto target = Configuration::from_string(target_str);
    const auto count = solver.count(target);
    const auto preimages = solver.enumerate(target, 1u << 12);
    EXPECT_EQ(preimages.size(), count) << target_str;
    for (const auto& x : preimages) {
      EXPECT_EQ(core::step_synchronous(a, x), target)
          << x.to_string() << " is not a preimage of " << target_str;
    }
  }
}

TEST(Preimage, EnumerateRespectsLimit) {
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  const auto target = Configuration::from_string("0000000000");
  const auto limited = solver.enumerate(target, 3);
  EXPECT_EQ(limited.size(), 3u);
}

TEST(Preimage, LargeRingScalesLinearly) {
  // n = 4096 would need a 2^4096-state phase space; the transfer matrix
  // answers in O(n) matrix products.
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  const std::size_t n = 4096;
  Configuration zero(n);
  EXPECT_GT(solver.count(zero), 0u);
  // A single isolated 1 at position i is produced by the "101" hat around
  // it, optionally decorated with far-away isolated 1s that die in the
  // same step. Check the structure at n = 10 (4 such preimages), then ask
  // the same question at n = 4096 where the decoration count explodes.
  {
    const std::size_t small_n = 10;
    Configuration small_lonely(small_n);
    small_lonely.set(5, 1);
    const auto preimages = solver.enumerate(small_lonely, 16);
    EXPECT_EQ(preimages.size(), 4u);
    Configuration hat(small_n);
    hat.set(4, 1);
    hat.set(6, 1);
    bool found_hat = false;
    for (const auto& x : preimages) {
      if (x == hat) found_hat = true;
    }
    EXPECT_TRUE(found_hat);
  }
  Configuration lonely(n);
  lonely.set(2048, 1);
  EXPECT_GT(solver.count(lonely), std::uint64_t{1} << 32);
  // The alternating blinker state has in-degree exactly 1 (its two-cycle
  // partner; "cycles have no incoming transients").
  Configuration alt(n);
  for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
  EXPECT_EQ(solver.count(alt), 1u);
}

TEST(FixedPointCount, MatchesExplicitCensus) {
  // Transfer-matrix fixed-point counts vs exhaustive classification.
  for (const auto& rule : {rules::majority(), rules::parity(),
                           rules::Rule{rules::wolfram(110)}}) {
    const RingPreimageSolver solver(rule, 1, Memory::kWith);
    for (const std::size_t n : {4u, 7u, 10u, 13u}) {
      const auto a = Automaton::line(n, 1, Boundary::kRing, rule,
                                     Memory::kWith);
      const auto cls = classify(FunctionalGraph::synchronous(a));
      EXPECT_EQ(count_fixed_points_ring(solver, n), cls.num_fixed_points)
          << rules::describe(rule) << " n=" << n;
    }
  }
}

TEST(FixedPointCount, RadiusTwoMatchesCensus) {
  const RingPreimageSolver solver(rules::majority(), 2, Memory::kWith);
  for (const std::size_t n : {5u, 8u, 11u}) {
    const auto a = Automaton::line(n, 2, Boundary::kRing, rules::majority(),
                                   Memory::kWith);
    const auto cls = classify(FunctionalGraph::synchronous(a));
    EXPECT_EQ(count_fixed_points_ring(solver, n), cls.num_fixed_points) << n;
  }
}

TEST(FixedPointCount, LargeRingLucasLikeGrowth) {
  // Majority fixed points on rings are configurations with no isolated
  // run of length 1 — a local constraint, so the count follows a linear
  // recurrence; just sanity-check growth and feasibility at n = 4096.
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  const auto fp60 = count_fixed_points_ring(solver, 60);
  const auto fp61 = count_fixed_points_ring(solver, 61);
  EXPECT_GT(fp60, std::uint64_t{1} << 40);  // plenty of striped FPs
  EXPECT_LT(fp60, kSaturated);
  EXPECT_GT(fp61, fp60);
  EXPECT_EQ(count_fixed_points_ring(solver, 4096), kSaturated);
}

TEST(FixedPointCount, RingTooSmallThrows) {
  const RingPreimageSolver solver(rules::majority(), 2, Memory::kWith);
  EXPECT_THROW(count_fixed_points_ring(solver, 4), std::invalid_argument);
}

TEST(PeriodTwoCount, MatchesExplicitCensus) {
  // trace(M_pair^n) counts states of period dividing 2: FPs + 2-cycle
  // states. Cross-checked against exhaustive classification.
  for (const auto& rule : {rules::majority(), rules::parity(),
                           rules::Rule{rules::wolfram(110)}}) {
    const RingPreimageSolver solver(rule, 1, Memory::kWith);
    for (const std::size_t n : {4u, 6u, 9u, 12u}) {
      const auto a = Automaton::line(n, 1, Boundary::kRing, rule,
                                     Memory::kWith);
      const auto cls = classify(FunctionalGraph::synchronous(a));
      std::uint64_t expected = cls.num_fixed_points;
      // Count states on proper cycles of period exactly 2.
      for (const auto& attractor : cls.attractors) {
        if (attractor.period == 2) expected += 2;
      }
      EXPECT_EQ(count_period_two_states_ring(solver, n), expected)
          << rules::describe(rule) << " n=" << n;
    }
  }
}

TEST(PeriodTwoCount, RadiusTwoMatchesCensus) {
  const RingPreimageSolver solver(rules::majority(), 2, Memory::kWith);
  for (const std::size_t n : {8u, 12u}) {
    const auto a = Automaton::line(n, 2, Boundary::kRing, rules::majority(),
                                   Memory::kWith);
    const auto cls = classify(FunctionalGraph::synchronous(a));
    std::uint64_t expected = cls.num_fixed_points;
    for (const auto& attractor : cls.attractors) {
      if (attractor.period == 2) expected += 2;
    }
    EXPECT_EQ(count_period_two_states_ring(solver, n), expected) << n;
  }
}

TEST(PeriodTwoCount, ExactlyTwoCycleStatesOnHugeRings) {
  // Lemma 1's two-cycle is THE only proper cycle even on rings explicit
  // methods could never touch (2^90 states): period-2-dividing minus
  // fixed points == 2 at n = 90 (even) and == 0 at n = 91 (odd). The
  // counts themselves are ~phi^n, just below the 64-bit saturation cap.
  const RingPreimageSolver solver(rules::majority(), 1, Memory::kWith);
  for (const std::size_t n : {90u, 91u}) {
    const auto fixed = count_fixed_points_ring(solver, n);
    const auto period2 = count_period_two_states_ring(solver, n);
    ASSERT_NE(fixed, kSaturated) << n;
    ASSERT_NE(period2, kSaturated) << n;
    EXPECT_EQ(period2 - fixed, n % 2 == 0 ? 2u : 0u) << n;
  }
}

TEST(PeriodTwoCount, RejectsRadiusThree) {
  const RingPreimageSolver solver(rules::majority(), 3, Memory::kWith);
  EXPECT_THROW(count_period_two_states_ring(solver, 16),
               std::invalid_argument);
}

TEST(Preimage, SaturationReporting) {
  // All-zero target under the constant-0 rule has ALL 2^n preimages;
  // for n = 80 that exceeds 2^64 and must report kSaturated.
  const RingPreimageSolver solver(rules::Rule{rules::KOfNRule{99}}, 1,
                                  Memory::kWith);
  Configuration zero(80);
  EXPECT_EQ(solver.count(zero), kSaturated);
  // At n = 32 the exact count 2^32 fits.
  Configuration zero32(32);
  EXPECT_EQ(solver.count(zero32), std::uint64_t{1} << 32);
}

}  // namespace
}  // namespace tca::phasespace
