// Deterministic fault-injection matrix (docs/robustness.md): every
// graceful-degradation path — injected allocation failure, injected
// thread-pool chunk exceptions, injected cancellation at the k-th visited
// state, simulated thread-spawn failure — driven over generator-produced
// random cases from the property-based harness. The CI `faultinject` job
// re-runs this suite under ASan+UBSan to prove the failure paths leak
// nothing and never terminate.

#include <gtest/gtest.h>

#include <filesystem>
#include <new>

#include "core/thread_pool.hpp"
#include "phasespace/functional_graph.hpp"
#include "runtime/budget.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"

namespace tca::runtime {
namespace {

using phasespace::FunctionalGraph;

/// Random cases kept small enough for explicit phase spaces.
testing::TestCase small_case(std::uint64_t index) {
  testing::CaseOptions options;
  options.max_nodes = 10;
  return testing::random_case(testing::mix_seed(0xFA17ull, index), options);
}

TEST(FaultInjection, HooksAreInertWithoutAPlan) {
  EXPECT_FALSE(fault::active());
  EXPECT_NO_THROW(fault::check_alloc(1 << 30));
  EXPECT_NO_THROW(fault::check_chunk());
  EXPECT_FALSE(fault::tick_visit(1));
  EXPECT_FALSE(fault::should_fail_thread_spawn());
}

TEST(FaultInjection, PlanIsScopedAndConsumedExactlyOnce) {
  {
    ScopedFaultPlan plan({.alloc_failure_at = 2});
    EXPECT_TRUE(fault::active());
    EXPECT_NO_THROW(fault::check_alloc());   // 1st: survives
    EXPECT_THROW(fault::check_alloc(), std::bad_alloc);  // 2nd: fires
    EXPECT_NO_THROW(fault::check_alloc());   // consumed
  }
  EXPECT_FALSE(fault::active());
  EXPECT_NO_THROW(fault::check_alloc());
}

TEST(FaultInjection, AllocMinBytesTargetsOnlyLargeAllocations) {
  ScopedFaultPlan plan({.alloc_failure_at = 1, .alloc_min_bytes = 1024});
  // Small bookkeeping allocations pass the guard without consuming it.
  EXPECT_NO_THROW(fault::check_alloc(16));
  EXPECT_NO_THROW(fault::check_alloc(1023));
  EXPECT_NO_THROW(fault::check_alloc());  // advisory size 0
  // The first allocation at or above the threshold fires.
  EXPECT_THROW(fault::check_alloc(1024), std::bad_alloc);
  EXPECT_NO_THROW(fault::check_alloc(1 << 20));  // consumed
}

TEST(FaultInjection, ComposedPlanKnobsCountDownIndependently) {
  // One plan, several faults: each knob is its own countdown and fires
  // exactly once, so a single scenario can chain distinct failures (the
  // chaos sweep's multi-fault plans rely on this).
  ScopedFaultPlan plan({.alloc_failure_at = 1, .chunk_exception_at = 2});
  EXPECT_NO_THROW(fault::check_chunk());              // chunk: 1st survives
  EXPECT_THROW(fault::check_alloc(), std::bad_alloc);  // alloc: fires
  EXPECT_THROW(fault::check_chunk(), tca::InjectedFaultError);  // 2nd fires
  EXPECT_NO_THROW(fault::check_alloc());
  EXPECT_NO_THROW(fault::check_chunk());
}

TEST(FaultInjection, RetryKnobIsInertOutsideSupervisedAttempts) {
  EXPECT_NO_THROW(fault::tick_retry_attempt());
  {
    ScopedFaultPlan plan({.retry_transient_at = 2});
    EXPECT_NO_THROW(fault::tick_retry_attempt());
    EXPECT_THROW(fault::tick_retry_attempt(), tca::InjectedFaultError);
    EXPECT_NO_THROW(fault::tick_retry_attempt());
  }
  EXPECT_NO_THROW(fault::tick_retry_attempt());
}

TEST(FaultInjection, AllocFaultAbortsSerialBuildsCleanly) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto tc = small_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    {
      ScopedFaultPlan plan({.alloc_failure_at = 1});
      EXPECT_THROW((void)FunctionalGraph::synchronous(a), std::bad_alloc)
          << "case " << i;
    }
    // The failure was transient: the identical build now succeeds.
    const auto rebuilt = FunctionalGraph::synchronous(a);
    EXPECT_EQ(rebuilt.num_states(), std::uint64_t{1} << tc.n);
  }
}

TEST(FaultInjection, ChunkFaultAbortsParallelBuildAndPoolSurvives) {
  core::ThreadPool pool(3);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto tc = small_case(i);
    if (tc.n < 2) continue;
    const auto a = tc.automaton();
    {
      ScopedFaultPlan plan({.chunk_exception_at = 1});
      EXPECT_THROW((void)FunctionalGraph::synchronous_parallel(a, pool),
                   tca::InjectedFaultError)
          << "case " << i;
    }
    // Pool and build still work, bit-identical to the serial path.
    const auto serial = FunctionalGraph::synchronous(a);
    const auto parallel = FunctionalGraph::synchronous_parallel(a, pool);
    ASSERT_EQ(serial.successors(), parallel.successors()) << "case " << i;
  }
}

TEST(FaultInjection, CancelAtVisitTruncatesBudgetedBuild) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto tc = small_case(i);
    if (tc.n < 4) continue;
    const auto a = tc.automaton();
    const auto full = FunctionalGraph::synchronous(a);

    ScopedFaultPlan plan({.cancel_at_visit = 5});
    RunControl control;
    const auto build = FunctionalGraph::build_synchronous(a, control);
    ASSERT_TRUE(build.truncated()) << "case " << i;
    EXPECT_EQ(build.status.stop_reason, StopReason::kCancelled);
    EXPECT_LT(build.states_built, full.num_states());
    // The prefix computed before the cancellation is exact.
    ASSERT_EQ(build.partial_succ.size(), build.states_built);
    for (std::uint64_t s = 0; s < build.states_built; ++s) {
      ASSERT_EQ(build.partial_succ[s], full.succ(s))
          << "case " << i << " state " << s;
    }
  }
}

TEST(FaultInjection, SpawnFailureDegradedPoolStillBuildsCorrectTables) {
  ScopedFaultPlan plan({.fail_thread_spawn = true});
  core::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 1u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto tc = small_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    const auto serial = FunctionalGraph::synchronous(a);
    const auto degraded = FunctionalGraph::synchronous_parallel(a, pool);
    ASSERT_EQ(serial.successors(), degraded.successors()) << "case " << i;
  }
}

TEST(FaultInjection, AllocFaultLeavesNoCheckpointResidue) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tca_fault_ckpt_test.ckpt").string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  {
    ScopedFaultPlan plan({.alloc_failure_at = 1});
    Checkpoint ck;
    ck.payload = "data";
    EXPECT_THROW(save_checkpoint(path, ck), std::bad_alloc);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // And the same save succeeds once the plan is gone.
  Checkpoint ck;
  ck.payload = "data";
  save_checkpoint(path, ck);
  EXPECT_EQ(load_checkpoint(path).payload, "data");
  std::filesystem::remove(path);
}

TEST(FaultInjection, SubsumptionOracleSkipsOnInjectedTruncation) {
  // Satellite requirement: a truncated reach set must make the subsumption
  // oracle SKIP (vacuous pass), never fail — here truncation is forced by
  // cancelling the oracle's internal exploration at its first visit.
  const auto* oracle = testing::find_oracle("reach-subsumption");
  ASSERT_NE(oracle, nullptr);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto tc =
        testing::random_case(testing::mix_seed(0x5ca1eull, i),
                             oracle->options);
    ScopedFaultPlan plan({.cancel_at_visit = 1});
    const auto result = oracle->check(tc);
    EXPECT_TRUE(result.ok)
        << "oracle failed instead of skipping on truncation: " << result.note;
  }
}

}  // namespace
}  // namespace tca::runtime
