// Unit tests for DOT / text export (src/phasespace/dot.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "phasespace/dot.hpp"

namespace tca::phasespace {
namespace {

using core::Automaton;
using core::Memory;

Automaton two_node_xor() {
  return Automaton::from_graph(graph::complete(2), rules::parity(),
                               Memory::kWith);
}

TEST(StateLabel, CellZeroFirst) {
  EXPECT_EQ(state_label(0b01, 2), "10");
  EXPECT_EQ(state_label(0b10, 2), "01");
  EXPECT_EQ(state_label(0b110, 4), "0110");
}

TEST(DotFunctional, ContainsAllStatesAndEdges) {
  const auto dot = to_dot(FunctionalGraph::synchronous(two_node_xor()));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"00\""), std::string::npos);
  EXPECT_NE(dot.find("\"11\" -> \"00\""), std::string::npos);
  EXPECT_NE(dot.find("\"10\" -> \"11\""), std::string::npos);
}

TEST(DotFunctional, FixedPointMarkedAsDoubleCircle) {
  const auto dot = to_dot(FunctionalGraph::synchronous(two_node_xor()));
  EXPECT_NE(dot.find("\"00\" [shape=doublecircle]"), std::string::npos);
}

TEST(DotChoice, EdgesCarryNodeLabels) {
  const auto dot = to_dot(ChoiceDigraph(two_node_xor()));
  // From "10" updating node 1 (paper numbering) -> "11".
  EXPECT_NE(dot.find("[label=\"1\"]"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"2\"]"), std::string::npos);
}

TEST(TextFunctional, MarksKinds) {
  const auto text = to_text(FunctionalGraph::synchronous(two_node_xor()));
  EXPECT_NE(text.find("00 -> 00   [fixed point]"), std::string::npos);
  EXPECT_NE(text.find("[transient]"), std::string::npos);
}

TEST(TextChoice, MarksFixedAndPseudoFixedPoints) {
  const auto text = to_text(ChoiceDigraph(two_node_xor()));
  EXPECT_NE(text.find("[fixed point]"), std::string::npos);
  EXPECT_NE(text.find("[pseudo-fixed point]"), std::string::npos);
  EXPECT_NE(text.find("[on a proper cycle]"), std::string::npos);
}

}  // namespace
}  // namespace tca::phasespace
