// Unit tests for damage spreading / light cones (src/analysis/damage.hpp).

#include <gtest/gtest.h>

#include <random>

#include "analysis/damage.hpp"
#include "analysis/linear_ca.hpp"
#include "core/automaton.hpp"

namespace tca::analysis {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

TEST(Damage, InitialDiffIsTheFlippedCell) {
  const auto a = Automaton::line(16, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto trace =
      damage_synchronous(a, Configuration(16), /*cell=*/5, /*steps=*/3);
  ASSERT_EQ(trace.diffs.size(), 4u);
  EXPECT_EQ(trace.diffs[0].popcount(), 1u);
  EXPECT_EQ(trace.diffs[0].get(5), 1);
}

TEST(Damage, OutOfRangeCellThrows) {
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  EXPECT_THROW(damage_synchronous(a, Configuration(8), 8, 1),
               std::invalid_argument);
}

TEST(Damage, LightConeHoldsForEveryTestedRuleAndState) {
  // The "no sooner than d/r steps" upper bound: damage at time t stays
  // within ring distance r*t of the perturbed cell — for ANY rule
  // (synchronous updates simply cannot move information faster).
  std::mt19937_64 rng(11);
  const std::size_t n = 64;
  for (const auto& rule :
       {rules::majority(), rules::parity(), rules::Rule{rules::wolfram(110)},
        rules::Rule{rules::wolfram(30)}}) {
    for (const std::uint32_t r : {1u, 2u}) {
      // Wolfram table rules are fixed at arity 3 (radius 1 only).
      if (r != 1 && rules::required_arity(rule) != 0) continue;
      const auto a = Automaton::line(n, r, Boundary::kRing, rule,
                                     Memory::kWith);
      for (int trial = 0; trial < 5; ++trial) {
        const auto x = random_config(n, rng);
        const std::size_t cell = rng() % n;
        const auto trace = damage_synchronous(a, x, cell, 10);
        EXPECT_TRUE(trace_within_light_cone(trace, cell, r))
            << rules::describe(rule) << " r=" << r;
      }
    }
  }
}

TEST(Damage, ParityDamageSaturatesTheCone) {
  // For XOR rules the damage front moves at EXACTLY r cells per step
  // (rule 150's unit response spreads like Pascal's triangle mod 2, whose
  // extremal cells always survive).
  const std::size_t n = 64;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  std::mt19937_64 rng(3);
  const auto x = random_config(n, rng);
  const auto trace = damage_synchronous(a, x, 32, 12);
  for (std::uint64_t t = 0; t <= 12; ++t) {
    EXPECT_EQ(trace.diffs[t].get((32 + t) % n), 1) << t;
    EXPECT_EQ(trace.diffs[t].get((32 + n - t) % n), 1) << t;
  }
  EXPECT_EQ(steps_until_cone_boundary(trace, 32, 1), 1u);
}

TEST(Damage, LinearRuleDamageIsBackgroundIndependent) {
  // Superposition: for a linear rule the damage trajectory equals the
  // evolution of the lone perturbation, regardless of the background.
  const std::size_t n = 32;
  const auto a = Automaton::line(n, 1, Boundary::kRing,
                                 rules::Rule{rules::wolfram(90)},
                                 Memory::kWith);
  std::mt19937_64 rng(9);
  const auto bg1 = random_config(n, rng);
  const auto bg2 = random_config(n, rng);
  const auto t1 = damage_synchronous(a, bg1, 7, 10);
  const auto t2 = damage_synchronous(a, bg2, 7, 10);
  for (std::uint64_t t = 0; t <= 10; ++t) {
    EXPECT_EQ(t1.diffs[t], t2.diffs[t]) << t;
  }
  // ...and equals the linear evolution of e_7.
  const auto linear =
      LinearRingCA::from_rule(rules::Rule{rules::wolfram(90)}, 1, n);
  Configuration unit(n);
  unit.set(7, 1);
  EXPECT_EQ(t1.diffs[10], linear.step_many(unit, 10));
}

TEST(Damage, MajorityDamageOftenHeals) {
  // Threshold rules are NOT background-independent: on the all-zero
  // background a single flipped cell heals in one step.
  const auto a = Automaton::line(32, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto trace = damage_synchronous(a, Configuration(32), 10, 4);
  EXPECT_EQ(trace.diffs[1].popcount(), 0u);
  const auto hamming = trace.hamming();
  EXPECT_EQ(hamming, (std::vector<std::size_t>{1, 0, 0, 0, 0}));
}

TEST(Damage, ConeBoundaryDetectorIgnoresWrappedCones) {
  // Once r*t >= n/2 the cone covers the ring and "boundary" is undefined;
  // the detector must stop rather than report nonsense.
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto trace = damage_synchronous(a, Configuration(8), 0, 20);
  const auto t = steps_until_cone_boundary(trace, 0, 1);
  EXPECT_LE(t, 3u);  // n/2 = 4 caps the search
}

TEST(Damage, WithinLightConeRejectsEscapes) {
  Configuration diff(16);
  diff.set(8, 1);
  EXPECT_TRUE(within_light_cone(diff, 8, 1, 0));
  diff.set(11, 1);
  EXPECT_FALSE(within_light_cone(diff, 8, 1, 2));
  EXPECT_TRUE(within_light_cone(diff, 8, 1, 3));
}

}  // namespace
}  // namespace tca::analysis
