// Unit tests for phase-space isomorphism (src/phasespace/isomorphism.hpp)
// — including the paper's "not even isomorphic computation" claim.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "graph/builders.hpp"
#include "phasespace/isomorphism.hpp"

namespace tca::phasespace {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

/// Functional graph from an explicit successor table.
FunctionalGraph from_table(const std::vector<StateCode>& succ) {
  std::uint32_t bits = 0;
  while ((StateCode{1} << bits) < succ.size()) ++bits;
  return FunctionalGraph(bits, [&succ](StateCode s) { return succ[s]; });
}

TEST(Isomorphism, GraphIsIsomorphicToItself) {
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto fg = FunctionalGraph::synchronous(a);
  EXPECT_TRUE(isomorphic(fg, fg));
  EXPECT_EQ(canonical_form(fg), canonical_form(fg));
}

TEST(Isomorphism, RelabelingPreservesCanonicalForm) {
  // Conjugating succ by any state permutation yields an isomorphic graph.
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto fg = FunctionalGraph::synchronous(a);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<StateCode> perm(fg.num_states());
    for (StateCode s = 0; s < fg.num_states(); ++s) perm[s] = s;
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<StateCode> conjugated(fg.num_states());
    for (StateCode s = 0; s < fg.num_states(); ++s) {
      conjugated[perm[s]] = perm[fg.succ(s)];
    }
    EXPECT_TRUE(isomorphic(fg, from_table(conjugated))) << "trial " << trial;
  }
}

TEST(Isomorphism, DistinguishesCycleLengths) {
  // One 4-cycle vs two 2-cycles (same size, same in-degrees).
  const auto one_cycle = from_table({1, 2, 3, 0});
  const auto two_cycles = from_table({1, 0, 3, 2});
  EXPECT_FALSE(isomorphic(one_cycle, two_cycles));
}

TEST(Isomorphism, DistinguishesTreeShapes) {
  // Both: one fixed point, three transients; different tree shapes
  // (a path of depth 3 vs a star of depth 1).
  const auto path = from_table({0, 0, 1, 2});
  const auto star = from_table({0, 0, 0, 0});
  EXPECT_FALSE(isomorphic(path, star));
}

TEST(Isomorphism, SizeMismatchIsNotIsomorphic) {
  const auto small = from_table({0, 0});
  const auto big = from_table({0, 0, 0, 0});
  EXPECT_FALSE(isomorphic(small, big));
}

TEST(Isomorphism, MinimalRotationHandlesCycleSymmetry) {
  // A 3-cycle with one hair on different cycle nodes: rotations of each
  // other, so isomorphic.
  const auto hair_on_0 = from_table({1, 2, 0, 0});  // 3 -> 0, cycle 0,1,2
  const auto hair_on_1 = from_table({1, 2, 0, 1});  // 3 -> 1
  EXPECT_TRUE(isomorphic(hair_on_0, hair_on_1));
}

TEST(Isomorphism, PaperClaim_NoSweepOrderIsIsomorphicToParallelMajority) {
  // For the majority ring, the parallel phase space has a two-cycle while
  // every sweep phase space is cycle-free — so no update order gives an
  // isomorphic computation. Checked over ALL 720 orders at n = 6.
  const std::size_t n = 6;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto parallel = FunctionalGraph::synchronous(a);
  const auto parallel_form = canonical_form(parallel);
  auto perm = core::identity_order(n);
  do {
    const auto sweep = FunctionalGraph::sweep(a, perm);
    ASSERT_NE(canonical_form(sweep), parallel_form);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Isomorphism, PaperClaim_XorTwoNodeParallelVsSequentialSweeps) {
  // Fig. 1's system: neither order's sweep map is isomorphic to the
  // parallel map (parallel has a depth-2 tail into 00; the sweeps behave
  // differently).
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  const auto parallel = FunctionalGraph::synchronous(a);
  for (const auto& order : {std::vector<core::NodeId>{0, 1},
                            std::vector<core::NodeId>{1, 0}}) {
    const auto sweep = FunctionalGraph::sweep(a, order);
    EXPECT_FALSE(isomorphic(parallel, sweep));
  }
}

TEST(Isomorphism, EquivalentSweepOrdersGiveEqualForms) {
  // Non-adjacent swaps give the SAME map, hence equal canonical forms.
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto f1 = FunctionalGraph::sweep(a, {0, 2, 4, 1, 3, 5});
  const auto f2 = FunctionalGraph::sweep(a, {2, 0, 4, 1, 3, 5});
  EXPECT_EQ(canonical_form(f1), canonical_form(f2));
}

}  // namespace
}  // namespace tca::phasespace
