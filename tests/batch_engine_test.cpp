// Cross-validation of the bit-sliced batch engine (src/core/batch_kernels,
// phasespace::BatchCodeStepper) against the scalar engines — bit-for-bit
// equivalence over random rules, ragged lane counts, and awkward ring
// sizes, plus the fallback observability contract and the explicit
// Garden-of-Eden census.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/automaton.hpp"
#include "core/batch_isa.hpp"
#include "core/batch_kernels.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/graph.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/preimage.hpp"
#include "rules/rule.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::BatchSlice;
using core::BatchStepper;
using core::Boundary;
using core::Configuration;
using core::Memory;
using phasespace::StateCode;

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

rules::TableRule random_table(std::uint32_t arity, std::mt19937_64& rng) {
  rules::TableRule t;
  t.table.resize(std::size_t{1} << arity);
  for (auto& v : t.table) v = static_cast<rules::State>(rng() & 1u);
  return t;
}

/// The rule pool the differential tests draw from: every circuit kind
/// (threshold, parity, count mask, outer-totalistic, minterms) plus the
/// truth-table route of weighted thresholds.
std::vector<rules::Rule> rule_pool(std::uint32_t arity,
                                   std::uint32_t self_index,
                                   std::mt19937_64& rng) {
  std::vector<rules::Rule> pool;
  pool.push_back(rules::MajorityRule{rules::MajorityTie::kZero});
  pool.push_back(rules::MajorityRule{rules::MajorityTie::kOne});
  pool.push_back(rules::ParityRule{});
  pool.push_back(rules::KOfNRule{static_cast<std::uint32_t>(rng() % (arity + 2))});
  rules::SymmetricRule sym;
  sym.accept.resize(arity + 1);
  for (auto& v : sym.accept) v = static_cast<rules::State>(rng() & 1u);
  pool.push_back(sym);
  pool.push_back(random_table(arity, rng));
  rules::WeightedThresholdRule uniform;
  uniform.weights.assign(arity, 2);
  uniform.theta = 3;
  pool.push_back(uniform);
  rules::WeightedThresholdRule mixed;
  mixed.weights.resize(arity);
  for (auto& w : mixed.weights) w = static_cast<std::int32_t>(rng() % 5) - 2;
  mixed.theta = 1;
  pool.push_back(mixed);
  rules::OuterTotalisticRule outer;
  outer.self_index = self_index;
  outer.born.resize(arity);
  outer.survive.resize(arity);
  for (auto& v : outer.born) v = static_cast<rules::State>(rng() & 1u);
  for (auto& v : outer.survive) v = static_cast<rules::State>(rng() & 1u);
  pool.push_back(outer);
  return pool;
}

TEST(Transpose64, MatchesDefinitionAndRoundTrips) {
  std::mt19937_64 rng(7);
  std::uint64_t a[64];
  std::uint64_t b[64];
  for (int i = 0; i < 64; ++i) a[i] = b[i] = rng();
  core::transpose64(b);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      ASSERT_EQ((a[r] >> c) & 1u, (b[c] >> r) & 1u)
          << "entry (" << r << "," << c << ")";
    }
  }
  core::transpose64(b);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BatchSlice, CodeRoundTripArbitraryCodes) {
  std::mt19937_64 rng(11);
  for (const std::size_t n : {1u, 3u, 20u, 63u, 64u}) {
    const std::uint64_t lo_mask =
        n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
    std::vector<std::uint64_t> codes(37);
    for (auto& c : codes) c = rng() & lo_mask;
    BatchSlice slice(n);
    slice.load_codes(codes);
    EXPECT_EQ(slice.count(), 37u);
    std::vector<std::uint64_t> out(codes.size(), ~std::uint64_t{0});
    slice.store_codes(out);
    EXPECT_EQ(out, codes) << "n=" << n;
  }
}

TEST(BatchSlice, AlignedRangeFastPathMatchesGeneralLoad) {
  for (const std::uint64_t first : {std::uint64_t{0}, std::uint64_t{1 << 12}}) {
    const std::size_t n = 20;
    BatchSlice fast(n);
    fast.load_code_range(first, 64);  // 64-aligned: pattern path
    std::vector<std::uint64_t> codes(64);
    for (unsigned j = 0; j < 64; ++j) codes[j] = first + j;
    BatchSlice general(n);
    general.load_codes(codes);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast.planes()[i], general.planes()[i]) << "plane " << i;
    }
  }
}

TEST(BatchSlice, UnalignedAndRaggedRangeRoundTrips) {
  const std::size_t n = 10;
  BatchSlice slice(n);
  slice.load_code_range(100, 17);  // unaligned, ragged
  std::vector<std::uint64_t> out(17);
  slice.store_codes(out);
  for (unsigned j = 0; j < 17; ++j) EXPECT_EQ(out[j], 100u + j);
}

TEST(BatchSlice, ConfigurationRoundTripPastWordBoundary) {
  std::mt19937_64 rng(13);
  for (const std::size_t n : {63u, 64u, 65u, 127u, 128u}) {
    std::vector<Configuration> in;
    for (int j = 0; j < 29; ++j) in.push_back(random_config(n, rng));
    BatchSlice slice(n);
    slice.load_configurations(in);
    std::vector<Configuration> out(in.size(), Configuration(n));
    slice.store_configurations(out);
    for (std::size_t j = 0; j < in.size(); ++j) {
      EXPECT_EQ(out[j], in[j]) << "n=" << n << " lane " << j;
    }
  }
}

TEST(BatchStepper, MatchesScalarStepAcrossRulesAndSizes) {
  std::mt19937_64 rng(17);
  for (const std::size_t n : {3u, 63u, 64u, 65u, 127u, 128u}) {
    for (const auto memory : {Memory::kWith, Memory::kWithout}) {
      const std::uint32_t arity = memory == Memory::kWith ? 3 : 2;
      const std::uint32_t self_index = memory == Memory::kWith ? 1 : 0;
      for (const auto& rule : rule_pool(arity, self_index, rng)) {
        const auto a =
            Automaton::line(n, 1, Boundary::kRing, rule, memory);
        const auto support = core::batch_support(a);
        ASSERT_TRUE(support.ok)
            << rules::describe(rule) << ": " << support.reason;
        BatchStepper stepper(a);
        // Ragged lane count on purpose.
        std::vector<Configuration> in;
        for (int j = 0; j < 41; ++j) in.push_back(random_config(n, rng));
        BatchSlice src(n);
        BatchSlice dst(n);
        src.load_configurations(in);
        stepper.step(src, dst);
        std::vector<Configuration> got(in.size(), Configuration(n));
        dst.store_configurations(got);
        for (std::size_t j = 0; j < in.size(); ++j) {
          const auto want = core::step_synchronous(a, in[j]);
          ASSERT_EQ(got[j], want)
              << rules::describe(rule) << " n=" << n << " lane " << j;
        }
      }
    }
  }
}

TEST(BatchStepper, SingleCellAutomatonViaGraph) {
  // n = 1 has no ring; a lone node with memory sees only itself.
  const graph::Graph g(1, {});
  const auto a = Automaton::from_graph(g, rules::majority(), Memory::kWith);
  ASSERT_TRUE(core::batch_support(a).ok);
  BatchStepper stepper(a);
  BatchSlice src(1);
  BatchSlice dst(1);
  src.load_code_range(0, 2);
  stepper.step(src, dst);
  std::uint64_t out[2];
  dst.store_codes(out);
  EXPECT_EQ(out[0], 0u);  // majority of {0}
  EXPECT_EQ(out[1], 1u);  // majority of {1}
}

TEST(BatchStepper, SweepMatchesApplySequence) {
  std::mt19937_64 rng(19);
  const std::size_t n = 9;
  std::vector<core::NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<core::NodeId>(i);
  std::shuffle(order.begin(), order.end(), rng);
  for (const auto& rule : rule_pool(3, 1, rng)) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rule, Memory::kWith);
    BatchStepper stepper(a);
    std::vector<Configuration> in;
    for (int j = 0; j < 50; ++j) in.push_back(random_config(n, rng));
    BatchSlice slice(n);
    slice.load_configurations(in);
    stepper.sweep(slice, order);
    std::vector<Configuration> got(in.size(), Configuration(n));
    slice.store_configurations(got);
    for (std::size_t j = 0; j < in.size(); ++j) {
      Configuration want = in[j];
      core::apply_sequence(a, want, order);
      ASSERT_EQ(got[j], want) << rules::describe(rule) << " lane " << j;
    }
  }
}

TEST(BatchCodeStepper, RaggedRangesMatchScalarAdapter) {
  std::mt19937_64 rng(23);
  const std::size_t n = 11;
  for (const auto& rule : rule_pool(3, 1, rng)) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rule, Memory::kWith);
    phasespace::BatchCodeStepper stepper(a);
    ASSERT_TRUE(stepper.batched()) << rules::describe(rule);
    const auto scalar = phasespace::synchronous_code_step(a);
    // Unaligned start, non-multiple-of-64 count, spanning several blocks.
    const StateCode first = 37;
    const std::size_t count = 3 * 64 + 21;
    std::vector<StateCode> got(count);
    stepper.step_range(first, count, got.data());
    for (std::size_t j = 0; j < count; ++j) {
      ASSERT_EQ(got[j], scalar(first + j))
          << rules::describe(rule) << " code " << first + j;
    }
  }
}

TEST(BatchCodeStepper, SweepModeMatchesScalarAdapter) {
  std::mt19937_64 rng(29);
  const std::size_t n = 8;
  std::vector<core::NodeId> order = {5, 2, 7, 0, 1, 6, 3, 4};
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  phasespace::BatchCodeStepper stepper(a, order);
  ASSERT_TRUE(stepper.batched());
  const auto scalar = phasespace::sweep_code_step(a, order);
  std::vector<StateCode> got(StateCode{1} << n);
  stepper.step_range(0, got.size(), got.data());
  for (StateCode s = 0; s < got.size(); ++s) {
    ASSERT_EQ(got[s], scalar(s)) << "code " << s;
  }
}

TEST(BatchCodeStepper, PhaseSpaceBuildersAgreeWithPerCodeConstruction) {
  const std::size_t n = 10;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto batch = phasespace::FunctionalGraph::synchronous(a);
  const phasespace::FunctionalGraph scalar(
      static_cast<std::uint32_t>(n), phasespace::synchronous_code_step(a));
  EXPECT_EQ(batch.successors(), scalar.successors());
}

TEST(BatchCodeStepper, FallbackCountsAndLogs) {
  // Non-homogeneous: per-node rules decline the batch engine.
  const std::size_t n = 4;
  const graph::Graph ring(4, std::vector<graph::Edge>{
                                 {0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::vector<rules::Rule> rules_per_node = {
      rules::majority(), rules::parity(), rules::majority(), rules::parity()};
  const auto a = Automaton::from_graph_per_node(ring, rules_per_node,
                                                Memory::kWith);
  std::vector<obs::LogRecord> captured;
  static obs::Counter& fallbacks = obs::counter("engine.batch.fallback");
  const auto before = fallbacks.value();
  {
    obs::ScopedLogSink sink(
        [&](const obs::LogRecord& r) { captured.push_back(r); });
    phasespace::BatchCodeStepper stepper(a);
    EXPECT_FALSE(stepper.batched());
    EXPECT_STREQ(stepper.fallback_reason(), "non-homogeneous automaton");
    note_batch_fallback(stepper, a, "test");
    // The scalar path still produces the right table.
    const auto scalar = phasespace::synchronous_code_step(a);
    std::vector<StateCode> got(StateCode{1} << n);
    stepper.step_range(0, got.size(), got.data());
    for (StateCode s = 0; s < got.size(); ++s) {
      ASSERT_EQ(got[s], scalar(s)) << "code " << s;
    }
  }
  EXPECT_EQ(fallbacks.value(), before + 1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].event, "engine.batch.fallback");
  EXPECT_EQ(captured[0].level, obs::LogLevel::kWarn);
}

TEST(GoeCensusExplicit, AgreesWithTransferMatrixOnRings) {
  for (const auto& rule : {rules::majority(), rules::parity()}) {
    for (const std::size_t n : {5u, 9u, 12u}) {
      const auto a =
          Automaton::line(n, 1, Boundary::kRing, rule, Memory::kWith);
      const phasespace::RingPreimageSolver solver(rule, 1, Memory::kWith);
      const auto expected = phasespace::count_gardens_of_eden_ring(solver, n);
      EXPECT_EQ(phasespace::count_gardens_of_eden_explicit(a), expected)
          << rules::describe(rule) << " n=" << n;
    }
  }
}

TEST(GoeCensusExplicit, WorksOffRingsAndOnFallbackAutomata) {
  // A path graph (not a ring) — outside the transfer-matrix solver's
  // domain; cross-check against the explicit phase space instead.
  const std::size_t n = 9;
  const auto a = Automaton::line(n, 1, Boundary::kFixedZero, rules::majority(),
                                 Memory::kWith);
  const auto fg = phasespace::FunctionalGraph::synchronous(a);
  std::vector<char> reached(fg.num_states(), 0);
  for (StateCode s = 0; s < fg.num_states(); ++s) reached[fg.succ(s)] = 1;
  std::uint64_t expected = 0;
  for (const char r : reached) expected += r == 0 ? 1 : 0;
  EXPECT_EQ(phasespace::count_gardens_of_eden_explicit(a), expected);
}

TEST(GoeCensusExplicit, BudgetTruncationReportsNoGardenCount) {
  const std::size_t n = 12;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  runtime::RunBudget budget;
  budget.max_states = 2000;  // < 2^12 sources
  runtime::RunControl control(budget);
  const auto census = phasespace::count_gardens_of_eden_explicit(a, control);
  EXPECT_TRUE(census.truncated);
  EXPECT_EQ(census.gardens, 0u);
  EXPECT_LT(census.scanned, StateCode{1} << n);
  EXPECT_EQ(census.stop_reason, runtime::StopReason::kMaxStates);
}

/// RAII environment override for the TCA_BATCH_ISA dispatch tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string old_;
  bool had_old_;
};

/// The first field value for `key`, or "" when absent.
std::string field_value(const obs::LogRecord& r, const char* key) {
  for (const auto& f : r.fields) {
    if (f.key != key) continue;
    if (const auto* s = std::get_if<std::string>(&f.value)) return *s;
  }
  return "";
}

TEST(BatchIsaDispatch, ScalarOverrideReproducesBitsliceExactly) {
  const std::size_t n = 10;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  // Reference table from the classic 64-lane engine, no dispatch involved.
  BatchStepper ref(a);
  std::vector<StateCode> want(StateCode{1} << n);
  BatchSlice src(n);
  BatchSlice dst(n);
  for (StateCode first = 0; first < want.size(); first += 64) {
    src.load_code_range(first, 64);
    ref.step(src, dst);
    dst.store_codes(std::span<StateCode>(want.data() + first, 64));
  }
  ScopedEnv pin("TCA_BATCH_ISA", "scalar");
  phasespace::BatchCodeStepper stepper(a);
  ASSERT_TRUE(stepper.batched());
  EXPECT_EQ(stepper.isa(), core::BatchIsa::kScalar);
  std::vector<StateCode> got(want.size());
  stepper.step_range(0, got.size(), got.data());
  EXPECT_EQ(got, want);
}

TEST(BatchIsaDispatch, ForcedTiersProduceIdenticalFunctionalGraphs) {
  const std::size_t n = 9;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  std::vector<StateCode> reference;
  {
    ScopedEnv pin("TCA_BATCH_ISA", "scalar");
    reference = phasespace::FunctionalGraph::synchronous(a).successors();
  }
  for (unsigned i = 0; i < core::kNumBatchIsa; ++i) {
    const auto isa = static_cast<core::BatchIsa>(i);
    if (!core::isa_available(isa)) continue;
    ScopedEnv pin("TCA_BATCH_ISA", core::isa_name(isa));
    phasespace::BatchCodeStepper stepper(a);
    ASSERT_TRUE(stepper.batched()) << core::isa_name(isa);
    EXPECT_EQ(stepper.isa(), isa);
    const auto fg = phasespace::FunctionalGraph::synchronous(a);
    EXPECT_EQ(fg.successors(), reference) << core::isa_name(isa);
  }
}

TEST(BatchIsaDispatch, UnavailableTierDegradesToBestWithWarn) {
  // Some tier is always unavailable: the NEON tier on x86-64 builds, the
  // AVX tiers on aarch64 builds.
  const char* unavailable = nullptr;
  for (unsigned i = 0; i < core::kNumBatchIsa; ++i) {
    const auto isa = static_cast<core::BatchIsa>(i);
    if (!core::isa_available(isa)) {
      unavailable = core::isa_name(isa);
      break;
    }
  }
  if (unavailable == nullptr) {
    GTEST_SKIP() << "every tier is available on this host";
  }
  const std::size_t n = 8;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  std::vector<StateCode> reference(StateCode{1} << n);
  phasespace::batch_code_step(a, 0, reference.size(), reference.data());

  static obs::Counter& fallbacks = obs::counter("engine.batch.fallback");
  std::vector<obs::LogRecord> captured;
  const auto before = fallbacks.value();
  ScopedEnv pin("TCA_BATCH_ISA", unavailable);
  {
    obs::ScopedLogSink sink(
        [&](const obs::LogRecord& r) { captured.push_back(r); });
    phasespace::BatchCodeStepper stepper(a);
    // Degrades, but still batched at the best available tier.
    ASSERT_TRUE(stepper.batched());
    EXPECT_EQ(stepper.isa(), core::best_supported_isa());
    std::vector<StateCode> got(reference.size());
    stepper.step_range(0, got.size(), got.data());
    EXPECT_EQ(got, reference);
    // Same override again: the warn is latched, not repeated.
    phasespace::BatchCodeStepper again(a);
    EXPECT_EQ(again.isa(), core::best_supported_isa());
  }
  EXPECT_EQ(fallbacks.value(), before + 1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].event, "engine.batch.fallback");
  EXPECT_EQ(captured[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(field_value(captured[0], "context"), "isa-dispatch");
  EXPECT_EQ(field_value(captured[0], "requested"), unavailable);
  EXPECT_EQ(field_value(captured[0], "effective"),
            core::isa_name(core::best_supported_isa()));
}

TEST(BatchIsaDispatch, UnrecognizedOverrideDegradesToBestWithWarn) {
  const std::size_t n = 6;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  static obs::Counter& fallbacks = obs::counter("engine.batch.fallback");
  std::vector<obs::LogRecord> captured;
  const auto before = fallbacks.value();
  ScopedEnv pin("TCA_BATCH_ISA", "not-an-isa");
  {
    obs::ScopedLogSink sink(
        [&](const obs::LogRecord& r) { captured.push_back(r); });
    phasespace::BatchCodeStepper stepper(a);
    ASSERT_TRUE(stepper.batched());
    EXPECT_EQ(stepper.isa(), core::best_supported_isa());
  }
  EXPECT_EQ(fallbacks.value(), before + 1);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(field_value(captured[0], "context"), "isa-dispatch");
  EXPECT_EQ(field_value(captured[0], "reason"),
            "unrecognized TCA_BATCH_ISA value");
}

TEST(BatchCodeStep, OneShotEntryPointMatchesScalar) {
  const std::size_t n = 7;
  const auto a = Automaton::line(n, 2, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto scalar = phasespace::synchronous_code_step(a);
  std::vector<StateCode> got(StateCode{1} << n);
  phasespace::batch_code_step(a, 0, got.size(), got.data());
  for (StateCode s = 0; s < got.size(); ++s) {
    ASSERT_EQ(got[s], scalar(s)) << "code " << s;
  }
}

}  // namespace
}  // namespace tca
