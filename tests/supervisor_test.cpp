// Supervisor semantics (src/runtime/supervisor.hpp, docs/robustness.md):
// transient failures retry with recorded backoff, terminal failures latch
// on the first attempt, memory pressure walks the engine-degradation
// ladder one rung per retry (with the engine.degrade.<rung> counters and
// the latched warn-then-info "engine.degraded" events), truncation is a
// successful outcome and is never retried, and the overall deadline
// bounds the run even when retries remain.

#include "runtime/supervisor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::runtime {
namespace {

using std::chrono::milliseconds;

/// Fast policy for tests: delays are recorded but never slept on.
SupervisorOptions fast_options(std::uint32_t max_attempts = 5) {
  SupervisorOptions options;
  options.retry.max_attempts = max_attempts;
  options.retry.initial_backoff = milliseconds{1};
  options.retry.max_backoff = milliseconds{4};
  options.retry.seed = 0xFEEDull;
  options.apply_backoff = false;
  return options;
}

TEST(Supervisor, SuccessOnFirstAttempt) {
  Supervisor sup(fast_options());
  std::vector<std::uint32_t> attempts_seen;
  const auto report = sup.run("test.first", [&](AttemptContext& ctx) {
    attempts_seen.push_back(ctx.attempt);
    EXPECT_EQ(ctx.rung, EngineRung::kWideSimd);
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(attempts_seen, (std::vector<std::uint32_t>{1}));
}

TEST(Supervisor, TransientFailureRetriesThenSucceeds) {
  Supervisor sup(fast_options());
  const auto report = sup.run("test.transient", [&](AttemptContext& ctx) {
    if (ctx.attempt < 3) {
      throw tca::InjectedFaultError("transient wobble");
    }
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_EQ(report.attempts, 3u);
  ASSERT_EQ(report.failures.size(), 2u);
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    EXPECT_EQ(report.failures[i].attempt, i + 1);
    EXPECT_EQ(report.failures[i].cls, FailureClass::kTransient);
    EXPECT_EQ(report.failures[i].code, ErrorCode::kFaultInjected);
    // The recorded backoff is the policy's deterministic schedule entry.
    EXPECT_EQ(report.failures[i].backoff,
              backoff_delay(sup.options().retry,
                            static_cast<std::uint32_t>(i + 1)));
  }
}

TEST(Supervisor, TerminalFailureLatchesWithoutRetry) {
  Supervisor sup(fast_options());
  std::uint32_t calls = 0;
  std::vector<obs::LogRecord> events;
  obs::ScopedLogSink sink(
      [&](const obs::LogRecord& r) { events.push_back(r); });
  const auto report = sup.run("test.terminal", [&](AttemptContext&) -> AttemptOutcome {
    ++calls;
    throw tca::InvalidArgumentError("caller bug");
  });
  EXPECT_EQ(report.state, SupervisedState::kFailed);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(calls, 1u) << "terminal failures must not retry";
  EXPECT_EQ(report.last_error, ErrorCode::kInvalidArgument);
  EXPECT_EQ(report.last_error_what, "caller bug");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event, "supervisor.terminal_failure");
  EXPECT_EQ(events[0].level, obs::LogLevel::kWarn);
}

TEST(Supervisor, ExhaustedRetriesFail) {
  Supervisor sup(fast_options(3));
  std::uint32_t calls = 0;
  std::vector<obs::LogRecord> events;
  obs::ScopedLogSink sink(
      [&](const obs::LogRecord& r) { events.push_back(r); });
  const auto report = sup.run("test.exhaust", [&](AttemptContext&) -> AttemptOutcome {
    ++calls;
    throw tca::RuntimeError("io keeps failing", tca::ErrorCode::kIo);
  });
  EXPECT_EQ(report.state, SupervisedState::kFailed);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(report.attempts, 3u);
  ASSERT_EQ(report.failures.size(), 3u);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().event, "supervisor.gave_up");
}

TEST(Supervisor, RetryTransientKnobForcesOneRetry) {
  ScopedFaultPlan plan({.retry_transient_at = 1});
  Supervisor sup(fast_options());
  std::uint32_t body_calls = 0;
  const auto report = sup.run("test.knob", [&](AttemptContext&) {
    ++body_calls;
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(body_calls, 1u)
      << "the injected failure fires at attempt entry, before the body";
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].code, ErrorCode::kFaultInjected);
}

TEST(Supervisor, PressureWalksTheLadderToTheFloor) {
  obs::Counter& to_batch = obs::counter("engine.degrade.batch64");
  obs::Counter& to_packed = obs::counter("engine.degrade.packed");
  obs::Counter& to_scalar = obs::counter("engine.degrade.scalar");
  const auto batch_before = to_batch.value();
  const auto packed_before = to_packed.value();
  const auto scalar_before = to_scalar.value();

  std::vector<obs::LogRecord> events;
  obs::ScopedLogSink sink(
      [&](const obs::LogRecord& r) { events.push_back(r); });

  Supervisor sup(fast_options(6));
  std::vector<EngineRung> rungs;
  const auto report = sup.run("test.ladder", [&](AttemptContext& ctx) {
    rungs.push_back(ctx.rung);
    if (ctx.attempt <= 3) throw std::bad_alloc{};
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.final_rung, EngineRung::kScalar);
  EXPECT_EQ(rungs,
            (std::vector<EngineRung>{EngineRung::kWideSimd,
                                     EngineRung::kBatch64, EngineRung::kPacked,
                                     EngineRung::kScalar}));
  EXPECT_EQ(to_batch.value(), batch_before + 1);
  EXPECT_EQ(to_packed.value(), packed_before + 1);
  EXPECT_EQ(to_scalar.value(), scalar_before + 1);

  // Latched severity: the FIRST walk down warns, further rungs are info.
  std::vector<obs::LogLevel> degrade_levels;
  for (const auto& r : events) {
    if (r.event == "engine.degraded") degrade_levels.push_back(r.level);
  }
  ASSERT_EQ(degrade_levels.size(), 3u);
  EXPECT_EQ(degrade_levels[0], obs::LogLevel::kWarn);
  EXPECT_EQ(degrade_levels[1], obs::LogLevel::kInfo);
  EXPECT_EQ(degrade_levels[2], obs::LogLevel::kInfo);
}

TEST(Supervisor, ScalarIsTheFloor) {
  auto options = fast_options(4);
  options.start_rung = EngineRung::kScalar;
  Supervisor sup(options);
  std::vector<EngineRung> rungs;
  const auto report = sup.run("test.floor", [&](AttemptContext& ctx) {
    rungs.push_back(ctx.rung);
    if (ctx.attempt == 1) throw std::bad_alloc{};
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_FALSE(report.degraded) << "there is no rung below scalar";
  EXPECT_EQ(rungs, (std::vector<EngineRung>{EngineRung::kScalar,
                                            EngineRung::kScalar}));
}

TEST(Supervisor, NonPressureTransientKeepsTheRung) {
  Supervisor sup(fast_options(3));
  std::vector<EngineRung> rungs;
  const auto report = sup.run("test.keep_rung", [&](AttemptContext& ctx) {
    rungs.push_back(ctx.rung);
    if (ctx.attempt == 1) {
      throw tca::RuntimeError("flaky disk", tca::ErrorCode::kIo);
    }
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(rungs, (std::vector<EngineRung>{EngineRung::kWideSimd,
                                            EngineRung::kWideSimd}));
}

TEST(Supervisor, DegradeOnPressureCanBeDisabled) {
  auto options = fast_options(3);
  options.degrade_on_pressure = false;
  Supervisor sup(options);
  std::vector<EngineRung> rungs;
  const auto report = sup.run("test.no_degrade", [&](AttemptContext& ctx) {
    rungs.push_back(ctx.rung);
    if (ctx.attempt == 1) throw std::bad_alloc{};
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(rungs, (std::vector<EngineRung>{EngineRung::kWideSimd,
                                            EngineRung::kWideSimd}));
}

TEST(Supervisor, TruncationIsSuccessNotRetried) {
  auto options = fast_options();
  options.attempt_budget.max_states = 4;
  Supervisor sup(options);
  std::uint32_t calls = 0;
  const auto report = sup.run("test.truncate", [&](AttemptContext& ctx) {
    ++calls;
    // A budgeted engine: charge states until the budget trips, then
    // return the well-formed partial.
    while (ctx.control.note_states(1) == StopReason::kNone) {
    }
    return AttemptOutcome::kTruncated;
  });
  EXPECT_EQ(report.state, SupervisedState::kTruncated);
  EXPECT_TRUE(report.ok()) << "truncation is a well-formed outcome";
  EXPECT_EQ(calls, 1u) << "truncation must never be retried";
  EXPECT_EQ(report.last_status.stop_reason, StopReason::kMaxStates);
}

TEST(Supervisor, ExpiredDeadlineFailsBeforeTheFirstAttempt) {
  auto options = fast_options();
  options.deadline = std::chrono::steady_clock::duration::zero();
  Supervisor sup(options);
  std::uint32_t calls = 0;
  const auto report = sup.run("test.deadline", [&](AttemptContext&) {
    ++calls;
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kFailed);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(report.attempts, 0u);
  EXPECT_EQ(report.last_error, ErrorCode::kBudgetExhausted);
}

TEST(Supervisor, CancelledTokenShortCircuitsToTruncated) {
  auto options = fast_options();
  options.token.cancel();
  Supervisor sup(options);
  std::uint32_t calls = 0;
  const auto report = sup.run("test.cancel", [&](AttemptContext&) {
    ++calls;
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kTruncated);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(report.last_status.stop_reason, StopReason::kCancelled);
}

TEST(Supervisor, AttemptBudgetWallLimitIsCarvedFromDeadline) {
  auto options = fast_options();
  options.deadline = std::chrono::hours{1};
  // No per-attempt wall limit: the attempt inherits the remaining
  // deadline, so its control MUST have a wall limit < 1h.
  Supervisor sup(options);
  const auto report = sup.run("test.carve", [&](AttemptContext& ctx) {
    const auto& budget = ctx.control.budget();
    EXPECT_TRUE(budget.wall_limit.has_value());
    EXPECT_LE(*budget.wall_limit, std::chrono::hours{1});
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(report.state, SupervisedState::kCompleted);
}

TEST(Supervisor, CountersAccountEveryOutcome) {
  obs::Counter& runs = obs::counter("supervisor.runs");
  obs::Counter& retries = obs::counter("supervisor.retries");
  obs::Counter& completed = obs::counter("supervisor.completed");
  const auto runs_before = runs.value();
  const auto retries_before = retries.value();
  const auto completed_before = completed.value();

  Supervisor sup(fast_options());
  (void)sup.run("test.counters", [&](AttemptContext& ctx) -> AttemptOutcome {
    if (ctx.attempt == 1) throw tca::InjectedFaultError("once");
    return AttemptOutcome::kCompleted;
  });
  EXPECT_EQ(runs.value(), runs_before + 1);
  EXPECT_EQ(retries.value(), retries_before + 1);
  EXPECT_EQ(completed.value(), completed_before + 1);
}

TEST(Supervisor, RungNamesAndOrderAreStable) {
  EXPECT_STREQ(rung_name(EngineRung::kWideSimd), "wide-simd");
  EXPECT_STREQ(rung_name(EngineRung::kBatch64), "batch64");
  EXPECT_STREQ(rung_name(EngineRung::kPacked), "packed");
  EXPECT_STREQ(rung_name(EngineRung::kScalar), "scalar");
  EXPECT_EQ(rung_below(EngineRung::kWideSimd), EngineRung::kBatch64);
  EXPECT_EQ(rung_below(EngineRung::kBatch64), EngineRung::kPacked);
  EXPECT_EQ(rung_below(EngineRung::kPacked), EngineRung::kScalar);
  EXPECT_EQ(rung_below(EngineRung::kScalar), EngineRung::kScalar);
  EXPECT_STREQ(supervised_state_name(SupervisedState::kCompleted),
               "completed");
  EXPECT_STREQ(supervised_state_name(SupervisedState::kTruncated),
               "truncated");
  EXPECT_STREQ(supervised_state_name(SupervisedState::kFailed), "failed");
}

}  // namespace
}  // namespace tca::runtime
