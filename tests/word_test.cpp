// Unit tests for word dynamical systems (src/sds/word.hpp).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/schedule.hpp"
#include "graph/builders.hpp"
#include "phasespace/classify.hpp"
#include "sds/sds.hpp"
#include "sds/word.hpp"

namespace tca::sds {
namespace {

using core::Boundary;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(WordSystem, ValidatesNodeIds) {
  const auto a = majority_ring(4);
  EXPECT_THROW(WordSystem(a, {0, 4}), std::invalid_argument);
  EXPECT_NO_THROW(WordSystem(a, {0, 0, 0}));  // repetition allowed
  EXPECT_NO_THROW(WordSystem(a, {}));         // empty word allowed
}

TEST(WordSystem, CoversAllNodes) {
  const auto a = majority_ring(4);
  EXPECT_TRUE(WordSystem(a, {3, 2, 1, 0}).covers_all_nodes());
  EXPECT_TRUE(WordSystem(a, {0, 1, 1, 2, 3, 0}).covers_all_nodes());
  EXPECT_FALSE(WordSystem(a, {0, 1, 2}).covers_all_nodes());
  EXPECT_FALSE(WordSystem(a, {}).covers_all_nodes());
}

TEST(WordSystem, EmptyWordIsIdentity) {
  const auto a = majority_ring(6);
  const WordSystem w(a, {});
  for (StateCode s = 0; s < 64; ++s) EXPECT_EQ(w.apply(s), s);
}

TEST(WordSystem, PermutationWordMatchesSds) {
  const auto a = majority_ring(8);
  const auto order = core::reversed_order(8);
  const WordSystem w(a, order);
  const Sds sds(a, order);
  for (StateCode s = 0; s < 256; ++s) {
    EXPECT_EQ(w.apply(s), sds.sweep(s)) << s;
  }
}

TEST(WordSystem, AutomatonFixedPointsAreWordFixedPoints) {
  // Every automaton fixed point is fixed under EVERY word, covering or not.
  const auto a = majority_ring(8);
  const std::vector<std::vector<NodeId>> words{
      {}, {0}, {3, 3, 3}, {0, 1, 2, 3, 4, 5, 6, 7}, {7, 1, 7, 1, 2}};
  const WordSystem probe(a, {});
  const auto fps = probe.automaton_fixed_points();
  ASSERT_FALSE(fps.empty());
  for (const auto& word : words) {
    const WordSystem w(a, word);
    for (const StateCode fp : fps) {
      EXPECT_EQ(w.apply(fp), fp) << "word size " << word.size();
    }
  }
}

TEST(WordSystem, CoveringThresholdWordsHaveExactlyAutomatonFixedPoints) {
  // For monotone threshold rules, a word containing every node fixes a
  // state iff no single update changes it: each update can only happen
  // "forward" (energy strictly decreases), so a non-FP state must change
  // during a covering word.
  const auto a = majority_ring(8);
  const std::vector<std::vector<NodeId>> covering{
      {0, 1, 2, 3, 4, 5, 6, 7},
      {7, 6, 5, 4, 3, 2, 1, 0},
      {0, 0, 1, 2, 1, 3, 4, 5, 6, 7, 7},
  };
  const WordSystem probe(a, {});
  const auto automaton_fps = probe.automaton_fixed_points();
  for (const auto& word : covering) {
    const WordSystem w(a, word);
    EXPECT_EQ(w.map_fixed_points(), automaton_fps)
        << "word size " << word.size();
  }
}

TEST(WordSystem, OmittingWordsGainSpuriousFixedPoints) {
  // A word that skips a node can freeze states the automaton would move.
  const auto a = majority_ring(8);
  const WordSystem partial(a, {0, 1, 2, 3});  // nodes 4..7 never update
  const WordSystem probe(a, {});
  const auto automaton_fps = probe.automaton_fixed_points();
  const auto word_fps = partial.map_fixed_points();
  EXPECT_GT(word_fps.size(), automaton_fps.size());
  // ...but never loses any.
  for (const StateCode fp : automaton_fps) {
    EXPECT_TRUE(std::binary_search(word_fps.begin(), word_fps.end(), fp));
  }
}

TEST(WordSystem, CoveringWordPhaseSpaceIsCycleFreeForMajority) {
  // Theorem 1 extends to repeated-node words: the word map is a
  // composition of single updates, so its orbit visits only
  // single-update-reachable states; the energy argument still forbids
  // revisits.
  const auto a = majority_ring(8);
  const WordSystem w(a, {0, 3, 3, 1, 6, 2, 5, 4, 7, 0});
  const auto cls = phasespace::classify(w.phase_space());
  EXPECT_FALSE(cls.has_proper_cycle());
}

TEST(WordSystem, NonCoveringWordPhaseSpaceStillCycleFreeForMajority) {
  const auto a = majority_ring(8);
  const WordSystem w(a, {2, 4, 2});
  const auto cls = phasespace::classify(w.phase_space());
  EXPECT_FALSE(cls.has_proper_cycle());
}

TEST(WordSystem, ParityWordsCanCycle) {
  // Parity control: a single-node word is an involution on non-fixed
  // states — period 2 in its phase space.
  const auto g = graph::complete(2);
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const WordSystem w(a, {0});
  const auto cls = phasespace::classify(w.phase_space());
  EXPECT_TRUE(cls.has_proper_cycle());
}

}  // namespace
}  // namespace tca::sds
