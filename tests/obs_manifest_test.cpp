// RunManifest serialization and file handling (src/obs/manifest.hpp):
// schema fields present and well-formed, $TCA_RESULTS_DIR routing, atomic
// writes, and try_write's no-throw contract.

#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::obs {
namespace {

namespace fs = std::filesystem;

RunManifest sample_manifest() {
  RunManifest m;
  m.tool = "unit_test_tool";
  m.status = "PASS";
  m.seed = 424242;
  m.argv = {"./unit_test_tool", "--flag"};
  m.stop_reason = "none";
  m.wall_ms = 12.5;
  m.budgets["watchdog_s"] = "30";
  m.checks.push_back({"check one", "PASS", ""});
  m.checks.push_back({"check two", "FAIL", "expected 3, got 4"});
  m.benchmarks.push_back({"BM_Something/64", 123.4, "ns", 5.5e8, 1000});
  m.extra["note"] = "free-form";
  return m;
}

TEST(Manifest, JsonContainsSchemaFields) {
  const std::string json = sample_manifest().to_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"unit_test_tool\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"PASS\""), std::string::npos);
  EXPECT_NE(json.find("\"created_unix_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":424242"), std::string::npos);
  EXPECT_NE(json.find("\"stop_reason\":\"none\""), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_s\":\"30\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"check one\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"expected 3, got 4\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"BM_Something/64\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"free-form\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(json.back(), '}') << "document must close the top-level object";
}

TEST(Manifest, UnsetSeedSerializesAsNull) {
  RunManifest m = sample_manifest();
  m.seed.reset();
  EXPECT_NE(m.to_json().find("\"seed\":null"), std::string::npos);
}

TEST(Manifest, MetricsCanBeExcluded) {
  RunManifest m = sample_manifest();
  m.include_metrics = false;
  const std::string json = m.to_json();
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(Manifest, ResultsDirHonorsEnvOverride) {
  ASSERT_EQ(setenv("TCA_RESULTS_DIR", "/tmp/custom_results", 1), 0);
  EXPECT_EQ(results_dir(), "/tmp/custom_results");
  EXPECT_EQ(manifest_path("tool"),
            "/tmp/custom_results/tool.manifest.json");
  ASSERT_EQ(unsetenv("TCA_RESULTS_DIR"), 0);
  EXPECT_EQ(results_dir(), "results");
  EXPECT_EQ(manifest_path("tool"), "results/tool.manifest.json");
}

TEST(Manifest, WriteCreatesParentDirsAndIsParseableJson) {
  const fs::path dir =
      fs::temp_directory_path() / "tca_obs_manifest_test" / "nested";
  fs::remove_all(dir.parent_path());
  const std::string path = (dir / "m.manifest.json").string();
  Counter& writes = counter("manifest.writes");
  const std::uint64_t before = writes.value();
  sample_manifest().write(path);
  EXPECT_EQ(writes.value(), before + 1);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.back(), '\n');
  EXPECT_EQ(content[0], '{');
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp file must be renamed away";
  fs::remove_all(dir.parent_path());
}

TEST(Manifest, TryWriteReportsFailureWithoutThrowing) {
  // A path whose "parent directory" is a regular file cannot be created.
  const fs::path block = fs::temp_directory_path() / "tca_obs_manifest_block";
  { std::ofstream(block.string()) << "occupied"; }
  const std::string path = (block / "sub" / "m.manifest.json").string();
  EXPECT_FALSE(sample_manifest().try_write(path));
  EXPECT_THROW(sample_manifest().write(path), tca::RuntimeError);
  fs::remove(block);
}

}  // namespace
}  // namespace tca::obs
