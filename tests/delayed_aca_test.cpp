// Unit tests for the stochastic bounded-asynchrony simulator
// (src/aca/delayed.hpp).

#include <gtest/gtest.h>

#include "aca/delayed.hpp"
#include "core/automaton.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"

namespace tca::aca {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(DelayedAca, FullRatesOnBlinkerNeverQuiesce) {
  // compute_rate = deliver_rate = 1 reproduces the classical parallel CA:
  // the blinker oscillates forever and the run hits the tick cap.
  const AcaSystem sys(majority_ring(8));
  DelayedParams params;
  params.max_ticks = 2000;
  const auto run = run_delayed(sys, 0b01010101, params, 1);
  EXPECT_FALSE(run.quiesced);
  EXPECT_EQ(run.ticks, 2000u);
}

TEST(DelayedAca, FullRatesMatchSynchronousTrajectory) {
  // With both rates at 1 the config projection follows the synchronous
  // orbit exactly.
  const auto a = majority_ring(10);
  const AcaSystem sys(a);
  DelayedParams params;
  params.max_ticks = 5;
  const StateCode start = 0b0110110010;
  const auto run = run_delayed(sys, start, params, 7);
  auto c = core::Configuration::from_bits(start, 10);
  // If the orbit reaches a fixed point before 5 ticks the run quiesces at
  // it; otherwise compare at tick 5.
  for (std::uint64_t t = 0; t < run.ticks; ++t) {
    core::advance_synchronous(a, c, 1);
  }
  EXPECT_EQ(run.final_config, c.to_bits());
}

TEST(DelayedAca, PartialRatesBreakTheBlinker) {
  // Random subset updates (deliver_rate 1, compute_rate 0.5) destroy the
  // perfect synchrony the two-cycle depends on: the run quiesces.
  const AcaSystem sys(majority_ring(8));
  DelayedParams params;
  params.compute_rate = 0.5;
  params.max_ticks = 1u << 16;
  const auto run = run_delayed(sys, 0b01010101, params, 11);
  EXPECT_TRUE(run.quiesced);
  // The final configuration is a genuine fixed point of the automaton.
  const auto a = majority_ring(8);
  const auto c = core::Configuration::from_bits(run.final_config, 8);
  EXPECT_TRUE(core::is_fixed_point_sequential(a, c));
}

TEST(DelayedAca, SlowLinksStillConverge) {
  const AcaSystem sys(majority_ring(8));
  DelayedParams params;
  params.compute_rate = 0.5;
  params.deliver_rate = 0.2;
  params.max_ticks = 1u << 18;
  const auto run = run_delayed(sys, 0b00110101, params, 3);
  EXPECT_TRUE(run.quiesced);
  EXPECT_GT(run.total_delivers, 0u);
  EXPECT_GT(run.total_computes, 0u);
}

TEST(DelayedAca, DeterministicUnderSeed) {
  const AcaSystem sys(majority_ring(8));
  DelayedParams params;
  params.compute_rate = 0.3;
  params.deliver_rate = 0.7;
  const auto r1 = run_delayed(sys, 0b01010101, params, 42);
  const auto r2 = run_delayed(sys, 0b01010101, params, 42);
  EXPECT_EQ(r1.final_config, r2.final_config);
  EXPECT_EQ(r1.ticks, r2.ticks);
  EXPECT_EQ(r1.total_computes, r2.total_computes);
}

TEST(DelayedAca, QuiescentStartTakesZeroTicks) {
  const AcaSystem sys(majority_ring(8));
  DelayedParams params;
  const auto run = run_delayed(sys, 0b00001111, params, 5);
  EXPECT_TRUE(run.quiesced);
  EXPECT_EQ(run.ticks, 0u);
  EXPECT_EQ(run.final_config, 0b00001111u);
}

TEST(DelayedAca, MeasureAggregatesTrials) {
  const AcaSystem sys(majority_ring(8));
  DelayedParams params;
  params.compute_rate = 0.5;
  params.max_ticks = 1u << 16;
  const auto stats = measure_delayed(sys, 0b01010101, params, 10, 100);
  EXPECT_EQ(stats.trials, 10u);
  EXPECT_EQ(stats.quiesced, 10u);
  EXPECT_GT(stats.mean_ticks, 0.0);
  EXPECT_GE(stats.max_ticks, stats.mean_ticks);
}

TEST(DelayedAca, SlowerDeliveryMeansSlowerConvergence) {
  // Communication delay should not change WHERE we land (a fixed point)
  // but should increase HOW LONG it takes, on average.
  const AcaSystem sys(majority_ring(10));
  DelayedParams fast;
  fast.compute_rate = 0.5;
  fast.deliver_rate = 1.0;
  fast.max_ticks = 1u << 18;
  DelayedParams slow = fast;
  slow.deliver_rate = 0.05;
  const StateCode start = 0b0101010101;
  const auto fast_stats = measure_delayed(sys, start, fast, 20, 7);
  const auto slow_stats = measure_delayed(sys, start, slow, 20, 7);
  EXPECT_EQ(fast_stats.quiesced, 20u);
  EXPECT_EQ(slow_stats.quiesced, 20u);
  EXPECT_GT(slow_stats.mean_ticks, fast_stats.mean_ticks);
}

}  // namespace
}  // namespace tca::aca
