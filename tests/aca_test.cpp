// Unit tests for the asynchronous CA model (src/aca) — the paper's
// Section 4 proposal and its subsumption claim.

#include <gtest/gtest.h>

#include "aca/aca.hpp"
#include "aca/explorer.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"

namespace tca::aca {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

Automaton parity_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                         Memory::kWith);
}

TEST(AcaSystem, ChannelCountExcludesSelfInputs) {
  // Radius-1 ring with memory: 3 inputs per node, one of them self, so two
  // channels per node.
  const AcaSystem sys(majority_ring(5));
  EXPECT_EQ(sys.num_channels(), 10u);
  EXPECT_EQ(sys.num_actions(), 15u);
}

TEST(AcaSystem, RejectsTooManyBits) {
  EXPECT_THROW(AcaSystem(majority_ring(22)), std::invalid_argument);
}

TEST(AcaSystem, InitialStateIsConsistentSnapshot) {
  const AcaSystem sys(majority_ring(5));
  const AcaState s = sys.initial(0b10110);
  EXPECT_EQ(sys.config_of(s), 0b10110u);
  // A consistent snapshot: delivering any channel changes nothing.
  for (std::uint32_t c = 0; c < sys.num_channels(); ++c) {
    EXPECT_EQ(sys.apply(s, Action{Action::Kind::kDeliver, c}), s);
  }
}

TEST(AcaSystem, SynchronousMacroStepMatchesEngine) {
  const auto a = majority_ring(6);
  const AcaSystem sys(a);
  for (StateCode x = 0; x < 64; ++x) {
    const AcaState after = sys.synchronous_macro_step(sys.initial(x));
    const auto c = core::Configuration::from_bits(x, 6);
    EXPECT_EQ(sys.config_of(after), core::step_synchronous(a, c).to_bits())
        << x;
  }
}

TEST(AcaSystem, SequentialMacroUpdateMatchesEngine) {
  const auto a = majority_ring(6);
  const AcaSystem sys(a);
  for (StateCode x = 0; x < 64; ++x) {
    for (core::NodeId v = 0; v < 6; ++v) {
      const AcaState after = sys.sequential_macro_update(sys.initial(x), v);
      auto c = core::Configuration::from_bits(x, 6);
      core::update_node(a, c, v);
      EXPECT_EQ(sys.config_of(after), c.to_bits()) << "x=" << x << " v=" << v;
    }
  }
}

TEST(AcaSystem, StaleReadsAllowOldValuesToPropagate) {
  // Compute BEFORE deliver uses the stale snapshot: from 110 on a 3-ring
  // majority, flip node 0 via fresh values, then compute node 2 with its
  // channels still holding the ORIGINAL state.
  const auto a = majority_ring(3);
  const AcaSystem sys(a);
  AcaState s = sys.initial(0b011);  // cells: x0=1, x1=1, x2=0
  // Node 2 computes from stale channels (x0=1, x1=1): majority(1,1,0) = 1.
  s = sys.apply(s, Action{Action::Kind::kCompute, 2});
  EXPECT_EQ(sys.config_of(s), 0b111u);
}

TEST(Quiescence, UniformStatesAreQuiescent) {
  const AcaSystem sys(majority_ring(5));
  EXPECT_TRUE(sys.quiescent(sys.initial(0b00000)));
  EXPECT_TRUE(sys.quiescent(sys.initial(0b11111)));
  EXPECT_FALSE(sys.quiescent(sys.initial(0b00100)));
}

TEST(Quiescence, StaleChannelIsNotQuiescent) {
  const AcaSystem sys(majority_ring(5));
  AcaState s = sys.initial(0b00100);
  // Flip node 2 to 0 by computing it (its neighbors are 0).
  s = sys.apply(s, Action{Action::Kind::kCompute, 2});
  EXPECT_EQ(sys.config_of(s), 0u);
  // Node states are uniform zero, but some channels still carry the old 1.
  EXPECT_FALSE(sys.quiescent(s));
}

TEST(Explore, SubsumesClassicalAndSequentialOnMajorityRings) {
  for (const std::size_t n : {4u, 5u, 6u}) {
    const auto a = majority_ring(n);
    // The alternating-ish start exercises the blinker where possible.
    StateCode start = 0;
    for (std::size_t i = 0; i < n; i += 2) start |= StateCode{1} << i;
    const auto verdict = compare_reach_sets(a, start);
    EXPECT_TRUE(verdict.contains_synchronous) << n;
    EXPECT_TRUE(verdict.contains_sequential) << n;
  }
}

TEST(Explore, SubsumesClassicalAndSequentialOnParityRings) {
  for (const std::size_t n : {3u, 4u, 5u}) {
    const auto a = parity_ring(n);
    const auto verdict = compare_reach_sets(a, 1);
    EXPECT_TRUE(verdict.contains_synchronous) << n;
    EXPECT_TRUE(verdict.contains_sequential) << n;
  }
}

TEST(Explore, AsynchronyIsStrictlyRicherForXor) {
  // Two-node XOR: sequentially 00 is unreachable from 11 and 01/10 — but
  // an ACA schedule reaches it (both nodes compute from the consistent
  // snapshot of 11, i.e. the parallel step is one of the interleavings of
  // ACA actions). Starting from 01, even the union of classical and
  // sequential reach sets misses states ACA can produce.
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  const auto verdict = compare_reach_sets(a, 0b01);
  EXPECT_TRUE(verdict.contains_synchronous);
  EXPECT_TRUE(verdict.contains_sequential);
  EXPECT_EQ(verdict.aca_total, 4u);  // everything is asynchronously reachable
}

TEST(Explore, ReachSetHelpersAgreeWithDefinitions) {
  const auto a = majority_ring(4);
  const auto sync = reach_synchronous(a, 0b0101);
  // Parallel orbit of the blinker: exactly the two alternating states.
  EXPECT_EQ(sync, (std::set<StateCode>{0b0101, 0b1010}));
  const auto seq = reach_sequential(a, 0b0101);
  // Sequentially the blinker can decay to many states; must contain start.
  EXPECT_TRUE(seq.contains(0b0101));
  EXPECT_FALSE(seq.contains(0b1010));  // Lemma 1(ii) in reach-set form
}

TEST(RandomRun, ConvergesOnMajorityRing) {
  const AcaSystem sys(majority_ring(8));
  const auto result = run_random(sys, 0b01010101, /*seed=*/3, 100000);
  EXPECT_TRUE(result.quiesced);
  // The final configuration is a fixed point of the classical automaton.
  const auto a = majority_ring(8);
  const auto c = core::Configuration::from_bits(result.final_config, 8);
  EXPECT_TRUE(core::is_fixed_point_sequential(a, c));
}

TEST(RandomRun, DeterministicUnderSeed) {
  const AcaSystem sys(majority_ring(8));
  const auto r1 = run_random(sys, 0b00110101, 9, 100000);
  const auto r2 = run_random(sys, 0b00110101, 9, 100000);
  EXPECT_EQ(r1.final_config, r2.final_config);
  EXPECT_EQ(r1.actions, r2.actions);
}

TEST(Actions, IndexRoundTrip) {
  const AcaSystem sys(majority_ring(4));
  for (std::uint32_t i = 0; i < sys.num_actions(); ++i) {
    const Action a = sys.action(i);
    if (i < sys.num_channels()) {
      EXPECT_EQ(a.kind, Action::Kind::kDeliver);
      EXPECT_EQ(a.index, i);
    } else {
      EXPECT_EQ(a.kind, Action::Kind::kCompute);
      EXPECT_EQ(a.index, i - sys.num_channels());
    }
  }
}

}  // namespace
}  // namespace tca::aca
