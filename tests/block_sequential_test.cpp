// Unit tests for the block-sequential scheme (src/core/block_sequential.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/block_sequential.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(BlockOrder, ValidatesPartition) {
  EXPECT_THROW(BlockOrder({{0, 1}, {1, 2}}, 3), std::invalid_argument);  // dup
  EXPECT_THROW(BlockOrder({{0, 1}}, 3), std::invalid_argument);  // missing 2
  EXPECT_THROW(BlockOrder({{0}, {}, {1, 2}}, 3), std::invalid_argument);
  EXPECT_THROW(BlockOrder({{0, 3}}, 3), std::invalid_argument);  // range
  EXPECT_NO_THROW(BlockOrder({{2, 0}, {1}}, 3));
}

TEST(BlockSequential, OneBlockEqualsSynchronousStep) {
  const auto a = majority_ring(10);
  const auto order = BlockOrder::synchronous(10);
  for (std::uint64_t bits = 0; bits < 1024; bits += 17) {
    auto c = Configuration::from_bits(bits, 10);
    const auto expected = step_synchronous(a, c);
    step_block_sequential(a, c, order);
    EXPECT_EQ(c, expected) << bits;
  }
}

TEST(BlockSequential, SingletonBlocksEqualSequentialSweep) {
  const auto a = majority_ring(10);
  const auto perm = reversed_order(10);
  const auto order = BlockOrder::sequential(perm);
  for (std::uint64_t bits = 0; bits < 1024; bits += 13) {
    auto c = Configuration::from_bits(bits, 10);
    auto d = c;
    step_block_sequential(a, c, order);
    apply_sequence(a, d, perm);
    EXPECT_EQ(c, d) << bits;
  }
}

TEST(BlockSequential, ReturnsChangeCount) {
  const auto a = majority_ring(6);
  auto c = Configuration::from_string("010000");
  const auto changes =
      step_block_sequential(a, c, BlockOrder::synchronous(6));
  EXPECT_EQ(changes, 1u);
  EXPECT_EQ(c.to_string(), "000000");
}

TEST(BlockSequential, MixedBlocksInterpolate) {
  // Two halves: within a half parallel, across halves sequential. On the
  // alternating ring this damps the blinker (unlike the pure parallel
  // step), because the second half reads the first half's new values.
  const auto a = majority_ring(8);
  auto c = Configuration::from_string("01010101");
  const BlockOrder order({{0, 1, 2, 3}, {4, 5, 6, 7}}, 8);
  step_block_sequential(a, c, order);
  EXPECT_NE(c.to_string(), "10101010");
}

TEST(BlockSequential, SizeMismatchThrows) {
  const auto a = majority_ring(6);
  Configuration c(5);
  EXPECT_THROW(step_block_sequential(a, c, BlockOrder::synchronous(6)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tca::core
