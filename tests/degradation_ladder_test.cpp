// Engine-degradation ladder differentials (docs/robustness.md): every
// rung — wide-SIMD, 64-lane batch, packed, scalar — must produce
// bit-identical successor tables and Garden-of-Eden censuses over the
// property-based generators, because a degraded result IS the result. The
// supervised wrappers are then driven through injected memory pressure
// and composed fault plans to prove the walk down the ladder recovers
// without changing a single bit.

#include <gtest/gtest.h>

#include <vector>

#include "phasespace/functional_graph.hpp"
#include "phasespace/preimage.hpp"
#include "phasespace/supervised.hpp"
#include "runtime/budget.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"
#include "runtime/supervisor.hpp"
#include "testing/generators.hpp"

namespace tca::phasespace {
namespace {

using runtime::EngineRung;
using runtime::ScopedFaultPlan;

constexpr EngineRung kAllRungs[] = {EngineRung::kWideSimd,
                                    EngineRung::kBatch64, EngineRung::kPacked,
                                    EngineRung::kScalar};

testing::TestCase ladder_case(std::uint64_t index) {
  testing::CaseOptions options;
  options.max_nodes = 10;
  return testing::random_case(testing::mix_seed(0x1adde5ull, index), options);
}

/// Supervisor options for tests: deterministic, no sleeping.
runtime::SupervisorOptions fast_supervision() {
  runtime::SupervisorOptions options;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff = std::chrono::milliseconds{1};
  options.retry.seed = 0x1adde5ull;
  options.apply_backoff = false;
  return options;
}

TEST(DegradationLadder, EveryRungBuildsTheIdenticalTable) {
  for (std::uint64_t i = 0; i < 24; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    const auto reference = FunctionalGraph::synchronous(a);
    for (const EngineRung rung : kAllRungs) {
      runtime::RunControl control;
      const auto build = build_synchronous_at_rung(a, rung, control);
      ASSERT_TRUE(build.complete())
          << "case " << i << " rung " << runtime::rung_name(rung);
      ASSERT_EQ(build.graph->successors(), reference.successors())
          << "case " << i << " rung " << runtime::rung_name(rung);
    }
  }
}

TEST(DegradationLadder, EveryRungCountsTheIdenticalGoeCensus) {
  for (std::uint64_t i = 0; i < 24; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    runtime::RunControl ref_control;
    const auto reference =
        count_gardens_of_eden_explicit(a, ref_control, EngineRung::kScalar);
    ASSERT_FALSE(reference.truncated);
    for (const EngineRung rung : kAllRungs) {
      runtime::RunControl control;
      const auto census = count_gardens_of_eden_explicit(a, control, rung);
      ASSERT_FALSE(census.truncated)
          << "case " << i << " rung " << runtime::rung_name(rung);
      EXPECT_EQ(census.gardens, reference.gardens)
          << "case " << i << " rung " << runtime::rung_name(rung);
      EXPECT_EQ(census.scanned, reference.scanned);
    }
  }
}

TEST(DegradationLadder, TruncationAtAnyRungIsAnExactPrefix) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n < 4) continue;
    const auto a = tc.automaton();
    const auto full = FunctionalGraph::synchronous(a);
    for (const EngineRung rung : kAllRungs) {
      runtime::RunBudget budget;
      budget.max_states = 5;
      runtime::RunControl control(budget);
      const auto build = build_synchronous_at_rung(a, rung, control);
      ASSERT_TRUE(build.truncated())
          << "case " << i << " rung " << runtime::rung_name(rung);
      ASSERT_EQ(build.partial_succ.size(), build.states_built);
      for (std::uint64_t s = 0; s < build.states_built; ++s) {
        ASSERT_EQ(build.partial_succ[s], full.succ(s))
            << "case " << i << " rung " << runtime::rung_name(rung)
            << " state " << s;
      }
    }
  }
}

TEST(DegradationLadder, SupervisedBuildRecoversFromMemoryPressure) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    const auto reference = FunctionalGraph::synchronous(a);

    ScopedFaultPlan plan({.alloc_failure_at = 1});
    const auto out = supervised_synchronous(a, fast_supervision());
    EXPECT_EQ(out.report.state, runtime::SupervisedState::kCompleted)
        << "case " << i;
    EXPECT_EQ(out.report.attempts, 2u);
    EXPECT_TRUE(out.report.degraded);
    EXPECT_EQ(out.report.final_rung, EngineRung::kBatch64)
        << "one bad_alloc walks exactly one rung down";
    ASSERT_TRUE(out.build.complete()) << "case " << i;
    ASSERT_EQ(out.build.graph->successors(), reference.successors())
        << "case " << i << ": the degraded result must be bit-identical";
  }
}

TEST(DegradationLadder, SupervisedCensusRecoversFromMemoryPressure) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    const std::uint64_t reference = count_gardens_of_eden_explicit(a);

    ScopedFaultPlan plan({.alloc_failure_at = 1});
    const auto out = supervised_goe_census(a, fast_supervision());
    EXPECT_EQ(out.report.state, runtime::SupervisedState::kCompleted)
        << "case " << i;
    EXPECT_TRUE(out.report.degraded);
    EXPECT_FALSE(out.census.truncated);
    EXPECT_EQ(out.census.gardens, reference) << "case " << i;
  }
}

TEST(DegradationLadder, ComposedPlanStillRecovers) {
  // Satellite requirement: knobs are independent countdowns, so one plan
  // composes several faults — here an injected transient on the first
  // attempt AND memory pressure on the (retried) second attempt's first
  // guarded allocation. The supervisor absorbs both.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n == 0) continue;
    const auto a = tc.automaton();
    const auto reference = FunctionalGraph::synchronous(a);

    ScopedFaultPlan plan({.alloc_failure_at = 1, .retry_transient_at = 1});
    const auto out = supervised_synchronous(a, fast_supervision());
    EXPECT_EQ(out.report.state, runtime::SupervisedState::kCompleted)
        << "case " << i;
    EXPECT_EQ(out.report.attempts, 3u)
        << "attempt 1: injected transient; attempt 2: bad_alloc; attempt 3 ok";
    ASSERT_EQ(out.report.failures.size(), 2u);
    EXPECT_EQ(out.report.failures[0].code, tca::ErrorCode::kFaultInjected);
    EXPECT_TRUE(out.report.degraded);
    ASSERT_TRUE(out.build.complete());
    ASSERT_EQ(out.build.graph->successors(), reference.successors())
        << "case " << i;
  }
}

TEST(DegradationLadder, SupervisedBuildHonoursStartRung) {
  const auto tc = ladder_case(3);
  const auto a = tc.automaton();
  const auto reference = FunctionalGraph::synchronous(a);
  for (const EngineRung rung : kAllRungs) {
    auto options = fast_supervision();
    options.start_rung = rung;
    const auto out = supervised_synchronous(a, options);
    EXPECT_EQ(out.report.state, runtime::SupervisedState::kCompleted);
    EXPECT_EQ(out.report.final_rung, rung);
    EXPECT_FALSE(out.report.degraded);
    ASSERT_TRUE(out.build.complete());
    ASSERT_EQ(out.build.graph->successors(), reference.successors())
        << runtime::rung_name(rung);
  }
}

TEST(DegradationLadder, SupervisedCancellationIsWellFormedTruncation) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto tc = ladder_case(i);
    if (tc.n < 4) continue;
    const auto a = tc.automaton();
    const auto full = FunctionalGraph::synchronous(a);

    ScopedFaultPlan plan({.cancel_at_visit = 5});
    const auto out = supervised_synchronous(a, fast_supervision());
    ASSERT_EQ(out.report.state, runtime::SupervisedState::kTruncated)
        << "case " << i;
    EXPECT_EQ(out.report.attempts, 1u) << "truncation is never retried";
    EXPECT_EQ(out.report.last_status.stop_reason,
              runtime::StopReason::kCancelled);
    ASSERT_EQ(out.build.partial_succ.size(), out.build.states_built);
    for (std::uint64_t s = 0; s < out.build.states_built; ++s) {
      ASSERT_EQ(out.build.partial_succ[s], full.succ(s))
          << "case " << i << " state " << s;
    }
  }
}

}  // namespace
}  // namespace tca::phasespace
