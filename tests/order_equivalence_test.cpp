// Unit tests for update-order equivalence (src/sds/order_equivalence.hpp):
// commutation classes, acyclic orientations, and the Mortveit–Reidys bound.

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "sds/order_equivalence.hpp"
#include "sds/sds.hpp"

namespace tca::sds {
namespace {

using core::Boundary;
using core::Memory;

TEST(CanonicalOrder, SortsCommutingPrefix) {
  // On a path 0-1-2-3, nodes 0 and 2 commute, 0 and 3 commute, 2 and 3 do
  // not... canonical form bubbles non-adjacent out-of-order pairs.
  const auto g = graph::path(4);
  const std::vector<NodeId> order{2, 0, 3, 1};
  const auto canon = canonical_order(g, order);
  // 2,0 commute (not adjacent) -> 0,2,3,1; 3,1 not adjacent? path edges:
  // 0-1,1-2,2-3. 3 and 1 non-adjacent -> swap -> 0,2,1,3; 2,1 adjacent stop.
  EXPECT_EQ(canon, (std::vector<NodeId>{0, 2, 1, 3}));
}

TEST(CanonicalOrder, CompleteGraphNothingCommutes) {
  const auto g = graph::complete(4);
  const std::vector<NodeId> order{3, 1, 2, 0};
  EXPECT_EQ(canonical_order(g, order), order);
}

TEST(CanonicalOrder, EdgelessGraphFullySorts) {
  const graph::Graph g(4, std::vector<graph::Edge>{});
  const std::vector<NodeId> order{3, 1, 2, 0};
  EXPECT_EQ(canonical_order(g, order), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(CommutationEquivalent, DetectsEquivalence) {
  const auto g = graph::ring(5);
  const std::vector<NodeId> o1{0, 2, 4, 1, 3};
  const std::vector<NodeId> o2{2, 0, 4, 1, 3};  // 0,2 non-adjacent swap
  const std::vector<NodeId> o3{1, 2, 4, 0, 3};
  EXPECT_TRUE(commutation_equivalent(g, o1, o2));
  EXPECT_FALSE(commutation_equivalent(g, o1, o3));
}

TEST(AcyclicOrientations, KnownClosedForms) {
  // a(path_n) = 2^(n-1); a(ring_n) = 2^n - 2; a(K_n) = n!.
  EXPECT_EQ(count_acyclic_orientations(graph::path(4)), 8u);
  EXPECT_EQ(count_acyclic_orientations(graph::path(6)), 32u);
  EXPECT_EQ(count_acyclic_orientations(graph::ring(4)), 14u);
  EXPECT_EQ(count_acyclic_orientations(graph::ring(6)), 62u);
  EXPECT_EQ(count_acyclic_orientations(graph::complete(4)), 24u);
  EXPECT_EQ(count_acyclic_orientations(graph::star(5)), 16u);
}

TEST(AcyclicOrientations, EdgelessGraphHasExactlyOne) {
  const graph::Graph g(5, std::vector<graph::Edge>{});
  EXPECT_EQ(count_acyclic_orientations(g), 1u);
}

TEST(CommutationClasses, EqualAcyclicOrientationCount) {
  // Cartier–Foata: commutation classes of permutations are in bijection
  // with acyclic orientations.
  for (const auto& g : {graph::path(5), graph::ring(5), graph::complete(4),
                        graph::star(4)}) {
    EXPECT_EQ(count_commutation_classes(g), count_acyclic_orientations(g))
        << g.summary();
  }
}

TEST(DistinctSweepMaps, BoundedByAcyclicOrientations) {
  // Mortveit–Reidys: functionally distinct SDS maps <= a(G).
  const auto g = graph::ring(5);
  const auto bound = count_acyclic_orientations(g);
  const auto parity = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const auto majority =
      Automaton::from_graph(g, rules::majority(), Memory::kWith);
  EXPECT_LE(count_distinct_sweep_maps(parity), bound);
  EXPECT_LE(count_distinct_sweep_maps(majority), bound);
}

TEST(DistinctSweepMaps, ParityIsOrderSensitiveButBelowTheBound) {
  // Parity separates many — but not all — commutation classes: on the
  // 4-ring, 24 permutations fall into a(C4) = 14 commutation classes which
  // collapse to 11 distinct sweep maps (extra coincidences beyond
  // commutation are possible; the bound is an upper bound, not an equality).
  const auto g = graph::ring(4);
  const auto parity = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const auto maps = count_distinct_sweep_maps(parity);
  EXPECT_EQ(maps, 11u);  // regression-pinned measured value
  EXPECT_GT(maps, 1u);
  EXPECT_LE(maps, count_acyclic_orientations(g));
}

TEST(DistinctSweepMaps, ConstantRuleCollapsesToOneMap) {
  const auto g = graph::ring(5);
  const auto a = Automaton::from_graph(g, rules::Rule{rules::KOfNRule{0}},
                                       Memory::kWith);
  EXPECT_EQ(count_distinct_sweep_maps(a), 1u);
}

TEST(EquivalentOrdersInduceEqualMaps, SpotCheck) {
  // Commutation equivalence is sufficient for functional equivalence.
  const auto g = graph::ring(6);
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  const std::vector<NodeId> o1{0, 2, 4, 1, 3, 5};
  const std::vector<NodeId> o2{2, 0, 4, 1, 3, 5};
  ASSERT_TRUE(commutation_equivalent(g, o1, o2));
  EXPECT_TRUE(functionally_equivalent(a, o1, o2));
}

}  // namespace
}  // namespace tca::sds
