// Unit tests for statistical basin sampling (src/analysis/basin_sampling).

#include <gtest/gtest.h>

#include "analysis/basin_sampling.hpp"
#include "core/synchronous.hpp"
#include "phasespace/classify.hpp"

namespace tca::analysis {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(BasinSampling, AllMajorityOrbitsResolveToFixedPointsOrTwoCycles) {
  const auto portrait = sample_basins(majority_ring(64), 200, 1, 1000);
  EXPECT_EQ(portrait.samples, 200u);
  EXPECT_EQ(portrait.unresolved, 0u);
  EXPECT_EQ(portrait.to_longer_cycle, 0u);  // Proposition 1
  EXPECT_EQ(portrait.to_fixed_point + portrait.to_two_cycle, 200u);
  // Random starts essentially never hit the measure-zero two-cycle basin.
  EXPECT_EQ(portrait.to_two_cycle, 0u);
  EXPECT_GT(portrait.distinct_attractors(), 1u);
}

TEST(BasinSampling, ParityRingsShowLongCycles) {
  const auto a = Automaton::line(17, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto portrait = sample_basins(a, 50, 2, 1u << 20);
  EXPECT_EQ(portrait.unresolved, 0u);
  EXPECT_GT(portrait.to_longer_cycle, 0u);  // XOR rules are not thresholds
}

TEST(BasinSampling, DeterministicUnderSeed) {
  const auto p1 = sample_basins(majority_ring(32), 50, 9, 1000);
  const auto p2 = sample_basins(majority_ring(32), 50, 9, 1000);
  EXPECT_EQ(p1.to_fixed_point, p2.to_fixed_point);
  EXPECT_EQ(p1.attractor_hits, p2.attractor_hits);
}

TEST(BasinSampling, HitCountsSumToResolvedSamples) {
  const auto portrait = sample_basins(majority_ring(24), 100, 3, 1000);
  std::uint64_t total = 0;
  for (const auto& [key, hits] : portrait.attractor_hits) total += hits;
  EXPECT_EQ(total, portrait.samples - portrait.unresolved);
  EXPECT_GT(portrait.dominant_share(), 0.0);
  EXPECT_LE(portrait.dominant_share(), 1.0);
}

TEST(BasinSampling, SmallSystemMatchesExplicitCensusDiversity) {
  // At n = 10 the sampled attractor set must be a subset of the explicit
  // attractor census (and with 500 samples, likely hits the big basins).
  const auto a = majority_ring(10);
  const auto cls =
      phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
  const auto portrait = sample_basins(a, 500, 4, 1000);
  EXPECT_LE(portrait.distinct_attractors(), cls.attractors.size());
  EXPECT_GT(portrait.distinct_attractors(), cls.attractors.size() / 8);
}

TEST(AttractorKey, RotationIndependentForTwoCycles) {
  // Both phases of the blinker map to the same key.
  const auto a = majority_ring(8);
  const auto alt = Configuration::from_string("01010101");
  const auto flip = core::step_synchronous(a, alt);
  EXPECT_EQ(attractor_key(a, alt, 2), attractor_key(a, flip, 2));
}

TEST(AttractorKey, DistinguishesDistinctFixedPoints) {
  const auto a = majority_ring(8);
  EXPECT_NE(attractor_key(a, Configuration::from_string("00000000"), 1),
            attractor_key(a, Configuration::from_string("11111111"), 1));
}

TEST(BasinSampling, UnresolvedWhenBudgetTiny) {
  // Parity on a long ring has orbits far beyond a 4-step budget.
  const auto a = Automaton::line(31, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto portrait = sample_basins(a, 10, 5, 4);
  EXPECT_GT(portrait.unresolved, 0u);
}

}  // namespace
}  // namespace tca::analysis
