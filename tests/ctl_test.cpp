// Unit tests for the CTL operators over choice digraphs
// (src/phasespace/ctl.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/sequential.hpp"
#include "graph/builders.hpp"
#include "phasespace/ctl.hpp"

namespace tca::phasespace {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

Automaton two_node_xor() {
  return Automaton::from_graph(graph::complete(2), rules::parity(),
                               Memory::kWith);
}

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(SetAlgebra, Basics) {
  const StateSet a{1, 0, 1, 0};
  const StateSet b{1, 1, 0, 0};
  EXPECT_EQ(set_and(a, b), (StateSet{1, 0, 0, 0}));
  EXPECT_EQ(set_or(a, b), (StateSet{1, 1, 1, 0}));
  EXPECT_EQ(set_not(a), (StateSet{0, 1, 0, 1}));
  EXPECT_EQ(set_size(a), 2u);
}

TEST(Ctl, SizeMismatchThrows) {
  const ChoiceDigraph g(two_node_xor());
  EXPECT_THROW(ex(g, StateSet{1, 0}), std::invalid_argument);
}

TEST(Ctl, ExAxOnFig1) {
  const ChoiceDigraph g(two_node_xor());
  // Target = {11} (code 3).
  const auto target = make_set(g, [](StateCode s) { return s == 3; });
  const auto some = ex(g, target);
  // 01 (code 2) can reach 11 by updating node 0; 10 (code 1) likewise.
  EXPECT_TRUE(some[1]);
  EXPECT_TRUE(some[2]);
  EXPECT_FALSE(some[0]);  // 00 is a fixed point
  EXPECT_FALSE(some[3]);  // both updates leave 11
  const auto all = ax(g, target);
  EXPECT_EQ(set_size(all), 0u);  // no state forces 11 under every choice
}

TEST(Ctl, EfMatchesReachability) {
  // EF {00} on Fig. 1(b): only 00 itself — the paper's reachability
  // observation as a formula.
  const ChoiceDigraph g(two_node_xor());
  const auto reach_00 = ef(g, make_set(g, [](StateCode s) { return s == 0; }));
  EXPECT_EQ(set_size(reach_00), 1u);
  EXPECT_TRUE(reach_00[0]);
  // Cross-check EF against the BFS-based can_reach for every target.
  for (StateCode t = 0; t < 4; ++t) {
    const auto formula = ef(g, make_set(g, [t](StateCode s) { return s == t; }));
    const auto bfs = can_reach(g, t);
    for (StateCode s = 0; s < 4; ++s) {
      EXPECT_EQ(static_cast<bool>(formula[s]), static_cast<bool>(bfs[s]))
          << "t=" << t << " s=" << s;
    }
  }
}

TEST(Ctl, EfFixedPointsIsEverythingForMajority) {
  // Every state can reach SOME fixed point by a suitable schedule
  // (Theorem 1's convergence, as EF).
  const auto a = majority_ring(8);
  const ChoiceDigraph g(a);
  const auto fps = make_set(g, [&](StateCode s) {
    return core::is_fixed_point_sequential(
        a, core::Configuration::from_bits(s, 8));
  });
  const auto possible = ef(g, fps);
  EXPECT_EQ(set_size(possible), g.num_states());
}

TEST(Ctl, AfFixedPointsIsOnlyFixedPointsForMajority) {
  // But convergence is NOT inevitable without fairness: any non-FP state
  // has a lazy schedule that re-updates a stable node forever (a
  // self-loop), so AF(FPs) = FPs exactly — footnote 2 in CTL form.
  const auto a = majority_ring(8);
  const ChoiceDigraph g(a);
  const auto fps = make_set(g, [&](StateCode s) {
    return core::is_fixed_point_sequential(
        a, core::Configuration::from_bits(s, 8));
  });
  EXPECT_EQ(af(g, fps), fps);
}

TEST(Ctl, AgFixedPointIsInvariant) {
  // A fixed point satisfies AG {itself}: no schedule can leave it.
  const auto a = majority_ring(6);
  const ChoiceDigraph g(a);
  const auto zero = make_set(g, [](StateCode s) { return s == 0; });
  const auto invariant = ag(g, zero);
  EXPECT_TRUE(invariant[0]);
  EXPECT_EQ(set_size(invariant), 1u);
}

TEST(Ctl, EgNonFixedPointsForXor) {
  // On Fig. 1(b) a schedule can avoid 00 forever from any nonzero state
  // (e.g. loop on a two-cycle): EG (not {00}) = {01, 10, 11}.
  const ChoiceDigraph g(two_node_xor());
  const auto not_zero = make_set(g, [](StateCode s) { return s != 0; });
  const auto forever = eg(g, not_zero);
  EXPECT_FALSE(forever[0]);
  EXPECT_TRUE(forever[1]);
  EXPECT_TRUE(forever[2]);
  EXPECT_TRUE(forever[3]);
}

TEST(Ctl, EgNonFixedPointsEmptyForMajority) {
  // For threshold CA no schedule can stay off the fixed points forever
  // while CHANGING state... careful: lazily re-updating a stable node of
  // a non-FP state stays off the FPs forever, so EG(not FPs) is NOT
  // empty — it is exactly the non-FP states. The real impossibility
  // (Lemma 1(ii)) is about REVISITING after change, which is the SCC
  // statement, not an unfair-schedule CTL one.
  const auto a = majority_ring(6);
  const ChoiceDigraph g(a);
  const auto fps = make_set(g, [&](StateCode s) {
    return core::is_fixed_point_sequential(
        a, core::Configuration::from_bits(s, 6));
  });
  EXPECT_EQ(eg(g, set_not(fps)), set_not(fps));
}

TEST(Ctl, DualityEfAg) {
  // EF T == not AG (not T).
  const ChoiceDigraph g(majority_ring(6));
  const auto t = make_set(g, [](StateCode s) { return (s & 1u) != 0; });
  EXPECT_EQ(ef(g, t), set_not(ag(g, set_not(t))));
  EXPECT_EQ(af(g, t), set_not(eg(g, set_not(t))));
}

}  // namespace
}  // namespace tca::phasespace
