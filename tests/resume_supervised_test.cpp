// The scripts/resume_demo.sh contract as a ctest binary
// (docs/robustness.md): a checkpointing sweep child process is SIGKILLed
// mid-run, restarted, and must resume from its generational store and
// produce a summary bit-identical to an uninterrupted run — including
// when the head checkpoint it left behind is corrupted, in which case
// recovery falls back to an older generation and quarantines the head.
//
// This binary owns main(): when invoked as `... --child <workdir>
// [--slow]` it IS the sweep child (the dispatch happens before gtest ever
// sees argv), otherwise it runs the test suite, re-executing itself via
// fork/exec as the child under test. POSIX-only, like resume_demo.sh.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/automaton.hpp"
#include "phasespace/preimage.hpp"
#include "runtime/ckpt_store.hpp"

namespace {

namespace fs = std::filesystem;

constexpr int kItems = 6;  // majority rings n = 4 .. 9

std::string g_self_path;  // the test binary, re-executed as the child

// ---------------------------------------------------------------------------
// Child mode: a miniature checkpointing sweep. One deterministic result
// line per item, a CheckpointStore save after every item, and the final
// summary written only when all items are done. Every run appends its
// starting position to runs.log so the parent can prove a resume actually
// resumed instead of silently starting over.

std::string item_line(int item) {
  const std::size_t n = static_cast<std::size_t>(4 + item);
  const auto a = tca::core::Automaton::line(
      n, 1, tca::core::Boundary::kRing, tca::rules::majority(),
      tca::core::Memory::kWith);
  const std::uint64_t gardens =
      tca::phasespace::count_gardens_of_eden_explicit(a);
  std::ostringstream line;
  line << "n=" << n << "|gardens=" << gardens;
  return line.str();
}

int run_child(const std::string& workdir, bool slow) {
  using tca::runtime::Checkpoint;
  using tca::runtime::CheckpointStore;

  CheckpointStore store((fs::path(workdir) / "resume.ckpt").string(),
                        {.keep_generations = 3});
  std::vector<std::string> lines;
  if (const auto recovery = store.load_latest()) {
    std::istringstream payload(recovery->checkpoint.payload);
    for (std::string line; std::getline(payload, line);) {
      if (!line.empty()) lines.push_back(line);
    }
  }
  {
    std::ofstream log(fs::path(workdir) / "runs.log", std::ios::app);
    log << "start done=" << lines.size() << "\n";
  }

  for (int item = static_cast<int>(lines.size()); item < kItems; ++item) {
    lines.push_back(item_line(item));
    Checkpoint ck;
    for (const std::string& line : lines) ck.payload += line + "\n";
    store.save(ck);
    if (slow) {
      // Leave the parent a wide window to observe the store and SIGKILL
      // this process between items.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  }

  std::ofstream summary(fs::path(workdir) / "summary.txt",
                        std::ios::trunc);
  for (const std::string& line : lines) summary << line << "\n";
  return summary ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Parent-side helpers.

pid_t spawn_child(const std::string& workdir, bool slow) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  std::string self = g_self_path;
  std::string child_flag = "--child";
  std::string dir = workdir;
  std::string slow_flag = "--slow";
  std::vector<char*> argv = {self.data(), child_flag.data(), dir.data()};
  if (slow) argv.push_back(slow_flag.data());
  argv.push_back(nullptr);
  execv(self.c_str(), argv.data());
  _exit(127);  // exec failed
}

[[nodiscard]] int wait_for_exit(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

/// Polls until `path` exists (up to ~15 s). False on timeout.
[[nodiscard]] bool wait_for_file(const fs::path& path) {
  for (int i = 0; i < 1500; ++i) {
    if (fs::exists(path)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// The "start done=<k>" positions recorded by every child run, in order.
[[nodiscard]] std::vector<int> run_starts(const fs::path& workdir) {
  std::istringstream log(read_file(workdir / "runs.log"));
  std::vector<int> starts;
  for (std::string line; std::getline(log, line);) {
    const std::string prefix = "start done=";
    if (line.rfind(prefix, 0) == 0) {
      starts.push_back(std::atoi(line.c_str() + prefix.size()));
    }
  }
  return starts;
}

class ResumeSupervisedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "tca_resume_supervised_test";
    fs::remove_all(root_);
    fs::create_directories(root_);
    // The fault-free reference summary, computed once per fixture setup.
    const fs::path base = make_workdir("baseline");
    ASSERT_EQ(wait_for_exit(spawn_child(base.string(), false)), 0);
    baseline_ = read_file(base / "summary.txt");
    ASSERT_FALSE(baseline_.empty());
  }

  void TearDown() override { fs::remove_all(root_); }

  [[nodiscard]] fs::path make_workdir(const std::string& name) const {
    const fs::path dir = root_ / name;
    fs::create_directories(dir);
    return dir;
  }

  fs::path root_;
  std::string baseline_;
};

TEST_F(ResumeSupervisedTest, KillMidSweepThenResumeIsBitIdentical) {
  const fs::path dir = make_workdir("kill_resume");
  const pid_t pid = spawn_child(dir.string(), true);
  ASSERT_GT(pid, 0);
  // The head checkpoint appearing means at least one item is durable.
  ASSERT_TRUE(wait_for_file(dir / "resume.ckpt")) << "child never saved";
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Second run: must pick up from the store, not start over.
  ASSERT_EQ(wait_for_exit(spawn_child(dir.string(), false)), 0);
  const auto starts = run_starts(dir);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_GE(starts[1], 1) << "the resumed run must see the killed run's work";
  EXPECT_EQ(read_file(dir / "summary.txt"), baseline_)
      << "kill-and-resume must be bit-identical to an uninterrupted run";
}

TEST_F(ResumeSupervisedTest, CorruptHeadAfterKillRecoversFromGeneration) {
  const fs::path dir = make_workdir("corrupt_head");
  const pid_t pid = spawn_child(dir.string(), true);
  ASSERT_GT(pid, 0);
  // Wait for the SECOND save (the first rotation) so an older generation
  // exists to fall back to, then kill and damage the head.
  ASSERT_TRUE(wait_for_file(dir / "resume.ckpt.g1")) << "no rotation yet";
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  (void)wait_for_exit(pid);

  const fs::path head = dir / "resume.ckpt";
  ASSERT_TRUE(fs::exists(head));
  std::string blob = read_file(head);
  ASSERT_GT(blob.size(), 3u);
  blob[blob.size() - 3] = static_cast<char>(blob[blob.size() - 3] ^ 0x01);
  {
    std::ofstream out(head, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  ASSERT_EQ(wait_for_exit(spawn_child(dir.string(), false)), 0);
  const auto starts = run_starts(dir);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_GE(starts[1], 1)
      << "recovery must come from the previous generation, not from scratch";
  EXPECT_EQ(read_file(dir / "summary.txt"), baseline_)
      << "recovering from an older generation must still converge to the "
         "identical summary";
  EXPECT_TRUE(fs::exists(dir / "resume.ckpt.quarantined"))
      << "the corrupt head must be quarantined, not deleted";
}

TEST_F(ResumeSupervisedTest, UninterruptedRerunIsANoOpResume) {
  // Running the child again over a COMPLETED store must resume at the end,
  // recompute nothing, and rewrite the identical summary.
  const fs::path dir = make_workdir("noop");
  ASSERT_EQ(wait_for_exit(spawn_child(dir.string(), false)), 0);
  ASSERT_EQ(wait_for_exit(spawn_child(dir.string(), false)), 0);
  const auto starts = run_starts(dir);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1], kItems);
  EXPECT_EQ(read_file(dir / "summary.txt"), baseline_);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string_view(argv[1]) == "--child") {
    bool slow = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--slow") slow = true;
    }
    return run_child(argv[2], slow);
  }
  ::testing::InitGoogleTest(&argc, argv);
  std::error_code ec;
  const auto self = fs::read_symlink("/proc/self/exe", ec);
  g_self_path = ec ? argv[0] : self.string();
  return RUN_ALL_TESTS();
}
