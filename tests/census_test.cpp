// Unit tests for phase-space censuses (src/analysis/census.hpp), including
// the paper's "rare cycles without incoming transients" remark.

#include <gtest/gtest.h>

#include "analysis/census.hpp"
#include "analysis/stats.hpp"
#include "core/schedule.hpp"
#include "graph/builders.hpp"

namespace tca::analysis {
namespace {

using core::Automaton;
using core::Boundary;
using core::Memory;

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(Census, CountsArePartition) {
  const auto c = census_synchronous(majority_ring(10));
  EXPECT_EQ(c.states, 1024u);
  EXPECT_EQ(c.fixed_points + c.cycle_states + c.transient_states, c.states);
}

TEST(Census, MajorityRingTwoCycleIsRareAndIsolated) {
  // Section 4 remark ([19]): the non-FP cycles are very few and have no
  // incoming transients.
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u, 14u}) {
    const auto c = census_synchronous(majority_ring(n));
    EXPECT_EQ(c.cycle_states, 2u) << n;
    EXPECT_TRUE(c.cycles_have_no_incoming_transients) << n;
    EXPECT_LT(c.cycle_state_fraction(), 0.01 + 2.0 / 16.0) << n;
  }
}

TEST(Census, XorTwoNodeCensus) {
  const auto a = Automaton::from_graph(graph::complete(2), rules::parity(),
                                       Memory::kWith);
  const auto c = census_synchronous(a);
  EXPECT_EQ(c.states, 4u);
  EXPECT_EQ(c.fixed_points, 1u);
  EXPECT_EQ(c.cycle_states, 0u);
  EXPECT_EQ(c.transient_states, 3u);
  EXPECT_EQ(c.gardens_of_eden, 2u);
  EXPECT_EQ(c.max_transient, 2u);
}

TEST(Census, XorCyclesHaveIncomingTransientsSometimes) {
  // Contrast case for the no-incoming-transients flag: the XOR ring n=9
  // has proper cycles fed by transients (the parity map is non-invertible
  // there, and 3 | 9 gives it a nontrivial kernel with long cycles).
  const auto a = Automaton::line(9, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto c = census_synchronous(a);
  EXPECT_GT(c.cycle_states, 0u);
  EXPECT_GT(c.transient_states, 0u);
  EXPECT_FALSE(c.cycles_have_no_incoming_transients);
}

TEST(Census, SweepCensusIsCycleFreeForMajority) {
  const auto a = majority_ring(10);
  const auto c = census_sweep(a, core::identity_order(10));
  EXPECT_EQ(c.cycle_states, 0u);
  EXPECT_EQ(c.max_period, 1u);
  EXPECT_GT(c.fixed_points, 0u);
}

TEST(Census, CycleLengthHistogramConsistent) {
  const auto a = Automaton::line(7, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  const auto c = census_synchronous(a);
  std::uint64_t cycle_states_from_hist = 0;
  for (const auto& [period, count] : c.cycle_lengths) {
    if (period >= 2) cycle_states_from_hist += period * count;
  }
  EXPECT_EQ(cycle_states_from_hist, c.cycle_states);
}

TEST(Census, ToStringMentionsKeyFigures) {
  const auto c = census_synchronous(majority_ring(6));
  const auto s = to_string(c);
  EXPECT_NE(s.find("fixed points"), std::string::npos);
  EXPECT_NE(s.find("gardens of Eden"), std::string::npos);
  EXPECT_NE(s.find("period 2"), std::string::npos);
}

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(HistogramStats, BinsAndRendering) {
  Histogram h;
  h.add(1);
  h.add(1);
  h.add(3, 2);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins().at(1), 2u);
  EXPECT_EQ(h.bins().at(3), 2u);
  const auto s = h.to_string();
  EXPECT_NE(s.find("1: 2 (50.00%)"), std::string::npos);
}

TEST(FormatFixed, RendersDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace tca::analysis
