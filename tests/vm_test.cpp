// Unit tests for the register VM and interleaving explorer
// (src/interleave/vm.hpp, explorer.hpp) — the paper's Section 1.1 example.

#include <gtest/gtest.h>

#include "interleave/explorer.hpp"
#include "interleave/vm.hpp"

namespace tca::interleave {
namespace {

TEST(Machine, StepExecutesInstructions) {
  const Machine m = machine_level_example(1, 2);
  auto s = m.initial({0});
  m.step(s, 0);  // LOAD r0, x0
  EXPECT_EQ(s.regs[0][0], 0);
  m.step(s, 0);  // ADDI r0, 1
  EXPECT_EQ(s.regs[0][0], 1);
  m.step(s, 0);  // STORE x0, r0
  EXPECT_EQ(s.shared[0], 1);
  EXPECT_TRUE(m.finished(s, 0));
  EXPECT_FALSE(m.all_finished(s));
}

TEST(Machine, SteppingFinishedProcessThrows) {
  const Machine m = statement_level_example(1, 2);
  auto s = m.initial({0});
  m.step(s, 0);
  EXPECT_THROW(m.step(s, 0), std::logic_error);
}

TEST(Machine, ValidatesOperands) {
  EXPECT_THROW(Machine({Program{Load{0, 5}}}, 1, 1), std::invalid_argument);
  EXPECT_THROW(Machine({Program{Load{3, 0}}}, 1, 1), std::invalid_argument);
  EXPECT_THROW(Machine({Program{AtomicAddVar{2, 1}}}, 1, 1),
               std::invalid_argument);
}

TEST(Machine, InitialValidatesSharedCount) {
  const Machine m = statement_level_example(1, 2);
  EXPECT_THROW(m.initial({0, 0}), std::invalid_argument);
}

TEST(Section11, StatementGranularityAlwaysGivesThree) {
  // Atomic x+=1 and x+=2 commute: every interleaving yields x == 3.
  const Machine m = statement_level_example(1, 2);
  const auto outcomes = interleaving_outcomes(m, m.initial({0}));
  EXPECT_EQ(outcomes,
            (std::set<std::vector<std::int64_t>>{{3}}));
}

TEST(Section11, ParallelExecutionLosesAnUpdate) {
  // Simultaneous read, conflicting writes: x ends as 1 or 2, never 3 —
  // "no sequential ordering of [statement-level] operations can reproduce
  // parallel computation".
  const Machine m = statement_level_example(1, 2);
  const auto outcomes = parallel_outcomes(m, m.initial({0}));
  EXPECT_EQ(outcomes,
            (std::set<std::vector<std::int64_t>>{{1}, {2}}));
}

TEST(Section11, MachineGranularityRecoversParallelBehaviour) {
  // At LOAD/ADDI/STORE granularity the interleavings produce {1, 2, 3}:
  // the parallel outcomes are a subset, so refining granularity restores
  // the interleaving semantics.
  const Machine m = machine_level_example(1, 2);
  const auto outcomes = interleaving_outcomes(m, m.initial({0}));
  EXPECT_EQ(outcomes,
            (std::set<std::vector<std::int64_t>>{{1}, {2}, {3}}));
}

TEST(Section11, ParallelSubsetOfMachineInterleavings) {
  const Machine stmt = statement_level_example(1, 2);
  const Machine mach = machine_level_example(1, 2);
  const auto parallel = parallel_outcomes(stmt, stmt.initial({0}));
  const auto machine = interleaving_outcomes(mach, mach.initial({0}));
  for (const auto& outcome : parallel) {
    EXPECT_TRUE(machine.contains(outcome));
  }
  // ...but NOT of the statement-level interleavings.
  const auto statement = interleaving_outcomes(stmt, stmt.initial({0}));
  for (const auto& outcome : parallel) {
    EXPECT_FALSE(statement.contains(outcome));
  }
}

TEST(CountInterleavings, BinomialForTwoProcesses) {
  // Two 3-instruction programs: C(6,3) = 20 schedules; two 1-instruction
  // programs: C(2,1) = 2.
  EXPECT_EQ(count_interleavings(machine_level_example(1, 2)), 20u);
  EXPECT_EQ(count_interleavings(statement_level_example(1, 2)), 2u);
}

TEST(CountInterleavings, ThreeProcesses) {
  // Three 2-instruction programs: 6! / (2!)^3 = 90.
  const Program p{AtomicAddVar{0, 1}, AtomicAddVar{0, 1}};
  const Machine m({p, p, p}, 1, 1);
  EXPECT_EQ(count_interleavings(m), 90u);
}

TEST(ParallelOutcomes, RejectsNonAtomicProcesses) {
  const Machine m = machine_level_example(1, 2);
  EXPECT_THROW(parallel_outcomes(m, m.initial({0})), std::invalid_argument);
}

TEST(ParallelOutcomes, DistinctVariablesDontConflict) {
  const Machine m({Program{AtomicAddVar{0, 1}}, Program{AtomicAddVar{1, 2}}},
                  2, 1);
  const auto outcomes = parallel_outcomes(m, m.initial({0, 0}));
  EXPECT_EQ(outcomes, (std::set<std::vector<std::int64_t>>{{1, 2}}));
}

TEST(Section11, CasRetryLoopsRestoreAtomicity) {
  // Optimistic concurrency: lock-free increments via CAS retry loops give
  // x = 3 under EVERY interleaving — machine-level instructions CAN
  // implement statement-level atomicity, they just need the right ones.
  const Machine m = cas_level_example(1, 2);
  const auto outcomes = interleaving_outcomes(m, m.initial({0}));
  EXPECT_EQ(outcomes, (std::set<std::vector<std::int64_t>>{{3}}));
}

TEST(Section11, CasLoopsWithThreeProcesses) {
  const Machine one = cas_level_example(1, 1);
  Program p = one.program(0);
  const Machine m({p, p, p}, 1, 3);
  const auto outcomes = interleaving_outcomes(m, m.initial({0}));
  EXPECT_EQ(outcomes, (std::set<std::vector<std::int64_t>>{{3}}));
}

TEST(Cas, SemanticsDirect) {
  // CAS success and failure paths.
  const Machine m({Program{Load{0, 0}, AddImm{0, 5}, Cas{0, 1, 0, 2}}},
                  /*num_shared=*/1, /*num_regs=*/3);
  auto s = m.initial({7});
  m.step(s, 0);  // r0 = 7
  m.step(s, 0);  // r0 = 12
  // CAS expects regs[1] == 0 != shared 7: fails, r2 = 0.
  m.step(s, 0);
  EXPECT_EQ(s.shared[0], 7);
  EXPECT_EQ(s.regs[0][2], 0);
}

TEST(BranchIfZero, LoopsAndFallsThrough) {
  // r0 starts 0: branch to self-loop exit... program: ADDI r0,1; BZ r0,@0
  // never loops because r0 becomes 1.
  const Machine m({Program{AddImm{0, 1}, BranchIfZero{0, 0}}}, 1, 1);
  auto s = m.initial({0});
  m.step(s, 0);
  m.step(s, 0);
  EXPECT_TRUE(m.finished(s, 0));
}

TEST(Machine, ValidatesBranchTarget) {
  EXPECT_THROW(Machine({Program{BranchIfZero{0, 5}}}, 1, 1),
               std::invalid_argument);
  EXPECT_THROW(Machine({Program{Cas{0, 0, 0, 9}}}, 1, 1),
               std::invalid_argument);
  EXPECT_THROW(Machine({Program{Mov{0, 7}}}, 1, 1), std::invalid_argument);
}

TEST(CountInterleavings, RejectsBranchingPrograms) {
  EXPECT_THROW(count_interleavings(cas_level_example(1, 2)),
               std::invalid_argument);
}

TEST(InstructionToString, Readable) {
  EXPECT_EQ(to_string(Instr{Load{0, 0}}), "LOAD r0, x0");
  EXPECT_EQ(to_string(Instr{AddImm{0, 2}}), "ADDI r0, 2");
  EXPECT_EQ(to_string(Instr{Store{0, 0}}), "STORE x0, r0");
  EXPECT_EQ(to_string(Instr{AtomicAddVar{0, 1}}),
            "x0 := x0 + 1  (atomic)");
}

TEST(Interleavings, DifferentIncrementsStillCommutativeAtomically) {
  const Machine m = statement_level_example(5, -3);
  const auto outcomes = interleaving_outcomes(m, m.initial({10}));
  EXPECT_EQ(outcomes, (std::set<std::vector<std::int64_t>>{{12}}));
}

}  // namespace
}  // namespace tca::interleave
