// End-to-end tests for the tcad socket server (docs/service.md): a real
// TcadServer on a Unix-domain socket (plus the loopback TCP listener),
// driven by TcadClient over the length-prefixed frame protocol. The
// central assertion is the service-vs-library oracle: every query kind
// answered over the wire must be bit-identical to the direct library
// answer computed in-process. Shutdown must leave zero leaked requests.
//
// Socket paths live in per-test unique temp directories (sun_path is
// short; /tmp keeps us under the 108-byte limit) so the suite is safe
// under `ctest -j`.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/client.hpp"
#include "service/engine.hpp"
#include "service/handler.hpp"
#include "service/json_parse.hpp"
#include "service/query.hpp"
#include "service/server.hpp"

namespace tca::service {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("tca_e2e_" + std::to_string(::getpid()) + "_" + info->name());
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string result_of(const std::string& response) {
  const std::size_t pos = response.find("\"result\":");
  return pos == std::string::npos
             ? std::string()
             : response.substr(pos + 9, response.size() - pos - 10);
}

/// Direct library answer, same compute path the daemon uses.
std::string library_answer(const std::string& query_json) {
  QueryEngine engine{EngineOptions{}};
  const ServiceQuery q = ServiceQuery::from_json(parse_json(query_json));
  const QueryOutcome out = engine.execute(q, RequestBudget{}, {});
  EXPECT_TRUE(out.ok()) << out.error;
  return out.result.to_json();
}

TEST(TcadE2e, AllQueryKindsMatchTheLibraryOverUds) {
  const TempDir dir;
  ServerOptions options;
  options.uds_path = dir.str() + "/tcad.sock";
  options.handler.cache.disk_dir = dir.str() + "/cache";
  options.handler.engine.ckpt_dir = dir.str() + "/ckpt";
  TcadServer server(options);
  server.start();

  const std::vector<std::string> queries = {
      R"({"kind":"attractor-summary","n":8,"radius":1,"rule":"majority","topology":"ring"})",
      R"({"kind":"transient-depth","n":8,"radius":1,"rule":{"type":"wolfram","code":110},"topology":"ring"})",
      R"({"kind":"goe-census","n":8,"radius":1,"rule":"parity","topology":"line"})",
      R"({"kind":"preimage-count","n":10,"radius":1,"rule":"majority","topology":"ring","target":0})",
      R"({"kind":"preimage-count","n":7,"radius":1,"rule":"majority","scheme":"sweep","order":[6,5,4,3,2,1,0],"target":127})",
  };

  TcadClient client = TcadClient::connect_uds(server.uds_path());
  std::uint64_t id = 1;
  for (const std::string& query : queries) {
    const std::string response = client.call(
        R"({"op":"query","id":)" + std::to_string(id++) + R"(,"query":)" +
        query + "}");
    const JsonValue v = parse_json(response);
    ASSERT_EQ(v.string_or("status", ""), "ok") << response;
    EXPECT_EQ(v.u64_or("v", 0), kProtocolVersion);
    EXPECT_EQ(result_of(response), library_answer(query)) << query;
  }

  server.stop();
  EXPECT_EQ(server.handler().active_requests(), 0u);
}

TEST(TcadE2e, TcpListenerServesTheSameCacheAsUds) {
  const TempDir dir;
  ServerOptions options;
  options.uds_path = dir.str() + "/tcad.sock";
  options.tcp_enabled = true;  // ephemeral port
  TcadServer server(options);
  server.start();
  ASSERT_NE(server.tcp_port(), 0);

  const std::string request =
      R"({"op":"query","id":1,"query":{"kind":"attractor-summary","n":7,)"
      R"("radius":1,"rule":"majority","topology":"ring"}})";

  TcadClient uds = TcadClient::connect_uds(server.uds_path());
  const std::string first = uds.call(request);
  ASSERT_EQ(parse_json(first).string_or("source", ""), "computed");

  // The TCP connection hits the same handler: warm cache.
  TcadClient tcp = TcadClient::connect_tcp(server.tcp_port());
  const std::string second = tcp.call(request);
  EXPECT_EQ(parse_json(second).string_or("source", ""), "memory-cache");
  EXPECT_EQ(result_of(first), result_of(second));

  server.stop();
  EXPECT_EQ(server.handler().active_requests(), 0u);
}

TEST(TcadE2e, PingAndCountersOps) {
  const TempDir dir;
  ServerOptions options;
  options.uds_path = dir.str() + "/tcad.sock";
  TcadServer server(options);
  server.start();

  TcadClient client = TcadClient::connect_uds(server.uds_path());
  const JsonValue pong =
      parse_json(client.call(R"({"op":"ping","id":41})"));
  EXPECT_EQ(pong.string_or("status", ""), "ok");
  EXPECT_EQ(pong.u64_or("id", 0), 41u);

  const JsonValue counters =
      parse_json(client.call(R"({"op":"counters","id":42})"));
  EXPECT_EQ(counters.string_or("status", ""), "ok");
  const JsonValue* table = counters.find("counters");
  ASSERT_NE(table, nullptr);
  // Both requests so far are counted by the time the snapshot is taken.
  EXPECT_GE(table->u64_or("service.requests", 0), 2u);

  server.stop();
}

TEST(TcadE2e, WireErrorsDoNotKillTheConnection) {
  const TempDir dir;
  ServerOptions options;
  options.uds_path = dir.str() + "/tcad.sock";
  TcadServer server(options);
  server.start();

  TcadClient client = TcadClient::connect_uds(server.uds_path());
  const JsonValue bad = parse_json(client.call("this is not json"));
  EXPECT_EQ(bad.string_or("status", ""), "error");

  // Same connection still serves good requests afterwards.
  const JsonValue good = parse_json(client.call(R"({"op":"ping","id":1})"));
  EXPECT_EQ(good.string_or("status", ""), "ok");

  server.stop();
  EXPECT_EQ(server.handler().active_requests(), 0u);
}

TEST(TcadE2e, StopIsIdempotentAndLeavesNoSocketFile) {
  const TempDir dir;
  ServerOptions options;
  options.uds_path = dir.str() + "/tcad.sock";
  TcadServer server(options);
  server.start();
  EXPECT_TRUE(fs::exists(options.uds_path));
  server.stop();
  server.stop();  // second stop must be a no-op
  EXPECT_FALSE(fs::exists(options.uds_path));
  EXPECT_EQ(server.handler().active_requests(), 0u);
}

TEST(TcadE2e, DiskCacheSurvivesAServerRestart) {
  const TempDir dir;
  ServerOptions options;
  options.uds_path = dir.str() + "/tcad.sock";
  options.handler.cache.disk_dir = dir.str() + "/cache";
  const std::string request =
      R"({"op":"query","id":1,"query":{"kind":"goe-census","n":8,)"
      R"("radius":1,"rule":"majority","topology":"ring"}})";

  std::string first_result;
  {
    TcadServer server(options);
    server.start();
    TcadClient client = TcadClient::connect_uds(server.uds_path());
    const std::string response = client.call(request);
    ASSERT_EQ(parse_json(response).string_or("source", ""), "computed");
    first_result = result_of(response);
    server.stop();
  }
  {
    TcadServer server(options);
    server.start();
    TcadClient client = TcadClient::connect_uds(server.uds_path());
    const std::string response = client.call(request);
    EXPECT_EQ(parse_json(response).string_or("source", ""), "disk-cache");
    EXPECT_EQ(result_of(response), first_result);
    server.stop();
  }
}

}  // namespace
}  // namespace tca::service
