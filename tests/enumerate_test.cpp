// Unit tests for rule-class enumeration (src/rules/enumerate.hpp).

#include <gtest/gtest.h>

#include <set>

#include "rules/analyze.hpp"
#include "rules/enumerate.hpp"

namespace tca::rules {
namespace {

TEST(AllMonotoneSymmetric, CountIsArityPlusTwo) {
  EXPECT_EQ(all_monotone_symmetric(1).size(), 3u);
  EXPECT_EQ(all_monotone_symmetric(3).size(), 5u);
  EXPECT_EQ(all_monotone_symmetric(7).size(), 9u);
}

TEST(AllMonotoneSymmetric, AllDistinct) {
  const auto rules = all_monotone_symmetric(4);
  std::set<std::vector<State>> tables;
  for (const auto& r : rules) tables.insert(truth_table(Rule{r}, 4));
  EXPECT_EQ(tables.size(), rules.size());
}

TEST(AllMonotoneSymmetric, ContainsConstantsAndMajority) {
  const auto rules = all_monotone_symmetric(3);
  std::set<std::vector<State>> tables;
  for (const auto& r : rules) tables.insert(truth_table(Rule{r}, 3));
  EXPECT_TRUE(tables.contains(truth_table(Rule{KOfNRule{0}}, 3)));
  EXPECT_TRUE(tables.contains(truth_table(Rule{KOfNRule{9}}, 3)));
  EXPECT_TRUE(tables.contains(truth_table(majority(), 3)));
}

TEST(AllSymmetric, CountIsTwoToArityPlusOne) {
  EXPECT_EQ(all_symmetric(2).size(), 8u);
  EXPECT_EQ(all_symmetric(3).size(), 16u);
}

TEST(AllSymmetric, EverythingIsSymmetricAndCoversParity) {
  bool found_parity = false;
  for (const auto& r : all_symmetric(3)) {
    const auto table = truth_table(Rule{r}, 3);
    EXPECT_TRUE(is_symmetric(table));
    if (table == truth_table(parity(), 3)) found_parity = true;
  }
  EXPECT_TRUE(found_parity);
}

TEST(AllMonotoneTables, DedekindNumbers) {
  EXPECT_EQ(all_monotone_tables(0).size(), 2u);
  EXPECT_EQ(all_monotone_tables(1).size(), 3u);
  EXPECT_EQ(all_monotone_tables(2).size(), 6u);
  EXPECT_EQ(all_monotone_tables(3).size(), 20u);
  EXPECT_EQ(all_monotone_tables(4).size(), 168u);
}

TEST(AllMonotoneTables, RejectsLargeArity) {
  EXPECT_THROW(all_monotone_tables(5), std::invalid_argument);
}

TEST(AllMonotoneTables, AllActuallyMonotone) {
  for (const auto& table : all_monotone_tables(3)) {
    EXPECT_TRUE(is_monotone(table));
  }
}

TEST(AllKOfN, CountAndSemantics) {
  const auto rules = all_k_of_n(4);
  ASSERT_EQ(rules.size(), 4u);
  for (std::uint32_t k = 1; k <= 4; ++k) {
    EXPECT_EQ(rules[k - 1].k, k);
  }
}

// The classical identity: monotone symmetric = {constants} U {k-of-n}.
TEST(ClassIdentity, MonotoneSymmetricEqualsThresholdFamily) {
  const std::uint32_t arity = 4;
  std::set<std::vector<State>> from_enumeration;
  for (const auto& r : all_monotone_symmetric(arity)) {
    from_enumeration.insert(truth_table(Rule{r}, arity));
  }
  std::set<std::vector<State>> by_filter;
  for (const auto& r : all_symmetric(arity)) {
    const auto table = truth_table(Rule{r}, arity);
    if (is_monotone(table)) by_filter.insert(table);
  }
  EXPECT_EQ(from_enumeration, by_filter);
}

}  // namespace
}  // namespace tca::rules
