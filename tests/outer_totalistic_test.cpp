// Unit tests for outer-totalistic (Game-of-Life-family) rules
// (src/rules/rule.hpp OuterTotalisticRule).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"
#include "rules/analyze.hpp"
#include "rules/rule.hpp"

namespace tca::rules {
namespace {

TEST(OuterTotalistic, GameOfLifeTruthCases) {
  const Rule r{game_of_life()};
  // 9 inputs, self first. Dead cell with 3 live neighbors is born.
  std::vector<State> in(9, 0);
  in[1] = in[2] = in[3] = 1;
  EXPECT_EQ(eval(r, in), 1);
  // Dead with 2 stays dead.
  in[3] = 0;
  EXPECT_EQ(eval(r, in), 0);
  // Live with 2 survives.
  in[0] = 1;
  EXPECT_EQ(eval(r, in), 1);
  // Live with 4 dies.
  in[3] = in[4] = 1;
  EXPECT_EQ(eval(r, in), 0);
  // Live with 1 dies.
  in[2] = in[3] = in[4] = 0;
  EXPECT_EQ(eval(r, in), 0);
}

TEST(OuterTotalistic, SelfIndexMatters) {
  // B1/S(none) over 2 neighbors: output 1 iff self==0 and exactly one
  // OTHER input is 1.
  const std::uint32_t born[] = {1};
  const auto r0 = life_like(born, {}, 2, /*self_index=*/0);
  const auto r1 = life_like(born, {}, 2, /*self_index=*/1);
  const std::vector<State> in{1, 0, 1};
  // self_index 0: self=1 -> survive[1] = 0.
  EXPECT_EQ(eval(Rule{r0}, in), 0);
  // self_index 1: self=0, others = {1,1} -> born[2] = 0.
  EXPECT_EQ(eval(Rule{r1}, in), 0);
  const std::vector<State> in2{0, 1, 0};
  // self_index 0: self=0, others={1,0} -> born[1] = 1.
  EXPECT_EQ(eval(Rule{r0}, in2), 1);
  // self_index 1: self=1 -> survive[1]? others={0,0} -> survive[0] = 0.
  EXPECT_EQ(eval(Rule{r1}, in2), 0);
}

TEST(OuterTotalistic, ValidationErrors) {
  const std::uint32_t born[] = {3};
  EXPECT_THROW(life_like(born, {}, 2), std::invalid_argument);  // 3 > 2
  auto r = game_of_life();
  r.self_index = 99;
  const std::vector<State> in(9, 0);
  EXPECT_THROW(eval(Rule{r}, in), std::invalid_argument);
  const std::vector<State> wrong(5, 0);
  EXPECT_THROW(eval(Rule{game_of_life()}, wrong), std::invalid_argument);
}

TEST(OuterTotalistic, RequiredArityAndDescribe) {
  EXPECT_EQ(required_arity(Rule{game_of_life()}), 9u);
  EXPECT_EQ(describe(Rule{game_of_life()}), "outer-totalistic(B3/S23)");
}

TEST(OuterTotalistic, MajorityAsLifeLike) {
  // Majority-of-3 with memory == B2,S1,2 over 2 neighbors:
  // dead becomes 1 iff both neighbors 1 (ones >= 2 needs 2 others);
  // live stays 1 iff at least one neighbor is 1.
  const std::uint32_t born[] = {2};
  const std::uint32_t survive[] = {1, 2};
  const auto r = life_like(born, survive, 2);
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    const std::vector<State> in{static_cast<State>(bits & 1u),
                                static_cast<State>((bits >> 1) & 1u),
                                static_cast<State>((bits >> 2) & 1u)};
    EXPECT_EQ(eval(Rule{r}, in), eval(majority(), in)) << bits;
  }
}

TEST(OuterTotalistic, BlinkerOscillatesOnTorus) {
  // Classic Game-of-Life blinker on a 5x5 torus: period 2.
  const auto g = graph::grid2d(5, 5, true, graph::GridNeighborhood::kMoore);
  const auto a = core::Automaton::from_graph(g, Rule{game_of_life()},
                                             core::Memory::kWith);
  core::Configuration c(25);
  c.set(1 * 5 + 2, 1);
  c.set(2 * 5 + 2, 1);
  c.set(3 * 5 + 2, 1);  // vertical blinker in the middle column
  const auto step1 = core::step_synchronous(a, c);
  EXPECT_NE(step1, c);
  EXPECT_EQ(step1.popcount(), 3u);  // horizontal blinker
  EXPECT_EQ(core::step_synchronous(a, step1), c);
}

TEST(OuterTotalistic, BlockIsStillLife) {
  const auto g = graph::grid2d(5, 5, true, graph::GridNeighborhood::kMoore);
  const auto a = core::Automaton::from_graph(g, Rule{game_of_life()},
                                             core::Memory::kWith);
  core::Configuration c(25);
  c.set(1 * 5 + 1, 1);
  c.set(1 * 5 + 2, 1);
  c.set(2 * 5 + 1, 1);
  c.set(2 * 5 + 2, 1);  // 2x2 block
  EXPECT_TRUE(core::is_fixed_point_synchronous(a, c));
}

TEST(OuterTotalistic, GameOfLifeIsNotMonotoneNorSymmetric) {
  // Overcrowding death makes Life non-monotone; self-dependence makes it
  // non-symmetric (self is distinguished from neighbors).
  const auto table = truth_table(Rule{game_of_life()}, 9);
  EXPECT_FALSE(is_monotone(table));
  EXPECT_FALSE(is_symmetric(table));
}

}  // namespace
}  // namespace tca::rules
