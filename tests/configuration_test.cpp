// Unit tests for bit-packed configurations (src/core/configuration.hpp).

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/configuration.hpp"

namespace tca::core {
namespace {

TEST(Configuration, DefaultIsAllZero) {
  Configuration c(10);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(c.popcount(), 0u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(c.get(i), 0);
}

TEST(Configuration, FillConstructor) {
  Configuration c(70, 1);
  EXPECT_EQ(c.popcount(), 70u);
  EXPECT_EQ(c.get(0), 1);
  EXPECT_EQ(c.get(69), 1);
}

TEST(Configuration, SetGetFlip) {
  Configuration c(130);
  c.set(0, 1);
  c.set(64, 1);
  c.set(129, 1);
  EXPECT_EQ(c.get(0), 1);
  EXPECT_EQ(c.get(64), 1);
  EXPECT_EQ(c.get(129), 1);
  EXPECT_EQ(c.popcount(), 3u);
  c.flip(64);
  EXPECT_EQ(c.get(64), 0);
  c.set(0, 0);
  EXPECT_EQ(c.popcount(), 1u);
}

TEST(Configuration, FromStringRoundTrip) {
  const std::string bits = "0110100111";
  const auto c = Configuration::from_string(bits);
  EXPECT_EQ(c.size(), bits.size());
  EXPECT_EQ(c.to_string(), bits);
  EXPECT_EQ(c.popcount(), 6u);
}

TEST(Configuration, FromStringRejectsGarbage) {
  EXPECT_THROW(Configuration::from_string("01x1"), std::invalid_argument);
}

TEST(Configuration, FromBitsMasksHighBits) {
  const auto c = Configuration::from_bits(0xFF, 4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.popcount(), 4u);
  EXPECT_EQ(c.to_bits(), 0xFu);
}

TEST(Configuration, FromBitsBitOrder) {
  const auto c = Configuration::from_bits(0b0101, 4);
  EXPECT_EQ(c.get(0), 1);
  EXPECT_EQ(c.get(1), 0);
  EXPECT_EQ(c.get(2), 1);
  EXPECT_EQ(c.get(3), 0);
  EXPECT_EQ(c.to_string(), "1010");
}

TEST(Configuration, FromBitsRejectsOver64) {
  EXPECT_THROW(Configuration::from_bits(0, 65), std::invalid_argument);
}

TEST(Configuration, ToBitsRejectsOver64) {
  Configuration c(70);
  EXPECT_THROW(c.to_bits(), std::logic_error);
}

TEST(Configuration, ToBitsFullWord) {
  const auto c = Configuration::from_bits(~std::uint64_t{0}, 64);
  EXPECT_EQ(c.to_bits(), ~std::uint64_t{0});
  EXPECT_EQ(c.popcount(), 64u);
}

TEST(Configuration, EqualityComparesContentAndSize) {
  const auto a = Configuration::from_string("0101");
  const auto b = Configuration::from_string("0101");
  const auto c = Configuration::from_string("0100");
  const auto d = Configuration::from_string("01010");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(Configuration, FillResetsPadding) {
  Configuration c(66);
  c.fill(1);
  EXPECT_EQ(c.popcount(), 66u);
  // Padding stays clear: words carry exactly 66 set bits.
  std::size_t raw = 0;
  for (auto w : c.words()) raw += static_cast<std::size_t>(__builtin_popcountll(w));
  EXPECT_EQ(raw, 66u);
  c.fill(0);
  EXPECT_EQ(c.popcount(), 0u);
}

TEST(Configuration, MaskPaddingClearsHighBits) {
  Configuration c(4);
  c.words()[0] = 0xFF;
  c.mask_padding();
  EXPECT_EQ(c.to_bits(), 0xFu);
}

TEST(ConfigurationHashing, EqualConfigsHashEqual) {
  const auto a = Configuration::from_string("0101101");
  const auto b = Configuration::from_string("0101101");
  EXPECT_EQ(hash_value(a), hash_value(b));
}

TEST(ConfigurationHashing, FewCollisionsOnDenseEnumeration) {
  std::unordered_set<std::uint64_t> hashes;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    hashes.insert(hash_value(Configuration::from_bits(s, 12)));
  }
  // A 64-bit hash over 4096 inputs should essentially never collide.
  EXPECT_EQ(hashes.size(), 4096u);
}

TEST(ConfigurationHashing, SizeMatters) {
  const auto a = Configuration::from_string("01");
  const auto b = Configuration::from_string("010");
  EXPECT_NE(hash_value(a), hash_value(b));
}

TEST(ConfigurationHashing, WorksInUnorderedContainers) {
  std::unordered_set<Configuration, ConfigurationHash> set;
  set.insert(Configuration::from_string("0101"));
  set.insert(Configuration::from_string("0101"));
  set.insert(Configuration::from_string("1010"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Configuration, LargeRandomRoundTrip) {
  std::mt19937_64 rng(42);
  Configuration c(1000);
  std::string expect(1000, '0');
  for (int i = 0; i < 500; ++i) {
    const auto pos = static_cast<std::size_t>(rng() % 1000);
    c.set(pos, 1);
    expect[pos] = '1';
  }
  EXPECT_EQ(c.to_string(), expect);
  EXPECT_EQ(Configuration::from_string(expect), c);
}

TEST(Configuration, ZeroSize) {
  Configuration c(0);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.popcount(), 0u);
  EXPECT_EQ(c.to_string(), "");
  EXPECT_EQ(c.to_bits(), 0u);
}

}  // namespace
}  // namespace tca::core
