// Unit tests for the sequential (SCA) engine (src/core/sequential.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

Automaton majority_ring(std::size_t n, std::uint32_t r = 1) {
  return Automaton::line(n, r, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(UpdateNode, ReportsChange) {
  const auto a = majority_ring(4);
  auto c = Configuration::from_string("0110");
  // node 0: inputs (3,0,1) = (0,0,1) -> stays 0.
  EXPECT_FALSE(update_node(a, c, 0));
  EXPECT_EQ(c.to_string(), "0110");
  // node 3: inputs (2,3,0) = (1,0,0) -> stays 0.
  EXPECT_FALSE(update_node(a, c, 3));
  // From 0100: node 1 inputs (0,1,2) = (0,1,0) -> flips to 0.
  auto d = Configuration::from_string("0100");
  EXPECT_TRUE(update_node(a, d, 1));
  EXPECT_EQ(d.to_string(), "0000");
}

TEST(UpdateNode, OutOfRangeThrows) {
  const auto a = majority_ring(4);
  auto c = Configuration(4);
  EXPECT_THROW(update_node(a, c, 4), std::invalid_argument);
}

TEST(ApplySequence, CountsChanges) {
  const auto a = majority_ring(6);
  auto c = Configuration::from_string("010101");
  const auto order = identity_order(6);
  const std::size_t changes = apply_sequence(a, c, order);
  EXPECT_GT(changes, 0u);
  // The alternating state breaks up sequentially instead of blinking.
  EXPECT_NE(c.to_string(), "101010");
}

TEST(ApplySequence, UpdatesAreImmediatelyVisible) {
  // Sequential semantics: node 1 sees node 0's new value within the sweep.
  const auto a = majority_ring(4);
  auto c = Configuration::from_string("1010");
  // Parallel would blink to 0101. Sequentially with order 0,1,2,3:
  // node 0: (c3,c0,c1) = (0,1,0) -> 0 giving 0010
  // node 1: (c0,c1,c2) = (0,0,1) -> 0 (unchanged)
  // node 2: (c1,c2,c3) = (0,1,0) -> 0 giving 0000
  // node 3: stays 0.
  apply_sequence(a, c, identity_order(4));
  EXPECT_EQ(c.to_string(), "0000");
}

TEST(RunSweeps, ConvergesToFixedPoint) {
  const auto a = majority_ring(16);
  auto c = Configuration::from_string("0110100111010010");
  const auto order = identity_order(16);
  const auto sweeps = run_sweeps_to_fixed_point(a, c, order, 100);
  ASSERT_TRUE(sweeps.has_value());
  EXPECT_TRUE(is_fixed_point_sequential(a, c));
  EXPECT_TRUE(is_fixed_point_synchronous(a, c));  // same notion
}

TEST(RunSweeps, AlreadyFixedTakesZeroSweeps) {
  const auto a = majority_ring(8);
  auto c = Configuration::from_string("11110000");
  const auto sweeps =
      run_sweeps_to_fixed_point(a, c, identity_order(8), 10);
  EXPECT_EQ(sweeps, 0u);
}

TEST(RunSweeps, ReversedOrderAlsoConverges) {
  const auto a = majority_ring(12);
  auto c = Configuration::from_string("010110100101");
  const auto sweeps =
      run_sweeps_to_fixed_point(a, c, reversed_order(12), 100);
  ASSERT_TRUE(sweeps.has_value());
  EXPECT_TRUE(is_fixed_point_sequential(a, c));
}

TEST(RunSchedule, RandomUniformConverges) {
  const auto a = majority_ring(16);
  auto c = Configuration::from_string("0101010101010101");
  RandomUniformSchedule schedule(16, /*seed=*/7);
  const auto updates = run_schedule_to_fixed_point(a, c, schedule, 100000);
  ASSERT_TRUE(updates.has_value());
  EXPECT_TRUE(is_fixed_point_sequential(a, c));
}

TEST(RunSchedule, RandomSweepConverges) {
  const auto a = majority_ring(16);
  auto c = Configuration::from_string("1001101001011010");
  RandomSweepSchedule schedule(16, /*seed=*/11);
  const auto updates = run_schedule_to_fixed_point(a, c, schedule, 100000);
  ASSERT_TRUE(updates.has_value());
}

TEST(RunSchedule, StarvationCanPreventConvergence) {
  // Footnote 2: without fairness a needed node may never update. Starve a
  // node whose update is required to reach any fixed point.
  const auto a = majority_ring(4);
  // 0100 needs node 1 to flip; starving node 1 leaves the state stuck in a
  // non-fixed configuration forever.
  auto c = Configuration::from_string("0100");
  StarvingSchedule schedule(4, /*starved=*/1);
  const auto updates = run_schedule_to_fixed_point(a, c, schedule, 10000);
  EXPECT_FALSE(updates.has_value());
  EXPECT_EQ(c.to_string(), "0100");  // nothing else could move
}

TEST(FixedPointNotions, SequentialAndSynchronousCoincide) {
  // x is fixed for the parallel map iff no single-node update changes it.
  const auto a = majority_ring(10);
  for (std::uint64_t bits = 0; bits < 1024; ++bits) {
    const auto c = Configuration::from_bits(bits, 10);
    EXPECT_EQ(is_fixed_point_sequential(a, c),
              is_fixed_point_synchronous(a, c))
        << bits;
  }
}

TEST(SequentialXor, PaperExampleTransitions) {
  // Fig. 1(b): from 01, updating node 1 gives 11; updating node 2 keeps 01.
  const auto g = graph::complete(2);
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  auto c = Configuration::from_string("01");
  EXPECT_FALSE(update_node(a, c, 1));  // paper's "node 2"
  EXPECT_EQ(c.to_string(), "01");
  EXPECT_TRUE(update_node(a, c, 0));  // paper's "node 1"
  EXPECT_EQ(c.to_string(), "11");
  // From 11 either node zeroes itself.
  auto d = Configuration::from_string("11");
  EXPECT_TRUE(update_node(a, d, 0));
  EXPECT_EQ(d.to_string(), "01");
}

TEST(SequentialXor, TwoCycleUnderRepeatedSingleNodeUpdates) {
  // Paper: updating node 1 repeatedly cycles 01 -> 11 -> 01 -> ...
  const auto g = graph::complete(2);
  const auto a = Automaton::from_graph(g, rules::parity(), Memory::kWith);
  auto c = Configuration::from_string("01");
  update_node(a, c, 0);
  EXPECT_EQ(c.to_string(), "11");
  update_node(a, c, 0);
  EXPECT_EQ(c.to_string(), "01");
}

}  // namespace
}  // namespace tca::core
