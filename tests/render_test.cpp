// Unit tests for text rendering (src/core/render.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/render.hpp"
#include "core/schedule.hpp"

namespace tca::core {
namespace {

TEST(RenderRow, DefaultGlyphs) {
  EXPECT_EQ(render_row(Configuration::from_string("0110")), ".##.");
}

TEST(RenderRow, CustomGlyphs) {
  RenderStyle style{'_', 'O'};
  EXPECT_EQ(render_row(Configuration::from_string("101"), style), "O_O");
}

TEST(RenderSpacetime, BlinkerDiagram) {
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto diagram =
      render_spacetime(a, Configuration::from_string("010101"), 2);
  EXPECT_EQ(diagram, ".#.#.#\n#.#.#.\n.#.#.#\n");
}

TEST(RenderSpacetime, RowCountIsStepsPlusOne) {
  const auto a = Automaton::line(8, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  const auto diagram = render_spacetime(a, Configuration(8), 5);
  std::size_t newlines = 0;
  for (char c : diagram) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 6u);
}

TEST(RenderSpacetime, SimulationVariantUsesItsScheme) {
  const auto a = Automaton::line(6, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Simulation seq(a, Configuration::from_string("010101"),
                 SequentialScheme{identity_order(6)});
  const auto diagram = render_spacetime(seq, 1);
  // One left-to-right sweep dissolves the blinker instead of flipping it.
  EXPECT_EQ(diagram.substr(0, 7), ".#.#.#\n");
  EXPECT_NE(diagram.substr(7, 7), "#.#.#.\n");
  EXPECT_EQ(seq.time(), 1u);
}

TEST(RenderGrid, TorusRows) {
  TorusGrid grid(2, 3);
  grid.set(0, 1, 1);
  grid.set(1, 2, 1);
  EXPECT_EQ(render_grid(grid), ".#.\n..#\n");
}

}  // namespace
}  // namespace tca::core
