// Generational checkpoint store (src/runtime/ckpt_store.hpp,
// docs/robustness.md): keep-last-K rotation, recovery across the full
// corruption matrix from checkpoint_corruption_test, and the quarantine
// contract — a file that fails validation is RENAMED out of the candidate
// set, never deleted, so forensics always have the corrupt bytes.

#include "runtime/ckpt_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::runtime {
namespace {

namespace fs = std::filesystem;

class CkptStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "tca_ckpt_store_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    head_ = (dir_ / "state.ckpt").string();
  }

  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] Checkpoint make(const std::string& payload) const {
    Checkpoint ck;
    ck.payload = payload;
    return ck;
  }

  [[nodiscard]] std::string read_file(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void write_file(const std::string& path, const std::string& blob) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  /// Files in the store directory, sorted — quarantine assertions need the
  /// whole picture, not just the store's own view.
  [[nodiscard]] std::vector<std::string> dir_listing() const {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  fs::path dir_;
  std::string head_;
};

TEST_F(CkptStoreTest, FirstSaveCreatesOnlyTheHead) {
  CheckpointStore store(head_, {.keep_generations = 3});
  store.save(make("gen0"));
  EXPECT_EQ(dir_listing(), (std::vector<std::string>{"state.ckpt"}));
  EXPECT_EQ(store.generations(), (std::vector<std::string>{head_}));
}

TEST_F(CkptStoreTest, SavesRotateNewestFirstAndPruneBeyondK) {
  CheckpointStore store(head_, {.keep_generations = 3});
  for (int i = 0; i < 5; ++i) {
    store.save(make("gen" + std::to_string(i)));
  }
  // 5 saves, keep 3: head (gen4) + .g4 (gen3) + .g3 (gen2); .g1/.g2 pruned.
  EXPECT_EQ(dir_listing(), (std::vector<std::string>{
                               "state.ckpt", "state.ckpt.g3",
                               "state.ckpt.g4"}));
  EXPECT_EQ(store.generations(),
            (std::vector<std::string>{head_, head_ + ".g4", head_ + ".g3"}));
  EXPECT_EQ(load_checkpoint(head_).payload, "gen4");
  EXPECT_EQ(load_checkpoint(head_ + ".g4").payload, "gen3");
  EXPECT_EQ(load_checkpoint(head_ + ".g3").payload, "gen2");
}

TEST_F(CkptStoreTest, KeepGenerationsClampsToOne) {
  CheckpointStore store(head_, {.keep_generations = 0});
  store.save(make("a"));
  store.save(make("b"));
  // keep==1 retains only the head; the rotated .g1 is pruned immediately.
  EXPECT_EQ(dir_listing(), (std::vector<std::string>{"state.ckpt"}));
  EXPECT_EQ(load_checkpoint(head_).payload, "b");
}

TEST_F(CkptStoreTest, LoadLatestPrefersAHealthyHead) {
  CheckpointStore store(head_, {.keep_generations = 3});
  store.save(make("old"));
  store.save(make("new"));
  const auto recovery = store.load_latest();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint.payload, "new");
  EXPECT_EQ(recovery->path, head_);
  EXPECT_FALSE(recovery->from_generation);
  EXPECT_EQ(recovery->quarantined, 0u);
}

TEST_F(CkptStoreTest, EmptyStoreLoadsNothing) {
  CheckpointStore store(head_, {.keep_generations = 3});
  EXPECT_EQ(store.load_latest(), std::nullopt);
}

TEST_F(CkptStoreTest, MissingHeadFallsBackWithoutQuarantine) {
  CheckpointStore store(head_, {.keep_generations = 3});
  store.save(make("old"));
  store.save(make("new"));
  fs::remove(head_);
  const auto recovery = store.load_latest();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint.payload, "old");
  EXPECT_EQ(recovery->path, head_ + ".g1");
  EXPECT_TRUE(recovery->from_generation);
  EXPECT_EQ(recovery->quarantined, 0u)
      << "a missing file is skipped, not quarantined";
}

// The corruption matrix from checkpoint_corruption_test, replayed against
// the store: every damage class must quarantine the head and recover the
// previous generation.
class CkptStoreCorruptionTest : public CkptStoreTest {
 protected:
  void SetUp() override {
    CkptStoreTest::SetUp();
    CheckpointStore store(head_, {.keep_generations = 3});
    store.save(make("good-old"));
    store.save(make("good-new"));
  }

  /// Damages the head with `mutate`, then asserts: recovery lands on .g1,
  /// the damaged head is renamed to .quarantined (bytes preserved), and a
  /// warn event fires.
  void expect_quarantined_recovery(
      const std::function<std::string(std::string)>& mutate) {
    const std::string damaged = mutate(read_file(head_));
    write_file(head_, damaged);

    obs::Counter& quarantined_c = obs::counter("ckpt_store.quarantined");
    const auto q_before = quarantined_c.value();
    std::vector<obs::LogRecord> events;
    obs::ScopedLogSink sink(
        [&](const obs::LogRecord& r) { events.push_back(r); });

    CheckpointStore store(head_, {.keep_generations = 3});
    const auto recovery = store.load_latest();
    ASSERT_TRUE(recovery.has_value());
    EXPECT_EQ(recovery->checkpoint.payload, "good-old");
    EXPECT_TRUE(recovery->from_generation);
    EXPECT_EQ(recovery->quarantined, 1u);

    EXPECT_FALSE(fs::exists(head_)) << "damaged head must be renamed away";
    const std::string quarantine_path = head_ + ".quarantined";
    ASSERT_TRUE(fs::exists(quarantine_path));
    EXPECT_EQ(read_file(quarantine_path), damaged)
        << "quarantine must preserve the corrupt bytes for forensics";
    EXPECT_EQ(quarantined_c.value(), q_before + 1);

    bool warned = false;
    for (const auto& r : events) {
      if (r.event == "ckpt_store.quarantined" &&
          r.level == obs::LogLevel::kWarn) {
        warned = true;
      }
    }
    EXPECT_TRUE(warned);
  }
};

TEST_F(CkptStoreCorruptionTest, BitFlippedHeadRecoversFromGeneration) {
  expect_quarantined_recovery([](std::string blob) {
    blob[blob.size() - 3] = static_cast<char>(blob[blob.size() - 3] ^ 0x01);
    return blob;
  });
}

TEST_F(CkptStoreCorruptionTest, TruncatedHeadRecoversFromGeneration) {
  expect_quarantined_recovery(
      [](std::string blob) { return blob.substr(0, blob.size() - 7); });
}

TEST_F(CkptStoreCorruptionTest, PaddedHeadRecoversFromGeneration) {
  expect_quarantined_recovery(
      [](std::string blob) { return blob + "trailing junk"; });
}

TEST_F(CkptStoreCorruptionTest, BadMagicHeadRecoversFromGeneration) {
  expect_quarantined_recovery([](std::string blob) {
    blob[0] = 'X';
    return blob;
  });
}

TEST_F(CkptStoreCorruptionTest, WrongVersionHeadRecoversFromGeneration) {
  expect_quarantined_recovery([](std::string blob) {
    const std::string tag = "TCA-CKPT v1";
    blob.replace(0, tag.size(), "TCA-CKPT v9");
    return blob;
  });
}

TEST_F(CkptStoreCorruptionTest, GarbageHeadRecoversFromGeneration) {
  expect_quarantined_recovery(
      [](std::string) { return std::string("not a checkpoint at all\n"); });
}

TEST_F(CkptStoreCorruptionTest, EverythingCorruptQuarantinesAllAndFails) {
  // Damage the head AND the only generation: nothing validates, both are
  // quarantined, nothing is deleted.
  write_file(head_, "garbage head");
  write_file(head_ + ".g1", "garbage gen");
  CheckpointStore store(head_, {.keep_generations = 3});
  EXPECT_EQ(store.load_latest(), std::nullopt);
  EXPECT_FALSE(fs::exists(head_));
  EXPECT_FALSE(fs::exists(head_ + ".g1"));
  EXPECT_TRUE(fs::exists(head_ + ".quarantined"));
  EXPECT_TRUE(fs::exists(head_ + ".g1.quarantined"));
}

TEST_F(CkptStoreCorruptionTest, RepeatQuarantinesGetDistinctNames) {
  write_file(head_, "garbage one");
  CheckpointStore store(head_, {.keep_generations = 3});
  ASSERT_TRUE(store.load_latest().has_value());  // recovered from .g1
  write_file(head_, "garbage two");
  ASSERT_TRUE(store.load_latest().has_value());
  EXPECT_TRUE(fs::exists(head_ + ".quarantined"));
  EXPECT_TRUE(fs::exists(head_ + ".quarantined.1"))
      << "a second quarantine of the same path must not clobber the first";
  EXPECT_EQ(read_file(head_ + ".quarantined"), "garbage one");
  EXPECT_EQ(read_file(head_ + ".quarantined.1"), "garbage two");
}

TEST_F(CkptStoreCorruptionTest, QuarantinedFilesLeaveTheCandidateSet) {
  write_file(head_, "garbage head");
  CheckpointStore store(head_, {.keep_generations = 3});
  ASSERT_TRUE(store.load_latest().has_value());
  // The quarantined file is invisible to generations() and to saves.
  EXPECT_EQ(store.generations(), (std::vector<std::string>{head_ + ".g1"}));
  store.save(make("fresh"));
  const auto recovery = store.load_latest();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint.payload, "fresh");
  EXPECT_FALSE(recovery->from_generation);
  EXPECT_TRUE(fs::exists(head_ + ".quarantined"))
      << "saving again must never touch quarantined files";
}

TEST_F(CkptStoreTest, InjectedReadCorruptionDrivesRecovery) {
  // The fault plan's read knob reports the (intact) head as corrupt — the
  // store must quarantine it and recover generation data, proving the
  // whole recovery path without hand-crafted file damage.
  CheckpointStore store(head_, {.keep_generations = 3});
  store.save(make("old"));
  store.save(make("new"));
  ScopedFaultPlan plan({.checkpoint_read_corrupt_at = 1});
  const auto recovery = store.load_latest();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint.payload, "old");
  EXPECT_TRUE(recovery->from_generation);
  EXPECT_EQ(recovery->quarantined, 1u);
  EXPECT_TRUE(fs::exists(head_ + ".quarantined"));
}

TEST_F(CkptStoreTest, InjectedWriteFailureLeavesStoreConsistent) {
  CheckpointStore store(head_, {.keep_generations = 3});
  store.save(make("good"));
  {
    ScopedFaultPlan plan({.checkpoint_write_at = 1});
    EXPECT_THROW(store.save(make("doomed")), CheckpointError);
  }
  // The failed save already rotated the old head; recovery still finds it.
  const auto recovery = store.load_latest();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint.payload, "good");
  // And the store keeps working after the fault.
  store.save(make("after"));
  EXPECT_EQ(load_checkpoint(head_).payload, "after");
}

TEST_F(CkptStoreTest, RecoveryCounterTracksFallbacks) {
  obs::Counter& recoveries = obs::counter("ckpt_store.recoveries");
  CheckpointStore store(head_, {.keep_generations = 3});
  store.save(make("a"));
  store.save(make("b"));
  const auto before = recoveries.value();
  ASSERT_TRUE(store.load_latest().has_value());
  EXPECT_EQ(recoveries.value(), before) << "healthy head is not a recovery";
  fs::remove(head_);
  ASSERT_TRUE(store.load_latest().has_value());
  EXPECT_EQ(recoveries.value(), before + 1);
}

}  // namespace
}  // namespace tca::runtime
