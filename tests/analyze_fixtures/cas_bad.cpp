// tca_analyze fixture: both CAS-idiom findings. NOT compiled by CMake.
#include <atomic>

std::atomic<unsigned long> word{0};

// cas-single-order: one memory_order covers success only; the failure
// load silently becomes seq_cst-derived.
bool publish(unsigned long v) {
  unsigned long expected = 0;
  return word.compare_exchange_strong(expected, v,
                                      std::memory_order_release);
}

// cas-reload-race: the loop throws away the value the failed CAS wrote
// into `cur` and re-loads — another writer can slip in between the load
// and the retry.
void merge(unsigned long bits) {
  unsigned long cur = word.load(std::memory_order_relaxed);
  while (!word.compare_exchange_weak(cur, cur | bits,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    cur = word.load(std::memory_order_relaxed);
  }
}
