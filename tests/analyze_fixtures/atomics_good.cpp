// tca_analyze fixture: fully explicit orders, every non-seq_cst site
// registered in atomics_contract.md — the audit must stay silent. Also
// exercises the suppression syntax. NOT compiled by CMake.
#include <atomic>

std::atomic<int> gate{0};
std::atomic<unsigned long> ticks{0};

int observe() {
  gate.store(1, std::memory_order_seq_cst);  // explicit seq_cst: no row needed
  ticks.fetch_add(1, std::memory_order_relaxed);
  return gate.load(std::memory_order_relaxed);
}

void legacy_bump() {
  // tca-analyze: allow(atomic-implicit-order) fixture: demonstrates the
  // suppression syntax on a deliberate operator-form site.
  ++ticks;
}
