// tca_analyze fixture: blocking constructs inside hot loops — one of
// each category (lock, IO, allocation, container construction) in a
// TCA_HOT_PATH root, plus an allocating for_each_range lambda. The
// TCA_HOT_PATH token is all the analyzer keys on; this file is NOT
// compiled by CMake.
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

std::mutex mu;
int sink;

TCA_HOT_PATH void hot_step(const int* src, int* dst, unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    std::lock_guard<std::mutex> guard(mu);   // lock in the per-cell loop
    std::vector<int> scratch(n);             // allocation per iteration
    printf("cell %u\n", i);                  // IO per iteration
    dst[i] = src[i] + scratch.size();
  }
}

struct Store {
  void for_each_range(void (*fn)(unsigned, const int*));
};

void census(Store& store) {
  store.for_each_range([](unsigned first, const int* block) {
    std::string label = std::to_string(first);  // allocates per block
    sink += label.size() + block[0];
  });
}
