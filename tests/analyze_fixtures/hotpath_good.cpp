// tca_analyze fixture: the disciplined version — allocations hoisted to
// setup, locks at the boundary, static one-shot init / throw statements
// / catch blocks exempt inside the loop, one deliberate suppression.
// NOT compiled by CMake.
#include <mutex>
#include <stdexcept>
#include <vector>

std::mutex mu;
int sink;

TCA_HOT_PATH void hot_step(const int* src, int* dst, unsigned n) {
  std::vector<int> scratch(n);        // setup: outside the loop
  std::lock_guard<std::mutex> guard(mu);  // boundary lock, not per-cell
  for (unsigned i = 0; i < n; ++i) {
    static int calls = 0;             // one-shot static init is exempt
    ++calls;
    if (src[i] < 0) {
      throw std::runtime_error("negative input");  // cold failure path
    }
    try {
      dst[i] = src[i] + scratch[i];
    } catch (...) {
      std::vector<int> diagnostics(n);  // catch blocks are cold
      sink += diagnostics.size();
    }
  }
  for (unsigned i = 0; i < n; ++i) {
    // tca-analyze: allow(hot-path-blocking) fixture: demonstrates the
    // suppression syntax on a measured-harmless allocation.
    dst[i] += std::vector<int>(1)[0];
  }
}

struct Store {
  void for_each_range(void (*fn)(unsigned, const int*));
};

void census(Store& store) {
  store.for_each_range([](unsigned first, const int* block) {
    sink += block[0] + static_cast<int>(first);  // pure counting: clean
  });
}
