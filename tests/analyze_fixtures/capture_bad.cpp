// tca_analyze fixture: by-reference captures handed to threads without
// the joined-before-scope-exit annotation, plus a detached thread.
// NOT compiled by CMake.
#include <thread>
#include <vector>

void fan_out(unsigned workers) {
  unsigned progress = 0;
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] { ++progress; });  // &progress may dangle
  }
  auto task = [&]() { progress += 2; };
  std::thread extra(task);  // named ref-capturing lambda, same hazard
  extra.detach();           // detached: lifetime unverifiable
}
