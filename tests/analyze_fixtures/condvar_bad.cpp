// tca_analyze fixture: CondVar::wait outside a predicate loop — the
// exact hole the deliberately predicate-free tca::CondVar wrapper
// leaves open to thread-safety analysis. NOT compiled by CMake.

struct CondVar {
  void wait(int& guard);
};

struct Worker {
  CondVar cv_;
  int lock = 0;
  bool ready = false;

  void bad_wait() {
    if (!ready) {
      cv_.wait(lock);  // a spurious wakeup sails straight through
    }
  }

  void bare_wait() {
    cv_.wait(lock);  // no predicate at all
  }
};
