// tca_analyze fixture: the atomics audit must fire on every pattern
// here (paired with atomics_contract.md, which deliberately registers
// none of these and carries one stale row). NOT compiled by CMake —
// analyzer input only.
#include <atomic>

std::atomic<int> ready{0};
std::atomic<unsigned long> hits{0};

int observe() {
  ready.store(1);                                   // implicit seq_cst store
  hits.fetch_add(1, std::memory_order_relaxed);     // relaxed, unregistered
  return ready.load(std::memory_order_relaxed);     // relaxed, unregistered
}

void bump() {
  ++hits;        // operator form: implicit seq_cst RMW
  ready = 2;     // operator form: implicit seq_cst store
}
