// tca_analyze fixture: the accepted spawn shapes — annotated join
// guarantee for by-reference captures, `this`/by-value captures need no
// annotation. TCA_JOINED_BEFORE_SCOPE_EXIT is matched textually; this
// file is NOT compiled by CMake.
#include <thread>
#include <vector>

struct Pool {
  std::vector<std::thread> workers_;
  unsigned progress = 0;

  void fan_out(unsigned workers) {
    for (unsigned w = 0; w < workers; ++w) {
      TCA_JOINED_BEFORE_SCOPE_EXIT(
          "all workers joined in the loop below before fan_out returns");
      workers_.emplace_back([&] { ++progress; });
    }
    for (std::thread& t : workers_) t.join();
  }

  void spawn_members() {
    workers_.emplace_back([this] { ++progress; });  // this-capture: fine
    for (std::thread& t : workers_) t.join();
  }
};

void by_value(unsigned seed) {
  std::thread t([seed] { (void)(seed + 1); });  // value capture: fine
  t.join();
}
