// tca_analyze fixture: the canonical CAS idioms — dual orders, the
// retry loop reuses the updated expected value (the in-tree exemplars
// are runtime/fault.cpp consume() and successor_store.cpp merge_word).
// NOT compiled by CMake.
#include <atomic>

std::atomic<unsigned long> word{0};

void merge(unsigned long bits) {
  unsigned long cur = word.load(std::memory_order_relaxed);
  while (!word.compare_exchange_weak(cur, cur | bits,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

bool consume_one() {
  unsigned long left = word.load(std::memory_order_relaxed);
  for (;;) {
    if (left == 0) return false;
    const unsigned long next = left - 1;
    if (word.compare_exchange_weak(left, next, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return next == 0;
    }
  }
}
