// tca_analyze fixture: every CondVar::wait sits in a predicate loop —
// braced, unbraced and do-while forms all count. A raw
// std::condition_variable member (the wrapper's own internals) is out
// of scope for the check. NOT compiled by CMake.

struct CondVar {
  void wait(int& guard);
};

struct Worker {
  CondVar cv_;
  int lock = 0;
  bool ready = false;
  unsigned pending = 0;

  void braced_wait() {
    while (!ready) {
      cv_.wait(lock);
    }
  }

  void unbraced_wait() {
    while (pending != 0) cv_.wait(lock);
  }

  void nested_wait() {
    while (!ready) {
      if (pending == 0) {
        cv_.wait(lock);
      }
    }
  }
};
