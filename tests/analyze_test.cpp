// Unit tests for Boolean-function analyzers (src/rules/analyze.hpp).

#include <gtest/gtest.h>

#include "rules/analyze.hpp"
#include "rules/enumerate.hpp"
#include "rules/rule.hpp"

namespace tca::rules {
namespace {

TEST(TruthTable, MajorityArity3) {
  const auto t = truth_table(majority(), 3);
  // idx (MSB-first inputs): 000,001,010,011,100,101,110,111
  const std::vector<State> expected{0, 0, 0, 1, 0, 1, 1, 1};
  EXPECT_EQ(t, expected);
}

TEST(TruthTable, ParityArity2) {
  const auto t = truth_table(parity(), 2);
  const std::vector<State> expected{0, 1, 1, 0};
  EXPECT_EQ(t, expected);
}

TEST(TruthTable, FixedArityMismatchThrows) {
  EXPECT_THROW(truth_table(Rule{wolfram(30)}, 2), std::invalid_argument);
}

TEST(TruthTable, MatchesTableRuleRoundTrip) {
  const TableRule r = wolfram(90);
  EXPECT_EQ(truth_table(Rule{r}, 3), r.table);
}

TEST(IsMonotone, MajorityYesParityNo) {
  EXPECT_TRUE(is_monotone(majority(), 3));
  EXPECT_TRUE(is_monotone(majority(), 5));
  EXPECT_FALSE(is_monotone(parity(), 2));
  EXPECT_FALSE(is_monotone(parity(), 3));
}

TEST(IsMonotone, AndOrConstantsAreMonotone) {
  EXPECT_TRUE(is_monotone(Rule{KOfNRule{3}}, 3));  // AND of 3
  EXPECT_TRUE(is_monotone(Rule{KOfNRule{1}}, 3));  // OR of 3
  EXPECT_TRUE(is_monotone(Rule{KOfNRule{0}}, 3));  // constant 1
  EXPECT_TRUE(is_monotone(Rule{KOfNRule{9}}, 3));  // constant 0
}

TEST(IsSymmetric, SymmetricRulesAndCounterexample) {
  EXPECT_TRUE(is_symmetric(majority(), 3));
  EXPECT_TRUE(is_symmetric(parity(), 4));
  // Projection to the first input is not symmetric.
  const TableRule proj{{0, 0, 1, 1}};
  EXPECT_FALSE(is_symmetric(proj.table));
}

TEST(IsConstant, DetectsConstants) {
  EXPECT_TRUE(is_constant(truth_table(Rule{KOfNRule{0}}, 3)));
  EXPECT_TRUE(is_constant(truth_table(Rule{KOfNRule{7}}, 3)));
  EXPECT_FALSE(is_constant(truth_table(majority(), 3)));
}

TEST(IsSelfDual, OddMajorityIsSelfDual) {
  EXPECT_TRUE(is_self_dual(truth_table(majority(), 3)));
  EXPECT_TRUE(is_self_dual(truth_table(majority(), 5)));
  EXPECT_FALSE(is_self_dual(truth_table(Rule{KOfNRule{1}}, 3)));  // OR
}

TEST(ThresholdRepresentation, MajorityIsThreshold) {
  const auto form = threshold_representation(truth_table(majority(), 3));
  ASSERT_TRUE(form.has_value());
  // Verify the representation reproduces the function.
  for (std::size_t x = 0; x < 8; ++x) {
    std::int64_t dot = 0;
    for (std::uint32_t b = 0; b < 3; ++b) {
      if ((x >> (2 - b)) & 1u) dot += form->weights[b];
    }
    const State want = truth_table(majority(), 3)[x];
    EXPECT_EQ(dot >= form->theta, want != 0) << "x=" << x;
  }
}

TEST(ThresholdRepresentation, XorIsNotThreshold) {
  EXPECT_FALSE(
      threshold_representation(truth_table(parity(), 2)).has_value());
  EXPECT_FALSE(
      threshold_representation(truth_table(parity(), 3)).has_value());
}

TEST(ThresholdRepresentation, AndOrAreThreshold) {
  EXPECT_TRUE(
      threshold_representation(truth_table(Rule{KOfNRule{3}}, 3)).has_value());
  EXPECT_TRUE(
      threshold_representation(truth_table(Rule{KOfNRule{1}}, 3)).has_value());
}

TEST(ThresholdRepresentation, WeightedNonSymmetricThreshold) {
  // f = x0 OR (x1 AND x2) is threshold: 2*x0 + x1 + x2 >= 2.
  const WeightedThresholdRule r{{2, 1, 1}, 2};
  const auto form = threshold_representation(truth_table(Rule{r}, 3));
  EXPECT_TRUE(form.has_value());
}

TEST(ThresholdRepresentation, TwoOutOfFourPairsIsNotThreshold) {
  // f(x) = (x0 AND x1) OR (x2 AND x3) is the classic non-threshold monotone
  // function (not 2-asummable).
  TableRule r;
  r.table.resize(16);
  for (std::size_t x = 0; x < 16; ++x) {
    const bool a = (x >> 3) & 1u, b = (x >> 2) & 1u;
    const bool c = (x >> 1) & 1u, d = x & 1u;
    r.table[x] = static_cast<State>((a && b) || (c && d));
  }
  EXPECT_TRUE(is_monotone(r.table));
  EXPECT_FALSE(threshold_representation(r.table).has_value());
}

TEST(AsKOfN, RecoverasThresholdIndex) {
  EXPECT_EQ(as_k_of_n(truth_table(majority(), 3)), 2u);
  EXPECT_EQ(as_k_of_n(truth_table(majority(), 5)), 3u);
  EXPECT_EQ(as_k_of_n(truth_table(Rule{KOfNRule{1}}, 4)), 1u);
  EXPECT_EQ(as_k_of_n(truth_table(Rule{KOfNRule{4}}, 4)), 4u);
}

TEST(AsKOfN, RejectsNonMonotoneOrConstant) {
  EXPECT_EQ(as_k_of_n(truth_table(parity(), 3)), std::nullopt);
  EXPECT_EQ(as_k_of_n(truth_table(Rule{KOfNRule{0}}, 3)), std::nullopt);
}

TEST(EssentialArity, DetectsDummyVariables) {
  EXPECT_EQ(essential_arity(truth_table(majority(), 3)), 3u);
  // Projection to first input: only one essential variable out of two.
  const TableRule proj{{0, 0, 1, 1}};
  EXPECT_EQ(essential_arity(proj.table), 1u);
  EXPECT_EQ(essential_arity(truth_table(Rule{KOfNRule{0}}, 3)), 0u);
}

// Property sweep: EVERY monotone symmetric rule is threshold-representable
// (they are exactly the k-of-n rules) — the class identity behind Theorem 1.
class MonotoneSymmetricThreshold : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneSymmetricThreshold, AllAreThresholdFunctions) {
  const auto arity = static_cast<std::uint32_t>(GetParam());
  for (const SymmetricRule& r : all_monotone_symmetric(arity)) {
    const auto table = truth_table(Rule{r}, arity);
    EXPECT_TRUE(is_monotone(table));
    EXPECT_TRUE(is_symmetric(table));
    EXPECT_TRUE(threshold_representation(table).has_value())
        << describe(Rule{r});
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, MonotoneSymmetricThreshold,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Property sweep: a symmetric rule is monotone iff it is constant or k-of-n.
class SymmetricClassification : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricClassification, MonotoneIffStepAcceptVector) {
  const auto arity = static_cast<std::uint32_t>(GetParam());
  for (const SymmetricRule& r : all_symmetric(arity)) {
    const auto table = truth_table(Rule{r}, arity);
    bool step = true;  // accept vector nondecreasing?
    for (std::size_t i = 0; i + 1 < r.accept.size(); ++i) {
      if (r.accept[i] > r.accept[i + 1]) step = false;
    }
    EXPECT_EQ(is_monotone(table), step) << describe(Rule{r});
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, SymmetricClassification,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tca::rules
