// Property-based suites: parameterized sweeps over (rule class x ring size
// x update discipline) grids, checking the paper's dichotomy on every
// member of each class.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <unordered_set>

#include "analysis/census.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"
#include "rules/analyze.hpp"
#include "rules/enumerate.hpp"

namespace tca {
namespace {

using core::Automaton;
using core::Boundary;
using core::Configuration;
using core::Memory;

// ---------------------------------------------------------------------
// Property 1: For EVERY monotone symmetric rule (arity 3) and EVERY ring
// size, the synchronous phase space has period <= 2 (Proposition 1), and
// the sequential choice digraph is cycle-free (Theorem 1).
class MonotoneSymmetricDichotomy
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MonotoneSymmetricDichotomy, ParallelPeriodAtMostTwo) {
  const auto [rule_idx, n] = GetParam();
  const auto rule = rules::all_monotone_symmetric(3)[
      static_cast<std::size_t>(rule_idx)];
  const auto a = Automaton::line(static_cast<std::size_t>(n), 1,
                                 Boundary::kRing, rules::Rule{rule},
                                 Memory::kWith);
  const auto cls =
      phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
  EXPECT_LE(cls.max_period(), 2u);
}

TEST_P(MonotoneSymmetricDichotomy, SequentialCycleFree) {
  const auto [rule_idx, n] = GetParam();
  const auto rule = rules::all_monotone_symmetric(3)[
      static_cast<std::size_t>(rule_idx)];
  const auto a = Automaton::line(static_cast<std::size_t>(n), 1,
                                 Boundary::kRing, rules::Rule{rule},
                                 Memory::kWith);
  EXPECT_FALSE(
      phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle());
}

INSTANTIATE_TEST_SUITE_P(
    RulesAndSizes, MonotoneSymmetricDichotomy,
    ::testing::Combine(::testing::Range(0, 5),  // all 5 monotone symmetric
                       ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10)));

// ---------------------------------------------------------------------
// Property 2: For every SYMMETRIC arity-3 rule, monotonicity exactly
// predicts sequential cycle-freeness on small rings... almost: monotone =>
// cycle-free is Theorem 1; the converse fails for constants-like rules, so
// we assert only the forward implication plus the existence of a
// non-monotone cycling witness.
class SymmetricRuleSweep : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricRuleSweep, MonotoneImpliesSequentialCycleFree) {
  const auto rule =
      rules::all_symmetric(3)[static_cast<std::size_t>(GetParam())];
  const auto table = rules::truth_table(rules::Rule{rule}, 3);
  if (!rules::is_monotone(table)) GTEST_SKIP() << "not monotone";
  for (const std::size_t n : {4u, 6u, 8u}) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rules::Rule{rule},
                                   Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle())
        << rules::describe(rules::Rule{rule}) << " n=" << n;
  }
}

TEST_P(SymmetricRuleSweep, MonotoneImpliesParallelPeriodAtMostTwo) {
  const auto rule =
      rules::all_symmetric(3)[static_cast<std::size_t>(GetParam())];
  const auto table = rules::truth_table(rules::Rule{rule}, 3);
  if (!rules::is_monotone(table)) GTEST_SKIP() << "not monotone";
  for (const std::size_t n : {4u, 6u, 8u, 10u}) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rules::Rule{rule},
                                   Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_LE(cls.max_period(), 2u)
        << rules::describe(rules::Rule{rule}) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSymmetricArity3, SymmetricRuleSweep,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Property 3: sequential sweeps with EVERY permutation are cycle-free for
// majority (exhaustive over permutations on small rings).
TEST(AllPermutations, MajoritySweepCycleFreeForEveryOrder) {
  const std::size_t n = 6;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  auto perm = core::identity_order(n);
  std::uint64_t checked = 0;
  do {
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::sweep(a, perm));
    ASSERT_FALSE(cls.has_proper_cycle()) << "order #" << checked;
    ++checked;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(checked, 720u);
}

// ---------------------------------------------------------------------
// Property 4: random long update sequences (not permutations) never
// revisit a configuration they changed away from — tested by tracking the
// visited multiset on medium rings.
TEST(ArbitrarySequences, NoRevisitAfterChangeForMajority) {
  const std::size_t n = 16;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    std::unordered_set<Configuration, core::ConfigurationHash> left;
    Configuration current = c;
    core::RandomUniformSchedule schedule(n, rng());
    for (int step = 0; step < 5000; ++step) {
      Configuration before = current;
      if (core::update_node(a, current, schedule.next())) {
        left.insert(before);
        // A configuration we changed away from must never come back.
        ASSERT_FALSE(left.contains(current))
            << "revisited " << current.to_string();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Property 5: engine equivalences on random rules — packed table kernel,
// generic engine, and block-synchronous step agree for every Wolfram rule
// on random states (sampled rules; the full 256 sweep lives in
// packed_kernels_test).
TEST(RandomizedEngines, SweepOrderIndependenceForCommutingPairs) {
  // Updating two non-adjacent nodes commutes (SDS fact) — check on random
  // majority states.
  const std::size_t n = 12;
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    // Pick two nodes at ring distance >= 2.
    const auto u = static_cast<core::NodeId>(rng() % n);
    const auto v = static_cast<core::NodeId>((u + 2 + rng() % (n - 4)) % n);
    Configuration uv = c, vu = c;
    core::update_node(a, uv, u);
    core::update_node(a, uv, v);
    core::update_node(a, vu, v);
    core::update_node(a, vu, u);
    EXPECT_EQ(uv, vu) << "u=" << u << " v=" << v;
  }
}

// ---------------------------------------------------------------------
// Property 6: transient lengths under parallel majority are O(n) in
// practice — the paper's convergence discussion. Loose bound: <= n.
TEST(TransientBounds, ParallelMajorityTransientsAreShort) {
  for (const std::size_t n : {8u, 12u, 16u}) {
    const auto a = Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                                   Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_LE(cls.max_transient, n) << n;
  }
}

// ---------------------------------------------------------------------
// Property 7: non-homogeneous threshold CA (Section 4 extension): mixing
// different k-of-n rules per node still yields sequential cycle-freeness.
TEST(NonHomogeneous, MixedThresholdsSequentialCycleFree) {
  const std::size_t n = 10;
  const auto g = graph::ring(n);
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<rules::Rule> rs;
    for (std::size_t v = 0; v < n; ++v) {
      rs.emplace_back(rules::KOfNRule{1 + static_cast<std::uint32_t>(rng() % 3)});
    }
    const auto a = Automaton::from_graph_per_node(g, rs, Memory::kWith);
    EXPECT_FALSE(
        phasespace::analyze(phasespace::ChoiceDigraph(a)).has_proper_cycle())
        << "trial " << trial;
  }
}

TEST(NonHomogeneous, MixedThresholdsParallelPeriodAtMostTwo) {
  const std::size_t n = 10;
  const auto g = graph::ring(n);
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<rules::Rule> rs;
    for (std::size_t v = 0; v < n; ++v) {
      rs.emplace_back(rules::KOfNRule{1 + static_cast<std::uint32_t>(rng() % 3)});
    }
    const auto a = Automaton::from_graph_per_node(g, rs, Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    EXPECT_LE(cls.max_period(), 2u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace tca
