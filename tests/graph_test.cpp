// Unit tests for the graph substrate (src/graph).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builders.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"

namespace tca::graph {
namespace {

std::vector<NodeId> to_vec(std::span<const NodeId> s) {
  return {s.begin(), s.end()};
}

TEST(Graph, EmptyGraphHasNoNodesOrEdges) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, TriangleAdjacency) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  Graph g(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(to_vec(g.neighbors(0)), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(to_vec(g.neighbors(1)), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(to_vec(g.neighbors(2)), (std::vector<NodeId>{0, 1}));
}

TEST(Graph, EdgeOrderDoesNotMatter) {
  Graph a(3, std::vector<Edge>{{0, 1}, {1, 2}});
  Graph b(3, std::vector<Edge>{{2, 1}, {1, 0}});
  EXPECT_EQ(a, b);
}

TEST(Graph, RejectsSelfLoop) {
  const std::vector<Edge> edges{{1, 1}};
  EXPECT_THROW(Graph(3, edges), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}};
  EXPECT_THROW(Graph(3, edges), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  const std::vector<Edge> edges{{0, 3}};
  EXPECT_THROW(Graph(3, edges), std::invalid_argument);
}

TEST(Graph, HasEdgeIsSymmetric) {
  Graph g(4, std::vector<Edge>{{0, 2}, {1, 3}});
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 4));  // out of range is just "no"
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {0, 3}, {2, 3}};
  Graph g(4, edges);
  EXPECT_EQ(g.edges(), edges);
}

TEST(Graph, SummaryMentionsCounts) {
  Graph g(4, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(g.summary(), "Graph(n=4, m=1)");
}

TEST(Builders, PathHasNMinusOneEdges) {
  const Graph g = path(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Builders, PathRadiusTwo) {
  const Graph g = path(5, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(2), 4u);  // 0,1,3,4
}

TEST(Builders, RingIsTwoRegular) {
  const Graph g = ring(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(regular_degree(g), NodeId{2});
  EXPECT_TRUE(g.has_edge(0, 5));  // wraparound
}

TEST(Builders, RingRadiusTwoIsFourRegular) {
  const Graph g = ring(8, 2);
  EXPECT_EQ(regular_degree(g), NodeId{4});
  EXPECT_TRUE(g.has_edge(0, 6));  // distance 2 across the wrap
}

TEST(Builders, RingRejectsTooSmall) {
  EXPECT_THROW(ring(4, 2), std::invalid_argument);
  EXPECT_THROW(ring(2, 1), std::invalid_argument);
}

TEST(Builders, MinimalRingRadius) {
  // n = 2r+1 is allowed: every node adjacent to every other.
  const Graph g = ring(5, 2);
  EXPECT_EQ(regular_degree(g), NodeId{4});
  EXPECT_EQ(g.num_edges(), 10u);  // K5
}

TEST(Builders, Grid2dOpenBoundaryDegrees) {
  const Graph g = grid2d(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(1), 3u);   // edge
  EXPECT_EQ(g.degree(5), 4u);   // interior
  EXPECT_EQ(g.num_edges(), 17u);  // 3*3 + 2*4
}

TEST(Builders, Grid2dTorusIsFourRegular) {
  const Graph g = grid2d(3, 4, /*torus=*/true);
  EXPECT_EQ(regular_degree(g), NodeId{4});
  EXPECT_EQ(g.num_edges(), 24u);
}

TEST(Builders, Grid2dMooreInteriorDegree) {
  const Graph g = grid2d(3, 3, false, GridNeighborhood::kMoore);
  EXPECT_EQ(g.degree(4), 8u);  // center of 3x3
  EXPECT_EQ(g.degree(0), 3u);  // corner
}

TEST(Builders, Grid2dTorusRequiresDimsAtLeastThree) {
  EXPECT_THROW(grid2d(2, 4, true), std::invalid_argument);
}

TEST(Builders, HypercubeQ3) {
  const Graph g = hypercube(3);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(regular_degree(g), NodeId{3});
  EXPECT_TRUE(g.has_edge(0b000, 0b100));
  EXPECT_FALSE(g.has_edge(0b000, 0b110));
}

TEST(Builders, HypercubeQ0IsSingleNode) {
  const Graph g = hypercube(0);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builders, CompleteGraph) {
  const Graph g = complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(regular_degree(g), NodeId{4});
}

TEST(Builders, CompleteBipartite) {
  const Graph g = complete_bipartite(2, 3);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Builders, CirculantMatchesRing) {
  const std::vector<NodeId> offsets{1};
  EXPECT_EQ(circulant(6, offsets), ring(6));
}

TEST(Builders, CirculantHalfOffsetPerfectMatching) {
  const std::vector<NodeId> offsets{3};
  const Graph g = circulant(6, offsets);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(regular_degree(g), NodeId{1});
}

TEST(Builders, CirculantRejectsBadOffsets) {
  const std::vector<NodeId> zero{0};
  const std::vector<NodeId> big{4};
  const std::vector<NodeId> dup{1, 1};
  EXPECT_THROW(circulant(6, zero), std::invalid_argument);
  EXPECT_THROW(circulant(6, big), std::invalid_argument);
  EXPECT_THROW(circulant(6, dup), std::invalid_argument);
}

TEST(Builders, StarDegrees) {
  const Graph g = star(5);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Properties, ConnectivityDetectsComponents) {
  EXPECT_TRUE(is_connected(ring(5)));
  Graph two(4, std::vector<Edge>{{0, 1}, {2, 3}});
  EXPECT_FALSE(is_connected(two));
  EXPECT_EQ(component_count(two), 2u);
  EXPECT_EQ(component_count(ring(5)), 1u);
}

TEST(Properties, EvenRingIsBipartiteOddIsNot) {
  EXPECT_TRUE(is_bipartite(ring(6)));
  EXPECT_FALSE(is_bipartite(ring(5)));
}

TEST(Properties, HypercubeAndGridsAreBipartite) {
  EXPECT_TRUE(is_bipartite(hypercube(4)));
  EXPECT_TRUE(is_bipartite(grid2d(3, 5)));
  EXPECT_TRUE(is_bipartite(complete_bipartite(3, 4)));
}

TEST(Properties, MooreGridIsNotBipartite) {
  EXPECT_FALSE(is_bipartite(grid2d(3, 3, false, GridNeighborhood::kMoore)));
}

TEST(Properties, BipartitionIsProperColoring) {
  const Graph g = hypercube(3);
  const auto coloring = bipartition(g);
  ASSERT_TRUE(coloring.has_value());
  for (const Edge& e : g.edges()) {
    EXPECT_NE((*coloring)[e.u], (*coloring)[e.v]);
  }
}

TEST(Properties, RegularDegreeDetectsIrregular) {
  EXPECT_EQ(regular_degree(ring(7)), NodeId{2});
  EXPECT_EQ(regular_degree(path(5)), std::nullopt);
}

TEST(Properties, DegreeHistogram) {
  const auto hist = degree_histogram(path(5));
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[1], 2u);  // the two endpoints
  EXPECT_EQ(hist[2], 3u);  // interior nodes
}

}  // namespace
}  // namespace tca::graph
