// Cross-validation of the word-parallel ring kernels against the generic
// engine (src/core/packed_kernels.hpp) — bit-for-bit equivalence over
// random configurations and awkward ring sizes (word boundaries, partial
// last words).

#include <gtest/gtest.h>

#include <random>

#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/synchronous.hpp"

namespace tca::core {
namespace {

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<State>(rng() & 1u));
  }
  return c;
}

TEST(RingShift, UpOnSmallRing) {
  const auto c = Configuration::from_string("10010");
  Configuration out(5);
  ring_shift_up(c, out);
  // out bit i = in bit (i-1+n)%n: "01001"
  EXPECT_EQ(out.to_string(), "01001");
}

TEST(RingShift, DownOnSmallRing) {
  const auto c = Configuration::from_string("10010");
  Configuration out(5);
  ring_shift_down(c, out);
  // out bit i = in bit (i+1)%n: "00101"
  EXPECT_EQ(out.to_string(), "00101");
}

TEST(RingShift, InverseOfEachOther) {
  std::mt19937_64 rng(1);
  for (const std::size_t n : {3u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    const auto c = random_config(n, rng);
    Configuration up(n), back(n);
    ring_shift_up(c, up);
    ring_shift_down(up, back);
    EXPECT_EQ(back, c) << "n=" << n;
  }
}

TEST(RingShift, CrossesWordBoundary) {
  Configuration c(130);
  c.set(63, 1);
  c.set(129, 1);
  Configuration out(130);
  ring_shift_up(c, out);
  EXPECT_EQ(out.get(64), 1);
  EXPECT_EQ(out.get(0), 1);  // wrap from cell 129
  EXPECT_EQ(out.popcount(), 2u);
}

// Parameterized sweep over ring sizes including word-boundary cases.
class PackedKernelEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  static Automaton majority_ring(std::size_t n, std::uint32_t r) {
    return Automaton::line(n, r, Boundary::kRing, rules::majority(),
                           Memory::kWith);
  }
};

TEST_P(PackedKernelEquivalence, Majority3MatchesGenericEngine) {
  const std::size_t n = GetParam();
  const auto a = majority_ring(n, 1);
  std::mt19937_64 rng(n);
  PackedScratch scratch(n);
  for (int trial = 0; trial < 16; ++trial) {
    const auto c = random_config(n, rng);
    Configuration packed(n);
    step_ring_majority3_packed(c, packed, scratch);
    EXPECT_EQ(packed, step_synchronous(a, c)) << "n=" << n;
  }
}

TEST_P(PackedKernelEquivalence, Parity3MatchesGenericEngine) {
  const std::size_t n = GetParam();
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::parity(),
                                 Memory::kWith);
  std::mt19937_64 rng(n * 7);
  PackedScratch scratch(n);
  for (int trial = 0; trial < 16; ++trial) {
    const auto c = random_config(n, rng);
    Configuration packed(n);
    step_ring_parity3_packed(c, packed, scratch);
    EXPECT_EQ(packed, step_synchronous(a, c)) << "n=" << n;
  }
}

TEST_P(PackedKernelEquivalence, Majority5MatchesGenericEngine) {
  const std::size_t n = GetParam();
  if (n < 5) GTEST_SKIP() << "radius-2 ring needs n >= 5";
  const auto a = majority_ring(n, 2);
  std::mt19937_64 rng(n * 13);
  PackedScratch scratch(n);
  for (int trial = 0; trial < 16; ++trial) {
    const auto c = random_config(n, rng);
    Configuration packed(n);
    step_ring_majority5_packed(c, packed, scratch);
    EXPECT_EQ(packed, step_synchronous(a, c)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, PackedKernelEquivalence,
                         ::testing::Values(3, 4, 5, 7, 8, 16, 31, 32, 33, 63,
                                           64, 65, 66, 100, 127, 128, 129, 192,
                                           255, 256, 1000));

// Every Wolfram elementary rule, against the generic TableRule engine.
class WolframPackedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(WolframPackedEquivalence, Table3KernelMatchesGenericEngine) {
  const auto code = static_cast<std::uint32_t>(GetParam());
  const rules::TableRule rule = rules::wolfram(code);
  const std::size_t n = 97;  // crosses a word boundary
  const auto a = Automaton::line(n, 1, Boundary::kRing, rules::Rule{rule},
                                 Memory::kWith);
  std::mt19937_64 rng(code);
  PackedScratch scratch(n);
  for (int trial = 0; trial < 4; ++trial) {
    const auto c = random_config(n, rng);
    Configuration packed(n);
    step_ring_table3_packed(rule, c, packed, scratch);
    EXPECT_EQ(packed, step_synchronous(a, c)) << "code=" << code;
  }
}

INSTANTIATE_TEST_SUITE_P(AllElementaryRules, WolframPackedEquivalence,
                         ::testing::Range(0, 256));

TEST(PackedKernels, RejectsMismatchedSizes) {
  Configuration in(10), out(11);
  PackedScratch scratch(10);
  EXPECT_THROW(step_ring_majority3_packed(in, out, scratch),
               std::invalid_argument);
}

TEST(PackedKernels, RejectsAliasedBuffers) {
  Configuration c(10);
  PackedScratch scratch(10);
  EXPECT_THROW(step_ring_majority3_packed(c, c, scratch),
               std::invalid_argument);
}

TEST(PackedKernels, RejectsTooSmallRing) {
  Configuration in(4), out(4);
  PackedScratch scratch(4);
  EXPECT_THROW(step_ring_majority5_packed(in, out, scratch),
               std::invalid_argument);
}

TEST(PackedKernels, Table3RejectsWrongArity) {
  rules::TableRule rule;
  rule.table = {0, 1, 1, 0};  // arity 2
  Configuration in(10), out(10);
  PackedScratch scratch(10);
  EXPECT_THROW(step_ring_table3_packed(rule, in, out, scratch),
               std::invalid_argument);
}

}  // namespace
}  // namespace tca::core
