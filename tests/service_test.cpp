// Unit tests for the tcad service brain (docs/service.md): canonical
// query keys and digests, the two-tier content-addressed cache (LRU
// order, disk round-trip, quarantine-on-corrupt), the request
// coalescer ("N identical concurrent requests start exactly one engine
// build", counter-asserted), and the handler's error envelope.
//
// Every test that touches disk gets its own unique temp directory —
// the suite must stay safe under `ctest -j`.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "service/cache.hpp"
#include "service/engine.hpp"
#include "service/handler.hpp"
#include "service/json_parse.hpp"
#include "service/query.hpp"

namespace tca::service {
namespace {

namespace fs = std::filesystem;

/// Per-test unique directory (pid + test name), removed on destruction.
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("tca_service_" + std::to_string(::getpid()) + "_" +
             info->test_suite_name() + "_" + info->name());
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

ServiceQuery query_from(const std::string& json) {
  return ServiceQuery::from_json(parse_json(json));
}

ServiceQuery attractor_query(std::uint32_t n) {
  return query_from(R"({"kind":"attractor-summary","n":)" +
                    std::to_string(n) +
                    R"(,"radius":1,"rule":"majority","topology":"ring"})");
}

// ---------------------------------------------------------------------
// Canonical keys and digests
// ---------------------------------------------------------------------

TEST(QueryDigest, FieldOrderDoesNotMatter) {
  const ServiceQuery a = query_from(
      R"({"kind":"goe-census","n":9,"radius":1,"rule":"parity","topology":"line"})");
  const ServiceQuery b = query_from(
      R"({"topology":"line","rule":"parity","radius":1,"n":9,"kind":"goe-census"})");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(QueryDigest, ExplicitIdentityOrderCanonicalizesToDefault) {
  // A sweep whose order is spelled out as the identity permutation is the
  // same query as one whose order is omitted.
  const ServiceQuery spelled = query_from(
      R"({"kind":"attractor-summary","n":5,"radius":1,"rule":"majority",)"
      R"("scheme":"sweep","order":[0,1,2,3,4]})");
  const ServiceQuery omitted = query_from(
      R"({"kind":"attractor-summary","n":5,"radius":1,"rule":"majority",)"
      R"("scheme":"sweep"})");
  EXPECT_EQ(spelled.canonical_key(), omitted.canonical_key());
  EXPECT_EQ(spelled.digest(), omitted.digest());
}

TEST(QueryDigest, RuleShorthandMatchesObjectForm) {
  const ServiceQuery shorthand = attractor_query(8);
  const ServiceQuery object = query_from(
      R"({"kind":"attractor-summary","n":8,"radius":1,)"
      R"("rule":{"type":"majority"},"topology":"ring"})");
  EXPECT_EQ(shorthand.canonical_key(), object.canonical_key());
}

TEST(QueryDigest, DistinctQueriesGetDistinctKeys) {
  std::vector<std::string> keys = {
      attractor_query(8).canonical_key(),
      attractor_query(9).canonical_key(),
      query_from(R"({"kind":"transient-depth","n":8,"radius":1,)"
                 R"("rule":"majority","topology":"ring"})")
          .canonical_key(),
      query_from(R"({"kind":"attractor-summary","n":8,"radius":1,)"
                 R"("rule":"majority","topology":"line"})")
          .canonical_key(),
      query_from(R"({"kind":"attractor-summary","n":8,"radius":1,)"
                 R"("rule":"majority1","topology":"ring"})")
          .canonical_key(),
  };
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(QueryDigest, DigestIs16LowercaseHexChars) {
  const std::string digest = attractor_query(8).digest();
  ASSERT_EQ(digest.size(), 16u);
  for (const char c : digest) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << digest;
  }
}

TEST(QueryValidation, RejectsBadQueries) {
  // Ring too small for the radius.
  EXPECT_THROW(query_from(R"({"kind":"attractor-summary","n":4,"radius":2,)"
                          R"("rule":"majority","topology":"ring"})"),
               InvalidArgumentError);
  // Sweep order must be a permutation.
  EXPECT_THROW(query_from(R"({"kind":"attractor-summary","n":3,"radius":1,)"
                          R"("rule":"majority","scheme":"sweep",)"
                          R"("order":[0,0,1]})"),
               InvalidArgumentError);
  // Synchronous scheme takes no order.
  EXPECT_THROW(query_from(R"({"kind":"attractor-summary","n":3,"radius":1,)"
                          R"("rule":"majority","order":[2,1,0]})"),
               InvalidArgumentError);
  // Preimage target out of range.
  EXPECT_THROW(query_from(R"({"kind":"preimage-count","n":4,"radius":1,)"
                          R"("rule":"majority","target":16})"),
               InvalidArgumentError);
  // Explicit-graph query beyond the explicit-state ceiling.
  EXPECT_THROW(query_from(R"({"kind":"attractor-summary","n":40,"radius":1,)"
                          R"("rule":"majority","topology":"ring"})"),
               DomainTooLargeError);
}

// ---------------------------------------------------------------------
// Cache: memory tier
// ---------------------------------------------------------------------

TEST(ResultCacheMemory, LruEvictionOrder) {
  ResultCache cache({/*max_entries=*/3, /*disk_dir=*/""});
  const ServiceQuery q5 = attractor_query(5);
  const ServiceQuery q6 = attractor_query(6);
  const ServiceQuery q7 = attractor_query(7);
  const ServiceQuery q8 = attractor_query(8);

  cache.insert(q5, "{\"a\":5}");
  cache.insert(q6, "{\"a\":6}");
  cache.insert(q7, "{\"a\":7}");
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.keys_by_recency(),
            (std::vector<std::string>{q7.canonical_key(), q6.canonical_key(),
                                      q5.canonical_key()}));

  // Touch q5: it becomes most recent, so q6 is now the eviction victim.
  ASSERT_TRUE(cache.lookup(q5).has_value());
  cache.insert(q8, "{\"a\":8}");
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.keys_by_recency(),
            (std::vector<std::string>{q8.canonical_key(), q5.canonical_key(),
                                      q7.canonical_key()}));
  EXPECT_FALSE(cache.lookup(q6).has_value());
  const auto hit = cache.lookup(q5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result_json, "{\"a\":5}");
  EXPECT_EQ(hit->tier, CacheTier::kMemory);
}

TEST(ResultCacheMemory, InsertRefreshesExistingEntry) {
  ResultCache cache({2, ""});
  const ServiceQuery q5 = attractor_query(5);
  cache.insert(q5, "{\"v\":1}");
  cache.insert(q5, "{\"v\":2}");
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(q5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result_json, "{\"v\":2}");
}

// ---------------------------------------------------------------------
// Cache: disk tier
// ---------------------------------------------------------------------

TEST(ResultCacheDisk, RoundTripThroughAFreshCache) {
  const TempDir dir;
  const ServiceQuery q = attractor_query(6);
  {
    ResultCache writer({8, dir.str()});
    writer.insert(q, "{\"answer\":42}");
  }
  // A fresh cache has a cold memory tier; the hit must come from disk and
  // be promoted into memory.
  ResultCache reader({8, dir.str()});
  const auto first = reader.lookup(q);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->result_json, "{\"answer\":42}");
  EXPECT_EQ(first->tier, CacheTier::kDisk);
  const auto second = reader.lookup(q);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tier, CacheTier::kMemory);
}

TEST(ResultCacheDisk, CorruptEntryIsQuarantinedNotServed) {
  const TempDir dir;
  const ServiceQuery q = attractor_query(6);
  std::string path;
  {
    ResultCache writer({8, dir.str()});
    writer.insert(q, "{\"answer\":42}");
    path = writer.disk_path(q);
  }
  ASSERT_TRUE(fs::exists(path));
  // Flip one payload byte (the checkpoint checksum must catch it).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    char c = 0;
    f.read(&c, 1);
    f.seekp(-3, std::ios::end);
    c = static_cast<char>(c ^ 0x5a);
    f.write(&c, 1);
  }
  ResultCache reader({8, dir.str()});
  EXPECT_FALSE(reader.lookup(q).has_value());
  EXPECT_FALSE(fs::exists(path)) << "corrupt file must not stay in place";
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
  // The quarantined file is out of the lookup path: still a miss, and no
  // crash on repeat lookups.
  EXPECT_FALSE(reader.lookup(q).has_value());
}

TEST(ResultCacheDisk, EmbeddedKeyMismatchIsQuarantined) {
  const TempDir dir;
  const ServiceQuery q6 = attractor_query(6);
  const ServiceQuery q7 = attractor_query(7);
  ResultCache cache({8, dir.str()});
  cache.insert(q6, "{\"answer\":6}");
  // Simulate a digest collision: q7's slot filled with q6's entry.
  fs::copy_file(cache.disk_path(q6), cache.disk_path(q7));
  ResultCache reader({8, dir.str()});
  EXPECT_FALSE(reader.lookup(q7).has_value());
  EXPECT_TRUE(fs::exists(cache.disk_path(q7) + ".quarantined"));
}

// ---------------------------------------------------------------------
// Coalescing: N identical concurrent requests -> exactly one build
// ---------------------------------------------------------------------

TEST(Coalescing, ConcurrentIdenticalRequestsStartOneBuild) {
  const TempDir dir;
  HandlerOptions options;
  options.cache.disk_dir = "";  // memory only: the engine must be the
                                // only thing that can satisfy a miss
  RequestHandler handler(options);

  const std::string request =
      R"({"op":"query","id":1,"query":{"kind":"attractor-summary","n":12,)"
      R"("radius":1,"rule":"majority","topology":"ring"}})";

  constexpr std::size_t kThreads = 8;
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::string> sources(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const std::string response = handler.handle(request);
      const JsonValue v = parse_json(response);
      if (v.string_or("status", "") == "ok") ok.fetch_add(1);
      sources[i] = v.string_or("source", "");
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  // The counter-asserted invariant: one engine build, total.
  EXPECT_EQ(handler.engine().builds_started(), 1u);
  std::size_t computed = 0;
  for (const std::string& s : sources) {
    EXPECT_TRUE(s == "computed" || s == "coalesced" || s == "memory-cache")
        << s;
    if (s == "computed") ++computed;
  }
  EXPECT_EQ(computed, 1u);
  EXPECT_EQ(handler.active_requests(), 0u);
}

// ---------------------------------------------------------------------
// Handler error envelope
// ---------------------------------------------------------------------

TEST(Handler, MalformedRequestsBecomeErrorResponses) {
  RequestHandler handler(HandlerOptions{});
  for (const char* bad : {
           "not json at all",
           "{}",
           R"({"op":"launch-missiles","id":1})",
           R"({"op":"query","id":1})",
           R"({"op":"query","id":1,"query":{"kind":"attractor-summary"}})",
       }) {
    const std::string response = handler.handle(bad);
    const JsonValue v = parse_json(response);
    EXPECT_EQ(v.string_or("status", ""), "error") << bad;
    EXPECT_NE(v.find("error"), nullptr) << bad;
  }
  EXPECT_EQ(handler.active_requests(), 0u);
}

TEST(Handler, CachedAnswerIsBitIdenticalToComputedAnswer) {
  RequestHandler handler(HandlerOptions{});
  const std::string request =
      R"({"op":"query","id":7,"query":{"kind":"transient-depth","n":8,)"
      R"("radius":1,"rule":"majority","topology":"ring"}})";
  const std::string first = handler.handle(request);
  const std::string second = handler.handle(request);
  const JsonValue v1 = parse_json(first);
  const JsonValue v2 = parse_json(second);
  EXPECT_EQ(v1.string_or("source", ""), "computed");
  EXPECT_EQ(v2.string_or("source", ""), "memory-cache");
  // Identical modulo the source tag: compare the result payloads.
  const auto result_of = [](const std::string& s) {
    const std::size_t pos = s.find("\"result\":");
    return pos == std::string::npos ? std::string()
                                    : s.substr(pos, s.size() - pos - 1);
  };
  EXPECT_EQ(result_of(first), result_of(second));
  EXPECT_NE(result_of(first), "");
}

}  // namespace
}  // namespace tca::service
