// The harness testing the harness (src/testing/): generator determinism,
// serialization round-trips, shrinker minimality on planted failures, and
// the acceptance gate for the whole subsystem — a deliberately broken
// engine (threshold comparison flipped from >= to >) must be CAUGHT by the
// property run, shrunk to a counterexample of <= 8 nodes, and reported
// with a one-line seeded repro command that regenerates the failure.

#include <gtest/gtest.h>

#include <bit>
#include <iostream>

#include "core/synchronous.hpp"
#include "graph/builders.hpp"
#include "testing/case.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/runner.hpp"
#include "testing/shrink.hpp"

namespace tca::testing {
namespace {

using core::Configuration;

TEST(Generators, DeterministicUnderSeed) {
  const CaseOptions options;
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const auto a = random_case(seed, options);
    const auto b = random_case(seed, options);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
  EXPECT_NE(random_case(1, options), random_case(2, options));
}

TEST(Generators, CasesAreValidAutomata) {
  for (const auto& oracle : oracles()) {
    for (std::uint64_t i = 0; i < 25; ++i) {
      const auto c = random_case(mix_seed(0xBA5Eu, i), oracle.options);
      ASSERT_GE(c.n, 1u);
      ASSERT_LE(c.n, 64u);
      // Materialization must never throw: arity-validated per node.
      const auto a = c.automaton();
      EXPECT_EQ(a.size(), c.n);
      EXPECT_EQ(c.configuration().size(), c.n);
    }
  }
}

TEST(Generators, BipartiteEnvelopeHoldsPreconditions) {
  CaseOptions options;
  options.substrate = CaseOptions::SubstrateClass::kBipartite;
  for (std::uint64_t i = 0; i < 25; ++i) {
    const auto c = random_case(mix_seed(0xB1Bu, i), options);
    EXPECT_EQ(c.memory, core::Memory::kWithout);
    ASSERT_EQ(c.rule.kind, RuleSpec::Kind::kKOfN);
    const auto g = c.space();
    graph::NodeId min_deg = g.degree(0);
    for (graph::NodeId v = 1; v < c.n; ++v) {
      min_deg = std::min(min_deg, g.degree(v));
    }
    EXPECT_GE(min_deg, 1u);
    EXPECT_LE(c.rule.k, min_deg);
  }
}

TEST(Case, SerializeRoundTrips) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto c = random_case(mix_seed(0x5E71Au, i), CaseOptions{});
    const auto back = TestCase::deserialize(c.serialize());
    EXPECT_EQ(c, back) << c.serialize();
  }
}

TEST(Case, DeserializeRejectsGarbage) {
  EXPECT_THROW(TestCase::deserialize("n=3"), std::invalid_argument);
  EXPECT_THROW(TestCase::deserialize("v1;n=oops"), std::invalid_argument);
  EXPECT_THROW(TestCase::deserialize("v1;rule=frob"), std::invalid_argument);
  EXPECT_THROW(TestCase::deserialize("v1;edges=1"), std::invalid_argument);
}

TEST(Shrink, RemoveNodeRemapsEdgesAndConfig) {
  TestCase c;
  c.n = 4;
  c.edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  c.config_bits = 0b1011;  // cells 0,1,3 live
  const auto r = remove_node(c, 1);
  EXPECT_EQ(r.n, 3u);
  // Edges through node 1 vanish; ids above 1 shift down.
  EXPECT_EQ(r.edges, (std::vector<graph::Edge>{{1, 2}, {0, 2}}));
  // Config bit 1 spliced out: live cells 0 and 3 become 0 and 2.
  EXPECT_EQ(r.config_bits, 0b101u);
}

TEST(Shrink, PlantedFailureShrinksToMinimal) {
  // Fails iff some edge AND some live cell survive — the minimal failing
  // case is two connected nodes with exactly one live cell and one step.
  const Property planted = [](const TestCase& tc) {
    if (!tc.edges.empty() && (tc.config_bits & ((std::uint64_t{1} << tc.n) - 1)) != 0) {
      return PropertyResult::fail("edge + live cell");
    }
    return PropertyResult::pass();
  };
  TestCase big = random_case(0xC0DEu, CaseOptions{});
  big.n = 10;
  big.edges = graph::ring(10).edges();
  big.config_bits = 0x2ADu;
  ASSERT_FALSE(planted(big).ok);

  ShrinkStats stats;
  const auto small = shrink(big, planted, &stats);
  EXPECT_EQ(small.n, 2u);
  EXPECT_EQ(small.edges.size(), 1u);
  EXPECT_EQ(std::popcount(small.config_bits), 1);
  EXPECT_EQ(small.steps, 1u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_FALSE(planted(small).ok) << "shrunk case must still fail";
}

// ---------------------------------------------------------------------------
// Acceptance gate: a mutated engine is caught, shrunk, and reproducible.
// ---------------------------------------------------------------------------

/// A deliberately broken synchronous step for k-of-n automata: the
/// threshold comparison is flipped from `ones >= k` to `ones > k`.
Configuration broken_step(const TestCase& tc) {
  const auto a = tc.automaton();
  const auto in = tc.configuration();
  Configuration out(a.size());
  for (core::NodeId v = 0; v < a.size(); ++v) {
    std::uint32_t ones = 0;
    for (const auto u : a.inputs(v)) {
      ones += u == core::kConstZero ? 0u : in.get(u);
    }
    out.set(v, ones > tc.rule.k ? 1 : 0);  // BUG: should be >=
  }
  return out;
}

Oracle broken_engine_oracle() {
  CaseOptions threshold;
  threshold.rules = CaseOptions::RuleClass::kThreshold;
  return Oracle{
      "broken-engine", "BrokenEngine", threshold, [](const TestCase& tc) {
        if (tc.rule.kind != RuleSpec::Kind::kKOfN) {
          return PropertyResult::pass();
        }
        const auto a = tc.automaton();
        Configuration correct(a.size());
        core::step_synchronous(a, tc.configuration(), correct);
        const auto mutant = broken_step(tc);
        if (mutant != correct) {
          return PropertyResult::fail("mutant engine diverges: " +
                                      mutant.to_string() + " vs " +
                                      correct.to_string());
        }
        return PropertyResult::pass();
      }};
}

TEST(MutationAcceptance, BrokenThresholdComparisonIsCaughtAndShrunk) {
  const auto oracle = broken_engine_oracle();
  RunOptions options;  // fixed default seed: deterministic
  const auto failure = check_property(oracle, options);
  ASSERT_TRUE(failure.has_value())
      << "the harness must catch a flipped threshold comparison";

  // Shrunk counterexample is tiny and still failing.
  EXPECT_LE(failure->shrunk.n, 8u);
  EXPECT_FALSE(oracle.check(failure->shrunk).ok);

  // One-line seeded repro: re-seeding with the printed case seed
  // regenerates the original failing case as case 0 of a 1-case run.
  EXPECT_NE(failure->repro.find("TCA_PBT_SEED="), std::string::npos);
  EXPECT_NE(failure->repro.find("TCA_PBT_CASES=1"), std::string::npos);
  EXPECT_EQ(random_case(failure->case_seed, oracle.options),
            failure->original);

  // The exact-replay path accepts the serialized shrunk case.
  RunOptions replay;
  replay.repro = failure->shrunk.serialize();
  const auto replayed = check_property(oracle, replay);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_LE(replayed->shrunk.n, failure->shrunk.n);

  // Print the full report once so the acceptance artifact is visible in
  // test logs.
  std::cout << "[mutation acceptance] " << failure->report() << "\n";
}

TEST(Runner, PassingOracleReportsNoFailure) {
  // engines-agree over the real engines passes on the default seeds.
  const Oracle* oracle = find_oracle("engines-agree");
  ASSERT_NE(oracle, nullptr);
  RunOptions options;
  options.num_cases = 10;
  EXPECT_FALSE(check_property(*oracle, options).has_value());
}

TEST(Runner, EnvReproRunsExactCase) {
  const Oracle* oracle = find_oracle("engines-agree");
  ASSERT_NE(oracle, nullptr);
  RunOptions options;
  options.repro = random_case(0xAB1Eu, oracle->options).serialize();
  EXPECT_FALSE(check_property(*oracle, options).has_value());
}

}  // namespace
}  // namespace tca::testing
