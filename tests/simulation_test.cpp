// Unit tests for the Simulation facade (src/core/simulation.hpp).

#include <gtest/gtest.h>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/simulation.hpp"
#include "core/synchronous.hpp"

namespace tca::core {
namespace {

Automaton majority_ring(std::size_t n) {
  return Automaton::line(n, 1, Boundary::kRing, rules::majority(),
                         Memory::kWith);
}

TEST(Simulation, SynchronousStepMatchesEngine) {
  const auto a = majority_ring(12);
  const auto start = Configuration::from_string("010110100101");
  Simulation sim(a, start, SynchronousScheme{});
  const auto expected = step_synchronous(a, start);
  sim.step();
  EXPECT_EQ(sim.configuration(), expected);
  EXPECT_EQ(sim.time(), 1u);
}

TEST(Simulation, MonomorphizedAndGenericAgree) {
  const auto a = majority_ring(20);
  const auto start = Configuration::from_string("01011010010101101001");
  Simulation fast(a, start, SynchronousScheme{true});
  Simulation slow(a, start, SynchronousScheme{false});
  fast.run(10);
  slow.run(10);
  EXPECT_EQ(fast.configuration(), slow.configuration());
}

TEST(Simulation, SequentialSchemeSweeps) {
  const auto a = majority_ring(8);
  const auto start = Configuration::from_string("01010101");
  Simulation sim(a, start, SequentialScheme{identity_order(8)});
  auto manual = start;
  apply_sequence(a, manual, identity_order(8));
  sim.step();
  EXPECT_EQ(sim.configuration(), manual);
}

TEST(Simulation, BlockSchemeWorks) {
  const auto a = majority_ring(8);
  const auto start = Configuration::from_string("01010101");
  Simulation sim(a, start,
                 BlockSequentialScheme{{{0, 1, 2, 3}, {4, 5, 6, 7}}});
  EXPECT_GT(sim.step(), 0u);
}

TEST(Simulation, StepReturnsChangeCount) {
  const auto a = majority_ring(8);
  Simulation sim(a, Configuration::from_string("01000000"),
                 SynchronousScheme{});
  EXPECT_EQ(sim.step(), 1u);   // the isolated one dies
  EXPECT_EQ(sim.step(), 0u);   // fixed point reached
}

TEST(Simulation, ObserversSeeEveryStep) {
  const auto a = majority_ring(8);
  Simulation sim(a, Configuration::from_string("01101001"),
                 SynchronousScheme{});
  std::vector<std::uint64_t> times;
  sim.observe([&](std::uint64_t t, const Configuration& c) {
    times.push_back(t);
    EXPECT_EQ(c.size(), 8u);
  });
  sim.run(5);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Simulation, RunToFixedPoint) {
  const auto a = majority_ring(16);
  Simulation sim(a, Configuration::from_string("0110100111010010"),
                 SequentialScheme{identity_order(16)});
  const auto steps = sim.run_to_fixed_point(100);
  ASSERT_TRUE(steps.has_value());
  EXPECT_TRUE(is_fixed_point_sequential(a, sim.configuration()));
}

TEST(Simulation, RunToFixedPointFailsOnBlinker) {
  const auto a = majority_ring(8);
  Simulation sim(a, Configuration::from_string("01010101"),
                 SynchronousScheme{});
  EXPECT_FALSE(sim.run_to_fixed_point(100).has_value());
}

TEST(Simulation, DensityTracksConfiguration) {
  const auto a = majority_ring(8);
  Simulation sim(a, Configuration::from_string("11110000"),
                 SynchronousScheme{});
  EXPECT_DOUBLE_EQ(sim.density(), 0.5);
}

TEST(Simulation, ResetRestartsClock) {
  const auto a = majority_ring(8);
  Simulation sim(a, Configuration::from_string("01101001"),
                 SynchronousScheme{});
  sim.run(3);
  sim.reset(Configuration::from_string("11110000"));
  EXPECT_EQ(sim.time(), 0u);
  EXPECT_DOUBLE_EQ(sim.density(), 0.5);
}

TEST(Simulation, ValidatesArguments) {
  const auto a = majority_ring(8);
  EXPECT_THROW(Simulation(a, Configuration(7), SynchronousScheme{}),
               std::invalid_argument);
  EXPECT_THROW(Simulation(a, Configuration(8), SequentialScheme{{}}),
               std::invalid_argument);
  EXPECT_THROW(Simulation(a, Configuration(8), SequentialScheme{{9}}),
               std::invalid_argument);
  EXPECT_THROW(
      Simulation(a, Configuration(8), BlockSequentialScheme{{{0, 1}}}),
      std::invalid_argument);
  Simulation ok(a, Configuration(8), SynchronousScheme{});
  EXPECT_THROW(ok.reset(Configuration(9)), std::invalid_argument);
}

}  // namespace
}  // namespace tca::core
