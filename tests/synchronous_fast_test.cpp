// Equivalence tests for the monomorphized synchronous engine
// (src/core/synchronous_fast.hpp) against the generic engine, across every
// rule kind and awkward topologies.

#include <gtest/gtest.h>

#include <random>

#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"
#include "graph/builders.hpp"

namespace tca::core {
namespace {

Configuration random_config(std::size_t n, std::mt19937_64& rng) {
  Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<State>(rng() & 1u));
  }
  return c;
}

void expect_equivalent(const Automaton& a, std::uint64_t seed,
                       int trials = 10) {
  std::mt19937_64 rng(seed);
  for (int t = 0; t < trials; ++t) {
    const auto c = random_config(a.size(), rng);
    Configuration generic(a.size()), fast(a.size());
    step_synchronous(a, c, generic);
    step_synchronous_fast(a, c, fast);
    EXPECT_EQ(generic, fast) << "trial " << t;
  }
}

TEST(FastEngine, MajorityRing) {
  expect_equivalent(Automaton::line(100, 1, Boundary::kRing, rules::majority(),
                                    Memory::kWith),
                    1);
}

TEST(FastEngine, ParityRingMemoryless) {
  expect_equivalent(Automaton::line(77, 2, Boundary::kRing, rules::parity(),
                                    Memory::kWithout),
                    2);
}

TEST(FastEngine, WolframRuleWithPhantomBoundary) {
  expect_equivalent(Automaton::line(50, 1, Boundary::kFixedZero,
                                    rules::Rule{rules::wolfram(110)},
                                    Memory::kWith),
                    3);
}

TEST(FastEngine, KOfNOnHypercube) {
  expect_equivalent(Automaton::from_graph(graph::hypercube(6),
                                          rules::Rule{rules::KOfNRule{4}},
                                          Memory::kWith),
                    4);
}

TEST(FastEngine, SymmetricRuleOnGrid) {
  rules::SymmetricRule symmetric{{0, 1, 1, 0, 1, 0}};  // arity 5
  expect_equivalent(Automaton::from_graph(graph::grid2d(5, 6, true),
                                          rules::Rule{symmetric},
                                          Memory::kWith),
                    5);
}

TEST(FastEngine, WeightedThresholdOnRing) {
  rules::WeightedThresholdRule wt{{2, -1, 2}, 2};
  expect_equivalent(Automaton::line(64, 1, Boundary::kRing, rules::Rule{wt},
                                    Memory::kWith),
                    6);
}

TEST(FastEngine, GameOfLifeOnMooreTorus) {
  expect_equivalent(Automaton::from_graph(
                        graph::grid2d(8, 8, true,
                                      graph::GridNeighborhood::kMoore),
                        rules::Rule{rules::game_of_life()}, Memory::kWith),
                    7);
}

TEST(FastEngine, NonHomogeneousFallsBackCorrectly) {
  const auto g = graph::ring(12);
  std::vector<rules::Rule> per_node;
  for (std::size_t v = 0; v < 12; ++v) {
    per_node.emplace_back(v % 2 == 0 ? rules::majority() : rules::parity());
  }
  const auto a = Automaton::from_graph_per_node(g, per_node, Memory::kWith);
  expect_equivalent(a, 8);
}

TEST(FastEngine, AdvanceMatchesGenericAdvance) {
  const auto a = Automaton::line(60, 1, Boundary::kRing,
                                 rules::Rule{rules::wolfram(30)},
                                 Memory::kWith);
  std::mt19937_64 rng(9);
  auto c1 = random_config(60, rng);
  auto c2 = c1;
  advance_synchronous(a, c1, 100);
  advance_synchronous_fast(a, c2, 100);
  EXPECT_EQ(c1, c2);
}

TEST(FastEngine, RejectsAliasingAndSizeMismatch) {
  const auto a = Automaton::line(10, 1, Boundary::kRing, rules::majority(),
                                 Memory::kWith);
  Configuration c(10), wrong(9);
  EXPECT_THROW(step_synchronous_fast(a, c, c), std::invalid_argument);
  EXPECT_THROW(step_synchronous_fast(a, c, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace tca::core
