#include "runtime/budget.hpp"

#include "runtime/fault.hpp"

// tca-lint: relaxed-ok(counters are statistical accounting shared by
// workers that already synchronize through the ThreadPool barrier; the
// stop_ latch is a monotonic one-shot flag — observing it late only
// delays a cooperative stop by one poll, it cannot un-stop a run)

namespace tca::runtime {

const char* stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kMaxSteps: return "max-steps";
    case StopReason::kMaxStates: return "max-states";
    case StopReason::kMaxBytes: return "max-bytes";
  }
  return "none";
}

RunControl::RunControl(const RunBudget& budget, CancelToken token)
    : budget_(budget), token_(std::move(token)) {
  if (budget_.wall_limit.has_value()) {
    deadline_ = std::chrono::steady_clock::now() + *budget_.wall_limit;
    has_deadline_ = true;
  }
}

StopReason RunControl::latch_and_get(StopReason candidate) noexcept {
  std::uint8_t expected = 0;
  stop_.compare_exchange_strong(expected,
                                static_cast<std::uint8_t>(candidate),
                                std::memory_order_relaxed,
                                std::memory_order_relaxed);
  return static_cast<StopReason>(stop_.load(std::memory_order_relaxed));
}

StopReason RunControl::poll(bool force_clock) noexcept {
  const auto latched =
      static_cast<StopReason>(stop_.load(std::memory_order_relaxed));
  if (latched != StopReason::kNone) return latched;
  if (token_.cancelled()) return latch_and_get(StopReason::kCancelled);
  if (has_deadline_) {
    const auto tick = polls_.fetch_add(1, std::memory_order_relaxed);
    if (force_clock || (tick & kClockPollMask) == 0) {
      if (std::chrono::steady_clock::now() >= deadline_) {
        return latch_and_get(StopReason::kDeadline);
      }
    }
  }
  return StopReason::kNone;
}

StopReason RunControl::note_steps(std::uint64_t n) noexcept {
  const auto total = steps_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > budget_.max_steps) return latch_and_get(StopReason::kMaxSteps);
  return poll(false);
}

StopReason RunControl::note_states(std::uint64_t n) noexcept {
  // The fault plan's cancel-at-visit knob counts budgeted state visits
  // process-wide; tripping it is indistinguishable from a user cancel.
  if (fault::tick_visit(n)) token_.cancel();
  const auto total = states_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > budget_.max_states) return latch_and_get(StopReason::kMaxStates);
  return poll(false);
}

StopReason RunControl::note_bytes(std::uint64_t n) noexcept {
  const auto total = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > budget_.max_bytes) return latch_and_get(StopReason::kMaxBytes);
  return poll(false);
}

StopReason RunControl::check() noexcept { return poll(true); }

void RunControl::mark(StopReason reason) noexcept {
  if (reason == StopReason::kNone) return;
  latch_and_get(reason);
}

RunStatus RunControl::status() const noexcept {
  RunStatus s;
  s.stop_reason = static_cast<StopReason>(stop_.load(std::memory_order_relaxed));
  s.steps = steps_.load(std::memory_order_relaxed);
  s.states = states_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

bool RunControl::bytes_would_fit(std::uint64_t n) const noexcept {
  const auto used = bytes_.load(std::memory_order_relaxed);
  return n <= budget_.max_bytes && used <= budget_.max_bytes - n;
}

}  // namespace tca::runtime
