#include "runtime/supervisor.hpp"

#include <algorithm>
#include <thread>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"

namespace tca::runtime {
namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& degrade_counter(EngineRung rung) {
  // One counter per rung ENTERED by degradation, named
  // engine.degrade.<rung>. Registry lookups are find-or-create by name,
  // so these statics alias the global counters.
  static obs::Counter& wide = obs::counter("engine.degrade.wide-simd");
  static obs::Counter& batch = obs::counter("engine.degrade.batch64");
  static obs::Counter& packed = obs::counter("engine.degrade.packed");
  static obs::Counter& scalar = obs::counter("engine.degrade.scalar");
  switch (rung) {
    case EngineRung::kWideSimd: return wide;
    case EngineRung::kBatch64: return batch;
    case EngineRung::kPacked: return packed;
    case EngineRung::kScalar: return scalar;
  }
  return scalar;
}

std::chrono::milliseconds remaining_ms(const Clock::time_point& deadline) {
  const auto now = Clock::now();
  if (now >= deadline) return std::chrono::milliseconds{0};
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               now);
}

}  // namespace

const char* rung_name(EngineRung rung) noexcept {
  switch (rung) {
    case EngineRung::kWideSimd: return "wide-simd";
    case EngineRung::kBatch64: return "batch64";
    case EngineRung::kPacked: return "packed";
    case EngineRung::kScalar: return "scalar";
  }
  return "scalar";
}

EngineRung rung_below(EngineRung rung) noexcept {
  switch (rung) {
    case EngineRung::kWideSimd: return EngineRung::kBatch64;
    case EngineRung::kBatch64: return EngineRung::kPacked;
    case EngineRung::kPacked: return EngineRung::kScalar;
    case EngineRung::kScalar: return EngineRung::kScalar;
  }
  return EngineRung::kScalar;
}

const char* supervised_state_name(SupervisedState state) noexcept {
  switch (state) {
    case SupervisedState::kCompleted: return "completed";
    case SupervisedState::kTruncated: return "truncated";
    case SupervisedState::kFailed: return "failed";
  }
  return "failed";
}

SupervisorReport Supervisor::run(std::string_view job, const Body& body) {
  TCA_SPAN("supervised_run");
  static obs::Counter& runs = obs::counter("supervisor.runs");
  static obs::Counter& attempts_c = obs::counter("supervisor.attempts");
  static obs::Counter& retries_c = obs::counter("supervisor.retries");
  static obs::Counter& completed_c = obs::counter("supervisor.completed");
  static obs::Counter& truncated_c = obs::counter("supervisor.truncated");
  static obs::Counter& failed_c = obs::counter("supervisor.failed");
  runs.add();

  const auto start = Clock::now();
  const bool has_deadline = options_.deadline.has_value();
  const auto deadline = has_deadline ? start + *options_.deadline : start;

  SupervisorReport report;
  report.final_rung = options_.start_rung;
  EngineRung rung = options_.start_rung;
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(options_.retry.max_attempts, 1);

  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (options_.token.cancelled()) {
      // Cancelled between attempts: report the run as a (zero-work)
      // well-formed truncation, the same shape a mid-attempt cancel has.
      report.last_status.stop_reason = StopReason::kCancelled;
      report.state = SupervisedState::kTruncated;
      report.final_rung = rung;
      truncated_c.add();
      return report;
    }
    if (has_deadline && Clock::now() >= deadline) {
      report.state = SupervisedState::kFailed;
      report.last_error = ErrorCode::kBudgetExhausted;
      report.last_error_what = "supervisor deadline exhausted before attempt";
      report.final_rung = rung;
      failed_c.add();
      obs::log_event(obs::LogLevel::kWarn, "supervisor.deadline",
                     {{"job", std::string(job)},
                      {"attempts", std::to_string(report.attempts)}});
      return report;
    }

    // Carve this attempt's wall limit out of the remaining deadline.
    RunBudget budget = options_.attempt_budget;
    if (has_deadline) {
      const auto remaining = deadline - Clock::now();
      budget.wall_limit = budget.wall_limit
                              ? std::min(*budget.wall_limit,
                                         Clock::duration(remaining))
                              : Clock::duration(remaining);
    }
    RunControl control(budget, options_.token);
    AttemptContext ctx{attempt, rung, control};
    report.attempts = attempt;
    report.final_rung = rung;
    attempts_c.add();

    try {
      fault::tick_retry_attempt();  // retry_transient_at knob
      const AttemptOutcome outcome = body(ctx);
      report.last_status = control.status();
      report.state = outcome == AttemptOutcome::kCompleted
                         ? SupervisedState::kCompleted
                         : SupervisedState::kTruncated;
      (outcome == AttemptOutcome::kCompleted ? completed_c : truncated_c)
          .add();
      return report;
    } catch (...) {
      const FailureVerdict verdict =
          classify_failure(std::current_exception());
      report.last_status = control.status();
      report.last_error = verdict.code;
      report.last_error_what = verdict.what;
      AttemptFailure failure;
      failure.attempt = attempt;
      failure.rung = rung;
      failure.cls = verdict.cls;
      failure.code = verdict.code;
      failure.what = verdict.what;

      if (verdict.cls == FailureClass::kTerminal) {
        report.failures.push_back(std::move(failure));
        report.state = SupervisedState::kFailed;
        failed_c.add();
        obs::log_event(obs::LogLevel::kWarn, "supervisor.terminal_failure",
                       {{"job", std::string(job)},
                        {"attempt", std::to_string(attempt)},
                        {"code", error_code_name(verdict.code)},
                        {"what", verdict.what}});
        return report;
      }
      if (attempt == max_attempts) {
        report.failures.push_back(std::move(failure));
        report.state = SupervisedState::kFailed;
        failed_c.add();
        obs::log_event(obs::LogLevel::kWarn, "supervisor.gave_up",
                       {{"job", std::string(job)},
                        {"attempts", std::to_string(attempt)},
                        {"code", error_code_name(verdict.code)}});
        return report;
      }

      if (verdict.degrade && options_.degrade_on_pressure &&
          rung != EngineRung::kScalar) {
        const EngineRung below = rung_below(rung);
        degrade_counter(below).add();
        // Latched warn: the first walk down the ladder in a run warns;
        // further rungs are expected consequences and stay at info.
        obs::log_event(
            report.degraded ? obs::LogLevel::kInfo : obs::LogLevel::kWarn,
            "engine.degraded",
            {{"job", std::string(job)},
             {"from", rung_name(rung)},
             {"to", rung_name(below)},
             {"code", error_code_name(verdict.code)}});
        rung = below;
        report.degraded = true;
      }

      std::chrono::milliseconds delay =
          backoff_delay(options_.retry, attempt);
      if (has_deadline) delay = std::min(delay, remaining_ms(deadline));
      failure.backoff = delay;
      report.failures.push_back(std::move(failure));
      retries_c.add();
      obs::log_event(obs::LogLevel::kInfo, "supervisor.retry",
                     {{"job", std::string(job)},
                      {"attempt", std::to_string(attempt)},
                      {"code", error_code_name(verdict.code)},
                      {"backoff_ms", std::to_string(delay.count())},
                      {"next_rung", rung_name(rung)}});
      if (options_.apply_backoff && delay.count() > 0) {
        std::this_thread::sleep_for(delay);
      }
    }
  }
  // Unreachable: every loop exit path returns above.
  report.state = SupervisedState::kFailed;
  return report;
}

}  // namespace tca::runtime
