#pragma once
// Deterministic fault injection (docs/robustness.md).
//
// Graceful-degradation paths are code too, and untested ones rot. A
// FaultPlan describes exactly one deliberate failure — "the k-th guarded
// allocation throws bad_alloc", "the k-th thread-pool chunk throws", "the
// k-th budgeted state visit cancels the run", "thread spawning fails" —
// and ScopedFaultPlan installs it process-wide for the current scope. The
// hooks below are compiled into the production code paths permanently:
// with no plan installed they are a single relaxed atomic load.
//
// Counters are process-global and monotonically consumed, so a plan fires
// exactly once no matter how many threads race through the hook; tests
// install a fresh plan per scenario. Plans are for tests and the
// fault-injection CI job only — nothing in production installs one.

#include <cstdint>

namespace tca::runtime {

/// A set of deliberate failures. Counters are 1-based: `alloc_failure_at
/// = 1` fails the first guarded allocation after installation. 0 ==
/// disabled. Knobs are independent countdowns, so one plan can compose
/// several faults in a single scenario (the chaos sweep does exactly
/// that); each knob still fires exactly once.
struct FaultPlan {
  std::uint64_t alloc_failure_at = 0;    ///< check_alloc() throws bad_alloc
  std::uint64_t alloc_min_bytes = 0;     ///< alloc_failure_at only counts
                                         ///< allocations >= this many
                                         ///< advisory bytes (0 == all)
  std::uint64_t chunk_exception_at = 0;  ///< k-th ThreadPool chunk throws
                                         ///< InjectedFaultError
  std::uint64_t cancel_at_visit = 0;     ///< k-th RunControl::note_states
                                         ///< cancels that run's token
  std::uint64_t checkpoint_write_at = 0;  ///< k-th save_checkpoint's write
                                          ///< fails after the tmp file
                                          ///< exists (simulated full disk)
  std::uint64_t checkpoint_read_corrupt_at = 0;  ///< k-th load_checkpoint
                                                 ///< sees its payload as
                                                 ///< corrupted (bit rot)
  std::uint64_t retry_transient_at = 0;  ///< k-th supervised attempt throws
                                         ///< InjectedFaultError at entry
  bool fail_thread_spawn = false;        ///< ThreadPool worker spawn throws
};

/// Installs `plan` for the lifetime of the scope; restores the previous
/// plan (usually none) on destruction. Not reentrancy-safe across threads:
/// intended for tests, which install one plan at a time.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

namespace fault {

/// True iff any plan is installed (fast path for the hooks).
[[nodiscard]] bool active() noexcept;

/// Allocation guard: call before a large allocation; throws
/// std::bad_alloc when the installed plan says this one fails. `bytes`
/// is the allocation's advisory size: plans with `alloc_min_bytes` set
/// target only allocations at least that large, so a scenario can fail
/// the big successor-table reserve while letting small bookkeeping
/// allocations through.
void check_alloc(std::uint64_t bytes = 0);

/// ThreadPool chunk guard: throws tca::InjectedFaultError when the
/// installed plan's chunk counter fires.
void check_chunk();

/// RunControl visit hook: returns true exactly once, when the installed
/// plan's cancel_at_visit counter is consumed by this call's `n` visits.
[[nodiscard]] bool tick_visit(std::uint64_t n) noexcept;

/// ThreadPool spawn guard: returns true if worker-thread creation should
/// be simulated as failing (the pool then degrades to serial execution).
[[nodiscard]] bool should_fail_thread_spawn() noexcept;

/// Checkpoint write guard: returns true exactly once, when the installed
/// plan's checkpoint_write_at counter fires — save_checkpoint then treats
/// the stream write as failed (as if the disk filled) AFTER the tmp file
/// was created, exercising the cleanup path.
[[nodiscard]] bool tick_checkpoint_write() noexcept;

/// Checkpoint read guard: returns true exactly once, when the installed
/// plan's checkpoint_read_corrupt_at counter fires — load_checkpoint then
/// rejects the (fully read) blob as checksum-corrupt, exercising the
/// quarantine/recovery paths without touching the file on disk.
[[nodiscard]] bool tick_checkpoint_read() noexcept;

/// Supervisor attempt guard: throws tca::InjectedFaultError when the
/// installed plan's retry_transient_at counter fires, forcing one
/// transient attempt failure so retry paths run under test.
void tick_retry_attempt();

}  // namespace fault

}  // namespace tca::runtime
