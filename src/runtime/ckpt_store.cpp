#include "runtime/ckpt_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"

namespace tca::runtime {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kGenInfix = ".g";
constexpr std::string_view kQuarantineSuffix = ".quarantined";

struct Generation {
  std::uint64_t seq = 0;
  std::string path;
};

/// All `<head>.g<seq>` siblings of `head`, newest (highest seq) first.
/// Quarantined files never match: their names end in ".quarantined[.n]".
std::vector<Generation> list_generations(const std::string& head) {
  std::vector<Generation> out;
  const fs::path head_path(head);
  fs::path dir = head_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = head_path.filename().string() +
                             std::string(kGenInfix);
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string tail = name.substr(prefix.size());
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back({std::strtoull(tail.c_str(), nullptr, 10),
                   (dir / name).string()});
  }
  std::sort(out.begin(), out.end(),
            [](const Generation& a, const Generation& b) {
              return a.seq > b.seq;
            });
  return out;
}

/// Renames a failed-validation file out of the candidate set, preserving
/// it for forensics. Never deletes; never throws.
void quarantine(const std::string& path, ErrorCode code) noexcept {
  static obs::Counter& quarantined =
      obs::counter("ckpt_store.quarantined");
  std::string target = path + std::string(kQuarantineSuffix);
  std::error_code ec;
  for (std::uint32_t n = 1; fs::exists(target, ec); ++n) {
    target = path + std::string(kQuarantineSuffix) + "." +
             std::to_string(n);
  }
  fs::rename(path, target, ec);
  if (ec) return;  // the file vanished or the fs refused; nothing to do
  quarantined.add();
  obs::log_event(obs::LogLevel::kWarn, "ckpt_store.quarantined",
                 {{"path", path},
                  {"quarantined_as", target},
                  {"code", error_code_name(code)}});
}

}  // namespace

CheckpointStore::CheckpointStore(std::string head_path,
                                 CheckpointStoreOptions options)
    : head_(std::move(head_path)), options_(options) {
  options_.keep_generations = std::max<std::uint32_t>(
      options_.keep_generations, 1);
}

void CheckpointStore::save(const Checkpoint& checkpoint) {
  TCA_SPAN("ckpt_store_save");
  static obs::Counter& saves = obs::counter("ckpt_store.saves");
  static obs::Counter& rotations = obs::counter("ckpt_store.rotations");
  static obs::Counter& pruned = obs::counter("ckpt_store.pruned");

  std::vector<Generation> gens = list_generations(head_);
  std::error_code ec;
  if (fs::exists(head_, ec)) {
    const std::uint64_t next = gens.empty() ? 1 : gens.front().seq + 1;
    const std::string slot =
        head_ + std::string(kGenInfix) + std::to_string(next);
    fs::rename(head_, slot, ec);
    if (ec) {
      throw CheckpointError(
          "checkpoint store '" + head_ + "': rotation to '" + slot +
              "' failed: " + ec.message(),
          ErrorCode::kIo);
    }
    gens.insert(gens.begin(), {next, slot});
    rotations.add();
  }

  save_checkpoint(head_, checkpoint);
  saves.add();

  // Head + the newest (keep - 1) generations stay; the rest are healthy
  // rotations past the retention window and are the ONLY files the store
  // ever deletes (quarantined files are out of scope by construction).
  const std::size_t keep = options_.keep_generations - 1;
  for (std::size_t i = keep; i < gens.size(); ++i) {
    fs::remove(gens[i].path, ec);
    if (!ec) pruned.add();
  }
}

std::optional<CheckpointStore::Recovery>
CheckpointStore::load_latest() noexcept {
  static obs::Counter& recoveries = obs::counter("ckpt_store.recoveries");
  try {
    TCA_SPAN("ckpt_store_load");
    std::vector<std::string> candidates;
    std::error_code ec;
    if (fs::exists(head_, ec)) candidates.push_back(head_);
    for (const Generation& gen : list_generations(head_)) {
      candidates.push_back(gen.path);
    }
    std::uint32_t quarantined = 0;
    for (const std::string& path : candidates) {
      try {
        Recovery recovery;
        recovery.checkpoint = load_checkpoint(path);
        recovery.path = path;
        recovery.from_generation = path != head_;
        recovery.quarantined = quarantined;
        if (recovery.from_generation || quarantined > 0) recoveries.add();
        return recovery;
      } catch (const CheckpointError& e) {
        if (e.code() == ErrorCode::kIo) continue;  // unreadable: skip only
        quarantine(path, e.code());
        ++quarantined;
      } catch (const std::exception&) {
        continue;
      }
    }
    return std::nullopt;
  } catch (...) {
    return std::nullopt;
  }
}

std::vector<std::string> CheckpointStore::generations() const {
  std::vector<std::string> out;
  std::error_code ec;
  if (fs::exists(head_, ec)) out.push_back(head_);
  for (const Generation& gen : list_generations(head_)) {
    out.push_back(gen.path);
  }
  return out;
}

}  // namespace tca::runtime
