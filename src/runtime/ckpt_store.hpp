#pragma once
// Generational checkpoint store (docs/robustness.md).
//
// A CheckpointStore replaces single-file checkpoints with keep-last-K
// rotation built on the same checksummed framing (checkpoint.hpp):
//
//   <path>          the newest generation (the "head" — tools and scripts
//                   that watch for a checkpoint file keep working)
//   <path>.g<seq>   older generations, higher seq == newer
//
// save() rotates the current head to the next .g<seq> slot, writes the new
// head atomically, then prunes healthy generations beyond keep_generations.
// load_latest() walks head-then-generations newest-first and returns the
// first checksum-valid checkpoint; anything that fails validation is
// QUARANTINED — renamed to <file>.quarantined[.n], never deleted — so a
// corrupt generation is preserved for forensics and never consulted again.
// A missing/unreadable file is skipped without quarantine (it may simply
// not exist yet).
//
// Counters: ckpt_store.{saves,rotations,pruned,quarantined,recoveries};
// each quarantine also emits a "ckpt_store.quarantined" warn event
// (docs/observability.md).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/checkpoint.hpp"

namespace tca::runtime {

struct CheckpointStoreOptions {
  /// Total generations retained, head included. Clamped to >= 1.
  std::uint32_t keep_generations = 3;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(std::string head_path,
                           CheckpointStoreOptions options = {});

  /// Rotates the existing head (if any) into a generation slot, writes
  /// `checkpoint` as the new head, prunes old healthy generations beyond
  /// keep_generations. Throws CheckpointError(kIo) if the filesystem
  /// refuses; the previous head survives (possibly already rotated).
  void save(const Checkpoint& checkpoint);

  /// A successful recovery: which file satisfied the checksum, whether it
  /// was an older generation, and how many newer files were quarantined
  /// on the way down.
  struct Recovery {
    Checkpoint checkpoint;
    std::string path;
    bool from_generation = false;  ///< head was absent or quarantined
    std::uint32_t quarantined = 0;
  };

  /// Newest checksum-valid generation, or nullopt when nothing on disk
  /// validates. Never throws; corrupt files are quarantined as a side
  /// effect.
  [[nodiscard]] std::optional<Recovery> load_latest() noexcept;

  [[nodiscard]] const std::string& head_path() const noexcept {
    return head_;
  }

  /// All store files newest-first (head first when present), quarantined
  /// files excluded. For tests and tooling.
  [[nodiscard]] std::vector<std::string> generations() const;

 private:
  std::string head_;
  CheckpointStoreOptions options_;
};

}  // namespace tca::runtime
