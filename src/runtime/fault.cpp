#include "runtime/fault.hpp"

#include <atomic>
#include <new>

#include "runtime/error.hpp"

// tca-lint: relaxed-ok(countdown counters use CAS loops whose
// exactly-once firing is order-independent; g_active is the only
// publication edge and carries acquire/release)

namespace tca::runtime {
namespace {

// The installed plan, flattened into independent atomics so every hook is
// lock-free. `active` gates the hooks; the counters count DOWN to zero and
// fire on the transition (exactly-once across racing threads).
std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_alloc_left{0};
std::atomic<std::uint64_t> g_alloc_min_bytes{0};
std::atomic<std::uint64_t> g_chunk_left{0};
std::atomic<std::uint64_t> g_visit_left{0};
std::atomic<std::uint64_t> g_ckpt_write_left{0};
std::atomic<std::uint64_t> g_ckpt_read_left{0};
std::atomic<std::uint64_t> g_retry_left{0};
std::atomic<bool> g_fail_spawn{false};

/// Consumes `n` from a countdown; returns true iff this call crossed zero.
bool consume(std::atomic<std::uint64_t>& counter, std::uint64_t n) noexcept {
  std::uint64_t left = counter.load(std::memory_order_relaxed);
  for (;;) {
    if (left == 0) return false;  // disabled or already fired
    const std::uint64_t next = left > n ? left - n : 0;
    if (counter.compare_exchange_weak(left, next, std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
      return next == 0;
    }
  }
}

}  // namespace

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan) {
  g_alloc_left.store(plan.alloc_failure_at, std::memory_order_relaxed);
  g_alloc_min_bytes.store(plan.alloc_min_bytes, std::memory_order_relaxed);
  g_chunk_left.store(plan.chunk_exception_at, std::memory_order_relaxed);
  g_visit_left.store(plan.cancel_at_visit, std::memory_order_relaxed);
  g_ckpt_write_left.store(plan.checkpoint_write_at, std::memory_order_relaxed);
  g_ckpt_read_left.store(plan.checkpoint_read_corrupt_at,
                         std::memory_order_relaxed);
  g_retry_left.store(plan.retry_transient_at, std::memory_order_relaxed);
  g_fail_spawn.store(plan.fail_thread_spawn, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_active.store(false, std::memory_order_release);
  g_alloc_left.store(0, std::memory_order_relaxed);
  g_alloc_min_bytes.store(0, std::memory_order_relaxed);
  g_chunk_left.store(0, std::memory_order_relaxed);
  g_visit_left.store(0, std::memory_order_relaxed);
  g_ckpt_write_left.store(0, std::memory_order_relaxed);
  g_ckpt_read_left.store(0, std::memory_order_relaxed);
  g_retry_left.store(0, std::memory_order_relaxed);
  g_fail_spawn.store(false, std::memory_order_relaxed);
}

namespace fault {

bool active() noexcept { return g_active.load(std::memory_order_acquire); }

void check_alloc(std::uint64_t bytes) {
  if (!active()) return;
  // Plans with a size floor target only large allocations: small
  // bookkeeping allocations pass through without consuming the countdown.
  if (bytes < g_alloc_min_bytes.load(std::memory_order_relaxed)) return;
  // tca-lint: allow(raw-throw) the injected failure must be the exact
  // std::bad_alloc a real exhausted allocation raises.
  if (consume(g_alloc_left, 1)) throw std::bad_alloc();
}

void check_chunk() {
  if (!active()) return;
  if (consume(g_chunk_left, 1)) {
    throw InjectedFaultError("fault plan: injected chunk exception");
  }
}

bool tick_visit(std::uint64_t n) noexcept {
  if (!active()) return false;
  return consume(g_visit_left, n);
}

bool should_fail_thread_spawn() noexcept {
  return active() && g_fail_spawn.load(std::memory_order_relaxed);
}

bool tick_checkpoint_write() noexcept {
  if (!active()) return false;
  return consume(g_ckpt_write_left, 1);
}

bool tick_checkpoint_read() noexcept {
  if (!active()) return false;
  return consume(g_ckpt_read_left, 1);
}

void tick_retry_attempt() {
  if (!active()) return;
  if (consume(g_retry_left, 1)) {
    throw InjectedFaultError(
        "fault plan: injected transient attempt failure");
  }
}

}  // namespace fault

}  // namespace tca::runtime
