#pragma once
// Unified error hierarchy (DESIGN.md S11 / docs/robustness.md).
//
// Every library in src/ used to throw ad-hoc std::invalid_argument /
// std::runtime_error / std::logic_error. Long sweeps need to tell apart
// "caller passed garbage" from "domain too large for this algorithm" from
// "run was cancelled / budget exhausted / checkpoint corrupt" — so all
// throws now carry a tca::ErrorCode. The concrete classes still derive
// from the standard types they replaced, so existing catch sites (and
// EXPECT_THROW assertions) keep working unchanged.
//
// Header-only on purpose: tca_graph and tca_rules sit below every other
// library and must be able to throw these without a link dependency.

#include <stdexcept>
#include <string>

namespace tca {

/// Machine-readable failure category carried by every tca exception.
enum class ErrorCode : std::uint8_t {
  kUnknown = 0,
  kInvalidArgument,    ///< malformed input (bad id, bad string, bad shape)
  kSizeMismatch,       ///< container sizes disagree (config vs automaton...)
  kOutOfRange,         ///< an index or id outside its valid range
  kDomainTooLarge,     ///< explicit enumeration past its hard cap
  kNotConverged,       ///< an iterative construction gave up
  kInvalidState,       ///< API misuse (internal invariant violated)
  kCancelled,          ///< cooperative cancellation observed
  kBudgetExhausted,    ///< a RunBudget limit was hit where partial results
                       ///< are impossible
  kCheckpointCorrupt,  ///< checkpoint failed checksum / framing validation
  kCheckpointVersion,  ///< checkpoint written by an incompatible version
  kCheckpointTruncated,  ///< checkpoint payload shorter/longer than framed
  kFaultInjected,      ///< deliberate failure from tca::runtime::FaultPlan
  kIo,                 ///< filesystem read/write failure
};

/// Short stable name for an ErrorCode ("invalid-argument", ...).
[[nodiscard]] inline const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kSizeMismatch: return "size-mismatch";
    case ErrorCode::kOutOfRange: return "out-of-range";
    case ErrorCode::kDomainTooLarge: return "domain-too-large";
    case ErrorCode::kNotConverged: return "not-converged";
    case ErrorCode::kInvalidState: return "invalid-state";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kBudgetExhausted: return "budget-exhausted";
    case ErrorCode::kCheckpointCorrupt: return "checkpoint-corrupt";
    case ErrorCode::kCheckpointVersion: return "checkpoint-version";
    case ErrorCode::kCheckpointTruncated: return "checkpoint-truncated";
    case ErrorCode::kFaultInjected: return "fault-injected";
    case ErrorCode::kIo: return "io";
  }
  return "unknown";
}

/// Mixin interface: `catch (const tca::Error& e)` sees every tca exception
/// regardless of which standard base it rides on.
class Error {
 public:
  virtual ~Error() = default;
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 protected:
  explicit Error(ErrorCode code) noexcept : code_(code) {}

 private:
  ErrorCode code_;
};

/// Replaces std::invalid_argument throws (and is one, for compatibility).
class InvalidArgumentError : public std::invalid_argument, public Error {
 public:
  explicit InvalidArgumentError(const std::string& what,
                                ErrorCode code = ErrorCode::kInvalidArgument)
      : std::invalid_argument(what), Error(code) {}
};

/// An explicit-enumeration entry point was asked to enumerate a state
/// space past its hard cap (see phasespace::kMaxExplicitBits).
class DomainTooLargeError : public InvalidArgumentError {
 public:
  explicit DomainTooLargeError(const std::string& what)
      : InvalidArgumentError(what, ErrorCode::kDomainTooLarge) {}
};

/// Replaces std::logic_error throws: API misuse / broken invariants.
class StateError : public std::logic_error, public Error {
 public:
  explicit StateError(const std::string& what,
                      ErrorCode code = ErrorCode::kInvalidState)
      : std::logic_error(what), Error(code) {}
};

/// Replaces std::runtime_error throws: environmental / runtime failures.
class RuntimeError : public std::runtime_error, public Error {
 public:
  explicit RuntimeError(const std::string& what,
                        ErrorCode code = ErrorCode::kUnknown)
      : std::runtime_error(what), Error(code) {}
};

/// Thrown where cancellation cannot be reported as a partial result.
class CancelledError : public RuntimeError {
 public:
  explicit CancelledError(const std::string& what)
      : RuntimeError(what, ErrorCode::kCancelled) {}
};

/// Checkpoint load/save failures (framing, checksum, version, io).
class CheckpointError : public RuntimeError {
 public:
  CheckpointError(const std::string& what, ErrorCode code)
      : RuntimeError(what, code) {}
};

/// The deliberate failure a runtime::FaultPlan injects (distinguishable
/// from every organic exception, so tests can assert provenance).
class InjectedFaultError : public RuntimeError {
 public:
  explicit InjectedFaultError(const std::string& what)
      : RuntimeError(what, ErrorCode::kFaultInjected) {}
};

/// Validates an explicit-enumeration request against its cap; throws
/// DomainTooLargeError with a uniform message otherwise. Every entry point
/// that materializes 2^bits states calls this (FunctionalGraph builders,
/// ChoiceDigraph, GoE census, sweep-map census, ...).
inline void require_explicit_bits(std::uint64_t bits, std::uint64_t limit,
                                  const char* context) {
  if (bits > limit) {
    throw DomainTooLargeError(
        std::string(context) + ": " + std::to_string(bits) +
        " bits exceeds the explicit-enumeration limit of " +
        std::to_string(limit) + " (2^" + std::to_string(limit) + " states)");
  }
}

}  // namespace tca
