#pragma once
// Supervised execution of budgeted experiment closures
// (docs/robustness.md).
//
// A Supervisor wraps "one attempt of the job" in deadline-aware retry with
// seeded-jitter backoff (retry.hpp) and a graceful-degradation ladder over
// the engine stack:
//
//   wide-SIMD  ->  64-lane batch  ->  packed  ->  scalar serial
//
// Each attempt gets a fresh RunControl whose wall limit is carved from the
// time remaining under the overall deadline, so a retrying job can never
// overshoot its deadline by stacking full-length attempts. Failures are
// classified once, at the throw site, into transient (retry, possibly one
// rung down) or terminal (latch and report) — see classify_failure. A body
// that returns kTruncated produced a well-formed partial result under its
// budget; truncation is a successful outcome and is never retried.
//
// Observability: supervisor.{runs,attempts,retries,completed,truncated,
// failed} counters, engine.degrade.<rung> counters per rung entered, a
// latched "engine.degraded" warn event (first degrade per run warns,
// subsequent ones are info), and warn events on terminal failure or retry
// exhaustion (docs/observability.md).

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/budget.hpp"
#include "runtime/retry.hpp"

namespace tca::runtime {

/// Rungs of the engine-degradation ladder, fastest first. The numeric
/// order IS the ladder: degrading moves to the next enumerator.
enum class EngineRung : std::uint8_t {
  kWideSimd = 0,  ///< runtime-dispatched widest SIMD batch tier
  kBatch64,       ///< 64-lane scalar bit-slice batch engine
  kPacked,        ///< per-configuration packed-word kernel
  kScalar,        ///< reference scalar stepper (always available)
};

inline constexpr std::uint32_t kEngineRungCount = 4;

/// Stable lowercase name ("wide-simd", "batch64", "packed", "scalar").
[[nodiscard]] const char* rung_name(EngineRung rung) noexcept;

/// The next rung down; kScalar is the floor and maps to itself.
[[nodiscard]] EngineRung rung_below(EngineRung rung) noexcept;

/// Configuration for one supervised run.
struct SupervisorOptions {
  RetryPolicy retry;
  /// Overall wall-clock deadline across ALL attempts and backoffs,
  /// measured from Supervisor::run entry. Attempt wall limits are carved
  /// from what remains.
  std::optional<std::chrono::steady_clock::duration> deadline;
  /// Per-attempt resource budget (steps/states/bytes/wall). The wall
  /// limit is additionally clamped to the remaining deadline.
  RunBudget attempt_budget;
  EngineRung start_rung = EngineRung::kWideSimd;
  bool degrade_on_pressure = true;  ///< honor FailureVerdict::degrade
  bool apply_backoff = true;  ///< false: record delays but do not sleep
  CancelToken token;          ///< shared across attempts (watchdogs)
};

/// What the body sees for one attempt.
struct AttemptContext {
  std::uint32_t attempt;  ///< 1-based
  EngineRung rung;        ///< engine tier this attempt should run at
  RunControl& control;    ///< fresh per-attempt budget meter
};

/// How the body says one attempt ended (failures are thrown, not
/// returned).
enum class AttemptOutcome : std::uint8_t {
  kCompleted = 0,  ///< total result
  kTruncated,      ///< well-formed partial under the attempt budget
};

/// Terminal state of the whole supervised run.
enum class SupervisedState : std::uint8_t {
  kCompleted = 0,
  kTruncated,  ///< last attempt produced a well-formed partial
  kFailed,     ///< terminal failure, retries exhausted, or deadline
};

[[nodiscard]] const char* supervised_state_name(
    SupervisedState state) noexcept;

/// One failed attempt, as recorded in the report.
struct AttemptFailure {
  std::uint32_t attempt = 0;  ///< 1-based
  EngineRung rung = EngineRung::kWideSimd;
  FailureClass cls = FailureClass::kTerminal;
  ErrorCode code = ErrorCode::kUnknown;
  std::string what;
  std::chrono::milliseconds backoff{0};  ///< delay applied after it
};

/// Full account of one supervised run.
struct SupervisorReport {
  SupervisedState state = SupervisedState::kFailed;
  std::uint32_t attempts = 0;  ///< attempts actually started
  EngineRung final_rung = EngineRung::kWideSimd;
  bool degraded = false;       ///< ladder was walked at least once
  ErrorCode last_error = ErrorCode::kUnknown;
  std::string last_error_what;
  RunStatus last_status;       ///< accounting of the final attempt
  std::vector<AttemptFailure> failures;  ///< one entry per failed attempt

  [[nodiscard]] bool ok() const noexcept {
    return state != SupervisedState::kFailed;
  }
};

/// Runs a budgeted closure under retry + the degradation ladder.
class Supervisor {
 public:
  using Body = std::function<AttemptOutcome(AttemptContext&)>;

  explicit Supervisor(SupervisorOptions options)
      : options_(std::move(options)) {}

  /// Executes `body` until it completes, truncates, fails terminally, or
  /// exhausts attempts/deadline. `job` labels log events. Never throws
  /// exceptions originating in `body` — they are folded into the report.
  SupervisorReport run(std::string_view job, const Body& body);

  [[nodiscard]] const SupervisorOptions& options() const noexcept {
    return options_;
  }

 private:
  SupervisorOptions options_;
};

}  // namespace tca::runtime
