#include "runtime/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/fnv.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::runtime {
namespace {

constexpr std::string_view kMagic = "TCA-CKPT";

/// Every rejected load bumps the failure counter and emits one structured
/// event before throwing, so sweeps can tell "resumed from scratch because
/// the checkpoint was bad" apart from "no checkpoint existed".
[[noreturn]] void reject(const std::string& path, const std::string& why,
                         ErrorCode code) {
  static obs::Counter& failures = obs::counter("checkpoint.load_failures");
  failures.add();
  obs::log_event(obs::LogLevel::kWarn, "checkpoint.rejected",
                 {{"path", path},
                  {"reason", why},
                  {"code", error_code_name(code)}});
  throw CheckpointError("checkpoint '" + path + "': " + why, code);
}

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  reject(path, why, ErrorCode::kCheckpointCorrupt);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  // The shared implementation (core/fnv.hpp) — also the service cache's
  // content-address digest, so the two stay bit-identical by construction.
  return core::fnv1a64(bytes);
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  TCA_SPAN("checkpoint_save");
  static obs::Counter& saves = obs::counter("checkpoint.saves");
  static obs::Histogram& bytes = obs::histogram(
      "checkpoint.bytes",
      {256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304});
  fault::check_alloc(checkpoint.payload.size());
  std::ostringstream framed;
  framed << kMagic << " v" << checkpoint.version << "\n"
         << "checksum=" << std::hex << fnv1a64(checkpoint.payload) << std::dec
         << "\n"
         << "bytes=" << checkpoint.payload.size() << "\n\n"
         << checkpoint.payload;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError("checkpoint '" + path + "': cannot open tmp file",
                            ErrorCode::kIo);
    }
    const std::string blob = framed.str();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out || fault::tick_checkpoint_write()) {
      // Error discipline: a failed write must not strand the tmp file —
      // the durability contract is "old complete checkpoint or new
      // complete checkpoint, and nothing else on disk". The fault plan's
      // checkpoint_write_at knob forces this branch in tests.
      out.close();
      std::remove(tmp.c_str());
      throw CheckpointError("checkpoint '" + path + "': write failed",
                            ErrorCode::kIo);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint '" + path + "': rename failed",
                          ErrorCode::kIo);
  }
  saves.add();
  bytes.record(checkpoint.payload.size());
}

Checkpoint load_checkpoint(const std::string& path) {
  TCA_SPAN("checkpoint_load");
  static obs::Counter& loads = obs::counter("checkpoint.loads");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint '" + path + "': cannot open",
                          ErrorCode::kIo);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string blob = buffer.str();

  std::istringstream parse(blob);
  std::string magic_line;
  if (!std::getline(parse, magic_line)) corrupt(path, "empty file");
  if (magic_line.size() < kMagic.size() + 2 ||
      magic_line.compare(0, kMagic.size(), kMagic) != 0 ||
      magic_line.compare(kMagic.size(), 2, " v") != 0) {
    corrupt(path, "bad magic line '" + magic_line + "'");
  }
  std::uint32_t version = 0;
  try {
    version = static_cast<std::uint32_t>(
        std::stoul(magic_line.substr(kMagic.size() + 2)));
  } catch (const std::exception&) {
    corrupt(path, "unparseable version in '" + magic_line + "'");
  }
  if (version != kCheckpointVersion) {
    reject(path,
           "version " + std::to_string(version) +
               " is not the supported version " +
               std::to_string(kCheckpointVersion),
           ErrorCode::kCheckpointVersion);
  }

  std::string checksum_line, bytes_line, blank;
  if (!std::getline(parse, checksum_line) ||
      checksum_line.rfind("checksum=", 0) != 0) {
    corrupt(path, "missing checksum line");
  }
  if (!std::getline(parse, bytes_line) || bytes_line.rfind("bytes=", 0) != 0) {
    corrupt(path, "missing bytes line");
  }
  if (!std::getline(parse, blank) || !blank.empty()) {
    corrupt(path, "missing separator line");
  }

  std::uint64_t expected_checksum = 0;
  std::size_t expected_bytes = 0;
  try {
    expected_checksum = std::stoull(checksum_line.substr(9), nullptr, 16);
    expected_bytes = std::stoull(bytes_line.substr(6));
  } catch (const std::exception&) {
    corrupt(path, "unparseable checksum/bytes header");
  }

  const auto header_size = static_cast<std::size_t>(parse.tellg());
  if (blob.size() < header_size ||
      blob.size() - header_size != expected_bytes) {
    reject(path,
           "payload is " + std::to_string(blob.size() - header_size) +
               " bytes, header promised " + std::to_string(expected_bytes) +
               " (truncated or padded file)",
           ErrorCode::kCheckpointTruncated);
  }
  Checkpoint out;
  out.version = version;
  out.payload = blob.substr(header_size);
  if (fault::tick_checkpoint_read()) {
    // The checkpoint_read_corrupt_at knob: the file on disk is intact,
    // but this read observes bit rot — same rejection path, counter, and
    // event as a genuine checksum mismatch.
    corrupt(path, "fault plan: injected read corruption");
  }
  if (fnv1a64(out.payload) != expected_checksum) {
    corrupt(path, "checksum mismatch (payload corrupted)");
  }
  loads.add();
  return out;
}

std::optional<Checkpoint> try_load_checkpoint(
    const std::string& path) noexcept {
  try {
    return load_checkpoint(path);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace tca::runtime
