#pragma once
// Cooperative budgets and cancellation (docs/robustness.md).
//
// Every exponential-state-space engine in this repo (FunctionalGraph's
// 2^n successor tables, aca::explore's BFS over deliver/compute
// interleavings, the interleave explorer, the preimage census) can now run
// under a RunBudget + CancelToken pair wrapped in a RunControl. The engine
// calls note_states()/note_steps()/note_bytes() as it works and stops
// cleanly — returning a well-formed partial result whose stop_reason says
// why — the moment a limit trips, the deadline passes, or the token is
// cancelled from another thread.
//
// Counters are atomics, so one RunControl can meter a parallel build: all
// workers of a ThreadPool charge the same control. The first limit to trip
// is latched; later notes keep returning the same StopReason.

// tca-lint: relaxed-ok(the cancel flag and budget counters are sticky
// monotonic signals polled cooperatively; no payload data is published
// through them, so no acquire/release pairing is needed)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

namespace tca::runtime {

/// Why a budgeted run stopped before finishing (kNone == ran to the end).
enum class StopReason : std::uint8_t {
  kNone = 0,      ///< completed; result is total
  kCancelled,     ///< CancelToken tripped (user, watchdog, or fault plan)
  kDeadline,      ///< wall-clock limit passed
  kMaxSteps,      ///< step budget exhausted
  kMaxStates,     ///< visited-state budget exhausted
  kMaxBytes,      ///< memory budget exhausted
};

/// Short stable name ("none", "cancelled", "deadline", ...).
[[nodiscard]] const char* stop_reason_name(StopReason reason) noexcept;

/// Resource limits for one run. Default-constructed == unlimited.
struct RunBudget {
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  std::uint64_t max_steps = kUnlimited;   ///< engine-defined unit of work
  std::uint64_t max_states = kUnlimited;  ///< distinct states visited/built
  std::uint64_t max_bytes = kUnlimited;   ///< approximate bytes allocated
  /// Wall-clock limit, measured from RunControl construction.
  std::optional<std::chrono::steady_clock::duration> wall_limit;

  [[nodiscard]] static RunBudget unlimited() { return {}; }
};

/// Shared cooperative cancellation handle. Copies observe the same flag;
/// cancel() is safe from any thread (e.g. a watchdog) and is sticky.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Snapshot of a run's accounting, embedded in partial results.
struct RunStatus {
  StopReason stop_reason = StopReason::kNone;
  std::uint64_t steps = 0;
  std::uint64_t states = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] bool truncated() const noexcept {
    return stop_reason != StopReason::kNone;
  }
};

/// Meters one run against a RunBudget + CancelToken. Not copyable (owns
/// atomic counters); pass by reference into the engines.
class RunControl {
 public:
  /// Unlimited budget, fresh token: the "just run" control.
  RunControl() : RunControl(RunBudget::unlimited()) {}
  explicit RunControl(const RunBudget& budget, CancelToken token = {});

  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Charges `n` units of work; returns the latched StopReason (kNone if
  /// the run may continue). Deadline and cancellation are polled here too,
  /// the clock only every kClockPollMask+1 calls. note_states additionally
  /// ticks the installed FaultPlan's cancel-at-visit counter.
  StopReason note_steps(std::uint64_t n = 1) noexcept;
  StopReason note_states(std::uint64_t n = 1) noexcept;
  StopReason note_bytes(std::uint64_t n) noexcept;

  /// Polls cancellation + deadline without charging any counter.
  StopReason check() noexcept;
  [[nodiscard]] bool should_stop() noexcept {
    return check() != StopReason::kNone;
  }

  /// Latches `reason` if nothing stopped the run yet (used by engines that
  /// detect exhaustion themselves, and by the watchdog).
  void mark(StopReason reason) noexcept;

  /// The shared token (hand it to a watchdog or another thread).
  [[nodiscard]] CancelToken token() const { return token_; }
  [[nodiscard]] const RunBudget& budget() const noexcept { return budget_; }
  [[nodiscard]] RunStatus status() const noexcept;

  /// True if a further allocation of `n` bytes would fit the byte budget.
  [[nodiscard]] bool bytes_would_fit(std::uint64_t n) const noexcept;

 private:
  static constexpr std::uint64_t kClockPollMask = 1023;

  StopReason latch_and_get(StopReason candidate) noexcept;
  StopReason poll(bool force_clock) noexcept;

  RunBudget budget_;
  CancelToken token_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> states_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint8_t> stop_{0};  ///< latched StopReason
};

}  // namespace tca::runtime
