#pragma once
// Versioned, checksummed checkpoints (docs/robustness.md).
//
// Long experiment sweeps snapshot their progress so a crashed or killed
// run resumes instead of restarting from zero. The framing here is
// deliberately dumb and auditable: a fixed magic line, an explicit format
// version, an FNV-1a 64 checksum and byte count over an opaque payload,
// then the payload itself. What goes IN the payload is the caller's
// business (bench::ExperimentDriver stores sweep progress + RNG state +
// recorded verdicts as text lines).
//
// Durability contract: save_checkpoint writes to `<path>.tmp` and renames
// over `path`, so a SIGKILL mid-write leaves either the old complete
// checkpoint or the new complete checkpoint — never a torn file. Loading
// validates magic, version, byte count, and checksum, and throws
// tca::CheckpointError with a DISTINCT code per failure mode —
// kCheckpointTruncated (byte count disagrees with the framing),
// kCheckpointCorrupt (bad magic / framing / checksum), kCheckpointVersion
// (incompatible version), kIo (unreadable) — so tests and sweeps can tell
// the modes apart; try_load_checkpoint turns all of those into nullopt
// for "resume if you can" callers. Every rejection also bumps the
// "checkpoint.load_failures" counter and emits a "checkpoint.rejected"
// log event (docs/observability.md).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tca::runtime {

/// Current checkpoint framing version (bump on incompatible change).
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// A loaded or to-be-saved checkpoint: framing version + opaque payload.
struct Checkpoint {
  std::uint32_t version = kCheckpointVersion;
  std::string payload;
};

/// FNV-1a 64-bit over arbitrary bytes (the checkpoint checksum; exposed
/// for tests and for callers who want to checksum payload sections).
/// Thin wrapper over the one shared implementation in core/fnv.hpp —
/// also used by the service result cache's content-address digests.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Atomically writes `checkpoint` to `path` (tmp file + rename). Throws
/// CheckpointError(kIo) if the filesystem refuses; a failed write removes
/// its own `<path>.tmp` before throwing, so the durability contract holds
/// in both directions: old complete checkpoint or new complete
/// checkpoint, and no stray tmp files (the `checkpoint_write_at` fault
/// knob drives this path deterministically in tests).
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Loads and validates a checkpoint. Throws CheckpointError with code
/// kIo (unreadable), kCheckpointTruncated (payload length disagrees with
/// the framing), kCheckpointCorrupt (bad magic / framing / checksum) or
/// kCheckpointVersion (incompatible version).
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

/// load_checkpoint, with every failure (including "file absent") mapped
/// to nullopt — the resume-if-possible entry point.
[[nodiscard]] std::optional<Checkpoint> try_load_checkpoint(
    const std::string& path) noexcept;

}  // namespace tca::runtime
