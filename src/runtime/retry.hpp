#pragma once
// Deterministic retry policies and failure classification
// (docs/robustness.md).
//
// A RetryPolicy describes seeded-jitter exponential backoff: the delay
// after failed attempt k is initial_backoff * multiplier^(k-1), capped at
// max_backoff, then jittered by a factor drawn from [1-jitter, 1+jitter]
// with a splitmix64 hash of (seed, k). The schedule is a pure function of
// the policy — same seed, same schedule — which is what makes supervised
// runs replayable and the chaos sweep's repro commands exact. No wall
// clock, no <random>: src/runtime is held to the checkpoint-det lint rule.
//
// classify_failure maps any in-flight exception onto the retry axis the
// Supervisor acts on: transient failures (injected faults, I/O, corrupt or
// truncated checkpoints, non-convergence, memory pressure) are worth
// retrying; everything else — caller bugs, cancellation, exhausted
// budgets, version mismatches, foreign exceptions — is terminal and
// latches immediately. Memory pressure and injected chunk failures
// additionally request a walk DOWN the engine-degradation ladder
// (supervisor.hpp).

#include <chrono>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "runtime/error.hpp"

namespace tca::runtime {

/// Seeded-jitter exponential backoff parameters. Defaults suit interactive
/// tests; long sweeps raise initial/max, chaos scenarios shrink them.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< total attempts (first try included)
  std::chrono::milliseconds initial_backoff{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{2000};
  double jitter = 0.25;      ///< delay scaled by [1-jitter, 1+jitter]
  std::uint64_t seed = 0;    ///< jitter stream; same seed => same schedule
};

/// The deterministic delay applied after failed attempt `attempt`
/// (1-based). Pure arithmetic over (policy, attempt); never negative.
[[nodiscard]] std::chrono::milliseconds backoff_delay(
    const RetryPolicy& policy, std::uint32_t attempt) noexcept;

/// The full schedule [delay after attempt 1, ..., after max_attempts - 1].
[[nodiscard]] std::vector<std::chrono::milliseconds> backoff_schedule(
    const RetryPolicy& policy);

/// Retry axis of one failure.
enum class FailureClass : std::uint8_t {
  kTransient = 0,  ///< retry may succeed (I/O, injected fault, pressure)
  kTerminal,       ///< retrying cannot help (bad input, cancel, version)
};

[[nodiscard]] const char* failure_class_name(FailureClass cls) noexcept;

/// What the Supervisor learns from one thrown exception.
struct FailureVerdict {
  FailureClass cls = FailureClass::kTerminal;
  bool degrade = false;  ///< walk one rung down the engine ladder on retry
  ErrorCode code = ErrorCode::kUnknown;
  std::string what;
};

/// Classifies a captured exception (`std::current_exception()` inside a
/// catch block). std::bad_alloc is transient + degrade even though it
/// carries no tca::ErrorCode; unknown exception types are terminal.
[[nodiscard]] FailureVerdict classify_failure(
    const std::exception_ptr& error) noexcept;

/// The ErrorCode-level classification table behind classify_failure
/// (exposed so tests can pin the whole matrix).
[[nodiscard]] FailureVerdict classify_error_code(ErrorCode code) noexcept;

}  // namespace tca::runtime
