#include "runtime/retry.hpp"

#include <algorithm>
#include <cmath>

namespace tca::runtime {
namespace {

/// splitmix64 — the same tiny PRNG finalizer the testing generators use.
/// Pure arithmetic, so retry schedules satisfy the checkpoint-det rule.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from 53 hash bits.
double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        std::uint32_t attempt) noexcept {
  if (attempt == 0 || policy.initial_backoff.count() <= 0) {
    return std::chrono::milliseconds{0};
  }
  const double cap = static_cast<double>(
      std::max<std::int64_t>(policy.max_backoff.count(), 0));
  const double multiplier = policy.multiplier < 1.0 ? 1.0 : policy.multiplier;
  double base = static_cast<double>(policy.initial_backoff.count());
  for (std::uint32_t k = 1; k < attempt && base < cap; ++k) {
    base *= multiplier;
  }
  base = std::min(base, cap);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double u = unit_double(splitmix64(policy.seed ^ (0x5ca1ab1eull +
                                                         attempt)));
  const double scaled = base * (1.0 - jitter + 2.0 * jitter * u);
  const auto ms = static_cast<std::int64_t>(std::llround(scaled));
  return std::chrono::milliseconds{std::clamp<std::int64_t>(
      ms, 0, policy.max_backoff.count() < 0 ? 0 : policy.max_backoff.count())};
}

std::vector<std::chrono::milliseconds> backoff_schedule(
    const RetryPolicy& policy) {
  std::vector<std::chrono::milliseconds> schedule;
  if (policy.max_attempts <= 1) return schedule;
  schedule.reserve(policy.max_attempts - 1);
  for (std::uint32_t attempt = 1; attempt < policy.max_attempts; ++attempt) {
    schedule.push_back(backoff_delay(policy, attempt));
  }
  return schedule;
}

const char* failure_class_name(FailureClass cls) noexcept {
  switch (cls) {
    case FailureClass::kTransient: return "transient";
    case FailureClass::kTerminal: return "terminal";
  }
  return "terminal";
}

FailureVerdict classify_error_code(ErrorCode code) noexcept {
  FailureVerdict verdict;
  verdict.code = code;
  switch (code) {
    // Worth retrying: the environment (or the fault plan) misbehaved, not
    // the caller. A corrupt/truncated checkpoint is transient because the
    // generational store can fall back to an older generation.
    case ErrorCode::kFaultInjected:
      verdict.cls = FailureClass::kTransient;
      verdict.degrade = true;  // repeated chunk failure walks the ladder
      break;
    case ErrorCode::kIo:
    case ErrorCode::kCheckpointCorrupt:
    case ErrorCode::kCheckpointTruncated:
    case ErrorCode::kNotConverged:
      verdict.cls = FailureClass::kTransient;
      break;
    // Terminal: retrying the same closure cannot change the outcome.
    case ErrorCode::kUnknown:
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kSizeMismatch:
    case ErrorCode::kOutOfRange:
    case ErrorCode::kDomainTooLarge:
    case ErrorCode::kInvalidState:
    case ErrorCode::kCancelled:
    case ErrorCode::kBudgetExhausted:
    case ErrorCode::kCheckpointVersion:
      verdict.cls = FailureClass::kTerminal;
      break;
  }
  return verdict;
}

FailureVerdict classify_failure(const std::exception_ptr& error) noexcept {
  FailureVerdict verdict;
  if (!error) {
    verdict.what = "no exception";
    return verdict;
  }
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    verdict = classify_error_code(e.code());
    const auto* std_e = dynamic_cast<const std::exception*>(&e);
    verdict.what = std_e ? std_e->what() : error_code_name(e.code());
  } catch (const std::bad_alloc& e) {
    // Real (or injected) memory pressure: retry one rung down the ladder,
    // where the working set is smaller.
    verdict.cls = FailureClass::kTransient;
    verdict.degrade = true;
    verdict.code = ErrorCode::kUnknown;
    verdict.what = e.what();
  } catch (const std::exception& e) {
    verdict.what = e.what();
  } catch (...) {
    verdict.what = "non-standard exception";
  }
  return verdict;
}

}  // namespace tca::runtime
