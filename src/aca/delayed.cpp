#include "aca/delayed.hpp"

#include <vector>

namespace tca::aca {

DelayedRunResult run_delayed(const AcaSystem& sys, StateCode start,
                             const DelayedParams& params, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution compute(params.compute_rate);
  std::bernoulli_distribution deliver(params.deliver_rate);

  AcaState s = sys.initial(start);
  DelayedRunResult result;
  std::vector<core::NodeId> firing;
  for (std::uint64_t tick = 0; tick < params.max_ticks; ++tick) {
    if (sys.quiescent(s)) {
      result.quiesced = true;
      result.ticks = tick;
      result.final_config = sys.config_of(s);
      return result;
    }
    // Phase 1: deliveries, all against the tick-start node states — applying
    // them one at a time is equivalent because delivers only read node
    // states (unchanged in this phase) and write disjoint channel bits.
    for (std::uint32_t c = 0; c < sys.num_channels(); ++c) {
      if (deliver(rng)) {
        s = sys.apply(s, Action{Action::Kind::kDeliver, c});
        ++result.total_delivers;
      }
    }
    // Phase 2: computes, all against the post-delivery snapshot. Computes
    // write only their own node bit but READ their own state directly, so
    // simultaneity needs staging.
    firing.clear();
    for (core::NodeId v = 0; v < sys.num_nodes(); ++v) {
      if (compute(rng)) firing.push_back(v);
    }
    AcaState staged = s;
    for (core::NodeId v : firing) {
      const AcaState after = sys.apply(s, Action{Action::Kind::kCompute, v});
      const AcaState bit = AcaState{1} << v;
      staged = (staged & ~bit) | (after & bit);
      ++result.total_computes;
    }
    s = staged;
  }
  result.quiesced = sys.quiescent(s);
  result.ticks = params.max_ticks;
  result.final_config = sys.config_of(s);
  return result;
}

DelayedStats measure_delayed(const AcaSystem& sys, StateCode start,
                             const DelayedParams& params, std::uint64_t trials,
                             std::uint64_t seed) {
  DelayedStats stats;
  stats.trials = trials;
  double total = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto run = run_delayed(sys, start, params, seed + t);
    if (run.quiesced) {
      ++stats.quiesced;
      const auto ticks = static_cast<double>(run.ticks);
      total += ticks;
      if (ticks > stats.max_ticks) stats.max_ticks = ticks;
    }
  }
  stats.mean_ticks =
      stats.quiesced == 0 ? 0.0 : total / static_cast<double>(stats.quiesced);
  return stats;
}

}  // namespace tca::aca
