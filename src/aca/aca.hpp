#pragma once
// Genuinely asynchronous cellular automata (DESIGN.md S8).
//
// The paper's Section 4/5 proposal: drop the global clock entirely, so
// asynchrony applies to COMMUNICATION, not just to the order of local
// computations. Following the paper's suggested decomposition of a node
// update into (1) fetching neighbors' values, (2) computing, (3) making the
// new state available, we model each directed reading relationship u -> v
// as a CHANNEL holding the last value of u that v has fetched. Channels
// make stale reads first-class: v may compute from arbitrarily old
// neighbor values until a new delivery happens.
//
// Global ACA state = (node states x, all channel values). Two action kinds:
//   Deliver(u -> v): channel(u -> v) := x_u      (communication)
//   Compute(v):      x_v := f_v(view_v)          (local computation)
// where view_v reads v's own state directly (its memory) and every other
// input through its channel.
//
// Special schedules recover the classical models exactly:
//   all delivers, then all computes           == one synchronous CA step
//   deliver all of v's channels, compute v    == one SCA update of node v
// so reach(classical CA) and reach(SCA) are both contained in reach(ACA) —
// the paper's subsumption claim, verified by the aca_subsumption bench and
// tests. The converse containment fails: stale reads generate behaviours
// (e.g. threshold-CA oscillations under sequential computation order) that
// no classical or sequential schedule produces.

#include <cstdint>
#include <random>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "phasespace/functional_graph.hpp"

namespace tca::aca {

using core::Automaton;
using core::NodeId;
using phasespace::StateCode;

/// Encoded global ACA state: low n bits are the node states, the remaining
/// bits are channel values (one per non-self, non-phantom input slot).
using AcaState = std::uint64_t;

/// An action of the asynchronous system.
struct Action {
  enum class Kind : std::uint8_t { kDeliver, kCompute };
  Kind kind = Kind::kCompute;
  std::uint32_t index = 0;  ///< channel id for kDeliver, node id for kCompute
  friend bool operator==(const Action&, const Action&) = default;
};

/// The asynchronous interpretation of an automaton.
class AcaSystem {
 public:
  /// Requires n + #channels <= 63 so a global state fits one word.
  /// The automaton is stored by value, so temporaries are safe.
  explicit AcaSystem(Automaton a);

  [[nodiscard]] const Automaton& automaton() const noexcept { return a_; }
  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(a_.size());
  }
  [[nodiscard]] std::uint32_t num_channels() const noexcept {
    return num_channels_;
  }
  [[nodiscard]] std::uint32_t num_actions() const noexcept {
    return num_channels_ + num_nodes();
  }
  [[nodiscard]] Action action(std::uint32_t i) const {
    return i < num_channels_
               ? Action{Action::Kind::kDeliver, i}
               : Action{Action::Kind::kCompute, i - num_channels_};
  }

  /// Initial ACA state for configuration x: every channel already holds the
  /// sender's current value (consistent snapshot).
  [[nodiscard]] AcaState initial(StateCode x) const;

  /// Applies one action.
  [[nodiscard]] AcaState apply(AcaState s, const Action& action) const;

  /// The node-states projection of a global state.
  [[nodiscard]] StateCode config_of(AcaState s) const {
    return s & ((AcaState{1} << num_nodes()) - 1);
  }

  /// True if NO action changes the global state (all channels fresh and all
  /// nodes stable) — the asynchronous fixed point.
  [[nodiscard]] bool quiescent(AcaState s) const;

  /// One synchronous macro-step expressed as ACA actions: all delivers then
  /// all computes. Provided for the subsumption tests.
  [[nodiscard]] AcaState synchronous_macro_step(AcaState s) const;

  /// One SCA macro-update of node v: deliver all of v's channels, compute v.
  [[nodiscard]] AcaState sequential_macro_update(AcaState s, NodeId v) const;

 private:
  Automaton a_;
  std::uint32_t num_channels_ = 0;
  // Channel c carries sender_[c] -> receiver; per node v, the input slots
  // that read through channels are channel_of_slot_[v][i] (or kDirect).
  std::vector<NodeId> sender_;
  std::vector<std::vector<std::uint32_t>> channel_of_slot_;
  static constexpr std::uint32_t kDirect = 0xFFFFFFFFu;   ///< self input
  static constexpr std::uint32_t kPhantom = 0xFFFFFFFEu;  ///< kConstZero

  [[nodiscard]] core::State view_input(AcaState s, NodeId v,
                                       std::size_t slot) const;
};

/// Result of a randomly scheduled asynchronous run.
struct RandomRunResult {
  bool quiesced = false;       ///< reached an asynchronous fixed point
  std::uint64_t actions = 0;   ///< actions performed
  StateCode final_config = 0;  ///< node-states projection at the end
};

/// Runs a uniformly random schedule (each step picks one of the
/// num_actions() actions) until quiescence or `max_actions`.
[[nodiscard]] RandomRunResult run_random(const AcaSystem& sys, StateCode start,
                                         std::uint64_t seed,
                                         std::uint64_t max_actions);

}  // namespace tca::aca
