#include "aca/explorer.hpp"

#include <deque>
#include <unordered_set>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tca::aca {
namespace {

/// Publishes one exploration's tallies in a single batch (the BFS loop
/// itself keeps plain locals, so metering adds nothing per state).
void publish_explore_tallies(std::uint64_t actions, std::uint64_t dedup_hits,
                             std::uint64_t global_states) {
  static obs::Counter& runs = obs::counter("aca.explore.runs");
  static obs::Counter& actions_total = obs::counter("aca.explore.actions");
  static obs::Counter& dedup = obs::counter("aca.explore.dedup_hits");
  static obs::Counter& states = obs::counter("aca.explore.global_states");
  runs.add();
  actions_total.add(actions);
  dedup.add(dedup_hits);
  states.add(global_states);
}

/// Approximate bytes charged per stored global state: one hash-set slot
/// plus transient queue residency.
constexpr std::uint64_t kBytesPerGlobalState = 3 * sizeof(AcaState);

Subsumption compare_with(const core::Automaton& a, StateCode start,
                         const ReachSet& aca) {
  const auto sync = reach_synchronous(a, start);
  const auto seq = reach_sequential(a, start);

  Subsumption out;
  out.aca_total = aca.configs.size();
  out.sync_total = sync.size();
  out.seq_total = seq.size();
  out.truncated = aca.truncated;
  out.stop_reason = aca.stop_reason;
  for (StateCode s : aca.configs) {
    if (!sync.contains(s) && !seq.contains(s)) ++out.only_aca;
  }
  if (aca.truncated) {
    // A truncated reach set cannot certify containment either way: leave
    // the flags false and let callers skip on `truncated`.
    return out;
  }
  out.contains_synchronous = true;
  for (StateCode s : sync) {
    if (!aca.configs.contains(s)) out.contains_synchronous = false;
  }
  out.contains_sequential = true;
  for (StateCode s : seq) {
    if (!aca.configs.contains(s)) out.contains_sequential = false;
  }
  return out;
}

}  // namespace

ReachSet explore(const AcaSystem& sys, StateCode start,
                 std::uint64_t max_global_states) {
  TCA_SPAN("aca_explore");
  ReachSet out;
  std::unordered_set<AcaState> seen;
  std::deque<AcaState> queue;
  const AcaState s0 = sys.initial(start);
  seen.insert(s0);
  queue.push_back(s0);
  std::uint64_t actions = 0;
  std::uint64_t dedup_hits = 0;
  while (!queue.empty()) {
    const AcaState s = queue.front();
    queue.pop_front();
    out.configs.insert(sys.config_of(s));
    for (std::uint32_t i = 0; i < sys.num_actions(); ++i) {
      ++actions;
      const AcaState t = sys.apply(s, sys.action(i));
      if (seen.contains(t)) {
        ++dedup_hits;
        continue;
      }
      if (seen.size() >= max_global_states) {
        out.truncated = true;
        out.stop_reason = runtime::StopReason::kMaxStates;
        continue;
      }
      seen.insert(t);
      queue.push_back(t);
    }
  }
  out.global_states = seen.size();
  publish_explore_tallies(actions, dedup_hits, out.global_states);
  return out;
}

ReachSet explore(const AcaSystem& sys, StateCode start,
                 runtime::RunControl& control) {
  TCA_SPAN("aca_explore");
  ReachSet out;
  std::unordered_set<AcaState> seen;
  std::deque<AcaState> queue;
  const AcaState s0 = sys.initial(start);
  seen.insert(s0);
  queue.push_back(s0);
  control.note_states();
  control.note_bytes(kBytesPerGlobalState);
  std::uint64_t actions = 0;
  std::uint64_t dedup_hits = 0;
  while (!queue.empty()) {
    if (control.should_stop()) break;
    const AcaState s = queue.front();
    queue.pop_front();
    out.configs.insert(sys.config_of(s));
    for (std::uint32_t i = 0; i < sys.num_actions(); ++i) {
      control.note_steps();
      ++actions;
      const AcaState t = sys.apply(s, sys.action(i));
      if (seen.contains(t)) {
        ++dedup_hits;
        continue;
      }
      if (control.note_states() != runtime::StopReason::kNone ||
          control.note_bytes(kBytesPerGlobalState) !=
              runtime::StopReason::kNone) {
        break;
      }
      seen.insert(t);
      queue.push_back(t);
    }
  }
  out.global_states = seen.size();
  publish_explore_tallies(actions, dedup_hits, out.global_states);
  const auto status = control.status();
  out.stop_reason = status.stop_reason;
  out.truncated = status.truncated();
  return out;
}

std::set<StateCode> reach_synchronous(const core::Automaton& a,
                                      StateCode start) {
  const std::size_t n = a.size();
  std::set<StateCode> out;
  StateCode s = start;
  while (out.insert(s).second) {
    auto c = core::Configuration::from_bits(s, n);
    s = core::step_synchronous(a, c).to_bits();
  }
  return out;
}

std::set<StateCode> reach_sequential(const core::Automaton& a,
                                     StateCode start) {
  const std::size_t n = a.size();
  std::set<StateCode> seen{start};
  std::deque<StateCode> queue{start};
  while (!queue.empty()) {
    const StateCode s = queue.front();
    queue.pop_front();
    for (std::size_t v = 0; v < n; ++v) {
      auto c = core::Configuration::from_bits(s, n);
      core::update_node(a, c, static_cast<core::NodeId>(v));
      const StateCode t = c.to_bits();
      if (seen.insert(t).second) queue.push_back(t);
    }
  }
  return seen;
}

Subsumption compare_reach_sets(const core::Automaton& a, StateCode start) {
  const AcaSystem sys(a);
  return compare_with(a, start, explore(sys, start));
}

Subsumption compare_reach_sets(const core::Automaton& a, StateCode start,
                               runtime::RunControl& control) {
  const AcaSystem sys(a);
  return compare_with(a, start, explore(sys, start, control));
}

}  // namespace tca::aca
