#pragma once
// Exhaustive exploration of asynchronous CA behaviour (DESIGN.md S8).
//
// BFS over the full nondeterministic ACA transition system (every deliver /
// compute action at every reachable global state), projecting global states
// onto node configurations. Used to verify the paper's Section 4
// subsumption claim — reach(classical CA) U reach(SCA) is contained in
// reach(ACA) — and to measure how much STRICTLY larger the asynchronous
// reach set is.
//
// Both explorers degrade gracefully: the legacy max_global_states cap and
// the budgeted runtime::RunControl overloads return a well-formed partial
// ReachSet with `truncated` + `stop_reason` set instead of aborting, and
// compare_reach_sets propagates truncation so callers (the subsumption
// oracle, the bench) can SKIP rather than mis-report containment verdicts
// computed from an incomplete reach set.

#include <set>
#include <vector>

#include "aca/aca.hpp"
#include "runtime/budget.hpp"

namespace tca::aca {

/// Result of an exhaustive reachability exploration.
struct ReachSet {
  std::set<StateCode> configs;        ///< reachable node-state projections
  std::uint64_t global_states = 0;    ///< distinct (x, channels) states seen
  bool truncated = false;             ///< exploration stopped early
  runtime::StopReason stop_reason = runtime::StopReason::kNone;  ///< why
};

/// All configurations reachable from `start` by ANY action sequence.
[[nodiscard]] ReachSet explore(const AcaSystem& sys, StateCode start,
                               std::uint64_t max_global_states = 1u << 22);

/// Budgeted exploration: stops the BFS the moment `control` trips (state /
/// byte / deadline budgets, or cancellation) and returns the partial reach
/// set collected so far.
[[nodiscard]] ReachSet explore(const AcaSystem& sys, StateCode start,
                               runtime::RunControl& control);

/// Configurations visited by the (deterministic) classical parallel CA
/// trajectory from `start` — the whole orbit, transient plus cycle.
[[nodiscard]] std::set<StateCode> reach_synchronous(const core::Automaton& a,
                                                    StateCode start);

/// Configurations reachable from `start` by single sequential node updates
/// in ANY order (BFS over the choice transition system, built on the fly).
[[nodiscard]] std::set<StateCode> reach_sequential(const core::Automaton& a,
                                                   StateCode start);

/// Verdict of the subsumption comparison from one start configuration.
struct Subsumption {
  bool contains_synchronous = false;  ///< reach(CA)  subset of reach(ACA)
  bool contains_sequential = false;   ///< reach(SCA) subset of reach(ACA)
  std::uint64_t only_aca = 0;  ///< configs reachable only asynchronously
  std::uint64_t aca_total = 0;
  std::uint64_t sync_total = 0;
  std::uint64_t seq_total = 0;
  /// True when the ACA exploration was truncated: the containment flags
  /// above are then MEANINGLESS (a missing config may simply be unvisited)
  /// and callers must skip, not fail.
  bool truncated = false;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
};

/// Runs all three explorations and compares them.
[[nodiscard]] Subsumption compare_reach_sets(const core::Automaton& a,
                                             StateCode start);

/// Budgeted comparison: the ACA exploration runs under `control`; on
/// truncation the verdict is returned with truncated == true and the
/// containment flags left false.
[[nodiscard]] Subsumption compare_reach_sets(const core::Automaton& a,
                                             StateCode start,
                                             runtime::RunControl& control);

}  // namespace tca::aca
