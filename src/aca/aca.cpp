#include "aca/aca.hpp"

#include <stdexcept>

#include "rules/rule.hpp"
#include "runtime/error.hpp"

namespace tca::aca {

AcaSystem::AcaSystem(Automaton a) : a_(std::move(a)) {
  const auto n = static_cast<std::uint32_t>(a_.size());
  channel_of_slot_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto in = a_.inputs(v);
    channel_of_slot_[v].resize(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in[i] == v) {
        channel_of_slot_[v][i] = kDirect;
      } else if (in[i] == core::kConstZero) {
        channel_of_slot_[v][i] = kPhantom;
      } else {
        channel_of_slot_[v][i] = num_channels_;
        sender_.push_back(in[i]);
        ++num_channels_;
      }
    }
  }
  if (n + num_channels_ > 63) {
    throw tca::InvalidArgumentError(
        "AcaSystem: node + channel bits exceed 63 (use a smaller system)",
        tca::ErrorCode::kDomainTooLarge);
  }
}

AcaState AcaSystem::initial(StateCode x) const {
  AcaState s = x;
  for (std::uint32_t c = 0; c < num_channels_; ++c) {
    const AcaState bit = (x >> sender_[c]) & 1u;
    s |= bit << (num_nodes() + c);
  }
  return s;
}

core::State AcaSystem::view_input(AcaState s, NodeId v,
                                  std::size_t slot) const {
  const std::uint32_t c = channel_of_slot_[v][slot];
  if (c == kDirect) return static_cast<core::State>((s >> v) & 1u);
  if (c == kPhantom) return 0;
  return static_cast<core::State>((s >> (num_nodes() + c)) & 1u);
}

AcaState AcaSystem::apply(AcaState s, const Action& action) const {
  if (action.kind == Action::Kind::kDeliver) {
    const std::uint32_t c = action.index;
    const AcaState bit = (s >> sender_[c]) & 1u;
    const AcaState pos = AcaState{1} << (num_nodes() + c);
    return bit != 0 ? (s | pos) : (s & ~pos);
  }
  const NodeId v = action.index;
  const auto in = a_.inputs(v);
  core::State buf[64];
  std::vector<core::State> heap;
  core::State* view = buf;
  if (in.size() > 64) {
    heap.resize(in.size());
    view = heap.data();
  }
  for (std::size_t i = 0; i < in.size(); ++i) view[i] = view_input(s, v, i);
  const core::State next =
      rules::eval(a_.rule(v), std::span<const core::State>(view, in.size()));
  const AcaState pos = AcaState{1} << v;
  return next != 0 ? (s | pos) : (s & ~pos);
}

bool AcaSystem::quiescent(AcaState s) const {
  for (std::uint32_t i = 0; i < num_actions(); ++i) {
    if (apply(s, action(i)) != s) return false;
  }
  return true;
}

AcaState AcaSystem::synchronous_macro_step(AcaState s) const {
  for (std::uint32_t c = 0; c < num_channels_; ++c) {
    s = apply(s, Action{Action::Kind::kDeliver, c});
  }
  // All computes read channels (frozen above) plus their OWN direct state.
  // Computing nodes one at a time is still a faithful synchronous step
  // because no compute changes any channel, and a node's own update reads
  // its own not-yet-recomputed state only if it runs before itself — which
  // it cannot. The only hazard would be node u reading node v's state
  // directly, and direct reads exist only for self inputs.
  for (NodeId v = 0; v < num_nodes(); ++v) {
    s = apply(s, Action{Action::Kind::kCompute, v});
  }
  return s;
}

AcaState AcaSystem::sequential_macro_update(AcaState s, NodeId v) const {
  for (std::size_t i = 0; i < channel_of_slot_[v].size(); ++i) {
    const std::uint32_t c = channel_of_slot_[v][i];
    if (c != kDirect && c != kPhantom) {
      s = apply(s, Action{Action::Kind::kDeliver, c});
    }
  }
  return apply(s, Action{Action::Kind::kCompute, v});
}

RandomRunResult run_random(const AcaSystem& sys, StateCode start,
                           std::uint64_t seed, std::uint64_t max_actions) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(0, sys.num_actions() - 1);
  AcaState s = sys.initial(start);
  RandomRunResult result;
  for (std::uint64_t t = 0; t < max_actions; ++t) {
    if (sys.quiescent(s)) {
      result.quiesced = true;
      result.actions = t;
      result.final_config = sys.config_of(s);
      return result;
    }
    s = sys.apply(s, sys.action(pick(rng)));
  }
  result.quiesced = sys.quiescent(s);
  result.actions = max_actions;
  result.final_config = sys.config_of(s);
  return result;
}

}  // namespace tca::aca
