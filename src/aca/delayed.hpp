#pragma once
// Stochastic bounded-asynchrony simulator (DESIGN.md S8; the paper's
// Section 4 notion of classical CA as "models of bounded asynchrony" and
// the physically-realistic "network delay" picture).
//
// A discrete-tick relaxation of the channel ACA: at every tick each node
// independently computes with probability `compute_rate`, and each channel
// independently delivers with probability `deliver_rate`. deliver_rate = 1
// with compute_rate = 1 is (up to the simultaneous write schedule) the
// classical synchronous CA; small deliver_rate models slow links — reads
// become stale, and the effective information speed drops below the
// r-cells-per-step bound the paper describes.
//
// All randomness flows from an explicit seed (deterministic replay).

#include <cstdint>
#include <random>

#include "aca/aca.hpp"

namespace tca::aca {

/// Tick-level configuration of the stochastic simulator.
struct DelayedParams {
  double compute_rate = 1.0;  ///< P(node computes at a tick)
  double deliver_rate = 1.0;  ///< P(channel delivers at a tick)
  std::uint64_t max_ticks = 1u << 20;
};

/// Outcome of a stochastic run.
struct DelayedRunResult {
  bool quiesced = false;
  std::uint64_t ticks = 0;           ///< ticks until quiescence (or cap)
  StateCode final_config = 0;
  std::uint64_t total_computes = 0;  ///< node-update events performed
  std::uint64_t total_delivers = 0;  ///< channel-delivery events performed
};

/// Runs the tick simulator from `start` until quiescence or the tick cap.
/// Within a tick, all enabled delivers fire first (reading the tick-start
/// node states), then all enabled computes fire simultaneously (reading
/// the post-delivery channels) — the standard synchronous product of the
/// random subsets.
[[nodiscard]] DelayedRunResult run_delayed(const AcaSystem& sys,
                                           StateCode start,
                                           const DelayedParams& params,
                                           std::uint64_t seed);

/// Convergence-time statistics over `trials` independent runs.
struct DelayedStats {
  std::uint64_t trials = 0;
  std::uint64_t quiesced = 0;
  double mean_ticks = 0.0;  ///< over quiesced runs
  double max_ticks = 0.0;
};

[[nodiscard]] DelayedStats measure_delayed(const AcaSystem& sys,
                                           StateCode start,
                                           const DelayedParams& params,
                                           std::uint64_t trials,
                                           std::uint64_t seed);

}  // namespace tca::aca
