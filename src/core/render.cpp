#include "core/render.hpp"

#include "core/synchronous_fast.hpp"

namespace tca::core {

std::string render_row(const Configuration& c, RenderStyle style) {
  std::string out(c.size(), style.zero);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c.get(i) != 0) out[i] = style.one;
  }
  return out;
}

std::string render_spacetime(const Automaton& a, const Configuration& start,
                             std::uint64_t steps, RenderStyle style) {
  std::string out;
  Configuration current = start;
  out += render_row(current, style);
  out += '\n';
  for (std::uint64_t t = 0; t < steps; ++t) {
    advance_synchronous_fast(a, current, 1);
    out += render_row(current, style);
    out += '\n';
  }
  return out;
}

std::string render_spacetime(Simulation& sim, std::uint64_t steps,
                             RenderStyle style) {
  std::string out;
  out += render_row(sim.configuration(), style);
  out += '\n';
  for (std::uint64_t t = 0; t < steps; ++t) {
    sim.step();
    out += render_row(sim.configuration(), style);
    out += '\n';
  }
  return out;
}

std::string render_grid(const TorusGrid& grid, RenderStyle style) {
  std::string out;
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      out += grid.get(r, c) != 0 ? style.one : style.zero;
    }
    out += '\n';
  }
  return out;
}

}  // namespace tca::core
