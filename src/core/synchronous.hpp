#pragma once
// Synchronous (classical, parallel) update engine (DESIGN.md S3).
//
// All nodes read the time-t configuration and write time t+1 — the paper's
// "classical, concurrent CA" where every node updates logically
// simultaneously. Implemented with double buffering: reads go only to the
// front buffer, writes only to the back buffer, so the threaded variant
// (threaded.hpp) is race-free by construction.

#include <cstdint>

#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::core {

/// One global parallel step: out := F(in). `out` must have in.size() cells;
/// `&in != &out` is required (double buffering).
void step_synchronous(const Automaton& a, const Configuration& in,
                      Configuration& out);

/// Convenience: returns F(in).
[[nodiscard]] Configuration step_synchronous(const Automaton& a,
                                             const Configuration& in);

/// Advances `c` by `steps` parallel steps in place (internally swaps two
/// buffers).
void advance_synchronous(const Automaton& a, Configuration& c,
                         std::uint64_t steps);

/// True if c is a fixed point of the parallel map (F(c) == c).
[[nodiscard]] bool is_fixed_point_synchronous(const Automaton& a,
                                              const Configuration& c);

}  // namespace tca::core
