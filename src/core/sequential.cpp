#include "core/sequential.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::core {

bool update_node(const Automaton& a, Configuration& c, NodeId v) {
  if (v >= a.size()) {
    throw tca::InvalidArgumentError("update_node: bad node id");
  }
  const State next = a.eval_node(v, c);
  if (next == c.get(v)) return false;
  c.set(v, next);
  return true;
}

std::size_t apply_sequence(const Automaton& a, Configuration& c,
                           std::span<const NodeId> order) {
  std::size_t changes = 0;
  for (NodeId v : order) {
    if (update_node(a, c, v)) ++changes;
  }
  // Sweep-granular metering: three relaxed adds per whole sweep, never
  // per node update, so the sequential hot loop stays untouched.
  static obs::Counter& sweeps = obs::counter("engine.sequential.sweeps");
  static obs::Counter& updates = obs::counter("engine.sequential.node_updates");
  static obs::Counter& flips = obs::counter("engine.sequential.flips");
  sweeps.add();
  updates.add(order.size());
  flips.add(changes);
  return changes;
}

std::optional<std::uint64_t> run_sweeps_to_fixed_point(
    const Automaton& a, Configuration& c, std::span<const NodeId> order,
    std::uint64_t max_sweeps) {
  for (std::uint64_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (apply_sequence(a, c, order) == 0) return sweep;
  }
  // One more probe: the state may have become fixed on the last sweep.
  if (apply_sequence(a, c, order) == 0) return max_sweeps;
  return std::nullopt;
}

std::optional<std::uint64_t> run_schedule_to_fixed_point(
    const Automaton& a, Configuration& c, Schedule& schedule,
    std::uint64_t max_updates) {
  if (is_fixed_point_sequential(a, c)) return 0;
  std::uint64_t quiet = 0;     // consecutive no-change updates
  std::uint64_t executed = 0;  // local tally, published once at exit
  std::uint64_t flipped = 0;
  static obs::Counter& updates = obs::counter("engine.sequential.node_updates");
  static obs::Counter& flips = obs::counter("engine.sequential.flips");
  const auto publish = [&] {
    updates.add(executed);
    flips.add(flipped);
  };
  for (std::uint64_t t = 0; t < max_updates; ++t) {
    ++executed;
    if (update_node(a, c, schedule.next())) {
      ++flipped;
      quiet = 0;
    } else if (++quiet >= a.size()) {
      // n consecutive no-ops is only conclusive if the schedule covered all
      // nodes; verify explicitly (cheap relative to the run).
      if (is_fixed_point_sequential(a, c)) {
        publish();
        return t + 1;
      }
      quiet = 0;
    }
  }
  publish();
  if (is_fixed_point_sequential(a, c)) return max_updates;
  return std::nullopt;
}

bool is_fixed_point_sequential(const Automaton& a, const Configuration& c) {
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (a.eval_node(static_cast<NodeId>(v), c) != c.get(v)) return false;
  }
  return true;
}

}  // namespace tca::core
