#pragma once
// Bit-sliced batch stepping: 64 configurations per machine word
// (DESIGN.md S3; docs/performance.md).
//
// The packed kernels (packed_kernels.hpp) vectorize WITHIN one
// configuration — 64 cells per ALU op. This engine slices ACROSS
// configurations instead: a BatchSlice stores one uint64 PLANE per cell,
// with bit j of plane i holding cell i's value in configuration j. One
// pass of a word-parallel rule circuit per cell (rules/circuit.hpp) then
// advances all 64 configurations at once — the dominant cost of exhaustive
// phase-space construction (2^n scalar steps) collapses by up to 64x, and
// the win compounds with the thread pool because each 1024-state chunk is
// just 16 batch steps.
//
// Layout and transposes:
//  * state codes (phase-space enumeration, n <= 64 cells) are loaded with
//    a 64x64 bit-matrix transpose — or, for 64-aligned consecutive code
//    ranges, with six constant lane patterns and broadcast planes, no
//    transpose at all;
//  * Configurations of ANY size load/store via per-64-cell-word block
//    transposes, so the engine also serves rings wider than 64 cells.
//
// Lanes past count() hold garbage; stores mask them, circuits may compute
// them freely.
//
// The engine supports HOMOGENEOUS automata whose rule compiles to a
// CircuitPlan at every arity present (rules/circuit.hpp). Everything else
// — non-homogeneous automata, asymmetric tables of large arity — is
// declined via batch_support(), and callers fall back to the scalar
// engine (counted by "engine.batch.fallback"; see phasespace's
// BatchCodeStepper). Results are bit-for-bit identical to
// step_synchronous / apply_sequence (tests/batch_engine_test.cpp).

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "rules/circuit.hpp"

namespace tca::core {

/// Configurations per batch (one per bit of a plane word).
inline constexpr unsigned kBatchLanes = 64;

/// Transposes the 64x64 bit matrix in place: bit j of row i swaps with
/// bit i of row j. Exposed for tests.
void transpose64(std::uint64_t m[64]);

/// A batch of up to 64 same-sized configurations in cell-plane layout.
class BatchSlice {
 public:
  explicit BatchSlice(std::size_t num_cells)
      : num_cells_(num_cells), planes_(num_cells, 0) {}

  [[nodiscard]] std::size_t num_cells() const noexcept { return num_cells_; }
  /// Active lanes (configurations); lanes >= count() are garbage.
  [[nodiscard]] unsigned count() const noexcept { return count_; }

  /// Lane j := the n-bit state code `first + j` (bit i = cell i). Requires
  /// num_cells() <= 64, count <= 64. 64-aligned `first` takes the
  /// pattern fast path (no transpose).
  void load_code_range(std::uint64_t first, unsigned count);

  /// Lane j := codes[j]; arbitrary codes, codes.size() <= 64.
  void load_codes(std::span<const std::uint64_t> codes);

  /// Lane j := configs[j] (each must have num_cells() cells).
  void load_configurations(std::span<const Configuration> configs);

  /// out[j] := lane j as a state code, j < count(). Requires
  /// num_cells() <= 64 and out.size() >= count().
  void store_codes(std::span<std::uint64_t> out) const;

  /// out[j] := lane j, j < count(). Each out[j] must have num_cells()
  /// cells (padding invariant restored).
  void store_configurations(std::span<Configuration> out) const;

  [[nodiscard]] std::span<std::uint64_t> planes() noexcept { return planes_; }
  [[nodiscard]] std::span<const std::uint64_t> planes() const noexcept {
    return planes_;
  }
  /// For raw plane writers (the stepper); count is the lanes-valid bound.
  void set_count(unsigned count);

 private:
  std::size_t num_cells_;
  unsigned count_ = 0;
  std::vector<std::uint64_t> planes_;
};

/// Whether the batch engine can step an automaton, and if not, why.
struct BatchSupport {
  bool ok = false;
  const char* reason = nullptr;  ///< set iff !ok; stable string
};

/// Probes `a` without throwing: homogeneous, and the rule compiles to a
/// circuit at every arity present.
[[nodiscard]] BatchSupport batch_support(const Automaton& a);

/// Compiled batch stepper: circuit plans are resolved once per automaton
/// (per arity present), then each step is one plane-circuit pass per cell.
/// Holds scratch buffers, so give each thread its own instance.
class BatchStepper {
 public:
  /// Throws InvalidArgumentError when batch_support(a) declines.
  explicit BatchStepper(const Automaton& a);

  /// out := F(in) lane-wise (one synchronous step of all lanes).
  void step(const BatchSlice& in, BatchSlice& out);

  /// One full sequential sweep of `order`, in place: every lane applies
  /// the same order, each update immediately visible to later ones —
  /// lane-exact with core::apply_sequence.
  void sweep(BatchSlice& slice, std::span<const NodeId> order);

 private:
  [[nodiscard]] std::uint64_t eval_cell(
      NodeId v, std::span<const std::uint64_t> planes);
  /// Lane-wise popcount of fanin_[0..m) (skipping `skip` if < m) into
  /// cnt_[0..used); returns `used`.
  unsigned count_planes(std::uint32_t m, std::uint32_t skip);
  [[nodiscard]] std::uint64_t compare_ge(std::uint32_t k,
                                         unsigned used) const;
  [[nodiscard]] std::uint64_t select_counts(std::uint64_t mask,
                                            unsigned used) const;

  const Automaton* a_;
  std::vector<rules::CircuitPlan> plans_;  ///< indexed by arity
  std::vector<std::uint64_t> fanin_;       ///< gathered input planes
  std::uint64_t cnt_[8] = {};              ///< adder-tree count planes
};

}  // namespace tca::core
