#pragma once
// Bit-sliced batch stepping: 64..512 configurations per step
// (DESIGN.md S3; docs/performance.md).
//
// The packed kernels (packed_kernels.hpp) vectorize WITHIN one
// configuration — 64 cells per ALU op. This engine slices ACROSS
// configurations instead: a BatchSlice stores one W-word PLANE per cell
// (W = lane_words()), with bit j of word t of plane i holding cell i's
// value in configuration 64t + j. One pass of a word-parallel rule
// circuit per cell (rules/circuit.hpp, evaluated word-generically by
// rules/circuit_eval.hpp) then advances all 64*W configurations at once —
// the dominant cost of exhaustive phase-space construction (2^n scalar
// steps) collapses by up to 64*W, and the win compounds with the thread
// pool because each 1024-state chunk is a handful of batch steps.
//
// Widths are ISA tiers behind runtime dispatch (core/batch_isa.hpp):
// W = 1 is the portable scalar bit-slice, W = 4 is AVX2/NEON (256 lanes),
// W = 8 is AVX-512 (512 lanes). make_wide_stepper() returns the widest
// tier the host supports (overridable via TCA_BATCH_ISA); every tier is
// bit-identical to the scalar engine (tests/simd_kernels_test.cpp).
//
// Layout and transposes:
//  * state codes (phase-space enumeration, n <= 64 cells) are loaded with
//    per-64-lane-block 64x64 bit-matrix transposes — or, for 64-aligned
//    consecutive code ranges, with six constant lane patterns and
//    broadcast planes, no transpose at all;
//  * Configurations of ANY size load/store via per-64-cell-word,
//    per-64-lane-block transposes, so the engine also serves rings wider
//    than 64 cells;
//  * transpose_wide() is the full 64W x 64W generalization of
//    transpose64, exposed for the wide round-trip tests.
//
// Lanes past count() hold garbage; stores mask them, circuits may compute
// them freely.
//
// The engine supports HOMOGENEOUS automata whose rule compiles to a
// CircuitPlan at every arity present (rules/circuit.hpp). Everything else
// — non-homogeneous automata, asymmetric tables of large arity — is
// declined via batch_support(), and callers fall back to the scalar
// engine (counted by "engine.batch.fallback"; see phasespace's
// BatchCodeStepper). Results are bit-for-bit identical to
// step_synchronous / apply_sequence (tests/batch_engine_test.cpp).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/batch_isa.hpp"
#include "core/configuration.hpp"
#include "rules/circuit.hpp"
#include "rules/circuit_eval.hpp"

namespace tca::core {

/// Configurations per plane word (one per bit).
inline constexpr unsigned kBatchLanes = 64;

/// Transposes the 64x64 bit matrix in place: bit j of row i swaps with
/// bit i of row j. Exposed for tests.
void transpose64(std::uint64_t m[64]);

/// Transposes a (64*W)x(64*W) bit matrix in place, stored row-major with
/// W = lane_words uint64 words per row (bit c of row r lives in word
/// c/64, bit c%64 of row r — the same LSB-first convention as
/// transpose64, which is the W = 1 case). Used by the wide engines'
/// round-trip tests; the hot paths use per-block transposes instead.
void transpose_wide(std::uint64_t* m, unsigned lane_words);

/// A batch of up to 64 * lane_words same-sized configurations in
/// cell-plane layout: plane i occupies words [i*W, (i+1)*W) of planes().
class BatchSlice {
 public:
  /// `lane_words` is the plane width W (1 for the scalar engine, 4/8 for
  /// the SIMD tiers — see core/batch_isa.hpp).
  explicit BatchSlice(std::size_t num_cells, unsigned lane_words = 1);

  [[nodiscard]] std::size_t num_cells() const noexcept { return num_cells_; }
  /// Plane width W in uint64 words.
  [[nodiscard]] unsigned lane_words() const noexcept { return lane_words_; }
  /// Maximum lanes (configurations): 64 * lane_words().
  [[nodiscard]] unsigned capacity() const noexcept {
    return kBatchLanes * lane_words_;
  }
  /// Active lanes (configurations); lanes >= count() are garbage.
  [[nodiscard]] unsigned count() const noexcept { return count_; }

  /// Lane j := the n-bit state code `first + j` (bit i = cell i). Requires
  /// num_cells() <= 64, count <= capacity(). 64-aligned block bases take
  /// the pattern fast path (no transpose).
  void load_code_range(std::uint64_t first, unsigned count);

  /// Lane j := codes[j]; arbitrary codes, codes.size() <= capacity().
  /// Unused lanes of the ragged top block are zero-padded.
  void load_codes(std::span<const std::uint64_t> codes);

  /// Lane j := configs[j] (each must have num_cells() cells).
  void load_configurations(std::span<const Configuration> configs);

  /// out[j] := lane j as a state code, j < count(). Requires
  /// num_cells() <= 64 and out.size() >= count().
  void store_codes(std::span<std::uint64_t> out) const;

  /// out[j] := lane j, j < count(). Each out[j] must have num_cells()
  /// cells (padding invariant restored).
  void store_configurations(std::span<Configuration> out) const;

  [[nodiscard]] std::span<std::uint64_t> planes() noexcept { return planes_; }
  [[nodiscard]] std::span<const std::uint64_t> planes() const noexcept {
    return planes_;
  }
  /// For raw plane writers (the steppers); count is the lanes-valid bound.
  void set_count(unsigned count);

 private:
  std::size_t num_cells_;
  unsigned lane_words_;
  unsigned count_ = 0;
  std::vector<std::uint64_t> planes_;
};

/// Whether the batch engine can step an automaton, and if not, why.
struct BatchSupport {
  bool ok = false;
  const char* reason = nullptr;  ///< set iff !ok; stable string
};

/// Probes `a` without throwing: homogeneous, and the rule compiles to a
/// circuit at every arity present. One answer for every tier — the wide
/// kernels evaluate the same circuit plans.
[[nodiscard]] BatchSupport batch_support(const Automaton& a);

/// Compiled 64-lane scalar batch stepper: circuit plans are resolved once
/// per automaton (per arity present), then each step is one plane-circuit
/// pass per cell. Holds scratch buffers, so give each thread its own
/// instance. This is the W = 1 reference the SIMD tiers are differentially
/// tested against; new callers should prefer make_wide_stepper().
class BatchStepper {
 public:
  /// Throws InvalidArgumentError when batch_support(a) declines.
  explicit BatchStepper(const Automaton& a);

  /// out := F(in) lane-wise (one synchronous step of all lanes). Both
  /// slices must have lane_words() == 1.
  void step(const BatchSlice& in, BatchSlice& out);

  /// One full sequential sweep of `order`, in place: every lane applies
  /// the same order, each update immediately visible to later ones —
  /// lane-exact with core::apply_sequence.
  void sweep(BatchSlice& slice, std::span<const NodeId> order);

 private:
  [[nodiscard]] std::uint64_t eval_cell(
      NodeId v, std::span<const std::uint64_t> planes);

  const Automaton* a_;
  std::vector<rules::CircuitPlan> plans_;  ///< indexed by arity
  std::vector<std::uint64_t> fanin_;       ///< gathered input planes
  rules::PlanEvaluator<std::uint64_t> eval_;
};

/// An ISA-tier batch stepper: the same circuits as BatchStepper evaluated
/// over W-word planes (64*W lanes per step). Instances are created by
/// make_wide_stepper() from per-ISA translation units; hold scratch, so
/// one instance per thread. Slices passed in must match lane_words().
class WideStepper {
 public:
  virtual ~WideStepper() = default;

  [[nodiscard]] virtual BatchIsa isa() const noexcept = 0;
  [[nodiscard]] virtual unsigned lane_words() const noexcept = 0;

  /// out := F(in) lane-wise (one synchronous step of all lanes).
  virtual void step(const BatchSlice& in, BatchSlice& out) = 0;

  /// One full sequential sweep of `order`, in place, lane-exact with
  /// core::apply_sequence.
  virtual void sweep(BatchSlice& slice, std::span<const NodeId> order) = 0;

  /// succ[j] := F(first + j) for j in [0, count) — the full
  /// load/step/store pipeline over state codes (requires <= 64 cells),
  /// with the transposes vectorized inside the tier. Ragged final batches
  /// are masked on store.
  virtual void step_code_range(std::uint64_t first, std::size_t count,
                               std::uint64_t* succ) = 0;

  /// succ[j] := the one-full-sweep image of code first + j under `order`
  /// (sweep-mode analogue of step_code_range).
  virtual void sweep_code_range(std::uint64_t first, std::size_t count,
                                std::span<const NodeId> order,
                                std::uint64_t* succ) = 0;
};

/// Stepper for the widest tier the host supports, honoring the
/// TCA_BATCH_ISA override (core/batch_isa.hpp). Throws
/// InvalidArgumentError when batch_support(a) declines.
[[nodiscard]] std::unique_ptr<WideStepper> make_wide_stepper(
    const Automaton& a);

/// Stepper for one specific tier (differential tests, the ablation
/// bench). Throws InvalidArgumentError when the tier is unavailable on
/// this host/build or batch_support(a) declines.
[[nodiscard]] std::unique_ptr<WideStepper> make_wide_stepper(
    const Automaton& a, BatchIsa isa);

}  // namespace tca::core
