#pragma once
// High-level simulation facade (DESIGN.md S3).
//
// Bundles an automaton, a configuration, and an update discipline behind
// one stepping interface with observer hooks — the convenience layer the
// examples and downstream users drive, so they never hand-roll the
// double-buffer / sweep / block plumbing.
//
// One Simulation::step() is one MACRO step: a full parallel update, one
// full sweep of the order, or one block pass — so "time" is comparable
// across disciplines the way the paper compares them.

#include <cstdint>
#include <functional>
#include <optional>
#include <variant>
#include <vector>

#include "core/automaton.hpp"
#include "core/block_sequential.hpp"
#include "core/configuration.hpp"

namespace tca::core {

/// Update disciplines selectable at construction.
struct SynchronousScheme {
  bool monomorphized = true;  ///< use the hoisted-dispatch engine
};
struct SequentialScheme {
  std::vector<NodeId> order;  ///< one sweep per step
};
struct BlockSequentialScheme {
  std::vector<std::vector<NodeId>> blocks;
};

using UpdateScheme =
    std::variant<SynchronousScheme, SequentialScheme, BlockSequentialScheme>;

/// Automaton + configuration + update discipline with observer hooks.
class Simulation {
 public:
  /// Observer invoked after every macro step with (time, configuration).
  using Observer = std::function<void(std::uint64_t, const Configuration&)>;

  Simulation(Automaton automaton, Configuration initial, UpdateScheme scheme);

  [[nodiscard]] const Automaton& automaton() const noexcept { return a_; }
  [[nodiscard]] const Configuration& configuration() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t time() const noexcept { return time_; }

  /// Fraction of cells in state 1.
  [[nodiscard]] double density() const;

  /// Registers an observer (kept for the simulation's lifetime).
  void observe(Observer observer) { observers_.push_back(std::move(observer)); }

  /// One macro step. Returns the number of cells that changed.
  std::size_t step();

  /// `steps` macro steps.
  void run(std::uint64_t steps);

  /// Steps until a fixed point of the AUTOMATON is reached (not merely a
  /// zero-change macro step), or until `max_steps`. Returns the number of
  /// macro steps taken on success.
  std::optional<std::uint64_t> run_to_fixed_point(std::uint64_t max_steps);

  /// Replaces the configuration and resets time to zero.
  void reset(Configuration initial);

 private:
  Automaton a_;
  Configuration config_;
  Configuration back_;  // scratch for synchronous stepping
  UpdateScheme scheme_;
  std::optional<BlockOrder> block_order_;  // materialized for block scheme
  std::uint64_t time_ = 0;
  std::vector<Observer> observers_;
};

}  // namespace tca::core
