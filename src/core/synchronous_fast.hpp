#pragma once
// Monomorphized synchronous engine (DESIGN.md decision 1).
//
// The generic engine (synchronous.hpp) resolves the rule variant PER CELL
// (a std::visit inside eval_node). For homogeneous automata the variant
// can be resolved ONCE per step and the cell loop runs with the concrete
// rule type, letting the compiler inline the rule body. The
// `ablation_dispatch` bench quantifies the difference; tests verify
// bit-for-bit equivalence with the generic engine.

#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::core {

/// out := F(in) with the rule variant hoisted out of the cell loop.
/// Falls back to the per-cell path for non-homogeneous automata.
/// Identical results to step_synchronous.
void step_synchronous_fast(const Automaton& a, const Configuration& in,
                           Configuration& out);

/// Advances `c` by `steps` using the monomorphized step.
void advance_synchronous_fast(const Automaton& a, Configuration& c,
                              std::uint64_t steps);

}  // namespace tca::core
