#pragma once
// Sequential CA (SCA) engine (DESIGN.md S3).
//
// Nodes update ONE AT A TIME, in place: the update of node v immediately
// becomes visible to every later update. A "sequence" is any (finite here,
// conceptually infinite) list of node indices — not necessarily a
// permutation (Lemma 1's remark). A "sweep" applies a permutation once.
//
// The paper's central objects: the same automaton object is interpreted
// either synchronously (synchronous.hpp) or sequentially (this engine), and
// the phase spaces are then compared.

#include <cstdint>
#include <optional>
#include <span>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "core/schedule.hpp"

namespace tca::core {

/// Updates node v in place. Returns true iff the state changed.
bool update_node(const Automaton& a, Configuration& c, NodeId v);

/// Applies updates for each node in `order` (one pass). Returns the number
/// of state changes.
std::size_t apply_sequence(const Automaton& a, Configuration& c,
                           std::span<const NodeId> order);

/// Repeats whole sweeps of the permutation `order` until a sweep changes
/// nothing (a fixed point of the CA — note a zero-change sweep implies c is
/// a fixed point of the full automaton because every node was tried), or
/// until `max_sweeps` is exhausted. Returns the number of sweeps performed
/// if a fixed point was reached, std::nullopt otherwise.
std::optional<std::uint64_t> run_sweeps_to_fixed_point(
    const Automaton& a, Configuration& c, std::span<const NodeId> order,
    std::uint64_t max_sweeps);

/// Draws node indices from `schedule` and applies them until the
/// configuration is a fixed point of the automaton (checked every
/// `check_interval` updates and on every change), or until `max_updates`.
/// Returns the number of individual node updates if a fixed point was
/// reached.
std::optional<std::uint64_t> run_schedule_to_fixed_point(
    const Automaton& a, Configuration& c, Schedule& schedule,
    std::uint64_t max_updates);

/// True if no single node update can change c (c is a fixed point for every
/// sequential order AND for the synchronous map — these coincide).
[[nodiscard]] bool is_fixed_point_sequential(const Automaton& a,
                                             const Configuration& c);

}  // namespace tca::core
