#include "core/packed2d.hpp"

#include <bit>
#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::core {
namespace {

/// out[c] = in[(c - 1 + cols) mod cols]  (west neighbor column).
void row_shift_west(const std::uint64_t* in, std::uint64_t* out,
                    std::size_t cols, std::size_t words) {
  std::uint64_t carry = (in[(cols - 1) >> 6] >> ((cols - 1) & 63)) & 1u;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t word = in[w];
    out[w] = (word << 1) | carry;
    carry = word >> 63;
  }
  const std::size_t rem = cols & 63;
  if (rem != 0) out[words - 1] &= (std::uint64_t{1} << rem) - 1;
}

/// out[c] = in[(c + 1) mod cols]  (east neighbor column).
void row_shift_east(const std::uint64_t* in, std::uint64_t* out,
                    std::size_t cols, std::size_t words) {
  const std::uint64_t wrap = in[0] & 1u;
  for (std::size_t w = 0; w + 1 < words; ++w) {
    out[w] = (in[w] >> 1) | (in[w + 1] << 63);
  }
  out[words - 1] = in[words - 1] >> 1;
  const std::size_t top_word = (cols - 1) >> 6;
  const std::size_t top_bit = (cols - 1) & 63;
  out[top_word] =
      (out[top_word] & ~(std::uint64_t{1} << top_bit)) | (wrap << top_bit);
}

}  // namespace

TorusGrid::TorusGrid(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(rows * words_per_row_, 0) {
  if (rows < 1 || cols < 1) {
    throw tca::InvalidArgumentError("TorusGrid: empty grid");
  }
}

TorusGrid TorusGrid::from_configuration(const Configuration& c,
                                        std::size_t rows, std::size_t cols) {
  if (c.size() != rows * cols) {
    throw tca::InvalidArgumentError(
        "TorusGrid: configuration size mismatch",
        tca::ErrorCode::kSizeMismatch);
  }
  TorusGrid g(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t col = 0; col < cols; ++col) {
      g.set(r, col, c.get(r * cols + col));
    }
  }
  return g;
}

Configuration TorusGrid::to_configuration() const {
  Configuration c(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t col = 0; col < cols_; ++col) {
      c.set(r * cols_ + col, get(r, col));
    }
  }
  return c;
}

void TorusGrid::mask_padding() noexcept {
  const std::size_t rem = cols_ & 63;
  if (rem == 0) return;
  const std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
  for (std::size_t r = 0; r < rows_; ++r) {
    words_[r * words_per_row_ + words_per_row_ - 1] &= mask;
  }
}

std::size_t TorusGrid::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

void step_outer_totalistic_packed(const rules::OuterTotalisticRule& rule,
                                  const TorusGrid& in, TorusGrid& out,
                                  Packed2dScratch& scratch) {
  const std::size_t rows = in.rows();
  const std::size_t cols = in.cols();
  const std::size_t words = in.words_per_row();
  if (out.rows() != rows || out.cols() != cols) {
    throw tca::InvalidArgumentError(
        "step_outer_totalistic_packed: size mismatch",
        tca::ErrorCode::kSizeMismatch);
  }
  if (&in == &out) {
    throw tca::InvalidArgumentError(
        "step_outer_totalistic_packed: in and out must differ");
  }
  if (rows < 3 || cols < 3) {
    throw tca::InvalidArgumentError(
        "step_outer_totalistic_packed: torus needs rows, cols >= 3");
  }
  if (rule.born.size() != 9 || rule.survive.size() != 9) {
    throw tca::InvalidArgumentError(
        "step_outer_totalistic_packed: Moore rules only (arity 9)");
  }

  // Whole-grid west/east shifted boards.
  for (std::size_t r = 0; r < rows; ++r) {
    row_shift_west(in.row(r), scratch.west.row(r), cols, words);
    row_shift_east(in.row(r), scratch.east.row(r), cols, words);
  }

  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t up = (r + rows - 1) % rows;
    const std::size_t down = (r + 1) % rows;
    const std::uint64_t* boards[8] = {
        scratch.west.row(up),   in.row(up),   scratch.east.row(up),
        scratch.west.row(r),                  scratch.east.row(r),
        scratch.west.row(down), in.row(down), scratch.east.row(down),
    };
    const std::uint64_t* self = in.row(r);
    std::uint64_t* dst = out.row(r);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t n0 = boards[0][w], n1 = boards[1][w],
                          n2 = boards[2][w], n3 = boards[3][w],
                          n4 = boards[4][w], n5 = boards[5][w],
                          n6 = boards[6][w], n7 = boards[7][w];
      // Bit-sliced count of the eight neighbor bits (b3 b2 b1 b0).
      const std::uint64_t s1 = n0 ^ n1 ^ n2;
      const std::uint64_t c1 = (n0 & n1) | (n1 & n2) | (n0 & n2);
      const std::uint64_t s2 = n3 ^ n4 ^ n5;
      const std::uint64_t c2 = (n3 & n4) | (n4 & n5) | (n3 & n5);
      const std::uint64_t s3 = n6 ^ n7;
      const std::uint64_t c3 = n6 & n7;
      const std::uint64_t b0 = s1 ^ s2 ^ s3;
      const std::uint64_t d1 = (s1 & s2) | (s2 & s3) | (s1 & s3);
      const std::uint64_t e1 = c1 ^ c2 ^ c3;
      const std::uint64_t f2 = (c1 & c2) | (c2 & c3) | (c1 & c3);
      const std::uint64_t b1 = e1 ^ d1;
      const std::uint64_t g2 = e1 & d1;
      const std::uint64_t b2 = f2 ^ g2;
      const std::uint64_t b3 = f2 & g2;

      std::uint64_t born_mask = 0;
      std::uint64_t survive_mask = 0;
      for (std::uint32_t k = 0; k <= 8; ++k) {
        if (rule.born[k] == 0 && rule.survive[k] == 0) continue;
        const std::uint64_t eq =
            ((k & 1u) ? b0 : ~b0) & ((k & 2u) ? b1 : ~b1) &
            ((k & 4u) ? b2 : ~b2) & ((k & 8u) ? b3 : ~b3);
        if (rule.born[k] != 0) born_mask |= eq;
        if (rule.survive[k] != 0) survive_mask |= eq;
      }
      dst[w] = (~self[w] & born_mask) | (self[w] & survive_mask);
    }
  }
  out.mask_padding();
}

void step_life_packed(const TorusGrid& in, TorusGrid& out,
                      Packed2dScratch& scratch) {
  static const rules::OuterTotalisticRule kLife = rules::game_of_life();
  step_outer_totalistic_packed(kLife, in, out, scratch);
}

}  // namespace tca::core
