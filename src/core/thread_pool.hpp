#pragma once
// Minimal fork-join thread pool (DESIGN.md S3, decision 3).
//
// The synchronous CA step is a textbook data-parallel loop: every cell's
// next state depends only on the front buffer, so the cell range can be
// split across worker threads with no synchronization beyond the join
// barrier. Workers are created once and reused every step (creating
// threads per step would dominate at CA step granularity).
//
// Race-freedom contract: chunk functions receive disjoint index ranges and
// must write only to locations owned by their range. threaded.cpp
// guarantees this by aligning chunk boundaries to 64-cell words of the
// bit-packed configuration.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tca::core {

/// Fixed-size pool executing half-open index ranges in parallel.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). `ThreadPool(0)` uses
  /// hardware_concurrency().
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size() + 1);  // + calling thread
  }

  /// Splits [begin, end) into size() contiguous chunks whose boundaries are
  /// multiples of `align`, and runs `chunk_fn(chunk_begin, chunk_end)` on
  /// each — workers take one chunk each, the calling thread takes the
  /// first. Returns after all chunks complete (fork-join). Not reentrant.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t align,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;  // one slot per worker

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stopping_ = false;
};

}  // namespace tca::core
