#pragma once
// Minimal fork-join thread pool (DESIGN.md S3, decision 3).
//
// The synchronous CA step is a textbook data-parallel loop: every cell's
// next state depends only on the front buffer, so the cell range can be
// split across worker threads with no synchronization beyond the join
// barrier. Workers are created once and reused every step (creating
// threads per step would dominate at CA step granularity).
//
// Race-freedom contract: chunk functions receive disjoint index ranges and
// must write only to locations owned by their range. threaded.cpp
// guarantees this by aligning chunk boundaries to 64-cell words of the
// bit-packed configuration.
//
// Lock discipline (docs/static-analysis.md): the per-run descriptor is
// TCA_GUARDED_BY(mutex_) and every participant — workers waking from the
// condition variable AND the posting thread — copies it into a local Run
// snapshot under the lock before touching the range. The first chunk
// exception is latched under its own error_mutex_ (never mutex_, so a
// throwing chunk cannot deadlock against the dispatch path) and is both
// written and consumed under that lock. Clang's `-Wthread-safety` checks
// all of this at compile time; the `tsan` preset re-checks it at runtime.
//
// Fault tolerance (docs/robustness.md):
//  * an exception thrown inside any chunk is captured, the remaining
//    chunks are abandoned, every participant drains to the join barrier,
//    and the FIRST exception is rethrown on the calling thread — never
//    std::terminate, never a deadlocked join;
//  * the cancellable overload polls a runtime::RunControl between chunks
//    and returns StopReason::kCancelled instead of finishing the range
//    (already-executed chunks keep their writes; the input is untouched);
//  * if worker threads cannot be spawned (resource exhaustion, or the
//    fault plan's fail_thread_spawn knob), construction degrades to a
//    serial pool instead of throwing, bumping the
//    "thread_pool.spawn_degraded" counter and emitting a structured
//    warning event (obs/log.hpp) so tests can assert it happened.
//
// Observability (docs/observability.md): the pool meters dispatched runs
// ("thread_pool.parallel_for"), executed chunks and their duration
// ("thread_pool.chunks", "thread_pool.chunk_us"), queue wait between a
// run being posted and a worker picking it up
// ("thread_pool.dispatch_wait_us"), and the current width gauge.

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "runtime/budget.hpp"

namespace tca::core {

/// Fixed-size pool executing half-open index ranges in parallel.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the last
  /// participant). `ThreadPool(0)` uses hardware_concurrency(). Spawn
  /// failure degrades to fewer workers (possibly serial) with a warning.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size() + 1);  // + calling thread
  }

  /// Splits [begin, end) into contiguous chunks whose boundaries are
  /// multiples of `align` and runs `chunk_fn(chunk_begin, chunk_end)` on
  /// each; participants (workers + the calling thread) take chunks from a
  /// shared cursor until the range is covered. Returns after the join
  /// barrier. Rethrows the first chunk exception. Not reentrant.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t align,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Same, but polls `control` between chunks (when non-null): once the
  /// control reports a stop, no further chunk starts and the call returns
  /// that StopReason. Chunks already executed keep their (disjoint)
  /// writes, so the output range is partially filled but never torn.
  /// Chunk exceptions still rethrow after the barrier.
  runtime::StopReason parallel_for(
      std::size_t begin, std::size_t end, std::size_t align,
      const std::function<void(std::size_t, std::size_t)>& fn,
      runtime::RunControl* control);

 private:
  /// How many chunks each participant gets on average; > 1 so cancellation
  /// and budget checks fire between chunks, not once per whole range.
  static constexpr std::size_t kChunksPerThread = 4;

  /// Immutable per-run descriptor. The authoritative copy (run_) lives
  /// under mutex_; every participant snapshots it while holding the lock
  /// and then works off its private copy, so no per-run field is ever
  /// read outside the mutex.
  struct Run {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    runtime::RunControl* control = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
  };

  void worker_loop() TCA_EXCLUDES(mutex_);
  void drain(const Run& run) TCA_EXCLUDES(mutex_, error_mutex_);
  void latch_error(std::exception_ptr error) TCA_EXCLUDES(error_mutex_);
  [[nodiscard]] std::exception_ptr take_error() TCA_EXCLUDES(error_mutex_);

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;

  // Per-run state, written under mutex_ before workers are released.
  Run run_ TCA_GUARDED_BY(mutex_);
  /// When the current run was posted (for the dispatch-wait histogram).
  std::chrono::steady_clock::time_point run_posted_ TCA_GUARDED_BY(mutex_);
  std::uint64_t generation_ TCA_GUARDED_BY(mutex_) = 0;
  unsigned pending_ TCA_GUARDED_BY(mutex_) = 0;
  bool stopping_ TCA_GUARDED_BY(mutex_) = false;

  // Cross-run cursors: atomics shared by all participants of one run.
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<bool> abandon_{false};

  Mutex error_mutex_;
  std::exception_ptr first_error_ TCA_GUARDED_BY(error_mutex_);
};

}  // namespace tca::core
