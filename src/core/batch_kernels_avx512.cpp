// AVX-512 tier: WideWord<8> (512 lanes), compiled with -mavx512f via
// set_source_files_properties in src/core/CMakeLists.txt. Only reached
// after batch_isa.cpp confirms the host executes AVX-512F — see the ODR
// note in batch_kernels_impl.hpp.

#include "core/batch_kernels_impl.hpp"

namespace tca::core::detail {

std::unique_ptr<WideStepper> make_wide_stepper_avx512(const Automaton& a) {
  return make_wide_impl<8>(a, BatchIsa::kAvx512);
}

}  // namespace tca::core::detail
