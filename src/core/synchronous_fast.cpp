#include "core/synchronous_fast.hpp"

#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

#include "core/synchronous.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::core {
namespace {

// The cell loop, monomorphic in the concrete rule type: the eval call is a
// direct (inlinable) function call, not a variant visit.
template <typename ConcreteRule>
void step_loop(const Automaton& a, const ConcreteRule& rule,
               const Configuration& in, Configuration& out) {
  State stack_buf[64];
  // High-arity gather buffer sized once for the whole step, not per cell.
  std::vector<State> heap_buf;
  if (a.max_arity() > 64) heap_buf.resize(a.max_arity());
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto slots = a.inputs(static_cast<NodeId>(v));
    State* buf = slots.size() > 64 ? heap_buf.data() : stack_buf;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      buf[i] = slots[i] == kConstZero ? State{0} : in.get(slots[i]);
    }
    out.set(v, rules::eval(rule,
                           std::span<const State>(buf, slots.size())));
  }
}

}  // namespace

void step_synchronous_fast(const Automaton& a, const Configuration& in,
                           Configuration& out) {
  if (in.size() != a.size() || out.size() != a.size()) {
    throw tca::InvalidArgumentError(
        "step_synchronous_fast: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  if (&in == &out) {
    throw tca::InvalidArgumentError(
        "step_synchronous_fast: in and out must differ");
  }
  if (!a.homogeneous()) {
    step_synchronous(a, in, out);
    return;
  }
  static obs::Counter& steps = obs::counter("engine.synchronous_fast.steps");
  static obs::Counter& cells = obs::counter("engine.synchronous_fast.cells");
  steps.add();
  cells.add(a.size());
  std::visit([&](const auto& rule) { step_loop(a, rule, in, out); },
             a.rule(0));
}

void advance_synchronous_fast(const Automaton& a, Configuration& c,
                              std::uint64_t steps) {
  Configuration back(c.size());
  for (std::uint64_t t = 0; t < steps; ++t) {
    step_synchronous_fast(a, c, back);
    std::swap(c, back);
  }
}

}  // namespace tca::core
