#pragma once
// Word-parallel 2-D torus engine (DESIGN.md S3 extension).
//
// 2-D Moore-neighborhood CA (Game of Life and the whole outer-totalistic
// B/S family) on a torus, with each row bit-packed 64 cells per word. The
// live-neighbor count of all 64 cells in a word is computed simultaneously
// with a bit-sliced full-adder tree over the eight shifted neighbor
// boards, then the B/S tables are applied as boolean plane logic — the
// classic bitboard Life algorithm, cross-validated bit-for-bit against
// the generic graph engine (tests/packed2d_test.cpp).

#include <cstdint>
#include <vector>

#include "core/configuration.hpp"
#include "rules/rule.hpp"

namespace tca::core {

/// Bit-packed rows x cols torus of Boolean cells.
class TorusGrid {
 public:
  TorusGrid(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept {
    return words_per_row_;
  }

  [[nodiscard]] State get(std::size_t r, std::size_t c) const {
    return static_cast<State>(
        (words_[r * words_per_row_ + (c >> 6)] >> (c & 63)) & 1u);
  }
  void set(std::size_t r, std::size_t c, State value) {
    const std::uint64_t bit = std::uint64_t{1} << (c & 63);
    auto& word = words_[r * words_per_row_ + (c >> 6)];
    word = value != 0 ? (word | bit) : (word & ~bit);
  }

  /// Conversion from/to the flat row-major Configuration used by
  /// graph::grid2d automata (cell id = r * cols + c).
  static TorusGrid from_configuration(const Configuration& c,
                                      std::size_t rows, std::size_t cols);
  [[nodiscard]] Configuration to_configuration() const;

  [[nodiscard]] const std::uint64_t* row(std::size_t r) const {
    return words_.data() + r * words_per_row_;
  }
  [[nodiscard]] std::uint64_t* row(std::size_t r) {
    return words_.data() + r * words_per_row_;
  }

  /// Zeroes the unused high bits of each row's last word.
  void mask_padding() noexcept;

  [[nodiscard]] std::size_t popcount() const noexcept;

  friend bool operator==(const TorusGrid&, const TorusGrid&) = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> words_;
};

/// Reusable shifted-board storage for the 2-D kernels.
struct Packed2dScratch {
  TorusGrid west;
  TorusGrid east;
  explicit Packed2dScratch(std::size_t rows, std::size_t cols)
      : west(rows, cols), east(rows, cols) {}
};

/// One synchronous step of an outer-totalistic Moore-neighborhood rule on
/// the torus (requires rows >= 3 and cols >= 3; born/survive sized 9, i.e.
/// built with life_like(..., 8)).
void step_outer_totalistic_packed(const rules::OuterTotalisticRule& rule,
                                  const TorusGrid& in, TorusGrid& out,
                                  Packed2dScratch& scratch);

/// Game of Life (B3/S23) step.
void step_life_packed(const TorusGrid& in, TorusGrid& out,
                      Packed2dScratch& scratch);

}  // namespace tca::core
