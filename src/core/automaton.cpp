#include "core/automaton.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "runtime/error.hpp"

namespace tca::core {
namespace {

std::vector<std::vector<NodeId>> graph_inputs(const graph::Graph& g,
                                              Memory memory) {
  std::vector<std::vector<NodeId>> inputs(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& in = inputs[v];
    const auto nbrs = g.neighbors(v);
    in.reserve(nbrs.size() + 1);
    if (memory == Memory::kWith) in.push_back(v);
    in.insert(in.end(), nbrs.begin(), nbrs.end());
  }
  return inputs;
}

}  // namespace

Automaton Automaton::from_graph(const graph::Graph& g, Rule rule,
                                Memory memory) {
  Automaton a;
  a.inputs_ = graph_inputs(g, memory);
  a.rules_ = {std::move(rule)};
  a.memory_ = memory;
  a.finalize();
  return a;
}

Automaton Automaton::from_graph_per_node(const graph::Graph& g,
                                         std::vector<Rule> rules,
                                         Memory memory) {
  if (rules.size() != g.num_nodes()) {
    throw tca::InvalidArgumentError(
        "from_graph_per_node: need one rule per node");
  }
  Automaton a;
  a.inputs_ = graph_inputs(g, memory);
  a.rules_ = std::move(rules);
  a.memory_ = memory;
  a.finalize();
  return a;
}

Automaton Automaton::line(std::size_t n, std::uint32_t radius,
                          Boundary boundary, Rule rule, Memory memory) {
  if (n == 0) throw tca::InvalidArgumentError("line: n must be >= 1");
  if (radius == 0) throw tca::InvalidArgumentError("line: radius must be >= 1");
  if (boundary == Boundary::kRing && n < 2 * std::size_t{radius} + 1) {
    throw tca::InvalidArgumentError("line: ring needs n >= 2r+1");
  }
  Automaton a;
  a.inputs_.resize(n);
  const auto sn = static_cast<std::int64_t>(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto& in = a.inputs_[v];
    for (std::int64_t d = -static_cast<std::int64_t>(radius);
         d <= static_cast<std::int64_t>(radius); ++d) {
      if (d == 0 && memory == Memory::kWithout) continue;
      const std::int64_t raw = static_cast<std::int64_t>(v) + d;
      switch (boundary) {
        case Boundary::kRing:
          in.push_back(static_cast<NodeId>(((raw % sn) + sn) % sn));
          break;
        case Boundary::kFixedZero:
          in.push_back(raw < 0 || raw >= sn ? kConstZero
                                            : static_cast<NodeId>(raw));
          break;
        case Boundary::kClip:
          if (raw >= 0 && raw < sn) in.push_back(static_cast<NodeId>(raw));
          break;
      }
    }
  }
  a.rules_ = {std::move(rule)};
  a.memory_ = memory;
  a.finalize();
  return a;
}

void Automaton::finalize() {
  max_arity_ = 0;
  for (std::size_t v = 0; v < inputs_.size(); ++v) {
    const auto arity = static_cast<std::uint32_t>(inputs_[v].size());
    max_arity_ = std::max(max_arity_, arity);
    const Rule& r = rule(static_cast<NodeId>(v));
    const std::uint32_t fixed = rules::required_arity(r);
    if (fixed != 0 && fixed != arity) {
      throw tca::InvalidArgumentError(
          "Automaton: node " + std::to_string(v) + " has arity " +
          std::to_string(arity) + " but rule '" + rules::describe(r) +
          "' requires " + std::to_string(fixed));
    }
  }
}

State Automaton::eval_node(NodeId v, const Configuration& c) const {
  const auto in = inputs(v);
  // Small stack buffer covers every realistic neighborhood; fall back to
  // heap for very high-degree nodes (e.g. large complete graphs).
  State stack_buf[64];
  std::vector<State> heap_buf;
  State* buf = stack_buf;
  if (in.size() > 64) {
    heap_buf.resize(in.size());
    buf = heap_buf.data();
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    buf[i] = in[i] == kConstZero ? State{0} : c.get(in[i]);
  }
  return rules::eval(rule(v), std::span<const State>(buf, in.size()));
}

}  // namespace tca::core
