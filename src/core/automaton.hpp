#pragma once
// The cellular automaton object (DESIGN.md S3): Definition 2 of the paper —
// a cellular space (graph + fundamental neighborhood) plus a local update
// rule per node.
//
// An Automaton stores, for every node, an ORDERED list of input node ids.
// The order matters for asymmetric rules (TableRule / Wolfram codes): 1-D
// neighborhoods are ordered spatially left-to-right, with the node itself in
// the middle when the automaton has memory. Graph-derived neighborhoods put
// self first (if memory) followed by neighbors in ascending id order —
// sufficient for the symmetric rules the paper studies.
//
// "With memory" (the paper's default) means the node's own current state is
// one of the rule's inputs; "memoryless" means it is not.
//
// The sentinel input id `kConstZero` denotes a phantom cell frozen in the
// quiescent state 0; it implements fixed-zero boundary conditions on finite
// lines without special-casing the engines.

#include <cstdint>
#include <span>
#include <vector>

#include "core/configuration.hpp"
#include "graph/graph.hpp"
#include "rules/rule.hpp"

namespace tca::core {

using graph::NodeId;
using rules::Rule;

/// Whether a node's own state is an input to its update rule (Definition 2:
/// "CA with memory" vs "memoryless CA").
enum class Memory : std::uint8_t { kWith, kWithout };

/// Boundary handling for finite 1-D lines.
enum class Boundary : std::uint8_t {
  kRing,       ///< circular boundary conditions (the paper's finite case)
  kFixedZero,  ///< out-of-range cells read as the quiescent state 0
  kClip,       ///< out-of-range cells dropped (variable arity; symmetric
               ///< arity-generic rules only)
};

/// Phantom input id representing a cell frozen at state 0.
inline constexpr NodeId kConstZero = 0xFFFFFFFFu;

/// A concrete, finite cellular automaton: per-node ordered input lists plus
/// per-node rules (homogeneous CA share one rule).
class Automaton {
 public:
  Automaton() = default;

  /// CA over an arbitrary graph: inputs are self (if memory) then neighbors
  /// ascending. `rule` is shared by all nodes (homogeneous CA).
  static Automaton from_graph(const graph::Graph& g, Rule rule, Memory memory);

  /// Non-homogeneous CA over a graph: one rule per node (Section 4
  /// extension). rules.size() must equal g.num_nodes().
  static Automaton from_graph_per_node(const graph::Graph& g,
                                       std::vector<Rule> rules, Memory memory);

  /// 1-D CA of radius r on n cells, neighborhoods ordered left-to-right
  /// (node i's inputs are i-r, ..., i, ..., i+r; self omitted when
  /// memoryless). Requires n >= 2r+1 for kRing.
  static Automaton line(std::size_t n, std::uint32_t radius, Boundary boundary,
                        Rule rule, Memory memory);

  /// Number of cells.
  [[nodiscard]] std::size_t size() const noexcept { return inputs_.size(); }

  /// Ordered input list of node v (may contain kConstZero phantoms).
  [[nodiscard]] std::span<const NodeId> inputs(NodeId v) const {
    return inputs_.at(v);
  }

  /// The update rule of node v.
  [[nodiscard]] const Rule& rule(NodeId v) const {
    return rules_.size() == 1 ? rules_[0] : rules_.at(v);
  }

  /// True if all nodes share one rule object.
  [[nodiscard]] bool homogeneous() const noexcept { return rules_.size() == 1; }

  [[nodiscard]] Memory memory() const noexcept { return memory_; }

  /// Largest input-list length over all nodes.
  [[nodiscard]] std::uint32_t max_arity() const noexcept { return max_arity_; }

  /// Computes node v's next state from configuration `c` (gather + eval).
  [[nodiscard]] State eval_node(NodeId v, const Configuration& c) const;

 private:
  void finalize();  // validates arities, computes max_arity_

  std::vector<std::vector<NodeId>> inputs_;
  std::vector<Rule> rules_;
  Memory memory_ = Memory::kWith;
  std::uint32_t max_arity_ = 0;
};

}  // namespace tca::core
