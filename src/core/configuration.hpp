#pragma once
// Global CA configurations (DESIGN.md S3).
//
// A Configuration is the global state of a Boolean cellular automaton: one
// bit per cell, packed 64 cells per word. Packing matters twice over:
// phase-space enumeration touches millions of configurations, and the
// word-parallel kernels (packed_kernels.hpp) update 64 cells per ALU op
// (see the `ablation_packing` bench).
//
// Invariant: unused high bits of the last word are zero, so whole-word
// equality, hashing and popcount need no masking.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.hpp"

namespace tca::core {

using rules::State;

/// Bit-packed vector of cell states.
class Configuration {
 public:
  /// All cells set to `fill` (default: the quiescent state 0).
  explicit Configuration(std::size_t num_cells = 0, State fill = 0);

  /// Parses "0101..."; throws std::invalid_argument on other characters.
  /// Character i becomes cell i.
  static Configuration from_string(std::string_view bits);

  /// First `num_cells` bits of `bits` (bit i = cell i). num_cells <= 64.
  static Configuration from_bits(std::uint64_t bits, std::size_t num_cells);

  /// Cells as a uint64 (bit i = cell i); requires size() <= 64.
  [[nodiscard]] std::uint64_t to_bits() const;

  [[nodiscard]] std::size_t size() const noexcept { return num_cells_; }

  [[nodiscard]] State get(std::size_t i) const {
    return static_cast<State>((words_[i >> 6] >> (i & 63)) & 1u);
  }

  void set(std::size_t i, State value) {
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (value != 0) {
      words_[i >> 6] |= bit;
    } else {
      words_[i >> 6] &= ~bit;
    }
  }

  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// Number of cells in state 1.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Sets every cell to `value`.
  void fill(State value);

  /// "0101..." (cell 0 first).
  [[nodiscard]] std::string to_string() const;

  /// Raw word storage for the packed kernels. words().size() ==
  /// ceil(size()/64); the invariant (zero padding bits) must be restored
  /// via mask_padding() after any whole-word writes.
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Zeroes the unused high bits of the last word.
  void mask_padding() noexcept;

  friend bool operator==(const Configuration&, const Configuration&) = default;

 private:
  std::size_t num_cells_ = 0;
  std::vector<std::uint64_t> words_;
};

/// 64-bit hash (FNV-1a over the packed words), for unordered containers and
/// trajectory cycle detection.
[[nodiscard]] std::uint64_t hash_value(const Configuration& c) noexcept;

struct ConfigurationHash {
  std::size_t operator()(const Configuration& c) const noexcept {
    return static_cast<std::size_t>(hash_value(c));
  }
};

}  // namespace tca::core
