#include "core/batch_kernels.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::core {
namespace {

/// Arity ceiling of the adder tree (8 count planes).
constexpr std::uint32_t kMaxBatchArity = 255;

/// kLanePattern[i] has bit j set iff bit i of the lane index j is set —
/// the planes of 64 consecutive codes starting at a 64-aligned base.
constexpr std::uint64_t kLanePattern[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

void require_lanes(std::size_t count) {
  if (count > kBatchLanes) {
    throw tca::InvalidArgumentError("BatchSlice: more than 64 lanes");
  }
}

void require_code_width(std::size_t num_cells) {
  if (num_cells > 64) {
    throw tca::InvalidArgumentError(
        "BatchSlice: state codes need <= 64 cells");
  }
}

}  // namespace

void transpose64(std::uint64_t m[64]) {
  // Recursive block swap (after Hacker's Delight 7-3, adjusted for
  // LSB-first columns): at each level j, entry (k, c+j) exchanges with
  // (k+j, c) for every row k and column c with bit j clear, so entry
  // (r, c) ends at (c, r).
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

void BatchSlice::set_count(unsigned count) {
  require_lanes(count);
  count_ = count;
}

void BatchSlice::load_code_range(std::uint64_t first, unsigned count) {
  require_code_width(num_cells_);
  require_lanes(count);
  count_ = count;
  if ((first & 63) == 0) {
    // Aligned range: the low six planes are fixed lane patterns, every
    // higher plane is a broadcast of the corresponding bit of `first`.
    const std::size_t low = num_cells_ < 6 ? num_cells_ : 6;
    for (std::size_t i = 0; i < low; ++i) planes_[i] = kLanePattern[i];
    for (std::size_t i = low; i < num_cells_; ++i) {
      planes_[i] = ((first >> i) & 1u) != 0 ? ~std::uint64_t{0} : 0;
    }
    return;
  }
  std::uint64_t codes[64] = {};
  for (unsigned j = 0; j < count; ++j) codes[j] = first + j;
  load_codes(std::span<const std::uint64_t>(codes, count));
}

void BatchSlice::load_codes(std::span<const std::uint64_t> codes) {
  require_code_width(num_cells_);
  require_lanes(codes.size());
  count_ = static_cast<unsigned>(codes.size());
  std::uint64_t m[64] = {};
  for (std::size_t j = 0; j < codes.size(); ++j) m[j] = codes[j];
  transpose64(m);
  for (std::size_t i = 0; i < num_cells_; ++i) planes_[i] = m[i];
}

void BatchSlice::store_codes(std::span<std::uint64_t> out) const {
  require_code_width(num_cells_);
  if (out.size() < count_) {
    throw tca::InvalidArgumentError("BatchSlice::store_codes: output short",
                                    tca::ErrorCode::kSizeMismatch);
  }
  std::uint64_t m[64] = {};
  for (std::size_t i = 0; i < num_cells_; ++i) m[i] = planes_[i];
  transpose64(m);
  for (unsigned j = 0; j < count_; ++j) out[j] = m[j];
}

void BatchSlice::load_configurations(std::span<const Configuration> configs) {
  require_lanes(configs.size());
  count_ = static_cast<unsigned>(configs.size());
  for (const Configuration& c : configs) {
    if (c.size() != num_cells_) {
      throw tca::InvalidArgumentError(
          "BatchSlice::load_configurations: size mismatch",
          tca::ErrorCode::kSizeMismatch);
    }
  }
  const std::size_t num_words = (num_cells_ + 63) >> 6;
  for (std::size_t w = 0; w < num_words; ++w) {
    std::uint64_t m[64] = {};
    for (std::size_t j = 0; j < configs.size(); ++j) {
      m[j] = configs[j].words()[w];
    }
    transpose64(m);
    const std::size_t cells = std::min<std::size_t>(64, num_cells_ - w * 64);
    for (std::size_t i = 0; i < cells; ++i) planes_[w * 64 + i] = m[i];
  }
}

void BatchSlice::store_configurations(std::span<Configuration> out) const {
  if (out.size() < count_) {
    throw tca::InvalidArgumentError(
        "BatchSlice::store_configurations: output short",
        tca::ErrorCode::kSizeMismatch);
  }
  for (unsigned j = 0; j < count_; ++j) {
    if (out[j].size() != num_cells_) {
      throw tca::InvalidArgumentError(
          "BatchSlice::store_configurations: size mismatch",
          tca::ErrorCode::kSizeMismatch);
    }
  }
  const std::size_t num_words = (num_cells_ + 63) >> 6;
  for (std::size_t w = 0; w < num_words; ++w) {
    std::uint64_t m[64] = {};
    const std::size_t cells = std::min<std::size_t>(64, num_cells_ - w * 64);
    for (std::size_t i = 0; i < cells; ++i) m[i] = planes_[w * 64 + i];
    transpose64(m);
    for (unsigned j = 0; j < count_; ++j) out[j].words()[w] = m[j];
  }
  for (unsigned j = 0; j < count_; ++j) out[j].mask_padding();
}

BatchSupport batch_support(const Automaton& a) {
  if (a.size() == 0) return {false, "empty automaton"};
  if (!a.homogeneous()) return {false, "non-homogeneous automaton"};
  std::vector<char> seen(a.max_arity() + 1, 0);
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto arity =
        static_cast<std::uint32_t>(a.inputs(static_cast<NodeId>(v)).size());
    if (seen[arity] != 0) continue;
    seen[arity] = 1;
    if (arity > kMaxBatchArity) return {false, "arity too large"};
    const auto plan = rules::circuit_plan(a.rule(0), arity);
    if (!plan.supported()) return {false, plan.why_unsupported};
  }
  return {true, nullptr};
}

BatchStepper::BatchStepper(const Automaton& a) : a_(&a) {
  const auto support = batch_support(a);
  if (!support.ok) {
    throw tca::InvalidArgumentError(std::string("BatchStepper: ") +
                                    support.reason);
  }
  plans_.resize(a.max_arity() + 1);
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto arity =
        static_cast<std::uint32_t>(a.inputs(static_cast<NodeId>(v)).size());
    if (plans_[arity].supported()) continue;
    plans_[arity] = rules::circuit_plan(a.rule(0), arity);
  }
  fanin_.resize(a.max_arity());
}

unsigned BatchStepper::count_planes(std::uint32_t m, std::uint32_t skip) {
  // Lane-wise ripple addition of one-bit inputs: plane b of cnt_ is bit b
  // of the per-lane running count. A plane is valid only below `used`, so
  // no zeroing between calls is needed.
  unsigned used = 0;
  for (std::uint32_t i = 0; i < m; ++i) {
    if (i == skip) continue;
    std::uint64_t carry = fanin_[i];
    for (unsigned b = 0; carry != 0; ++b) {
      if (b == used) {
        cnt_[used++] = carry;
        break;
      }
      const std::uint64_t t = cnt_[b] & carry;
      cnt_[b] ^= carry;
      carry = t;
    }
  }
  return used;
}

std::uint64_t BatchStepper::compare_ge(std::uint32_t k, unsigned used) const {
  // Lane-wise (count >= k) as the carry-out of count + (2^used - k).
  if (k >= std::uint64_t{1} << used) return 0;  // count < 2^used <= k
  const std::uint64_t add = (std::uint64_t{1} << used) - k;
  std::uint64_t carry = 0;
  for (unsigned b = 0; b < used; ++b) {
    carry = ((add >> b) & 1u) != 0 ? cnt_[b] | carry : cnt_[b] & carry;
  }
  return carry;
}

std::uint64_t BatchStepper::select_counts(std::uint64_t mask,
                                          unsigned used) const {
  // OR of lane-wise (count == s) over the accepted counts s.
  std::uint64_t acc = 0;
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const auto s = static_cast<unsigned>(std::countr_zero(bits));
    if ((s >> used) != 0) continue;  // counts never reach 2^used
    std::uint64_t eq = ~std::uint64_t{0};
    for (unsigned b = 0; b < used; ++b) {
      eq &= ((s >> b) & 1u) != 0 ? cnt_[b] : ~cnt_[b];
    }
    acc |= eq;
  }
  return acc;
}

std::uint64_t BatchStepper::eval_cell(NodeId v,
                                      std::span<const std::uint64_t> planes) {
  const auto slots = a_->inputs(v);
  const auto m = static_cast<std::uint32_t>(slots.size());
  const rules::CircuitPlan& plan = plans_[m];
  std::uint64_t* fin = fanin_.data();
  for (std::uint32_t i = 0; i < m; ++i) {
    fin[i] = slots[i] == kConstZero ? 0 : planes[slots[i]];
  }
  using Kind = rules::CircuitPlan::Kind;
  switch (plan.kind) {
    case Kind::kConstant:
      return plan.constant_value != 0 ? ~std::uint64_t{0} : 0;
    case Kind::kParity: {
      std::uint64_t x = 0;
      for (std::uint32_t i = 0; i < m; ++i) x ^= fin[i];
      return x;
    }
    case Kind::kThreshold:
      return compare_ge(plan.k, count_planes(m, m));
    case Kind::kCountMask:
      return select_counts(plan.accept_mask, count_planes(m, m));
    case Kind::kOuterTotalistic: {
      const std::uint64_t self = fin[plan.self_index];
      const unsigned used = count_planes(m, plan.self_index);
      const std::uint64_t born = select_counts(plan.born_mask, used);
      const std::uint64_t survive = select_counts(plan.survive_mask, used);
      return (~self & born) | (self & survive);
    }
    case Kind::kMinterms: {
      std::uint64_t acc = 0;
      for (std::size_t p = 0; p < plan.table.size(); ++p) {
        if (plan.table[p] == 0) continue;
        std::uint64_t term = ~std::uint64_t{0};
        for (std::uint32_t i = 0; i < m; ++i) {
          term &= ((p >> (m - 1 - i)) & 1u) != 0 ? fin[i] : ~fin[i];
        }
        acc |= term;
      }
      return acc;
    }
    case Kind::kUnsupported:
      break;  // unreachable: the constructor rejects unsupported plans
  }
  return 0;
}

void BatchStepper::step(const BatchSlice& in, BatchSlice& out) {
  if (in.num_cells() != a_->size() || out.num_cells() != a_->size()) {
    throw tca::InvalidArgumentError("BatchStepper::step: size mismatch",
                                    tca::ErrorCode::kSizeMismatch);
  }
  if (&in == &out) {
    throw tca::InvalidArgumentError(
        "BatchStepper::step: in and out must differ");
  }
  out.set_count(in.count());
  const auto src = in.planes();
  auto dst = out.planes();
  for (std::size_t v = 0; v < a_->size(); ++v) {
    dst[v] = eval_cell(static_cast<NodeId>(v), src);
  }
  static obs::Counter& steps = obs::counter("engine.batch.steps");
  static obs::Counter& lanes = obs::counter("engine.batch.lanes");
  steps.add();
  lanes.add(in.count());
}

void BatchStepper::sweep(BatchSlice& slice, std::span<const NodeId> order) {
  if (slice.num_cells() != a_->size()) {
    throw tca::InvalidArgumentError("BatchStepper::sweep: size mismatch",
                                    tca::ErrorCode::kSizeMismatch);
  }
  auto planes = slice.planes();
  for (NodeId v : order) {
    if (v >= a_->size()) {
      throw tca::InvalidArgumentError("BatchStepper::sweep: node out of range");
    }
    planes[v] = eval_cell(v, planes);
  }
  // One count per lane-sweep, mirroring engine.sequential.sweeps.
  static obs::Counter& sweeps = obs::counter("engine.batch.sweeps");
  sweeps.add(slice.count());
}

}  // namespace tca::core
