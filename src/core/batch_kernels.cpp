#include "core/batch_kernels.hpp"

#include <algorithm>
#include <string>

#include "core/contracts.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::core {
namespace detail {

// Per-tier factories, each defined in its own translation unit compiled
// under the matching target flags (core/batch_kernels_impl.hpp). Only the
// tiers guarded by TCA_HAVE_TIER_* below are ever referenced.
std::unique_ptr<WideStepper> make_wide_stepper_scalar(const Automaton& a);
std::unique_ptr<WideStepper> make_wide_stepper_avx2(const Automaton& a);
std::unique_ptr<WideStepper> make_wide_stepper_avx512(const Automaton& a);
std::unique_ptr<WideStepper> make_wide_stepper_neon(const Automaton& a);

}  // namespace detail

namespace {

/// Arity ceiling of the adder tree (8 count planes).
constexpr std::uint32_t kMaxBatchArity = 255;

/// Widest supported plane (AVX-512: 8 words = 512 lanes).
constexpr unsigned kMaxLaneWords = 8;

/// kLanePattern[i] has bit j set iff bit i of the lane index j is set —
/// the planes of 64 consecutive codes starting at a 64-aligned base.
constexpr std::uint64_t kLanePattern[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

void require_lanes(std::size_t count, unsigned capacity) {
  if (count > capacity) {
    throw tca::InvalidArgumentError("BatchSlice: more lanes than capacity");
  }
}

void require_code_width(std::size_t num_cells) {
  if (num_cells > 64) {
    throw tca::InvalidArgumentError(
        "BatchSlice: state codes need <= 64 cells");
  }
}

/// Construction-time counter per effective dispatch tier (literal names;
/// tier TUs must not build std::strings — see batch_kernels_impl.hpp).
obs::Counter& isa_dispatch_counter(BatchIsa isa) {
  switch (isa) {
    case BatchIsa::kNeon: {
      static obs::Counter& c = obs::counter("engine.batch.isa.neon");
      return c;
    }
    case BatchIsa::kAvx2: {
      static obs::Counter& c = obs::counter("engine.batch.isa.avx2");
      return c;
    }
    case BatchIsa::kAvx512: {
      static obs::Counter& c = obs::counter("engine.batch.isa.avx512");
      return c;
    }
    case BatchIsa::kScalar:
      break;
  }
  static obs::Counter& c = obs::counter("engine.batch.isa.scalar");
  return c;
}

}  // namespace

void transpose64(std::uint64_t m[64]) {
  // Recursive block swap (after Hacker's Delight 7-3, adjusted for
  // LSB-first columns): at each level j, entry (k, c+j) exchanges with
  // (k+j, c) for every row k and column c with bit j clear, so entry
  // (r, c) ends at (c, r).
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

void transpose_wide(std::uint64_t* m, unsigned lane_words) {
  if (lane_words == 0 || lane_words > kMaxLaneWords) {
    throw tca::InvalidArgumentError("transpose_wide: lane_words must be 1..8");
  }
  // W x W grid of 64x64 tiles: the transposed matrix has, at tile
  // position (R, C), the 64x64 transpose of the original tile (C, R) —
  // so transpose the diagonal in place and swap-transpose the pairs.
  const unsigned w = lane_words;
  for (unsigned r = 0; r < w; ++r) {
    std::uint64_t diag[64];
    for (unsigned i = 0; i < 64; ++i) diag[i] = m[(64 * r + i) * w + r];
    transpose64(diag);
    for (unsigned i = 0; i < 64; ++i) m[(64 * r + i) * w + r] = diag[i];
    for (unsigned c = r + 1; c < w; ++c) {
      std::uint64_t upper[64];
      std::uint64_t lower[64];
      for (unsigned i = 0; i < 64; ++i) {
        upper[i] = m[(64 * r + i) * w + c];
        lower[i] = m[(64 * c + i) * w + r];
      }
      transpose64(upper);
      transpose64(lower);
      for (unsigned i = 0; i < 64; ++i) {
        m[(64 * r + i) * w + c] = lower[i];
        m[(64 * c + i) * w + r] = upper[i];
      }
    }
  }
}

BatchSlice::BatchSlice(std::size_t num_cells, unsigned lane_words)
    : num_cells_(num_cells), lane_words_(lane_words) {
  if (lane_words == 0 || lane_words > kMaxLaneWords) {
    throw tca::InvalidArgumentError("BatchSlice: lane_words must be 1..8");
  }
  planes_.assign(num_cells * lane_words, 0);
}

void BatchSlice::set_count(unsigned count) {
  require_lanes(count, capacity());
  count_ = count;
}

void BatchSlice::load_code_range(std::uint64_t first, unsigned count) {
  require_code_width(num_cells_);
  require_lanes(count, capacity());
  if ((first & 63) != 0) {
    // Unaligned base: gather explicit codes (capacity() <= 512 lanes).
    std::uint64_t codes[kBatchLanes * kMaxLaneWords];
    for (unsigned j = 0; j < count; ++j) codes[j] = first + j;
    load_codes(std::span<const std::uint64_t>(codes, count));
    return;
  }
  count_ = count;
  // Aligned range: per 64-lane block, the low six planes are fixed lane
  // patterns and every higher plane is a broadcast of the corresponding
  // bit of the block's base code (first stays 64-aligned per block).
  const unsigned blocks = (count + kBatchLanes - 1) / kBatchLanes;
  const std::size_t low = num_cells_ < 6 ? num_cells_ : 6;
  for (unsigned b = 0; b < lane_words_; ++b) {
    if (b >= blocks) {
      for (std::size_t i = 0; i < num_cells_; ++i) {
        planes_[i * lane_words_ + b] = 0;
      }
      continue;
    }
    const std::uint64_t base = first + std::uint64_t{kBatchLanes} * b;
    for (std::size_t i = 0; i < low; ++i) {
      planes_[i * lane_words_ + b] = kLanePattern[i];
    }
    for (std::size_t i = low; i < num_cells_; ++i) {
      planes_[i * lane_words_ + b] = ((base >> i) & 1u) != 0 ? ~std::uint64_t{0}
                                                            : 0;
    }
  }
}

void BatchSlice::load_codes(std::span<const std::uint64_t> codes) {
  require_code_width(num_cells_);
  require_lanes(codes.size(), capacity());
  count_ = static_cast<unsigned>(codes.size());
  for (unsigned b = 0; b < lane_words_; ++b) {
    std::uint64_t m[64] = {};
    const std::size_t base = std::size_t{b} * kBatchLanes;
    const std::size_t take =
        codes.size() > base
            ? std::min<std::size_t>(kBatchLanes, codes.size() - base)
            : 0;
    for (std::size_t j = 0; j < take; ++j) m[j] = codes[base + j];
    transpose64(m);
    for (std::size_t i = 0; i < num_cells_; ++i) {
      planes_[i * lane_words_ + b] = m[i];
    }
  }
}

void BatchSlice::store_codes(std::span<std::uint64_t> out) const {
  require_code_width(num_cells_);
  if (out.size() < count_) {
    throw tca::InvalidArgumentError("BatchSlice::store_codes: output short",
                                    tca::ErrorCode::kSizeMismatch);
  }
  const unsigned blocks = (count_ + kBatchLanes - 1) / kBatchLanes;
  for (unsigned b = 0; b < blocks; ++b) {
    std::uint64_t m[64] = {};
    for (std::size_t i = 0; i < num_cells_; ++i) {
      m[i] = planes_[i * lane_words_ + b];
    }
    transpose64(m);
    const unsigned base = b * kBatchLanes;
    const unsigned take = std::min(kBatchLanes, count_ - base);
    for (unsigned j = 0; j < take; ++j) out[base + j] = m[j];
  }
}

void BatchSlice::load_configurations(std::span<const Configuration> configs) {
  require_lanes(configs.size(), capacity());
  count_ = static_cast<unsigned>(configs.size());
  for (const Configuration& c : configs) {
    if (c.size() != num_cells_) {
      throw tca::InvalidArgumentError(
          "BatchSlice::load_configurations: size mismatch",
          tca::ErrorCode::kSizeMismatch);
    }
  }
  const std::size_t num_words = (num_cells_ + 63) >> 6;
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::size_t cells = std::min<std::size_t>(64, num_cells_ - w * 64);
    for (unsigned b = 0; b < lane_words_; ++b) {
      std::uint64_t m[64] = {};
      const std::size_t base = std::size_t{b} * kBatchLanes;
      const std::size_t take =
          configs.size() > base
              ? std::min<std::size_t>(kBatchLanes, configs.size() - base)
              : 0;
      for (std::size_t j = 0; j < take; ++j) m[j] = configs[base + j].words()[w];
      transpose64(m);
      for (std::size_t i = 0; i < cells; ++i) {
        planes_[(w * 64 + i) * lane_words_ + b] = m[i];
      }
    }
  }
}

void BatchSlice::store_configurations(std::span<Configuration> out) const {
  if (out.size() < count_) {
    throw tca::InvalidArgumentError(
        "BatchSlice::store_configurations: output short",
        tca::ErrorCode::kSizeMismatch);
  }
  for (unsigned j = 0; j < count_; ++j) {
    if (out[j].size() != num_cells_) {
      throw tca::InvalidArgumentError(
          "BatchSlice::store_configurations: size mismatch",
          tca::ErrorCode::kSizeMismatch);
    }
  }
  const std::size_t num_words = (num_cells_ + 63) >> 6;
  const unsigned blocks = (count_ + kBatchLanes - 1) / kBatchLanes;
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::size_t cells = std::min<std::size_t>(64, num_cells_ - w * 64);
    for (unsigned b = 0; b < blocks; ++b) {
      std::uint64_t m[64] = {};
      for (std::size_t i = 0; i < cells; ++i) {
        m[i] = planes_[(w * 64 + i) * lane_words_ + b];
      }
      transpose64(m);
      const unsigned base = b * kBatchLanes;
      const unsigned take = std::min(kBatchLanes, count_ - base);
      for (unsigned j = 0; j < take; ++j) out[base + j].words()[w] = m[j];
    }
  }
  for (unsigned j = 0; j < count_; ++j) out[j].mask_padding();
}

BatchSupport batch_support(const Automaton& a) {
  if (a.size() == 0) return {false, "empty automaton"};
  if (!a.homogeneous()) return {false, "non-homogeneous automaton"};
  std::vector<char> seen(a.max_arity() + 1, 0);
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto arity =
        static_cast<std::uint32_t>(a.inputs(static_cast<NodeId>(v)).size());
    if (seen[arity] != 0) continue;
    seen[arity] = 1;
    if (arity > kMaxBatchArity) return {false, "arity too large"};
    const auto plan = rules::circuit_plan(a.rule(0), arity);
    if (!plan.supported()) return {false, plan.why_unsupported};
  }
  return {true, nullptr};
}

BatchStepper::BatchStepper(const Automaton& a) : a_(&a) {
  const auto support = batch_support(a);
  if (!support.ok) {
    throw tca::InvalidArgumentError(std::string("BatchStepper: ") +
                                    support.reason);
  }
  plans_.resize(a.max_arity() + 1);
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto arity =
        static_cast<std::uint32_t>(a.inputs(static_cast<NodeId>(v)).size());
    if (plans_[arity].supported()) continue;
    plans_[arity] = rules::circuit_plan(a.rule(0), arity);
  }
  fanin_.resize(a.max_arity());
}

std::uint64_t BatchStepper::eval_cell(NodeId v,
                                      std::span<const std::uint64_t> planes) {
  const auto slots = a_->inputs(v);
  const auto m = static_cast<std::uint32_t>(slots.size());
  std::uint64_t* fin = fanin_.data();
  for (std::uint32_t i = 0; i < m; ++i) {
    fin[i] = slots[i] == kConstZero ? 0 : planes[slots[i]];
  }
  return eval_.eval(plans_[m], std::span<const std::uint64_t>(fin, m));
}

TCA_HOT_PATH void BatchStepper::step(const BatchSlice& in, BatchSlice& out) {
  if (in.num_cells() != a_->size() || out.num_cells() != a_->size()) {
    throw tca::InvalidArgumentError("BatchStepper::step: size mismatch",
                                    tca::ErrorCode::kSizeMismatch);
  }
  if (in.lane_words() != 1 || out.lane_words() != 1) {
    throw tca::InvalidArgumentError(
        "BatchStepper::step: wide slices need make_wide_stepper");
  }
  if (&in == &out) {
    throw tca::InvalidArgumentError(
        "BatchStepper::step: in and out must differ");
  }
  out.set_count(in.count());
  const auto src = in.planes();
  auto dst = out.planes();
  for (std::size_t v = 0; v < a_->size(); ++v) {
    dst[v] = eval_cell(static_cast<NodeId>(v), src);
  }
  static obs::Counter& steps = obs::counter("engine.batch.steps");
  static obs::Counter& lanes = obs::counter("engine.batch.lanes");
  steps.add();
  lanes.add(in.count());
}

TCA_HOT_PATH void BatchStepper::sweep(BatchSlice& slice,
                                      std::span<const NodeId> order) {
  if (slice.num_cells() != a_->size()) {
    throw tca::InvalidArgumentError("BatchStepper::sweep: size mismatch",
                                    tca::ErrorCode::kSizeMismatch);
  }
  if (slice.lane_words() != 1) {
    throw tca::InvalidArgumentError(
        "BatchStepper::sweep: wide slices need make_wide_stepper");
  }
  auto planes = slice.planes();
  for (NodeId v : order) {
    if (v >= a_->size()) {
      throw tca::InvalidArgumentError("BatchStepper::sweep: node out of range");
    }
    planes[v] = eval_cell(v, planes);
  }
  // One count per lane-sweep, mirroring engine.sequential.sweeps.
  static obs::Counter& sweeps = obs::counter("engine.batch.sweeps");
  sweeps.add(slice.count());
}

std::unique_ptr<WideStepper> make_wide_stepper(const Automaton& a) {
  return make_wide_stepper(a, resolve_batch_isa().effective);
}

std::unique_ptr<WideStepper> make_wide_stepper(const Automaton& a,
                                               BatchIsa isa) {
  // Validate here, under baseline flags, so the tier factories construct
  // unconditionally (they avoid string formatting; see the ODR note in
  // batch_kernels_impl.hpp).
  const auto support = batch_support(a);
  if (!support.ok) {
    throw tca::InvalidArgumentError(std::string("make_wide_stepper: ") +
                                    support.reason);
  }
  if (!isa_available(isa)) {
    throw tca::InvalidArgumentError(
        std::string("make_wide_stepper: ISA tier unavailable: ") +
        isa_name(isa));
  }
  isa_dispatch_counter(isa).add();
  switch (isa) {
    case BatchIsa::kNeon:
#if defined(TCA_HAVE_TIER_NEON)
      return detail::make_wide_stepper_neon(a);
#else
      break;
#endif
    case BatchIsa::kAvx2:
#if defined(TCA_HAVE_TIER_AVX2)
      return detail::make_wide_stepper_avx2(a);
#else
      break;
#endif
    case BatchIsa::kAvx512:
#if defined(TCA_HAVE_TIER_AVX512)
      return detail::make_wide_stepper_avx512(a);
#else
      break;
#endif
    case BatchIsa::kScalar:
      break;
  }
  return detail::make_wide_stepper_scalar(a);
}

}  // namespace tca::core
