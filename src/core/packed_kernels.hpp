#pragma once
// Word-parallel kernels for 1-D ring CA (DESIGN.md S3, decision 2).
//
// For rings with radius-1/2 neighborhoods the synchronous step can process
// 64 cells per ALU operation on the bit-packed configuration: the left/right
// neighbor columns are whole-vector ring shifts, and the local rule becomes
// a short boolean-network over the shifted vectors (majority via
// carry-save adders, arbitrary radius-1 tables via a sum-of-products over
// the 8 neighborhood patterns).
//
// These kernels are bit-for-bit equivalent to the generic engine
// (cross-validated by tests/packed_kernels_test.cpp) and are what the
// throughput bench and `ablation_packing` measure.
//
// All kernels implement CA WITH memory on a ring (the paper's default).

#include <cstdint>
#include <span>

#include "core/configuration.hpp"
#include "rules/rule.hpp"

namespace tca::core {

/// out bit i := in bit (i-1+n) mod n (the "left neighbor" column).
void ring_shift_up(const Configuration& in, Configuration& out);

/// out bit i := in bit (i+1) mod n (the "right neighbor" column).
void ring_shift_down(const Configuration& in, Configuration& out);

/// Scratch buffers reused across steps (avoid per-step allocation).
struct PackedScratch {
  Configuration left;
  Configuration right;
  Configuration left2;
  Configuration right2;
  explicit PackedScratch(std::size_t n)
      : left(n), right(n), left2(n), right2(n) {}
};

/// Synchronous step of the radius-1 MAJORITY (2-of-3) ring CA with memory:
/// out_i = maj(x_{i-1}, x_i, x_{i+1}).
void step_ring_majority3_packed(const Configuration& in, Configuration& out,
                                PackedScratch& scratch);

/// Synchronous step of the radius-2 MAJORITY (3-of-5) ring CA with memory.
/// Requires n >= 5.
void step_ring_majority5_packed(const Configuration& in, Configuration& out,
                                PackedScratch& scratch);

/// Synchronous step of the radius-1 XOR/parity ring CA with memory:
/// out_i = x_{i-1} ^ x_i ^ x_{i+1}.
void step_ring_parity3_packed(const Configuration& in, Configuration& out,
                              PackedScratch& scratch);

/// Synchronous step of an arbitrary radius-1 TableRule (e.g. a Wolfram
/// elementary rule; inputs ordered left,self,right) on a ring with memory.
/// Sum-of-products over the <= 8 accepting neighborhood patterns.
void step_ring_table3_packed(const rules::TableRule& rule,
                             const Configuration& in, Configuration& out,
                             PackedScratch& scratch);

}  // namespace tca::core
