#pragma once
// Clang thread-safety annotations (docs/static-analysis.md).
//
// The paper's whole point is that update order changes outcomes
// (Theorem 1 / Proposition 1), so every place this codebase shares
// mutable state across threads — the thread pool, the metrics registry,
// the log sink, the trace buffer — must have its locking discipline
// written down where the compiler can check it. These macros expand to
// Clang's thread-safety attributes under `-Wthread-safety
// -Wthread-safety-beta` and to nothing everywhere else, so GCC builds
// are unaffected.
//
// Conventions (enforced by review + the static-analysis CI job):
//  * every mutable field shared across threads is either a std::atomic
//    (with a lint-checked memory_order justification, scripts/tca_lint.py
//    rule `relaxed-order`) or TCA_GUARDED_BY a named tca::Mutex;
//  * functions that must be called with a lock held say so with
//    TCA_REQUIRES(mu) instead of a comment;
//  * raw std::mutex / std::lock_guard are reserved for code that cannot
//    use the wrappers (none today); new code uses tca::Mutex +
//    tca::LockGuard so the analysis sees every acquire/release;
//  * TCA_NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a comment
//    explaining why the analysis cannot follow the code.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define TCA_TSA__(x) __attribute__((x))
#else
#define TCA_TSA__(x)  // no-op: GCC/MSVC have no thread-safety analysis
#endif

#define TCA_CAPABILITY(x) TCA_TSA__(capability(x))
#define TCA_SCOPED_CAPABILITY TCA_TSA__(scoped_lockable)
#define TCA_GUARDED_BY(x) TCA_TSA__(guarded_by(x))
#define TCA_PT_GUARDED_BY(x) TCA_TSA__(pt_guarded_by(x))
#define TCA_REQUIRES(...) TCA_TSA__(requires_capability(__VA_ARGS__))
#define TCA_REQUIRES_SHARED(...) \
  TCA_TSA__(requires_shared_capability(__VA_ARGS__))
#define TCA_ACQUIRE(...) TCA_TSA__(acquire_capability(__VA_ARGS__))
#define TCA_ACQUIRE_SHARED(...) TCA_TSA__(acquire_shared_capability(__VA_ARGS__))
#define TCA_RELEASE(...) TCA_TSA__(release_capability(__VA_ARGS__))
#define TCA_TRY_ACQUIRE(...) TCA_TSA__(try_acquire_capability(__VA_ARGS__))
#define TCA_EXCLUDES(...) TCA_TSA__(locks_excluded(__VA_ARGS__))
#define TCA_ASSERT_CAPABILITY(x) TCA_TSA__(assert_capability(x))
#define TCA_RETURN_CAPABILITY(x) TCA_TSA__(lock_returned(x))
#define TCA_NO_THREAD_SAFETY_ANALYSIS TCA_TSA__(no_thread_safety_analysis)

namespace tca {

/// std::mutex with the `capability` attribute so TCA_GUARDED_BY /
/// TCA_REQUIRES can name it. Same cost and semantics as std::mutex.
class TCA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TCA_ACQUIRE() { mu_.lock(); }
  void unlock() TCA_RELEASE() { mu_.unlock(); }
  bool try_lock() TCA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class LockGuard;
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a tca::Mutex (the analysis-aware std::unique_lock).
/// Always holds the lock for its whole lifetime; condition-variable waits
/// release and reacquire inside CondVar::wait, which the analysis models
/// conservatively as "held throughout" — exactly the discipline the
/// guarded fields need anyway.
class TCA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) TCA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~LockGuard() TCA_RELEASE() = default;

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with tca::Mutex/LockGuard. No predicate
/// overload on purpose: callers write the `while (!pred) wait(lock);`
/// loop inline so the analysis sees the guarded reads under the lock
/// (lambda bodies do not inherit the caller's capability set).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(LockGuard& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tca
