#pragma once
// Concurrency-contract annotation macros (docs/static-analysis.md,
// docs/memory_model.md). These are the machine-checkable counterpart of
// the thread-safety annotations in core/annotations.hpp: where TSA
// proves lock discipline, these macros mark the *lock-free* contracts
// that scripts/tca_analyze.py audits:
//
//  * TCA_HOT_PATH — marks a function or lambda whose loops are hot
//    (executed per state / per chunk / per word of a phase-space build).
//    The analyzer's hot-path-blocking check enforces that no mutex
//    acquisition, blocking IO, or throwing allocation appears inside a
//    loop of an annotated root: allocations must be hoisted to setup,
//    locks belong at the boundary, IO belongs to the cold path. catch
//    blocks, `throw` statements and `static` one-shot initialization are
//    exempt (failure paths and one-time setup are cold by definition).
//    Lambdas passed to SuccessorStore::for_each_range are implicit roots
//    — the store calls them once per 4096-entry block, 2^n/4096 times.
//    The annotated roots are registered in scripts/tca_lint.py
//    (HOT_PATH_ROOTS) so a rename cannot silently drop the check.
//
//  * TCA_JOINED_BEFORE_SCOPE_EXIT — placed immediately before a thread
//    spawn whose callable captures locals by reference, asserting that
//    the spawned thread is joined before those locals die. The
//    analyzer's capture-lifetime check flags every by-reference capture
//    handed to std::thread / a std::vector<std::thread> without this
//    marker. The string argument is the justification ("joined at the
//    barrier below"), mandatory by construction.
//
// Expansion: TCA_HOT_PATH becomes __attribute__((hot)) on GCC/Clang —
// a real optimizer hint, so the contract and the codegen agree on what
// is hot — and nothing elsewhere. The join marker compiles away
// entirely; it exists for the analyzer and the reader.

#if defined(__GNUC__) || defined(__clang__)
#define TCA_HOT_PATH __attribute__((hot))
#else
#define TCA_HOT_PATH
#endif

#define TCA_JOINED_BEFORE_SCOPE_EXIT(why) \
  static_assert(sizeof(why) > 0, "join justification required")
