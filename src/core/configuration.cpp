#include "core/configuration.hpp"

#include <bit>
#include <stdexcept>

#include "core/fnv.hpp"
#include "runtime/error.hpp"

namespace tca::core {

Configuration::Configuration(std::size_t num_cells, State fill)
    : num_cells_(num_cells), words_((num_cells + 63) / 64, 0) {
  if (fill != 0) this->fill(fill);
}

Configuration Configuration::from_string(std::string_view bits) {
  Configuration c(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      c.set(i, 1);
    } else if (bits[i] != '0') {
      throw tca::InvalidArgumentError("Configuration: expected '0'/'1', got '" +
                                  std::string(1, bits[i]) + "'");
    }
  }
  return c;
}

Configuration Configuration::from_bits(std::uint64_t bits,
                                       std::size_t num_cells) {
  if (num_cells > 64) {
    throw tca::InvalidArgumentError("Configuration::from_bits: num_cells > 64");
  }
  Configuration c(num_cells);
  if (num_cells > 0) {
    c.words_[0] = num_cells == 64
                      ? bits
                      : bits & ((std::uint64_t{1} << num_cells) - 1);
  }
  return c;
}

std::uint64_t Configuration::to_bits() const {
  if (num_cells_ > 64) {
    throw tca::StateError("Configuration::to_bits: more than 64 cells");
  }
  return words_.empty() ? 0 : words_[0];
}

std::size_t Configuration::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

void Configuration::fill(State value) {
  const std::uint64_t pattern = value != 0 ? ~std::uint64_t{0} : 0;
  for (std::uint64_t& w : words_) w = pattern;
  mask_padding();
}

std::string Configuration::to_string() const {
  std::string s(num_cells_, '0');
  for (std::size_t i = 0; i < num_cells_; ++i) {
    if (get(i) != 0) s[i] = '1';
  }
  return s;
}

void Configuration::mask_padding() noexcept {
  const std::size_t rem = num_cells_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

std::uint64_t hash_value(const Configuration& c) noexcept {
  // Word-wise FNV-1a variant over the shared basis/prime (core/fnv.hpp).
  std::uint64_t h = kFnvOffsetBasis64;
  for (std::uint64_t w : c.words()) {
    h ^= w;
    h *= kFnvPrime64;
    // Extra mixing: FNV over whole words is weak for sparse states.
    h ^= h >> 29;
  }
  h ^= c.size();
  h *= kFnvPrime64;
  return h;
}

}  // namespace tca::core
