#include "core/packed_kernels.hpp"

#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::core {
namespace {

void require_same_ring(const Configuration& in, const Configuration& out,
                       std::size_t min_n) {
  if (in.size() != out.size()) {
    throw tca::InvalidArgumentError(
        "packed kernel: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  if (in.size() < min_n) {
    throw tca::InvalidArgumentError("packed kernel: ring too small");
  }
  if (&in == &out) {
    throw tca::InvalidArgumentError("packed kernel: in and out must differ");
  }
}

}  // namespace

void ring_shift_up(const Configuration& in, Configuration& out) {
  require_same_ring(in, out, 1);
  const std::size_t n = in.size();
  const auto src = in.words();
  auto dst = out.words();
  // Initial carry: cell n-1 wraps into cell 0.
  std::uint64_t carry = (src[(n - 1) >> 6] >> ((n - 1) & 63)) & 1u;
  for (std::size_t w = 0; w < src.size(); ++w) {
    const std::uint64_t word = src[w];
    dst[w] = (word << 1) | carry;
    carry = word >> 63;
  }
  out.mask_padding();
}

void ring_shift_down(const Configuration& in, Configuration& out) {
  require_same_ring(in, out, 1);
  const std::size_t n = in.size();
  const auto src = in.words();
  auto dst = out.words();
  const std::uint64_t wrap = src[0] & 1u;  // cell 0 wraps into cell n-1
  for (std::size_t w = 0; w + 1 < src.size(); ++w) {
    dst[w] = (src[w] >> 1) | (src[w + 1] << 63);
  }
  dst[src.size() - 1] = src[src.size() - 1] >> 1;
  // Place the wrapped bit at cell n-1.
  const std::size_t top_word = (n - 1) >> 6;
  const std::size_t top_bit = (n - 1) & 63;
  dst[top_word] =
      (dst[top_word] & ~(std::uint64_t{1} << top_bit)) | (wrap << top_bit);
  out.mask_padding();
}

void step_ring_majority3_packed(const Configuration& in, Configuration& out,
                                PackedScratch& scratch) {
  require_same_ring(in, out, 3);
  ring_shift_up(in, scratch.left);
  ring_shift_down(in, scratch.right);
  const auto l = scratch.left.words();
  const auto s = in.words();
  const auto r = scratch.right.words();
  auto dst = out.words();
  for (std::size_t w = 0; w < dst.size(); ++w) {
    dst[w] = (l[w] & s[w]) | (s[w] & r[w]) | (l[w] & r[w]);
  }
  out.mask_padding();
}

void step_ring_majority5_packed(const Configuration& in, Configuration& out,
                                PackedScratch& scratch) {
  require_same_ring(in, out, 5);
  ring_shift_up(in, scratch.left);
  ring_shift_up(scratch.left, scratch.left2);
  ring_shift_down(in, scratch.right);
  ring_shift_down(scratch.right, scratch.right2);
  const auto a = scratch.left2.words();
  const auto b = scratch.left.words();
  const auto c = in.words();
  const auto d = scratch.right.words();
  const auto e = scratch.right2.words();
  auto dst = out.words();
  for (std::size_t w = 0; w < dst.size(); ++w) {
    // Carry-save addition of the five bit columns: count = s2 + 2*(c1+c2);
    // majority (count >= 3) <=> both carries, or one carry plus the sum bit.
    const std::uint64_t s1 = a[w] ^ b[w] ^ c[w];
    const std::uint64_t c1 = (a[w] & b[w]) | (b[w] & c[w]) | (a[w] & c[w]);
    const std::uint64_t s2 = s1 ^ d[w] ^ e[w];
    const std::uint64_t c2 = (s1 & d[w]) | (d[w] & e[w]) | (s1 & e[w]);
    dst[w] = (c1 & c2) | ((c1 ^ c2) & s2);
  }
  out.mask_padding();
}

void step_ring_parity3_packed(const Configuration& in, Configuration& out,
                              PackedScratch& scratch) {
  require_same_ring(in, out, 3);
  ring_shift_up(in, scratch.left);
  ring_shift_down(in, scratch.right);
  const auto l = scratch.left.words();
  const auto s = in.words();
  const auto r = scratch.right.words();
  auto dst = out.words();
  for (std::size_t w = 0; w < dst.size(); ++w) {
    dst[w] = l[w] ^ s[w] ^ r[w];
  }
  out.mask_padding();
}

void step_ring_table3_packed(const rules::TableRule& rule,
                             const Configuration& in, Configuration& out,
                             PackedScratch& scratch) {
  require_same_ring(in, out, 3);
  if (rule.table.size() != 8) {
    throw tca::InvalidArgumentError(
        "step_ring_table3_packed: arity-3 table only");
  }
  ring_shift_up(in, scratch.left);
  ring_shift_down(in, scratch.right);
  const auto l = scratch.left.words();
  const auto s = in.words();
  const auto r = scratch.right.words();
  auto dst = out.words();
  for (std::size_t w = 0; w < dst.size(); ++w) {
    std::uint64_t acc = 0;
    for (std::size_t p = 0; p < 8; ++p) {
      if (rule.table[p] == 0) continue;
      // TableRule convention: inputs (left, self, right), left is MSB.
      const std::uint64_t lt = (p & 4) != 0 ? l[w] : ~l[w];
      const std::uint64_t st = (p & 2) != 0 ? s[w] : ~s[w];
      const std::uint64_t rt = (p & 1) != 0 ? r[w] : ~r[w];
      acc |= lt & st & rt;
    }
    dst[w] = acc;
  }
  out.mask_padding();
}

}  // namespace tca::core
