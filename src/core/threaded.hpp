#pragma once
// Multithreaded synchronous step (DESIGN.md S3, decision 3).
//
// The node range is tiled into contiguous chunks with boundaries aligned to
// 64 cells, so each chunk owns whole words of the bit-packed back buffer —
// no two threads ever touch the same word. Reads go only to the front
// buffer, which nobody writes during the step, so the step is race-free by
// construction (no atomics or locks in the cell loop).

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "core/thread_pool.hpp"

namespace tca::core {

/// Parallel step out := F(in) executed across the pool's threads.
/// Bit-for-bit identical to step_synchronous.
void step_synchronous_threaded(const Automaton& a, const Configuration& in,
                               Configuration& out, ThreadPool& pool);

/// Advances `c` by `steps` threaded parallel steps in place.
void advance_synchronous_threaded(const Automaton& a, Configuration& c,
                                  std::uint64_t steps, ThreadPool& pool);

}  // namespace tca::core
