#pragma once
// Runtime ISA dispatch for the SIMD-widened batch kernels
// (docs/performance.md).
//
// The batch engine ships one generic kernel compiled at several widths:
// scalar (64 lanes, one uint64 plane word), AVX2/NEON (256 lanes, 4
// words), AVX-512 (512 lanes, 8 words). Which tiers exist in a binary is
// decided at build time (compiler flag probes in src/core/CMakeLists.txt);
// which tier RUNS is decided here at runtime from cpuid/HWCAP, once per
// process, so a binary built on an AVX-512 box still runs correctly on a
// plain x86-64 host.
//
// The TCA_BATCH_ISA environment variable (scalar|avx2|avx512|neon)
// overrides the probe — CI pins `scalar` for machine-independent counter
// baselines, and the differential tests force every tier in turn.
// Requesting a tier the host (or build) lacks degrades to the best
// available one, bumps "engine.batch.fallback", and emits the structured
// warn event once per distinct override (not once per stepper, so
// parallel phase-space builds do not spam the log).

#include <cstdint>

namespace tca::core {

/// Kernel tiers, widest last. kNeon and kAvx2 share a width (4 words =
/// 256 lanes); a build contains either the x86 tiers or the ARM tier,
/// never both.
enum class BatchIsa : std::uint8_t {
  kScalar = 0,  ///< portable 64-lane bit-slice (always available)
  kNeon,        ///< aarch64, 256 lanes
  kAvx2,        ///< x86-64 + AVX2, 256 lanes
  kAvx512,      ///< x86-64 + AVX-512F, 512 lanes
};

inline constexpr unsigned kNumBatchIsa = 4;

/// Stable lowercase name: "scalar", "neon", "avx2", "avx512" — the same
/// tokens TCA_BATCH_ISA accepts.
[[nodiscard]] const char* isa_name(BatchIsa isa) noexcept;

/// Plane words per cell for a tier (lanes = 64 * words).
[[nodiscard]] unsigned isa_lane_words(BatchIsa isa) noexcept;

/// Whether this binary compiled the tier AND this host can execute it.
[[nodiscard]] bool isa_available(BatchIsa isa) noexcept;

/// The widest available tier (cpuid/HWCAP probe, cached per process).
[[nodiscard]] BatchIsa best_supported_isa() noexcept;

/// Outcome of one dispatch decision.
struct IsaResolution {
  BatchIsa effective = BatchIsa::kScalar;  ///< the tier steppers will use
  bool downgraded = false;  ///< an override asked for more than available
  const char* note = nullptr;  ///< stable reason string iff downgraded
};

/// Resolves the tier to run: TCA_BATCH_ISA when set and available, the
/// probe's best otherwise. Reads the environment on every call (tests
/// flip the override mid-process); emits the downgrade warn event at most
/// once per distinct override value.
[[nodiscard]] IsaResolution resolve_batch_isa();

}  // namespace tca::core
