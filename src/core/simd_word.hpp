#pragma once
// ISA-generic wide machine word for the SIMD batch kernels
// (docs/performance.md).
//
// WideWord<W> is W uint64 lanes with the bitwise/shift operations the
// circuit plans need (rules/circuit_eval.hpp). Every operation is a plain
// fixed-trip-count loop: there are NO intrinsics here. The per-ISA
// translation units (core/batch_kernels_{scalar,avx2,avx512,neon}.cpp)
// compile the SAME kernel template against WideWord<1>, <4>, or <8> under
// the matching target flags, and the compiler's auto-vectorizer turns
// these loops into one or two vector ops each (verified by the widening
// speedup gate in bench/ablation_bitslice.cpp). This keeps the kernels a
// single source of truth across scalar, AVX2, AVX-512, and NEON.
//
// Each W is instantiated in exactly one translation unit per build
// (scalar=1; avx2/neon=4; avx512=8), so no WideWord<W> symbol is ever
// emitted under two different ISA flag sets — see the ODR note in
// core/batch_kernels_impl.hpp.

#include <cstdint>

namespace tca::core {

/// W uint64 lanes; lane t of a cell plane covers configurations
/// [64t, 64t + 64) of the batch.
template <unsigned W>
struct WideWord {
  static_assert(W >= 1 && W <= 8, "WideWord: 1..8 words per plane");

  std::uint64_t v[W];

  [[nodiscard]] static constexpr WideWord zero() noexcept {
    return WideWord{};
  }

  [[nodiscard]] static constexpr WideWord ones() noexcept {
    WideWord w{};
    for (unsigned t = 0; t < W; ++t) w.v[t] = ~std::uint64_t{0};
    return w;
  }

  [[nodiscard]] static constexpr WideWord broadcast(std::uint64_t x) noexcept {
    WideWord w{};
    for (unsigned t = 0; t < W; ++t) w.v[t] = x;
    return w;
  }

  [[nodiscard]] static WideWord load(const std::uint64_t* p) noexcept {
    WideWord w;
    for (unsigned t = 0; t < W; ++t) w.v[t] = p[t];
    return w;
  }

  void store(std::uint64_t* p) const noexcept {
    for (unsigned t = 0; t < W; ++t) p[t] = v[t];
  }

  /// True when any lane has any bit set (adder-tree early-out).
  [[nodiscard]] constexpr bool any() const noexcept {
    std::uint64_t acc = 0;
    for (unsigned t = 0; t < W; ++t) acc |= v[t];
    return acc != 0;
  }

  constexpr WideWord& operator&=(const WideWord& o) noexcept {
    for (unsigned t = 0; t < W; ++t) v[t] &= o.v[t];
    return *this;
  }
  constexpr WideWord& operator|=(const WideWord& o) noexcept {
    for (unsigned t = 0; t < W; ++t) v[t] |= o.v[t];
    return *this;
  }
  constexpr WideWord& operator^=(const WideWord& o) noexcept {
    for (unsigned t = 0; t < W; ++t) v[t] ^= o.v[t];
    return *this;
  }

  [[nodiscard]] friend constexpr WideWord operator&(WideWord a,
                                                    const WideWord& b) noexcept {
    a &= b;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator|(WideWord a,
                                                    const WideWord& b) noexcept {
    a |= b;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator^(WideWord a,
                                                    const WideWord& b) noexcept {
    a ^= b;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator~(WideWord a) noexcept {
    for (unsigned t = 0; t < W; ++t) a.v[t] = ~a.v[t];
    return a;
  }
  /// Per-lane uint64 shifts (used by the lane-wise block transpose).
  [[nodiscard]] friend constexpr WideWord operator<<(WideWord a,
                                                     unsigned s) noexcept {
    for (unsigned t = 0; t < W; ++t) a.v[t] <<= s;
    return a;
  }
  [[nodiscard]] friend constexpr WideWord operator>>(WideWord a,
                                                     unsigned s) noexcept {
    for (unsigned t = 0; t < W; ++t) a.v[t] >>= s;
    return a;
  }
};

}  // namespace tca::core
