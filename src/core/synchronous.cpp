#include "core/synchronous.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::core {

void step_synchronous(const Automaton& a, const Configuration& in,
                      Configuration& out) {
  if (in.size() != a.size() || out.size() != a.size()) {
    throw tca::InvalidArgumentError(
        "step_synchronous: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  if (&in == &out) {
    throw tca::InvalidArgumentError("step_synchronous: in and out must differ");
  }
  // Step-granular metering (two relaxed adds per n-cell step; the
  // perf_engine metrics-on/off ablation bounds the overhead at < 5%).
  static obs::Counter& steps = obs::counter("engine.synchronous.steps");
  static obs::Counter& cells = obs::counter("engine.synchronous.cells");
  steps.add();
  cells.add(a.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    out.set(v, a.eval_node(static_cast<NodeId>(v), in));
  }
}

Configuration step_synchronous(const Automaton& a, const Configuration& in) {
  Configuration out(in.size());
  step_synchronous(a, in, out);
  return out;
}

void advance_synchronous(const Automaton& a, Configuration& c,
                         std::uint64_t steps) {
  Configuration back(c.size());
  for (std::uint64_t t = 0; t < steps; ++t) {
    step_synchronous(a, c, back);
    std::swap(c, back);
  }
}

bool is_fixed_point_synchronous(const Automaton& a, const Configuration& c) {
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (a.eval_node(static_cast<NodeId>(v), c) != c.get(v)) return false;
  }
  return true;
}

}  // namespace tca::core
