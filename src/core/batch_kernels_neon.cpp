// NEON tier: WideWord<4> (256 lanes) on aarch64, where AdvSIMD is
// architecturally baseline — no extra target flags, no runtime cpu probe
// beyond the architecture itself. This unit is only added to the build on
// aarch64 (src/core/CMakeLists.txt), where the x86 tier units are absent,
// so the one-TU-per-width rule of batch_kernels_impl.hpp still holds.

#include "core/batch_kernels_impl.hpp"

namespace tca::core::detail {

std::unique_ptr<WideStepper> make_wide_stepper_neon(const Automaton& a) {
  return make_wide_impl<4>(a, BatchIsa::kNeon);
}

}  // namespace tca::core::detail
