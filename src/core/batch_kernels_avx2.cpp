// AVX2 tier: WideWord<4> (256 lanes), compiled with -mavx2 via
// set_source_files_properties in src/core/CMakeLists.txt. Only reached
// after batch_isa.cpp confirms the host executes AVX2 — see the ODR note
// in batch_kernels_impl.hpp for why everything else here is anonymous.

#include "core/batch_kernels_impl.hpp"

namespace tca::core::detail {

std::unique_ptr<WideStepper> make_wide_stepper_avx2(const Automaton& a) {
  return make_wide_impl<4>(a, BatchIsa::kAvx2);
}

}  // namespace tca::core::detail
