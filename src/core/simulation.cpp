#include "core/simulation.hpp"

#include <stdexcept>
#include <utility>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"
#include "runtime/error.hpp"

namespace tca::core {

Simulation::Simulation(Automaton automaton, Configuration initial,
                       UpdateScheme scheme)
    : a_(std::move(automaton)),
      config_(std::move(initial)),
      back_(config_.size()),
      scheme_(std::move(scheme)) {
  if (config_.size() != a_.size()) {
    throw tca::InvalidArgumentError(
        "Simulation: configuration size mismatch",
        tca::ErrorCode::kSizeMismatch);
  }
  if (const auto* seq = std::get_if<SequentialScheme>(&scheme_)) {
    if (seq->order.empty()) {
      throw tca::InvalidArgumentError("Simulation: empty sequential order");
    }
    for (NodeId v : seq->order) {
      if (v >= a_.size()) {
        throw tca::InvalidArgumentError(
            "Simulation: order id out of range", tca::ErrorCode::kOutOfRange);
      }
    }
  } else if (const auto* block = std::get_if<BlockSequentialScheme>(&scheme_)) {
    block_order_.emplace(block->blocks, a_.size());
  }
}

double Simulation::density() const {
  return config_.size() == 0
             ? 0.0
             : static_cast<double>(config_.popcount()) /
                   static_cast<double>(config_.size());
}

std::size_t Simulation::step() {
  std::size_t changes = 0;
  if (const auto* sync = std::get_if<SynchronousScheme>(&scheme_)) {
    if (sync->monomorphized) {
      step_synchronous_fast(a_, config_, back_);
    } else {
      step_synchronous(a_, config_, back_);
    }
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (config_.get(i) != back_.get(i)) ++changes;
    }
    std::swap(config_, back_);
  } else if (const auto* seq = std::get_if<SequentialScheme>(&scheme_)) {
    changes = apply_sequence(a_, config_, seq->order);
  } else {
    changes = step_block_sequential(a_, config_, *block_order_);
  }
  ++time_;
  for (const Observer& obs : observers_) obs(time_, config_);
  return changes;
}

void Simulation::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

std::optional<std::uint64_t> Simulation::run_to_fixed_point(
    std::uint64_t max_steps) {
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    if (is_fixed_point_sequential(a_, config_)) return t;
    if (t == max_steps) break;
    step();
  }
  return std::nullopt;
}

void Simulation::reset(Configuration initial) {
  if (initial.size() != a_.size()) {
    throw tca::InvalidArgumentError(
        "Simulation::reset: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  config_ = std::move(initial);
  time_ = 0;
}

}  // namespace tca::core
