#pragma once
// Block-sequential update scheme (DESIGN.md S3).
//
// A partition B_1, ..., B_k of the nodes is processed block by block:
// within a block all nodes update synchronously (reading the same
// configuration), and the block's writes become visible before the next
// block runs. The two extremes recover the paper's two models:
//   one block of all nodes      -> classical parallel CA,
//   n singleton blocks          -> sequential CA with a fixed permutation.
// This is the standard interpolation between synchrony and sequentiality in
// the SDS literature the paper builds on ([2-6]).

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::core {

/// An ordered partition of {0..n-1} into nonempty blocks.
class BlockOrder {
 public:
  /// Validates: blocks nonempty, ids in range, each node in exactly one
  /// block (for an automaton of `n` nodes).
  BlockOrder(std::vector<std::vector<NodeId>> blocks, std::size_t n);

  /// The fully synchronous scheme: a single block of all n nodes.
  static BlockOrder synchronous(std::size_t n);

  /// The fully sequential scheme along a permutation.
  static BlockOrder sequential(std::span<const NodeId> order);

  /// The classic two-phase (checkerboard) scheme: all even nodes, then all
  /// odd nodes. On radius-1 rings with even n each block is an independent
  /// set, so the within-block parallelism is harmless: the sweep equals
  /// any sequential order that lists evens before odds (tested).
  static BlockOrder even_odd(std::size_t n);

  [[nodiscard]] const std::vector<std::vector<NodeId>>& blocks() const {
    return blocks_;
  }

 private:
  std::vector<std::vector<NodeId>> blocks_;
};

/// One block-sequential sweep in place. Returns the number of cell changes.
std::size_t step_block_sequential(const Automaton& a, Configuration& c,
                                  const BlockOrder& order);

}  // namespace tca::core
