#include "core/threaded.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::core {

void step_synchronous_threaded(const Automaton& a, const Configuration& in,
                               Configuration& out, ThreadPool& pool) {
  if (in.size() != a.size() || out.size() != a.size()) {
    throw tca::InvalidArgumentError(
        "step_synchronous_threaded: size mismatch",
        tca::ErrorCode::kSizeMismatch);
  }
  static obs::Counter& steps = obs::counter("engine.threaded.steps");
  static obs::Counter& cells = obs::counter("engine.threaded.cells");
  steps.add();
  cells.add(a.size());
  if (&in == &out) {
    throw tca::InvalidArgumentError(
        "step_synchronous_threaded: in and out must differ");
  }
  Configuration* out_ptr = &out;
  const Automaton* ap = &a;
  const Configuration* in_ptr = &in;
  pool.parallel_for(0, a.size(), /*align=*/64,
                    [ap, in_ptr, out_ptr](std::size_t b, std::size_t e) {
                      for (std::size_t v = b; v < e; ++v) {
                        out_ptr->set(v, ap->eval_node(
                                            static_cast<NodeId>(v), *in_ptr));
                      }
                    });
}

void advance_synchronous_threaded(const Automaton& a, Configuration& c,
                                  std::uint64_t steps, ThreadPool& pool) {
  Configuration back(c.size());
  for (std::uint64_t t = 0; t < steps; ++t) {
    step_synchronous_threaded(a, c, back, pool);
    std::swap(c, back);
  }
}

}  // namespace tca::core
