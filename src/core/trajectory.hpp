#pragma once
// Trajectory analysis for deterministic update maps (DESIGN.md S3).
//
// A deterministic map F over configurations (a synchronous step, a full
// sequential sweep, or a block-sequential sweep) generates a rho-shaped
// orbit from any start: `transient` steps lead into a cycle of length
// `period` (period 1 = fixed point; the paper's Definition 3 kinds).
//
// Two detectors are provided:
//  * Brent's algorithm — O(transient + period) time, O(1) configurations of
//    memory; the default.
//  * A hashing tracer that records every visited configuration — O(t+p)
//    memory, used when the visited states themselves are wanted.
// The `ablation_cycle_detection` bench compares the two.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::core {

/// A deterministic successor map over configurations.
using StepFn = std::function<Configuration(const Configuration&)>;

/// Shape of a deterministic orbit.
struct Orbit {
  std::uint64_t transient = 0;  ///< steps before entering the cycle
  std::uint64_t period = 0;     ///< cycle length (1 = fixed point)
  Configuration entry;          ///< first configuration on the cycle
};

/// Finds the orbit of `start` under `step` with Brent's algorithm.
/// Returns std::nullopt if no repeat is found within `max_steps`
/// applications of `step` (cannot happen if 2^cells <= max_steps).
[[nodiscard]] std::optional<Orbit> find_orbit(const StepFn& step,
                                              const Configuration& start,
                                              std::uint64_t max_steps);

/// Orbit under the synchronous (parallel) global map.
[[nodiscard]] std::optional<Orbit> find_orbit_synchronous(
    const Automaton& a, const Configuration& start, std::uint64_t max_steps);

/// Orbit under one-full-sweep-of-permutation-`order` as the step map.
[[nodiscard]] std::optional<Orbit> find_orbit_sweep(
    const Automaton& a, const Configuration& start,
    std::span<const NodeId> order, std::uint64_t max_steps);

/// Full trace: all visited configurations plus the orbit shape.
struct Trace {
  std::vector<Configuration> states;  ///< states[0] = start; size = t + p
  std::uint64_t transient = 0;
  std::uint64_t period = 0;
};

/// Iterates `step` recording states until the first repeat (hash map).
/// Returns std::nullopt if no repeat within `max_states` states.
[[nodiscard]] std::optional<Trace> trace_orbit(const StepFn& step,
                                               const Configuration& start,
                                               std::uint64_t max_states);

/// StepFn adapters.
[[nodiscard]] StepFn synchronous_step_fn(const Automaton& a);
[[nodiscard]] StepFn sweep_step_fn(const Automaton& a,
                                   std::vector<NodeId> order);

}  // namespace tca::core
