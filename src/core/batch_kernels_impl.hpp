#pragma once
// Generic W-word batch stepper, instantiated once per ISA tier.
//
// This header is included ONLY by the per-tier translation units
// (core/batch_kernels_{scalar,avx2,avx512,neon}.cpp), each compiled under
// its own target flags (-mavx2, -mavx512f, ...; see
// src/core/CMakeLists.txt). Everything here lives in an ANONYMOUS
// namespace on purpose: a symbol compiled with AVX-512 flags must never
// be comdat-merged with the same symbol from a baseline translation unit,
// or the linker could hand a baseline caller a vector-encoded body it
// cannot execute. Internal linkage makes each tier's copy private by
// construction. Two further rules keep the shared comdats (std::vector,
// std::string, ...) safe:
//  * each WideWord width is instantiated by exactly ONE translation unit
//    per build (scalar=1, avx2|neon=4, avx512=8), and
//  * the tier units avoid std::string formatting (error messages are
//    plain literals; counter names are literal lookups), so they emit as
//    little shareable template code as possible — and the baseline units
//    are listed first in the target sources, so the linker prefers
//    baseline comdats for what remains.
//
// The kernels themselves are plain loops over WideWord<W>
// (core/simd_word.hpp); the per-TU target flags let the auto-vectorizer
// widen them. The circuit evaluation is the shared word-generic
// rules::PlanEvaluator, so every tier computes bit-identical results
// (tests/simd_kernels_test.cpp).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/batch_isa.hpp"
#include "core/batch_kernels.hpp"
#include "core/contracts.hpp"
#include "core/simd_word.hpp"
#include "obs/metrics.hpp"
#include "rules/circuit.hpp"
#include "rules/circuit_eval.hpp"
#include "runtime/error.hpp"

namespace tca::core {
namespace {

/// kWideLanePattern[i] has bit j set iff bit i of the lane index j is set
/// (duplicate of batch_kernels.cpp's kLanePattern; this copy has internal
/// linkage in the tier unit).
constexpr std::uint64_t kWideLanePattern[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

/// Lane-wise 64x64 bit transpose: the transpose64 block swap lifted to
/// WideWord, so lane t of every row transposes the t-th 64-lane block
/// independently. This is the store-side hot path — without it the
/// scalar per-block transposes would cap the widening speedup well below
/// the gate (docs/performance.md).
template <unsigned W>
void transpose64w(WideWord<W> m[64]) {
  using Word = WideWord<W>;
  Word mask = Word::broadcast(0x00000000FFFFFFFFULL);
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const Word t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

/// Literal per-tier step-counter name (no string building in tier units).
constexpr const char* tier_steps_name(BatchIsa isa) noexcept {
  switch (isa) {
    case BatchIsa::kScalar:
      return "engine.batch.steps.scalar";
    case BatchIsa::kNeon:
      return "engine.batch.steps.neon";
    case BatchIsa::kAvx2:
      return "engine.batch.steps.avx2";
    case BatchIsa::kAvx512:
      return "engine.batch.steps.avx512";
  }
  return "engine.batch.steps.scalar";
}

/// The W-word stepper. make_wide_stepper() has already validated
/// batch_support(a) before the factory runs, so construction only
/// compiles plans and sizes scratch.
template <unsigned W>
class WideStepperImpl final : public WideStepper {
 public:
  using Word = WideWord<W>;

  WideStepperImpl(const Automaton& a, BatchIsa isa) : a_(&a), isa_(isa) {
    plans_.resize(a.max_arity() + 1);
    for (std::size_t v = 0; v < a.size(); ++v) {
      const auto arity =
          static_cast<std::uint32_t>(a.inputs(static_cast<NodeId>(v)).size());
      if (plans_[arity].supported()) continue;
      plans_[arity] = rules::circuit_plan(a.rule(0), arity);
    }
    fanin_.resize(a.max_arity());
    code_planes_.resize(a.size() * W);
    code_next_.resize(a.size() * W);
  }

  [[nodiscard]] BatchIsa isa() const noexcept override { return isa_; }
  [[nodiscard]] unsigned lane_words() const noexcept override { return W; }

  TCA_HOT_PATH void step(const BatchSlice& in, BatchSlice& out) override {
    if (in.num_cells() != a_->size() || out.num_cells() != a_->size()) {
      throw tca::InvalidArgumentError("WideStepper::step: size mismatch",
                                      tca::ErrorCode::kSizeMismatch);
    }
    if (in.lane_words() != W || out.lane_words() != W) {
      throw tca::InvalidArgumentError(
          "WideStepper::step: slice lane_words does not match tier",
          tca::ErrorCode::kSizeMismatch);
    }
    if (&in == &out) {
      throw tca::InvalidArgumentError(
          "WideStepper::step: in and out must differ");
    }
    out.set_count(in.count());
    const std::uint64_t* src = in.planes().data();
    std::uint64_t* dst = out.planes().data();
    for (std::size_t v = 0; v < a_->size(); ++v) {
      eval_cell(static_cast<NodeId>(v), src).store(dst + v * W);
    }
    charge_step(in.count());
  }

  TCA_HOT_PATH void sweep(BatchSlice& slice,
                          std::span<const NodeId> order) override {
    if (slice.num_cells() != a_->size()) {
      throw tca::InvalidArgumentError("WideStepper::sweep: size mismatch",
                                      tca::ErrorCode::kSizeMismatch);
    }
    if (slice.lane_words() != W) {
      throw tca::InvalidArgumentError(
          "WideStepper::sweep: slice lane_words does not match tier",
          tca::ErrorCode::kSizeMismatch);
    }
    std::uint64_t* planes = slice.planes().data();
    sweep_planes(planes, order);
    static obs::Counter& sweeps = obs::counter("engine.batch.sweeps");
    sweeps.add(slice.count());
  }

  TCA_HOT_PATH void step_code_range(std::uint64_t first, std::size_t count,
                                    std::uint64_t* succ) override {
    require_code_width();
    constexpr std::size_t kCap = std::size_t{64} * W;
    for (std::size_t off = 0; off < count; off += kCap) {
      const std::size_t batch = std::min(kCap, count - off);
      load_code_block(first + off);
      for (std::size_t v = 0; v < a_->size(); ++v) {
        eval_cell(static_cast<NodeId>(v), code_planes_.data())
            .store(&code_next_[v * W]);
      }
      store_code_block(code_next_.data(), batch, succ + off);
      charge_step(batch);
    }
  }

  TCA_HOT_PATH void sweep_code_range(std::uint64_t first, std::size_t count,
                                     std::span<const NodeId> order,
                                     std::uint64_t* succ) override {
    require_code_width();
    static obs::Counter& sweeps = obs::counter("engine.batch.sweeps");
    constexpr std::size_t kCap = std::size_t{64} * W;
    for (std::size_t off = 0; off < count; off += kCap) {
      const std::size_t batch = std::min(kCap, count - off);
      load_code_block(first + off);
      sweep_planes(code_planes_.data(), order);
      store_code_block(code_planes_.data(), batch, succ + off);
      sweeps.add(batch);
    }
  }

 private:
  /// One output plane for cell v over `planes` (layout: plane i at words
  /// [i*W, (i+1)*W), as in BatchSlice).
  [[nodiscard]] Word eval_cell(NodeId v, const std::uint64_t* planes) {
    const auto slots = a_->inputs(v);
    const auto m = static_cast<std::uint32_t>(slots.size());
    for (std::uint32_t i = 0; i < m; ++i) {
      fanin_[i] = slots[i] == kConstZero
                      ? Word::zero()
                      : Word::load(planes + std::size_t{slots[i]} * W);
    }
    return eval_.eval(plans_[m], std::span<const Word>(fanin_.data(), m));
  }

  /// In-place sequential sweep over `planes` — each update is immediately
  /// visible to later ones (eval_cell gathers before the store).
  void sweep_planes(std::uint64_t* planes, std::span<const NodeId> order) {
    for (NodeId v : order) {
      if (v >= a_->size()) {
        throw tca::InvalidArgumentError(
            "WideStepper::sweep: node out of range");
      }
      eval_cell(v, planes).store(planes + std::size_t{v} * W);
    }
  }

  void require_code_width() const {
    if (a_->size() > 64) {
      throw tca::InvalidArgumentError(
          "WideStepper: state codes need <= 64 cells");
    }
  }

  /// code_planes_ := planes of codes [first, first + 64*W). Lanes past the
  /// caller's count compute garbage and are masked on store. Aligned bases
  /// use the lane-pattern fast path (no transpose; lane t of plane i >= 6
  /// broadcasts bit i of first + 64t).
  void load_code_block(std::uint64_t first) {
    const std::size_t n = a_->size();
    if ((first & 63) == 0) {
      const std::size_t low = n < 6 ? n : 6;
      for (std::size_t i = 0; i < low; ++i) {
        Word::broadcast(kWideLanePattern[i]).store(&code_planes_[i * W]);
      }
      for (std::size_t i = low; i < n; ++i) {
        Word w = Word::zero();
        for (unsigned t = 0; t < W; ++t) {
          const std::uint64_t base = first + std::uint64_t{64} * t;
          w.v[t] = ((base >> i) & 1u) != 0 ? ~std::uint64_t{0} : 0;
        }
        w.store(&code_planes_[i * W]);
      }
      return;
    }
    // Unaligned base: lane-wise gather of the codes, one lane-wise
    // transpose for all W blocks at once.
    Word m[64];
    for (unsigned j = 0; j < 64; ++j) {
      Word w;
      for (unsigned t = 0; t < W; ++t) {
        w.v[t] = first + std::uint64_t{64} * t + j;
      }
      m[j] = w;
    }
    transpose64w<W>(m);
    for (std::size_t i = 0; i < n; ++i) m[i].store(&code_planes_[i * W]);
  }

  /// out[j] := lane j of `planes` as a state code, j < count (<= 64*W).
  void store_code_block(const std::uint64_t* planes, std::size_t count,
                        std::uint64_t* out) {
    const std::size_t n = a_->size();
    Word m[64];
    for (std::size_t i = 0; i < n; ++i) m[i] = Word::load(planes + i * W);
    for (std::size_t i = n; i < 64; ++i) m[i] = Word::zero();
    transpose64w<W>(m);
    std::size_t written = 0;
    for (unsigned t = 0; t < W && written < count; ++t) {
      const std::size_t take = std::min<std::size_t>(64, count - written);
      for (std::size_t j = 0; j < take; ++j) out[written + j] = m[j].v[t];
      written += take;
    }
  }

  void charge_step(std::size_t lane_count) {
    static obs::Counter& steps = obs::counter("engine.batch.steps");
    static obs::Counter& lanes = obs::counter("engine.batch.lanes");
    static obs::Counter& tier_steps = obs::counter(tier_steps_name(isa_));
    steps.add();
    lanes.add(lane_count);
    tier_steps.add();
  }

  const Automaton* a_;
  BatchIsa isa_;
  std::vector<rules::CircuitPlan> plans_;  ///< indexed by arity
  std::vector<Word> fanin_;                ///< gathered input planes
  rules::PlanEvaluator<Word> eval_;
  std::vector<std::uint64_t> code_planes_;  ///< code-range pipeline scratch
  std::vector<std::uint64_t> code_next_;
};

template <unsigned W>
std::unique_ptr<WideStepper> make_wide_impl(const Automaton& a, BatchIsa isa) {
  return std::make_unique<WideStepperImpl<W>>(a, isa);
}

}  // namespace
}  // namespace tca::core
