// Baseline 64-lane tier: WideWord<1> under the project's default flags.
// Always compiled into every build; TCA_BATCH_ISA=scalar routes here and
// must reproduce the classic BatchStepper results (and counters)
// bit-identically.

#include "core/batch_kernels_impl.hpp"

namespace tca::core::detail {

std::unique_ptr<WideStepper> make_wide_stepper_scalar(const Automaton& a) {
  return make_wide_impl<1>(a, BatchIsa::kScalar);
}

}  // namespace tca::core::detail
