#include "core/trajectory.hpp"

#include <unordered_map>
#include <utility>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"

namespace tca::core {

std::optional<Orbit> find_orbit(const StepFn& step, const Configuration& start,
                                std::uint64_t max_steps) {
  // Brent: find the period first (power-of-two teleporting tortoise), then
  // the transient by aligned walkers.
  std::uint64_t power = 1;
  std::uint64_t period = 0;
  Configuration tortoise = start;
  Configuration hare = step(start);
  std::uint64_t applied = 1;
  std::uint64_t lam = 1;
  while (tortoise != hare) {
    if (applied >= max_steps) return std::nullopt;
    if (power == lam) {
      tortoise = hare;
      power *= 2;
      lam = 0;
    }
    hare = step(hare);
    ++applied;
    ++lam;
  }
  period = lam;

  // Transient: walkers `period` apart advance together; meeting point is the
  // cycle entry.
  Configuration ahead = start;
  for (std::uint64_t i = 0; i < period; ++i) ahead = step(ahead);
  Configuration behind = start;
  std::uint64_t mu = 0;
  while (behind != ahead) {
    behind = step(behind);
    ahead = step(ahead);
    ++mu;
  }
  return Orbit{mu, period, std::move(behind)};
}

std::optional<Orbit> find_orbit_synchronous(const Automaton& a,
                                            const Configuration& start,
                                            std::uint64_t max_steps) {
  return find_orbit(synchronous_step_fn(a), start, max_steps);
}

std::optional<Orbit> find_orbit_sweep(const Automaton& a,
                                      const Configuration& start,
                                      std::span<const NodeId> order,
                                      std::uint64_t max_steps) {
  return find_orbit(
      sweep_step_fn(a, std::vector<NodeId>(order.begin(), order.end())), start,
      max_steps);
}

std::optional<Trace> trace_orbit(const StepFn& step, const Configuration& start,
                                 std::uint64_t max_states) {
  Trace trace;
  std::unordered_map<Configuration, std::uint64_t, ConfigurationHash> seen;
  Configuration current = start;
  for (std::uint64_t t = 0; t < max_states; ++t) {
    const auto [it, inserted] = seen.emplace(current, t);
    if (!inserted) {
      trace.transient = it->second;
      trace.period = t - it->second;
      return trace;
    }
    trace.states.push_back(current);
    current = step(current);
  }
  return std::nullopt;
}

StepFn synchronous_step_fn(const Automaton& a) {
  return [&a](const Configuration& c) { return step_synchronous(a, c); };
}

StepFn sweep_step_fn(const Automaton& a, std::vector<NodeId> order) {
  return [&a, order = std::move(order)](const Configuration& c) {
    Configuration next = c;
    apply_sequence(a, next, order);
    return next;
  };
}

}  // namespace tca::core
