#pragma once
// The one FNV-1a 64 implementation (docs/service.md, docs/robustness.md).
//
// Three subsystems checksum or content-address byte strings with FNV-1a:
// the checkpoint framing (runtime/checkpoint.cpp), the Configuration hash
// (core/configuration.cpp, a word-wise variant with extra mixing), and the
// service result cache's content-address digests (service/query.cpp).
// They used to carry private copies of the same constants; this header is
// now the single definition, so a transcription error cannot silently
// fork the hash between the writer and the validator of a persisted
// artifact.
//
// Header-only and dependency-free on purpose: runtime/ sits below core/
// in the link order but shares its include root, so everything in src/
// can use these without a new library edge.

#include <cstdint>
#include <string_view>

namespace tca::core {

/// FNV-1a 64 parameters (Fowler-Noll-Vo, the standard 64-bit basis/prime).
inline constexpr std::uint64_t kFnvOffsetBasis64 = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ull;

/// One byte-wise FNV-1a step (exposed for incremental hashing).
[[nodiscard]] constexpr std::uint64_t fnv1a64_byte(std::uint64_t h,
                                                   std::uint8_t byte) noexcept {
  return (h ^ byte) * kFnvPrime64;
}

/// FNV-1a 64 over arbitrary bytes. This is the checksum of the checkpoint
/// framing and the content-address digest of the service result cache —
/// changing it invalidates every persisted artifact, so don't.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffsetBasis64;
  for (const char c : bytes) {
    h = fnv1a64_byte(h, static_cast<std::uint8_t>(c));
  }
  return h;
}

}  // namespace tca::core
