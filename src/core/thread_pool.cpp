#include "core/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <system_error>

#include "core/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/fault.hpp"

// tca-lint: relaxed-ok(next_chunk_ is a pure work-stealing cursor — any
// interleaving of fetch_add yields disjoint chunks; abandon_ uses
// acquire/release so chunk writes are visible before the flag; the run
// descriptor itself is published via mutex_, see thread_pool.hpp)

namespace tca::core {
namespace {

/// Microseconds between two steady_clock points, clamped at zero.
std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) noexcept {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned extra = num_threads - 1;  // calling thread is a worker too
  workers_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i) {
    try {
      if (runtime::fault::should_fail_thread_spawn()) {
        // tca-lint: allow(raw-throw) simulated std::thread spawn failure —
        // must be the same std::system_error a real spawn failure raises.
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "fault plan: injected thread-spawn failure");
      }
      workers_.emplace_back([this] { worker_loop(); });
    } catch (const std::system_error& e) {
      // Degrade to however many workers we managed (possibly none: serial
      // execution on the calling thread). The pool stays fully functional,
      // just narrower — count + log the degradation once and move on
      // (tests assert on the counter; see docs/observability.md).
      static obs::Counter& degraded =
          obs::counter("thread_pool.spawn_degraded");
      degraded.add();
      // Pool narrowing is a rung of the same graceful-degradation ladder
      // the Supervisor walks for the engines; expose it under the shared
      // engine.degrade.* family so dashboards see one surface.
      static obs::Counter& ladder =
          obs::counter("engine.degrade.pool-serial");
      ladder.add();
      obs::log_event(
          obs::LogLevel::kWarn, "thread_pool.spawn_degraded",
          {{"requested_workers", extra},
           {"spawned_workers", static_cast<unsigned>(workers_.size())},
           {"width", static_cast<unsigned>(workers_.size()) + 1},
           {"error", e.what()}});
      break;
    }
  }
  static obs::Gauge& width = obs::gauge("thread_pool.width");
  width.set(static_cast<std::int64_t>(workers_.size()) + 1);
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::latch_error(std::exception_ptr error) {
  LockGuard lock(error_mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

std::exception_ptr ThreadPool::take_error() {
  LockGuard lock(error_mutex_);
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  return error;
}

/// Takes chunks off the shared cursor until the range is exhausted, a
/// chunk throws, or the run's control reports a stop. `run` is the
/// caller's private snapshot of the descriptor (copied under mutex_), so
/// this function touches no guarded state. Exceptions are latched into
/// first_error_ and flip abandon_ so other participants stop picking up
/// new chunks; they never escape a worker thread.
TCA_HOT_PATH void ThreadPool::drain(const Run& run) {
  for (;;) {
    if (abandon_.load(std::memory_order_acquire)) return;
    if (run.control != nullptr && run.control->should_stop()) {
      abandon_.store(true, std::memory_order_release);
      return;
    }
    const std::size_t index =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t b = run.begin + index * run.chunk;
    if (b >= run.end || b < run.begin /* overflow */) return;
    const std::size_t e = std::min(run.end, b + run.chunk);
    try {
      runtime::fault::check_chunk();
      // Per-chunk metering: chunks are coarse (kChunksPerThread per
      // participant), so two clock reads per chunk stay in the noise.
      static obs::Counter& chunks = obs::counter("thread_pool.chunks");
      static obs::Histogram& chunk_us = obs::histogram(
          "thread_pool.chunk_us", obs::default_latency_bounds_us());
      const bool metered = obs::metrics_enabled();
      const auto t0 = metered ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
      (*run.fn)(b, e);
      if (metered) {
        chunks.add();
        chunk_us.record(elapsed_us(t0, std::chrono::steady_clock::now()));
      }
    } catch (...) {
      latch_error(std::current_exception());
      abandon_.store(true, std::memory_order_release);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seen = 0;
  for (;;) {
    Run run;
    std::uint64_t wait_us = 0;
    bool metered = false;
    {
      LockGuard lock(mutex_);
      while (!stopping_ && (generation_ == last_seen || run_.fn == nullptr)) {
        start_cv_.wait(lock);
      }
      if (stopping_) return;
      last_seen = generation_;
      run = run_;  // private snapshot; run_ stays valid until pending_ == 0
      // Queue wait: how long the run sat posted before this worker picked
      // it up (run_posted_ is written under the same mutex).
      metered = obs::metrics_enabled();
      if (metered) {
        wait_us = elapsed_us(run_posted_, std::chrono::steady_clock::now());
      }
    }
    if (metered) {
      static obs::Histogram& dispatch_wait_us = obs::histogram(
          "thread_pool.dispatch_wait_us", obs::default_latency_bounds_us());
      dispatch_wait_us.record(wait_us);
    }
    drain(run);
    {
      LockGuard lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t align,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  (void)parallel_for(begin, end, align, fn, nullptr);
}

runtime::StopReason ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t align,
    const std::function<void(std::size_t, std::size_t)>& fn,
    runtime::RunControl* control) {
  if (begin >= end) return runtime::StopReason::kNone;
  if (align == 0) align = 1;
  static obs::Counter& runs = obs::counter("thread_pool.parallel_for");
  runs.add();
  const std::size_t total = end - begin;
  const std::size_t parts = size() * kChunksPerThread;
  // Chunk size rounded up to the alignment unit.
  const std::size_t chunk =
      ((total + parts - 1) / parts + align - 1) / align * align;

  {
    // A previous run's exception is consumed by the take_error() below
    // before parallel_for returns, so the latch is clear here; clearing
    // again keeps the invariant local instead of depending on it.
    LockGuard lock(error_mutex_);
    first_error_ = nullptr;
  }
  Run run;
  {
    LockGuard lock(mutex_);
    run_.fn = &fn;
    run_.control = control;
    run_.begin = begin;
    run_.end = end;
    run_.chunk = chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    abandon_.store(false, std::memory_order_relaxed);
    pending_ = static_cast<unsigned>(workers_.size());
    run_posted_ = std::chrono::steady_clock::now();
    ++generation_;
    run = run_;  // the posting thread participates off the same snapshot
  }
  start_cv_.notify_all();
  drain(run);
  {
    LockGuard lock(mutex_);
    while (pending_ != 0) done_cv_.wait(lock);
    run_.fn = nullptr;
    run_.control = nullptr;
  }
  if (std::exception_ptr error = take_error()) {
    std::rethrow_exception(error);
  }
  if (control != nullptr) return control->check();
  return runtime::StopReason::kNone;
}

}  // namespace tca::core
