#include "core/thread_pool.hpp"

#include <algorithm>

namespace tca::core {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned extra = num_threads - 1;  // calling thread is a worker too
  tasks_.resize(extra);
  workers_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t last_seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    Task task;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || (generation_ != last_seen && fn_ != nullptr);
      });
      if (stopping_) return;
      last_seen = generation_;
      fn = fn_;
      task = tasks_[index];
    }
    if (task.begin < task.end) (*fn)(task.begin, task.end);
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t align,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (align == 0) align = 1;
  const std::size_t total = end - begin;
  const unsigned parts = size();
  // Chunk size rounded up to the alignment unit.
  const std::size_t chunk =
      ((total + parts - 1) / parts + align - 1) / align * align;

  Task own{begin, std::min(end, begin + chunk)};
  {
    std::lock_guard lock(mutex_);
    std::size_t cursor = own.end;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const std::size_t b = std::min(end, cursor);
      const std::size_t e = std::min(end, b + chunk);
      tasks_[i] = Task{b, e};
      cursor = e;
    }
    fn_ = &fn;
    pending_ = static_cast<unsigned>(tasks_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  fn(own.begin, own.end);
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    fn_ = nullptr;
  }
}

}  // namespace tca::core
