#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <system_error>

#include "runtime/fault.hpp"

namespace tca::core {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned extra = num_threads - 1;  // calling thread is a worker too
  workers_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i) {
    try {
      if (runtime::fault::should_fail_thread_spawn()) {
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "fault plan: injected thread-spawn failure");
      }
      workers_.emplace_back([this] { worker_loop(); });
    } catch (const std::system_error& e) {
      // Degrade to however many workers we managed (possibly none: serial
      // execution on the calling thread). The pool stays fully functional,
      // just narrower — warn once and move on.
      std::fprintf(stderr,
                   "tca::core::ThreadPool: spawned %u of %u worker threads "
                   "(%s); degrading to %u-wide execution\n",
                   static_cast<unsigned>(workers_.size()), extra, e.what(),
                   static_cast<unsigned>(workers_.size()) + 1);
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

/// Takes chunks off the shared cursor until the range is exhausted, a
/// chunk throws, or the run's control reports a stop. Exceptions are
/// latched into first_error_ and flip abandon_ so other participants stop
/// picking up new chunks; they never escape a worker thread.
void ThreadPool::drain() {
  const auto* fn = fn_;
  runtime::RunControl* control = control_;
  const std::size_t begin = run_begin_;
  const std::size_t end = run_end_;
  const std::size_t chunk = run_chunk_;
  for (;;) {
    if (abandon_.load(std::memory_order_acquire)) return;
    if (control != nullptr && control->should_stop()) {
      abandon_.store(true, std::memory_order_release);
      return;
    }
    const std::size_t index =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t b = begin + index * chunk;
    if (b >= end || b < begin /* overflow */) return;
    const std::size_t e = std::min(end, b + chunk);
    try {
      runtime::fault::check_chunk();
      (*fn)(b, e);
    } catch (...) {
      {
        std::lock_guard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      abandon_.store(true, std::memory_order_release);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || (generation_ != last_seen && fn_ != nullptr);
      });
      if (stopping_) return;
      last_seen = generation_;
    }
    drain();
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t align,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  (void)parallel_for(begin, end, align, fn, nullptr);
}

runtime::StopReason ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t align,
    const std::function<void(std::size_t, std::size_t)>& fn,
    runtime::RunControl* control) {
  if (begin >= end) return runtime::StopReason::kNone;
  if (align == 0) align = 1;
  const std::size_t total = end - begin;
  const std::size_t parts = size() * kChunksPerThread;
  // Chunk size rounded up to the alignment unit.
  const std::size_t chunk =
      ((total + parts - 1) / parts + align - 1) / align * align;

  {
    std::lock_guard lock(mutex_);
    fn_ = &fn;
    control_ = control;
    run_begin_ = begin;
    run_end_ = end;
    run_chunk_ = chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    abandon_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    pending_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  drain();
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    fn_ = nullptr;
    control_ = nullptr;
  }
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (control != nullptr) return control->check();
  return runtime::StopReason::kNone;
}

}  // namespace tca::core
