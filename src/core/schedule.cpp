#include "core/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::core {

CyclicSchedule::CyclicSchedule(std::vector<NodeId> order)
    : order_(std::move(order)) {
  if (order_.empty()) {
    throw tca::InvalidArgumentError("CyclicSchedule: empty order");
  }
}

NodeId CyclicSchedule::next() {
  const NodeId v = order_[pos_];
  pos_ = (pos_ + 1) % order_.size();
  return v;
}

RandomUniformSchedule::RandomUniformSchedule(std::size_t n, std::uint64_t seed)
    : n_(n), seed_(seed), rng_(seed) {
  if (n == 0) throw tca::InvalidArgumentError("RandomUniformSchedule: n == 0");
}

NodeId RandomUniformSchedule::next() {
  std::uniform_int_distribution<std::size_t> dist(0, n_ - 1);
  return static_cast<NodeId>(dist(rng_));
}

void RandomUniformSchedule::reset() { rng_.seed(seed_); }

RandomSweepSchedule::RandomSweepSchedule(std::size_t n, std::uint64_t seed)
    : seed_(seed), rng_(seed), order_(n) {
  if (n == 0) throw tca::InvalidArgumentError("RandomSweepSchedule: n == 0");
  std::iota(order_.begin(), order_.end(), NodeId{0});
  reshuffle();
}

void RandomSweepSchedule::reshuffle() {
  std::shuffle(order_.begin(), order_.end(), rng_);
  pos_ = 0;
}

NodeId RandomSweepSchedule::next() {
  if (pos_ == order_.size()) reshuffle();
  return order_[pos_++];
}

void RandomSweepSchedule::reset() {
  rng_.seed(seed_);
  std::iota(order_.begin(), order_.end(), NodeId{0});
  reshuffle();
}

StarvingSchedule::StarvingSchedule(std::size_t n, NodeId starved)
    : n_(n), starved_(starved) {
  if (n < 2) throw tca::InvalidArgumentError("StarvingSchedule: n < 2");
  if (starved >= n) {
    throw tca::InvalidArgumentError(
        "StarvingSchedule: starved node out of range",
        tca::ErrorCode::kOutOfRange);
  }
}

NodeId StarvingSchedule::next() {
  NodeId v = static_cast<NodeId>(pos_ % (n_ - 1));
  if (v >= starved_) ++v;  // skip the starved node
  ++pos_;
  return v;
}

std::vector<NodeId> identity_order(std::size_t n) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  return order;
}

std::vector<NodeId> reversed_order(std::size_t n) {
  auto order = identity_order(n);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<NodeId> random_permutation(std::size_t n, std::mt19937_64& rng) {
  auto order = identity_order(n);
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

bool is_bounded_fair(std::span<const NodeId> seq, std::size_t n,
                     std::size_t bound) {
  if (bound < n) return false;
  if (seq.size() < bound) return false;
  for (std::size_t start = 0; start + bound <= seq.size(); ++start) {
    std::vector<bool> seen(n, false);
    std::size_t distinct = 0;
    for (std::size_t i = start; i < start + bound; ++i) {
      const NodeId v = seq[i];
      if (v < n && !seen[v]) {
        seen[v] = true;
        ++distinct;
      }
    }
    if (distinct != n) return false;
  }
  return true;
}

std::vector<NodeId> take(Schedule& schedule, std::size_t count) {
  schedule.reset();
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(schedule.next());
  return out;
}

}  // namespace tca::core
