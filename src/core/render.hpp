#pragma once
// Text rendering of configurations, space-time diagrams and 2-D grids
// (DESIGN.md S3). The examples and the CLI all draw through this module,
// so glyphs and layout are consistent and tested.

#include <cstdint>
#include <string>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "core/packed2d.hpp"
#include "core/simulation.hpp"

namespace tca::core {

/// Glyphs used for dead/live cells.
struct RenderStyle {
  char zero = '.';
  char one = '#';
};

/// One configuration as a single line.
[[nodiscard]] std::string render_row(const Configuration& c,
                                     RenderStyle style = {});

/// Space-time diagram of `steps + 1` rows (the start plus `steps`
/// synchronous steps), one line per time step, earliest first.
[[nodiscard]] std::string render_spacetime(const Automaton& a,
                                           const Configuration& start,
                                           std::uint64_t steps,
                                           RenderStyle style = {});

/// Space-time diagram driven by a Simulation's update discipline (the
/// simulation is advanced by `steps` macro steps).
[[nodiscard]] std::string render_spacetime(Simulation& sim,
                                           std::uint64_t steps,
                                           RenderStyle style = {});

/// A 2-D torus grid, one line per row.
[[nodiscard]] std::string render_grid(const TorusGrid& grid,
                                      RenderStyle style = {});

}  // namespace tca::core
