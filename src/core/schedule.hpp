#pragma once
// Node-update schedules for sequential CA (DESIGN.md S3; paper footnote 2).
//
// The paper quantifies over ARBITRARY sequences of node indices — "not
// necessarily a (finite or infinite) permutation" — subject, when
// convergence is claimed, to a fairness condition: a fixed upper bound on
// the number of steps before any given node gets its turn. These
// generators provide the sequence families used in experiments, plus the
// bounded-fairness checker.

#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace tca::core {

using graph::NodeId;

/// An (conceptually infinite) sequence of node indices.
class Schedule {
 public:
  virtual ~Schedule() = default;
  /// The next node to update.
  virtual NodeId next() = 0;
  /// Restarts the sequence from its beginning (re-seeds deterministic
  /// generators to their construction state).
  virtual void reset() = 0;
};

/// Repeats a fixed permutation forever: pi(0), pi(1), ..., pi(n-1), pi(0)...
/// Bounded-fair with bound n.
class CyclicSchedule final : public Schedule {
 public:
  explicit CyclicSchedule(std::vector<NodeId> order);
  NodeId next() override;
  void reset() override { pos_ = 0; }

 private:
  std::vector<NodeId> order_;
  std::size_t pos_ = 0;
};

/// Independent uniform draws over {0..n-1}. Fair with probability 1 but not
/// bounded-fair for any fixed bound.
class RandomUniformSchedule final : public Schedule {
 public:
  RandomUniformSchedule(std::size_t n, std::uint64_t seed);
  NodeId next() override;
  void reset() override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
};

/// A fresh uniformly-random permutation each sweep. Bounded-fair with bound
/// 2n-1.
class RandomSweepSchedule final : public Schedule {
 public:
  RandomSweepSchedule(std::size_t n, std::uint64_t seed);
  NodeId next() override;
  void reset() override;

 private:
  void reshuffle();
  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::vector<NodeId> order_;
  std::size_t pos_ = 0;
};

/// Cycles over all nodes EXCEPT one permanently starved node — an unfair
/// sequence used to show the necessity of the fairness condition.
/// Requires n >= 2.
class StarvingSchedule final : public Schedule {
 public:
  StarvingSchedule(std::size_t n, NodeId starved);
  NodeId next() override;
  void reset() override { pos_ = 0; }

 private:
  std::size_t n_;
  NodeId starved_;
  std::size_t pos_ = 0;
};

/// The identity permutation 0, 1, ..., n-1.
[[nodiscard]] std::vector<NodeId> identity_order(std::size_t n);

/// n-1, ..., 1, 0.
[[nodiscard]] std::vector<NodeId> reversed_order(std::size_t n);

/// Uniformly random permutation (Fisher-Yates with the supplied RNG).
[[nodiscard]] std::vector<NodeId> random_permutation(std::size_t n,
                                                     std::mt19937_64& rng);

/// True if, within `seq`, every window of `bound` consecutive entries
/// contains every node of {0..n-1} — the paper's sufficient fairness
/// condition ("a fixed upper bound on the number of sequential steps before
/// any given node gets its turn"), checked over the given finite prefix.
[[nodiscard]] bool is_bounded_fair(std::span<const NodeId> seq, std::size_t n,
                                   std::size_t bound);

/// Materializes the first `count` draws of a schedule (resets it first).
[[nodiscard]] std::vector<NodeId> take(Schedule& schedule, std::size_t count);

}  // namespace tca::core
