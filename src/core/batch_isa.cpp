#include "core/batch_isa.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/annotations.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace tca::core {
namespace {

/// Whether the binary carries the tier's translation unit at all
/// (TCA_HAVE_TIER_* come from the flag probes in src/core/CMakeLists.txt).
constexpr bool tier_compiled(BatchIsa isa) noexcept {
  switch (isa) {
    case BatchIsa::kScalar:
      return true;
    case BatchIsa::kNeon:
#if defined(TCA_HAVE_TIER_NEON)
      return true;
#else
      return false;
#endif
    case BatchIsa::kAvx2:
#if defined(TCA_HAVE_TIER_AVX2)
      return true;
#else
      return false;
#endif
    case BatchIsa::kAvx512:
#if defined(TCA_HAVE_TIER_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Whether THIS cpu can execute the tier's instructions. The generic
/// kernels use only bitwise/shift/broadcast vector ops, so AVX-512F alone
/// suffices for the 512-lane tier and NEON is the aarch64 baseline.
bool cpu_supports(BatchIsa isa) noexcept {
  switch (isa) {
    case BatchIsa::kScalar:
      return true;
    case BatchIsa::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is architecturally baseline on aarch64
#else
      return false;
#endif
    case BatchIsa::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case BatchIsa::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

BatchIsa probe_best() noexcept {
  // Widest first; kScalar is always available.
  for (const BatchIsa isa :
       {BatchIsa::kAvx512, BatchIsa::kAvx2, BatchIsa::kNeon}) {
    if (isa_available(isa)) return isa;
  }
  return BatchIsa::kScalar;
}

/// One warn per DISTINCT override value, not per stepper: parallel
/// phase-space builds construct a stepper per worker chunk, and a single
/// misconfigured env var should not flood run manifests.
struct DowngradeLatch {
  Mutex mu;
  std::string last_key TCA_GUARDED_BY(mu);
};

DowngradeLatch& latch() {
  static DowngradeLatch l;
  return l;
}

/// Records the resolution; when it is a downgrade not yet reported for
/// this override value, bumps engine.batch.fallback and emits the warn
/// event (same event name as engine declines, distinguished by context).
void note_resolution(const char* requested, const IsaResolution& r) {
  std::string key = requested != nullptr ? requested : "(default)";
  key += "->";
  key += isa_name(r.effective);
  bool emit = false;
  {
    LockGuard lock(latch().mu);
    if (latch().last_key != key) {
      latch().last_key = std::move(key);
      emit = r.downgraded;
    }
  }
  if (!emit) return;
  static obs::Counter& fallbacks = obs::counter("engine.batch.fallback");
  fallbacks.add();
  obs::log_event(
      obs::LogLevel::kWarn, "engine.batch.fallback",
      {{"context", "isa-dispatch"},
       {"reason", r.note != nullptr ? r.note : "unknown"},
       {"requested", requested != nullptr ? requested : ""},
       {"effective", isa_name(r.effective)}});
}

}  // namespace

const char* isa_name(BatchIsa isa) noexcept {
  switch (isa) {
    case BatchIsa::kScalar:
      return "scalar";
    case BatchIsa::kNeon:
      return "neon";
    case BatchIsa::kAvx2:
      return "avx2";
    case BatchIsa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

unsigned isa_lane_words(BatchIsa isa) noexcept {
  switch (isa) {
    case BatchIsa::kScalar:
      return 1;
    case BatchIsa::kNeon:
    case BatchIsa::kAvx2:
      return 4;
    case BatchIsa::kAvx512:
      return 8;
  }
  return 1;
}

bool isa_available(BatchIsa isa) noexcept {
  return tier_compiled(isa) && cpu_supports(isa);
}

BatchIsa best_supported_isa() noexcept {
  static const BatchIsa best = probe_best();
  return best;
}

IsaResolution resolve_batch_isa() {
  IsaResolution r;
  r.effective = best_supported_isa();
  const char* env = std::getenv("TCA_BATCH_ISA");
  if (env == nullptr || *env == '\0') {
    note_resolution(nullptr, r);
    return r;
  }
  bool known = false;
  for (unsigned i = 0; i < kNumBatchIsa; ++i) {
    const auto isa = static_cast<BatchIsa>(i);
    if (std::strcmp(env, isa_name(isa)) != 0) continue;
    known = true;
    if (isa_available(isa)) {
      r.effective = isa;
    } else {
      r.downgraded = true;
      r.note = "requested ISA unavailable on this host";
    }
    break;
  }
  if (!known) {
    r.downgraded = true;
    r.note = "unrecognized TCA_BATCH_ISA value";
  }
  note_resolution(env, r);
  return r;
}

}  // namespace tca::core
