#include "core/block_sequential.hpp"

#include <stdexcept>
#include <vector>

#include "runtime/error.hpp"

namespace tca::core {

BlockOrder::BlockOrder(std::vector<std::vector<NodeId>> blocks, std::size_t n)
    : blocks_(std::move(blocks)) {
  std::vector<bool> seen(n, false);
  std::size_t total = 0;
  for (const auto& block : blocks_) {
    if (block.empty()) {
      throw tca::InvalidArgumentError("BlockOrder: empty block");
    }
    for (NodeId v : block) {
      if (v >= n) {
        throw tca::InvalidArgumentError("BlockOrder: id out of range",
                                        tca::ErrorCode::kOutOfRange);
      }
      if (seen[v]) {
        throw tca::InvalidArgumentError("BlockOrder: duplicate node");
      }
      seen[v] = true;
      ++total;
    }
  }
  if (total != n) {
    throw tca::InvalidArgumentError("BlockOrder: not a partition of all nodes");
  }
}

BlockOrder BlockOrder::synchronous(std::size_t n) {
  std::vector<NodeId> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<NodeId>(v);
  return BlockOrder({std::move(all)}, n);
}

BlockOrder BlockOrder::even_odd(std::size_t n) {
  std::vector<NodeId> evens, odds;
  for (std::size_t v = 0; v < n; ++v) {
    (v % 2 == 0 ? evens : odds).push_back(static_cast<NodeId>(v));
  }
  std::vector<std::vector<NodeId>> blocks;
  if (!evens.empty()) blocks.push_back(std::move(evens));
  if (!odds.empty()) blocks.push_back(std::move(odds));
  return BlockOrder(std::move(blocks), n);
}

BlockOrder BlockOrder::sequential(std::span<const NodeId> order) {
  std::vector<std::vector<NodeId>> blocks;
  blocks.reserve(order.size());
  for (NodeId v : order) blocks.push_back({v});
  return BlockOrder(std::move(blocks), order.size());
}

std::size_t step_block_sequential(const Automaton& a, Configuration& c,
                                  const BlockOrder& order) {
  if (c.size() != a.size()) {
    throw tca::InvalidArgumentError(
        "step_block_sequential: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  std::size_t changes = 0;
  std::vector<State> next;  // staged writes for the current block
  for (const auto& block : order.blocks()) {
    next.resize(block.size());
    for (std::size_t i = 0; i < block.size(); ++i) {
      next[i] = a.eval_node(block[i], c);
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (c.get(block[i]) != next[i]) {
        c.set(block[i], next[i]);
        ++changes;
      }
    }
  }
  return changes;
}

}  // namespace tca::core
