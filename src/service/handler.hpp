#pragma once
// Transport-independent request handling for tcad (docs/service.md).
//
// One RequestHandler owns the full service brain — result cache,
// request coalescer, query engine — and maps a request JSON document to a
// response JSON document. The socket server (service/server.hpp) and the
// in-process tests/oracles drive the SAME object, which is what lets the
// service-vs-library PBT oracle assert bit-identical answers without
// standing up sockets.
//
// Request flow for op=query:
//   1. parse + canonicalize (service/query.hpp);
//   2. cache lookup — memory then disk ("source": "memory-cache" /
//      "disk-cache");
//   3. coalesce — identical concurrent queries attach to the in-flight
//      leader ("source": "coalesced");
//   4. the leader computes via QueryEngine, publishes to followers, and
//      inserts COMPLETE results into the cache ("source": "computed").
//      Truncated or failed outcomes are never cached — a later request
//      with a larger budget must be able to finish the job (and can,
//      via the resume checkpoints).
//
// Counters: service.requests, service.requests.{ok,truncated,error},
// plus the cache/coalescer/engine families documented in their headers.
// Latency lands in service.request_us.

// tca-lint: relaxed-ok(the active-request counter is a monotone in/out
// tally polled for equality with zero after worker threads are joined; no
// payload data is published through it, so no acquire/release pairing is
// needed)

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "runtime/budget.hpp"
#include "service/cache.hpp"
#include "service/coalesce.hpp"
#include "service/engine.hpp"

namespace tca::service {

/// Protocol revision reported in every response and in the manifest.
inline constexpr std::uint32_t kProtocolVersion = 1;

struct HandlerOptions {
  CacheOptions cache;
  EngineOptions engine;
};

class RequestHandler {
 public:
  explicit RequestHandler(HandlerOptions options);

  RequestHandler(const RequestHandler&) = delete;
  RequestHandler& operator=(const RequestHandler&) = delete;

  /// Handles one request document and returns the response document.
  /// Never throws: malformed requests become {"status":"error",...}
  /// responses. `token` cancels the compute cooperatively (server
  /// shutdown); pass a default token for in-process use.
  [[nodiscard]] std::string handle(const std::string& request_json,
                                   runtime::CancelToken token = {});

  /// Requests currently inside handle() (the zero-leaked-requests check
  /// at shutdown: must be 0 after the listener drains).
  [[nodiscard]] std::uint64_t active_requests() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] QueryEngine& engine() noexcept { return engine_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }

 private:
  std::string handle_query(const JsonValue& request, std::uint64_t id,
                           runtime::CancelToken token);

  ResultCache cache_;
  Coalescer coalescer_;
  QueryEngine engine_;
  std::atomic<std::uint64_t> active_{0};
};

}  // namespace tca::service
