#include "service/handler.hpp"

// tca-lint: relaxed-ok(the active-request counter is a monotone in/out
// tally polled for equality with zero after the server joins its worker
// threads; no payload data is published through it, so no
// acquire/release pairing is needed)

#include <chrono>
#include <exception>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"
#include "service/json_parse.hpp"

namespace tca::service {
namespace {

/// Uniform error response body.
std::string error_response(std::uint64_t id, ErrorCode code,
                           const std::string& message) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("v", kProtocolVersion);
  w.kv("id", id);
  w.kv("status", "error");
  w.key("error").begin_object();
  w.kv("code", error_code_name(code));
  w.kv("message", message);
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string query_response(std::uint64_t id, const char* source,
                           const std::string& result_json) {
  // result_json is a pre-rendered JSON object (QueryResult::to_json or a
  // cached copy of one); splice it in verbatim.
  obs::JsonWriter w;
  w.begin_object();
  w.kv("v", kProtocolVersion);
  w.kv("id", id);
  w.kv("status", "ok");
  w.kv("source", source);
  w.end_object();
  std::string out = std::move(w).str();
  out.insert(out.size() - 1, ",\"result\":" + result_json);
  return out;
}

std::string truncated_response(std::uint64_t id, const QueryOutcome& outcome) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("v", kProtocolVersion);
  w.kv("id", id);
  w.kv("status", "truncated");
  w.kv("stop_reason", runtime::stop_reason_name(outcome.stop_reason));
  w.kv("states_done", outcome.states_done);
  w.kv("states_total", outcome.states_total);
  w.kv("resumable", outcome.states_done > 0);
  w.end_object();
  return std::move(w).str();
}

RequestBudget parse_budget(const JsonValue& request) {
  RequestBudget budget;
  if (const JsonValue* b = request.find("budget");
      b != nullptr && !b->is_null()) {
    budget.max_states =
        b->u64_or("max_states", runtime::RunBudget::kUnlimited);
    budget.wall_ms = b->u64_or("wall_ms", 0);
  }
  return budget;
}

}  // namespace

RequestHandler::RequestHandler(HandlerOptions options)
    : cache_(options.cache), engine_(options.engine) {}

std::string RequestHandler::handle(const std::string& request_json,
                                   runtime::CancelToken token) {
  TCA_SPAN("service_request");
  static obs::Counter& requests = obs::counter("service.requests");
  static obs::Histogram& latency_us = obs::histogram(
      "service.request_us", obs::default_latency_bounds_us());

  const auto t0 = std::chrono::steady_clock::now();
  requests.add();
  active_.fetch_add(1, std::memory_order_relaxed);
  std::string response;
  std::uint64_t id = 0;
  try {
    const JsonValue request = parse_json(request_json);
    if (!request.is_object()) {
      throw InvalidArgumentError("request frame must be a JSON object");
    }
    id = request.u64_or("id", 0);
    const std::string op = request.string_or("op", "query");
    if (op == "ping") {
      obs::JsonWriter w;
      w.begin_object();
      w.kv("v", kProtocolVersion);
      w.kv("id", id);
      w.kv("status", "ok");
      w.kv("op", "ping");
      w.end_object();
      response = std::move(w).str();
    } else if (op == "counters") {
      // A live counter snapshot (the full manifest is written at
      // shutdown); loadgen diffs these against its baseline.
      const obs::MetricsSnapshot snap = obs::snapshot_metrics();
      obs::JsonWriter w;
      w.begin_object();
      w.kv("v", kProtocolVersion);
      w.kv("id", id);
      w.kv("status", "ok");
      w.key("counters").begin_object();
      for (const auto& [name, value] : snap.counters) w.kv(name, value);
      w.end_object();
      w.key("gauges").begin_object();
      for (const auto& [name, value] : snap.gauges) {
        w.kv(name, static_cast<std::int64_t>(value));
      }
      w.end_object();
      w.end_object();
      response = std::move(w).str();
    } else if (op == "query") {
      response = handle_query(request, id, std::move(token));
    } else {
      throw InvalidArgumentError("unknown op '" + op + "'");
    }
  } catch (const tca::Error& e) {
    const auto& ex = dynamic_cast<const std::exception&>(e);
    response = error_response(id, e.code(), ex.what());
  } catch (const std::exception& e) {
    response = error_response(id, ErrorCode::kUnknown, e.what());
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  latency_us.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return response;
}

std::string RequestHandler::handle_query(const JsonValue& request,
                                         std::uint64_t id,
                                         runtime::CancelToken token) {
  static obs::Counter& ok_count = obs::counter("service.requests.ok");
  static obs::Counter& truncated_count =
      obs::counter("service.requests.truncated");
  static obs::Counter& error_count = obs::counter("service.requests.error");

  const JsonValue* query_obj = request.find("query");
  if (query_obj == nullptr) {
    throw InvalidArgumentError("request has no 'query' object");
  }
  const ServiceQuery query = ServiceQuery::from_json(*query_obj);
  const RequestBudget budget = parse_budget(request);

  // 1. Cache.
  if (std::optional<CacheHit> hit = cache_.lookup(query)) {
    ok_count.add();
    return query_response(id,
                          hit->tier == CacheTier::kMemory ? "memory-cache"
                                                          : "disk-cache",
                          hit->result_json);
  }

  // 2. Coalesce. Followers reuse the leader's full response body (their
  // id is substituted by re-rendering; simpler: followers get the shared
  // result JSON with their own envelope).
  const std::string key = query.canonical_key();
  if (std::shared_ptr<const CoalescedResult> shared =
          coalescer_.join_or_lead(key)) {
    if (!shared->ok) {
      error_count.add();
      return error_response(id, shared->error_code,
                            "coalesced request failed: " + shared->error);
    }
    ok_count.add();
    return query_response(id, "coalesced", shared->response_json);
  }

  // 3. Leader: compute, publish, cache. The guard guarantees followers
  // are released even if the engine throws something unexpected.
  LeaderGuard guard(coalescer_, key);
  const QueryOutcome outcome = engine_.execute(query, budget, std::move(token));
  CoalescedResult publish;
  if (outcome.ok()) {
    const std::string result_json = outcome.result.to_json();
    cache_.insert(query, result_json);
    publish.ok = true;
    publish.response_json = result_json;
    guard.publish(std::move(publish));
    ok_count.add();
    return query_response(id, "computed", result_json);
  }
  if (outcome.status == QueryOutcome::Status::kTruncated) {
    publish.error_code = ErrorCode::kBudgetExhausted;
    publish.error = std::string("truncated: ") +
                    runtime::stop_reason_name(outcome.stop_reason);
    guard.publish(std::move(publish));
    truncated_count.add();
    return truncated_response(id, outcome);
  }
  publish.error_code = outcome.error_code;
  publish.error = outcome.error;
  guard.publish(std::move(publish));
  error_count.add();
  return error_response(id, outcome.error_code, outcome.error);
}

}  // namespace tca::service
