#pragma once
// The tcad query model (docs/service.md).
//
// Every artifact the daemon serves — attractor/transient structure,
// Garden-of-Eden censuses, preimage counts — is a PURE FUNCTION of
// (rule, topology, n, update scheme, query kind): the paper's Section 2
// dynamical-system view makes the phase space a deterministic object, so
// results are content-addressable. This header defines the typed query,
// its canonical key (a byte string independent of JSON field order,
// whitespace, or representation details like an explicitly-spelled
// identity sweep order), and the FNV-1a digest of that key that names
// cache entries on disk.
//
// The wire protocol is deliberately wider than the query set: requests
// carry a "kind" string and readers ignore unknown fields, so future
// request types (the α-asynchrony census of arXiv:2312.15078, the
// order-independence classifier of arXiv:0707.2360) extend the enum and
// the parser without a version bump.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/automaton.hpp"
#include "service/json_parse.hpp"

namespace tca::service {

/// The four query kinds served today (docs/service.md lists the result
/// schema of each).
enum class QueryKind : std::uint8_t {
  kAttractorSummary = 0,  ///< full Definition-3 taxonomy of the phase space
  kTransientDepth,        ///< longest tail into any attractor
  kGoeCensus,             ///< Gardens of Eden among all 2^n states
  kPreimageCount,         ///< #predecessors of one target configuration
};

[[nodiscard]] const char* query_kind_name(QueryKind kind) noexcept;

/// 1-D substrate of the query (the paper's finite cellular spaces).
enum class Topology : std::uint8_t {
  kRing = 0,  ///< circular boundary (Boundary::kRing)
  kLine,      ///< fixed-zero boundary (Boundary::kFixedZero)
};

/// Update scheme: the synchronous global map F, or one full sequential
/// sweep of a fixed node order per step (FunctionalGraph::sweep).
enum class Scheme : std::uint8_t { kSynchronous = 0, kSweep };

/// Arity-polymorphic rule description, materialized at 2r+1 inputs.
/// Mirrors testing::RuleSpec (which must stay shrinkable) but adds the
/// Wolfram-code kind the service exposes.
struct ServiceRule {
  enum class Type : std::uint8_t {
    kMajority = 0,    ///< strict majority, tie -> 0
    kMajorityTieOne,  ///< majority, tie -> 1
    kParity,          ///< XOR
    kKOfN,            ///< 1 iff >= k inputs are 1 (field `k`)
    kSymmetric,       ///< totalistic: output on s ones = bit (s mod 64)
                      ///< of `mask`
    kWolfram,         ///< elementary-CA code (field `code`; radius 1 only)
  };

  Type type = Type::kMajority;
  std::uint32_t k = 1;         ///< kKOfN threshold
  std::uint64_t mask = 0;      ///< kSymmetric accept mask
  std::uint32_t code = 0;      ///< kWolfram code (0..255)

  /// The concrete rule for a node with `arity` ordered inputs.
  [[nodiscard]] rules::Rule materialize(std::uint32_t arity) const;

  /// Canonical token, e.g. "majority", "kofn:3", "sym:1a", "wolfram:110".
  [[nodiscard]] std::string token() const;

  friend bool operator==(const ServiceRule&, const ServiceRule&) = default;
};

/// One fully-specified service query. Memory is fixed at the paper's
/// default (the node's own state is an input).
struct ServiceQuery {
  QueryKind kind = QueryKind::kAttractorSummary;
  Topology topology = Topology::kRing;
  std::uint32_t n = 0;
  std::uint32_t radius = 1;
  ServiceRule rule;
  Scheme scheme = Scheme::kSynchronous;
  /// Sweep order; empty means the identity order 0..n-1. An explicitly
  /// spelled identity order canonicalizes to empty (same cache key).
  std::vector<core::NodeId> order;
  /// Target state code (kPreimageCount only).
  std::uint64_t target = 0;

  /// Validates ranges and cross-field constraints; throws
  /// tca::InvalidArgumentError / tca::DomainTooLargeError on a query the
  /// engines cannot answer.
  void validate() const;

  /// The automaton this query is about (validate() must have passed).
  [[nodiscard]] core::Automaton automaton() const;

  /// The effective sweep order (identity when `order` is empty).
  [[nodiscard]] std::vector<core::NodeId> effective_order() const;

  /// True when answering requires materializing the full 2^n successor
  /// table (everything except synchronous-ring preimage counts, which go
  /// through the O(n) transfer matrix).
  [[nodiscard]] bool needs_explicit_graph() const noexcept;

  /// Canonical content-address key: a stable byte string over the typed
  /// fields in fixed order. Two requests that parse to the same query
  /// produce the same key regardless of JSON spelling.
  [[nodiscard]] std::string canonical_key() const;

  /// FNV-1a 64 digest of canonical_key() as 16 lowercase hex digits
  /// (core/fnv.hpp — the same hash that checksums checkpoints).
  [[nodiscard]] std::string digest() const;

  /// Parses the "query" object of a request frame. Unknown fields are
  /// ignored (forward compatibility); missing/invalid required fields
  /// throw tca::InvalidArgumentError.
  static ServiceQuery from_json(const JsonValue& v);

  /// Low (arity+1) bits set: the meaningful range of a symmetric rule's
  /// accept mask at the given arity.
  [[nodiscard]] static std::uint64_t mask_bits(std::uint32_t arity) noexcept;

  friend bool operator==(const ServiceQuery&, const ServiceQuery&) = default;
};

/// Typed result of one query; exactly the fields of the kind are
/// meaningful. to_json() is the response "result" object.
struct QueryResult {
  QueryKind kind = QueryKind::kAttractorSummary;
  std::uint64_t num_states = 0;

  // kAttractorSummary (kTransientDepth reuses the relevant subset).
  std::uint64_t num_attractors = 0;
  std::uint64_t num_fixed_points = 0;
  std::uint64_t num_cycle_states = 0;
  std::uint64_t num_transient_states = 0;
  std::uint64_t num_gardens_of_eden = 0;
  std::uint64_t max_period = 0;
  std::uint64_t max_transient = 0;
  /// cycle length -> number of cycles of that length.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cycle_lengths;

  // kGoeCensus.
  std::uint64_t gardens = 0;
  std::uint64_t scanned = 0;

  // kPreimageCount.
  std::uint64_t preimage_count = 0;
  bool is_garden_of_eden = false;
  std::string method;  ///< "transfer-matrix" | "explicit"

  [[nodiscard]] std::string to_json() const;
};

}  // namespace tca::service
