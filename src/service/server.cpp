#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"
#include "service/protocol.hpp"

namespace tca::service {
namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw RuntimeError("tcad: " + what + ": " + std::strerror(errno),
                     ErrorCode::kIo);
}

int listen_uds(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) socket_error("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw InvalidArgumentError("tcad: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    socket_error("bind(" + path + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    socket_error("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) socket_error("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    socket_error("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    socket_error("listen(tcp)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

TcadServer::TcadServer(ServerOptions options)
    : options_([&] {
        options.num_workers = std::max<std::uint32_t>(options.num_workers, 1);
        return options;
      }()),
      handler_(options_.handler) {}

TcadServer::~TcadServer() { stop(); }

void TcadServer::start() {
  {
    LockGuard lock(mu_);
    if (started_) throw StateError("tcad: start() called twice");
    started_ = true;
  }
  uds_listen_fd_ = listen_uds(options_.uds_path);
  if (options_.tcp_port != 0 || options_.tcp_enabled) {
    tcp_listen_fd_ = listen_tcp(options_.tcp_port, tcp_port_);
  }
  obs::log_event(obs::LogLevel::kInfo, "service.listening",
                 {{"uds", options_.uds_path},
                  {"tcp_port", static_cast<std::uint64_t>(tcp_port_)},
                  {"workers", options_.num_workers}});
  threads_.emplace_back([this] { accept_loop(); });
  for (std::uint32_t i = 0; i < options_.num_workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void TcadServer::stop() {
  {
    LockGuard lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    // Wake blocked connection reads so workers can drain their current
    // connection and exit.
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    for (const int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
  }
  token_.cancel();  // in-flight engine work stops cooperatively
  cv_.notify_all();
  // The accept loop polls with a 100 ms timeout and re-checks stopping_,
  // so the listen fds stay open until every thread is joined — no thread
  // ever polls a closed fd.
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  ::unlink(options_.uds_path.c_str());
  obs::log_event(obs::LogLevel::kInfo, "service.stopped",
                 {{"leaked_requests", handler_.active_requests()}});
}

void TcadServer::accept_loop() {
  static obs::Counter& connections = obs::counter("service.connections");
  while (true) {
    {
      LockGuard lock(mu_);
      if (stopping_) return;
    }
    pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = pollfd{uds_listen_fd_, POLLIN, 0};
    if (tcp_listen_fd_ >= 0) fds[nfds++] = pollfd{tcp_listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, 100 /* ms; bounded stop latency */);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // listeners closed under us during stop()
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) continue;  // racing stop() or transient; poll again
      connections.add();
      {
        LockGuard lock(mu_);
        if (stopping_) {
          ::close(conn);
          return;
        }
        pending_fds_.push_back(conn);
      }
      cv_.notify_one();
    }
  }
}

void TcadServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      LockGuard lock(mu_);
      while (pending_fds_.empty() && !stopping_) cv_.wait(lock);
      if (pending_fds_.empty()) return;  // stopping, queue drained
      fd = pending_fds_.back();
      pending_fds_.pop_back();
      active_fds_.push_back(fd);
    }
    serve_connection(fd);
    {
      LockGuard lock(mu_);
      active_fds_.erase(
          std::remove(active_fds_.begin(), active_fds_.end(), fd),
          active_fds_.end());
    }
    ::close(fd);
  }
}

void TcadServer::serve_connection(int fd) {
  static obs::Counter& conn_errors = obs::counter("service.conn_errors");
  std::string request;
  try {
    while (read_frame(fd, request)) {
      const std::string response = handler_.handle(request, token_);
      write_frame(fd, response);
      LockGuard lock(mu_);
      if (stopping_) return;
    }
  } catch (const std::exception& e) {
    conn_errors.add();
    obs::log_event(obs::LogLevel::kWarn, "service.conn_error",
                   {{"what", e.what()}});
  }
}

}  // namespace tca::service
