#include "service/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "runtime/error.hpp"

namespace tca::service {
namespace {

[[noreturn]] void io_error(const char* what) {
  throw RuntimeError(std::string("frame: ") + what + ": " +
                         std::strerror(errno),
                     ErrorCode::kIo);
}

/// Reads exactly `count` bytes. Returns the bytes actually read, which is
/// < count only on EOF.
std::size_t read_exact(int fd, char* buf, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t r = ::read(fd, buf + done, count - done);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      io_error("read failed");
    }
    done += static_cast<std::size_t>(r);
  }
  return done;
}

void write_exact(int fd, const char* buf, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t w = ::write(fd, buf + done, count - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      io_error("write failed");
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

bool read_frame(int fd, std::string& out) {
  unsigned char header[4];
  const std::size_t got =
      read_exact(fd, reinterpret_cast<char*>(header), sizeof header);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof header) {
    throw RuntimeError("frame: EOF inside length prefix", ErrorCode::kIo);
  }
  const std::uint32_t length =
      (static_cast<std::uint32_t>(header[0]) << 24) |
      (static_cast<std::uint32_t>(header[1]) << 16) |
      (static_cast<std::uint32_t>(header[2]) << 8) |
      static_cast<std::uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    throw RuntimeError(
        "frame: length " + std::to_string(length) + " exceeds cap " +
            std::to_string(kMaxFrameBytes),
        ErrorCode::kIo);
  }
  out.resize(length);
  if (read_exact(fd, out.data(), length) < length) {
    throw RuntimeError("frame: EOF inside payload", ErrorCode::kIo);
  }
  return true;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw RuntimeError("frame: payload exceeds cap", ErrorCode::kIo);
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>(length & 0xFF),
  };
  write_exact(fd, reinterpret_cast<const char*>(header), sizeof header);
  write_exact(fd, payload.data(), payload.size());
}

}  // namespace tca::service
