#include "service/client.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/error.hpp"
#include "service/protocol.hpp"

namespace tca::service {
namespace {

[[noreturn]] void conn_error(const std::string& what) {
  throw RuntimeError("tcad client: " + what + ": " + std::strerror(errno),
                     ErrorCode::kIo);
}

}  // namespace

TcadClient TcadClient::connect_uds(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) conn_error("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw InvalidArgumentError("tcad client: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    conn_error("connect(" + path + ")");
  }
  return TcadClient(fd);
}

TcadClient TcadClient::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) conn_error("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    conn_error("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return TcadClient(fd);
}

TcadClient::TcadClient(TcadClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcadClient& TcadClient::operator=(TcadClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcadClient::~TcadClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string TcadClient::call(const std::string& request_json) {
  write_frame(fd_, request_json);
  std::string response;
  if (!read_frame(fd_, response)) {
    throw RuntimeError("tcad client: server closed the connection",
                       ErrorCode::kIo);
  }
  return response;
}

}  // namespace tca::service
