#pragma once
// Length-prefixed JSON framing for the tcad socket protocol
// (docs/service.md).
//
// Every frame is a 4-byte BIG-ENDIAN unsigned length followed by exactly
// that many bytes of UTF-8 JSON. Both directions use the same framing;
// a connection carries any number of request/response pairs in order
// (one request at a time per connection — concurrency comes from opening
// more connections, which is also what the load generator does).
//
// The frame cap matches the JSON parser's document cap so neither layer
// can be used to smuggle an oversized document past the other.

#include <cstdint>
#include <string>
#include <string_view>

#include "service/json_parse.hpp"

namespace tca::service {

/// Maximum frame payload accepted or sent (= kMaxJsonBytes).
inline constexpr std::uint32_t kMaxFrameBytes =
    static_cast<std::uint32_t>(kMaxJsonBytes);

/// Reads one frame from `fd` into `out`. Returns false on clean EOF
/// (connection closed between frames); throws tca::RuntimeError(kIo) on
/// mid-frame EOF, read errors, or an oversized length prefix.
[[nodiscard]] bool read_frame(int fd, std::string& out);

/// Writes one frame to `fd`. Throws tca::RuntimeError(kIo) on write
/// errors or an oversized payload.
void write_frame(int fd, std::string_view payload);

}  // namespace tca::service
