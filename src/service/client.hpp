#pragma once
// Minimal blocking client for the tcad protocol (docs/service.md).
//
// One connection, one outstanding request at a time — exactly the
// protocol's per-connection contract. Used by the e2e tests and the
// bench/loadgen_tcad load generator; not a public SDK (callers wanting
// concurrency open more clients).

#include <cstdint>
#include <string>

namespace tca::service {

class TcadClient {
 public:
  /// Connects to a Unix-domain socket. Throws tca::RuntimeError(kIo).
  static TcadClient connect_uds(const std::string& path);
  /// Connects to 127.0.0.1:<port>. Throws tca::RuntimeError(kIo).
  static TcadClient connect_tcp(std::uint16_t port);

  TcadClient(TcadClient&& other) noexcept;
  TcadClient& operator=(TcadClient&& other) noexcept;
  TcadClient(const TcadClient&) = delete;
  TcadClient& operator=(const TcadClient&) = delete;
  ~TcadClient();

  /// Sends one request frame and blocks for the response frame. Throws
  /// tca::RuntimeError(kIo) on connection failure (including the server
  /// closing mid-call).
  [[nodiscard]] std::string call(const std::string& request_json);

 private:
  explicit TcadClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace tca::service
