#include "service/engine.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"
#include "phasespace/supervised.hpp"
#include "runtime/ckpt_store.hpp"
#include "runtime/error.hpp"

namespace tca::service {
namespace {

namespace fs = std::filesystem;

/// Resume-checkpoint payload: two text header lines (the canonical key,
/// so a digest collision can never seed the wrong build, and the built
/// count) followed by the successor-table prefix as explicit
/// little-endian uint64 bytes (portable, unlike a memcpy of the vector).
std::string encode_resume_payload(const std::string& key,
                                  const std::vector<phasespace::StateCode>& succ,
                                  std::uint64_t built) {
  std::string payload = key + "\nbuilt=" + std::to_string(built) + "\n";
  payload.reserve(payload.size() + built * 8);
  for (std::uint64_t i = 0; i < built; ++i) {
    std::uint64_t v = succ[i];
    for (int b = 0; b < 8; ++b) {
      payload += static_cast<char>(v & 0xFF);
      v >>= 8;
    }
  }
  return payload;
}

/// Parses a resume payload into succ[0 .. built); false on any mismatch
/// (foreign key, bad framing, impossible count) — the caller then builds
/// from scratch.
bool decode_resume_payload(const std::string& payload, const std::string& key,
                           std::uint64_t total,
                           std::vector<phasespace::StateCode>& succ,
                           std::uint64_t& built) {
  const std::size_t nl1 = payload.find('\n');
  if (nl1 == std::string::npos || payload.compare(0, nl1, key) != 0) {
    return false;
  }
  const std::size_t nl2 = payload.find('\n', nl1 + 1);
  if (nl2 == std::string::npos) return false;
  const std::string count_line = payload.substr(nl1 + 1, nl2 - nl1 - 1);
  if (count_line.rfind("built=", 0) != 0) return false;
  std::uint64_t count = 0;
  for (const char c : count_line.substr(6)) {
    if (c < '0' || c > '9') return false;
    count = count * 10 + static_cast<std::uint64_t>(c - '0');
    if (count > total) return false;
  }
  if (payload.size() - (nl2 + 1) != count * 8) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) {
      v = (v << 8) | static_cast<std::uint8_t>(
                         payload[nl2 + 1 + i * 8 + static_cast<std::size_t>(b)]);
    }
    succ[i] = v;
  }
  built = count;
  return true;
}

/// Builds the per-attempt stepper. Synchronous builds honor the
/// degradation-ladder rung; sweep builds have no rung-forced constructor
/// (the sweep map is inherently per-code) and run the dispatched tier at
/// every rung.
phasespace::BatchCodeStepper make_stepper(const core::Automaton& a,
                                          const ServiceQuery& query,
                                          runtime::EngineRung rung) {
  if (query.scheme == Scheme::kSweep) {
    return phasespace::BatchCodeStepper(a, query.effective_order());
  }
  return phasespace::BatchCodeStepper(a, rung);
}

/// Derives the typed result from a completed explicit graph. Every path
/// is storage-generic: random access goes through FunctionalGraph::succ
/// and whole-table scans stream via SuccessorStore::for_each_range, so
/// the same code serves the flat, packed, and disk backends
/// (docs/service.md "storage backends").
QueryResult result_from_graph(const ServiceQuery& query,
                              const phasespace::FunctionalGraph& fg) {
  QueryResult r;
  r.kind = query.kind;
  r.num_states = fg.num_states();
  switch (query.kind) {
    case QueryKind::kAttractorSummary:
    case QueryKind::kTransientDepth: {
      const phasespace::Classification c = phasespace::classify(fg);
      r.num_attractors = c.attractors.size();
      r.num_fixed_points = c.num_fixed_points;
      r.num_cycle_states = c.num_cycle_states;
      r.num_transient_states = c.num_transient_states;
      r.num_gardens_of_eden = c.num_gardens_of_eden;
      r.max_period = c.max_period();
      r.max_transient = c.max_transient;
      r.cycle_lengths.assign(c.cycle_length_histogram.begin(),
                             c.cycle_length_histogram.end());
      break;
    }
    case QueryKind::kGoeCensus: {
      const std::vector<std::uint32_t> indeg =
          phasespace::in_degrees(fg.store());
      r.gardens = static_cast<std::uint64_t>(
          std::count(indeg.begin(), indeg.end(), 0u));
      r.scanned = fg.num_states();
      break;
    }
    case QueryKind::kPreimageCount: {
      std::uint64_t count = 0;
      fg.store().for_each_range(
          [&](phasespace::StateCode, std::size_t n,
              const phasespace::StateCode* block) {
            for (std::size_t i = 0; i < n; ++i) {
              count += block[i] == query.target ? 1 : 0;
            }
          });
      r.preimage_count = count;
      r.is_garden_of_eden = count == 0;
      r.method = "explicit";
      break;
    }
  }
  return r;
}

}  // namespace

runtime::RunBudget RequestBudget::to_run_budget() const {
  runtime::RunBudget budget;
  budget.max_states = max_states;
  if (wall_ms != 0) {
    budget.wall_limit = std::chrono::milliseconds(wall_ms);
  }
  return budget;
}

/// FIFO-ish admission: holds one of max_concurrent_builds slots for the
/// lifetime of the object; the wait is recorded in
/// service.admission.wait_us.
class QueryEngine::AdmissionSlot {
 public:
  explicit AdmissionSlot(QueryEngine& engine) : engine_(engine) {
    static obs::Histogram& wait_us = obs::histogram(
        "service.admission.wait_us", obs::default_latency_bounds_us());
    const auto t0 = std::chrono::steady_clock::now();
    {
      LockGuard lock(engine_.mu_);
      while (engine_.active_builds_ >= engine_.options_.max_concurrent_builds) {
        engine_.cv_.wait(lock);
      }
      ++engine_.active_builds_;
      ++engine_.builds_started_;
    }
    wait_us.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  ~AdmissionSlot() {
    {
      LockGuard lock(engine_.mu_);
      --engine_.active_builds_;
    }
    engine_.cv_.notify_one();
  }

 private:
  QueryEngine& engine_;
};

QueryEngine::QueryEngine(EngineOptions options)
    : options_([&] {
        options.max_concurrent_builds =
            std::max<std::uint32_t>(options.max_concurrent_builds, 1);
        options.ckpt_every_states =
            std::max<std::uint64_t>(options.ckpt_every_states, 1024);
        return options;
      }()) {}

std::uint64_t QueryEngine::builds_started() const {
  LockGuard lock(mu_);
  return builds_started_;
}

QueryOutcome QueryEngine::execute(const ServiceQuery& query,
                                  const RequestBudget& budget,
                                  runtime::CancelToken token) {
  TCA_SPAN("service_execute");
  if (query.kind == QueryKind::kPreimageCount && !query.needs_explicit_graph()) {
    return run_preimage_transfer_matrix(query);
  }
  if (query.kind == QueryKind::kGoeCensus &&
      query.scheme == Scheme::kSynchronous) {
    return run_goe_supervised(query, budget, token);
  }
  return run_explicit(query, budget, std::move(token));
}

QueryOutcome QueryEngine::run_preimage_transfer_matrix(
    const ServiceQuery& query) const {
  TCA_SPAN("service_preimage_tm");
  QueryOutcome out;
  const phasespace::RingPreimageSolver solver(
      query.rule.materialize(2 * query.radius + 1), query.radius,
      core::Memory::kWith);
  const core::Configuration target =
      core::Configuration::from_bits(query.target, query.n);
  const std::uint64_t count = solver.count(target);
  out.status = QueryOutcome::Status::kOk;
  out.result.kind = query.kind;
  out.result.num_states = std::uint64_t{1} << query.n;
  out.result.preimage_count = count;
  out.result.is_garden_of_eden = count == 0;
  out.result.method = "transfer-matrix";
  out.states_done = out.states_total = out.result.num_states;
  return out;
}

QueryOutcome QueryEngine::run_goe_supervised(const ServiceQuery& query,
                                             const RequestBudget& budget,
                                             runtime::CancelToken token) {
  TCA_SPAN("service_goe_census");
  static obs::Counter& supervised = obs::counter("service.engine.supervised");
  static obs::Counter& truncated = obs::counter("service.engine.truncated");
  static obs::Counter& failed = obs::counter("service.engine.failed");

  const AdmissionSlot slot(*this);
  supervised.add();

  runtime::SupervisorOptions opts = options_.supervisor;
  opts.attempt_budget = budget.to_run_budget();
  if (budget.wall_ms != 0) {
    opts.deadline = std::chrono::milliseconds(budget.wall_ms);
  }
  opts.token = std::move(token);

  const core::Automaton a = query.automaton();
  const phasespace::SupervisedGoeCensus sup =
      phasespace::supervised_goe_census(a, opts);

  QueryOutcome out;
  out.degraded = sup.report.degraded;
  out.states_total = std::uint64_t{1} << query.n;
  out.states_done = sup.census.scanned;
  out.stop_reason = sup.census.stop_reason;
  if (!sup.report.ok()) {
    out.status = QueryOutcome::Status::kFailed;
    out.error_code = sup.report.last_error;
    out.error = sup.report.last_error_what;
    failed.add();
    return out;
  }
  if (sup.census.truncated) {
    out.status = QueryOutcome::Status::kTruncated;
    truncated.add();
    return out;
  }
  out.status = QueryOutcome::Status::kOk;
  out.result.kind = query.kind;
  out.result.num_states = out.states_total;
  out.result.gardens = sup.census.gardens;
  out.result.scanned = sup.census.scanned;
  return out;
}

QueryOutcome QueryEngine::run_explicit(const ServiceQuery& query,
                                       const RequestBudget& budget,
                                       runtime::CancelToken token) {
  TCA_SPAN("service_explicit_build");
  static obs::Counter& builds = obs::counter("service.engine.builds");
  static obs::Counter& small_n = obs::counter("service.engine.small_n");
  static obs::Counter& supervised = obs::counter("service.engine.supervised");
  static obs::Counter& truncated = obs::counter("service.engine.truncated");
  static obs::Counter& failed = obs::counter("service.engine.failed");
  static obs::Counter& resume_saved = obs::counter("service.resume.saved");
  static obs::Counter& resume_resumed = obs::counter("service.resume.resumed");

  const AdmissionSlot slot(*this);
  builds.add();

  const core::Automaton a = query.automaton();
  const std::uint64_t total = std::uint64_t{1} << query.n;
  const std::string key = query.canonical_key();

  QueryOutcome out;
  out.states_total = total;

  std::vector<phasespace::StateCode> succ;
  try {
    succ.resize(total);
  } catch (const std::bad_alloc&) {
    out.status = QueryOutcome::Status::kFailed;
    out.error_code = ErrorCode::kDomainTooLarge;
    out.error = "successor table allocation failed";
    failed.add();
    return out;
  }
  std::uint64_t built = 0;

  const bool small = query.n <= options_.small_n_bits;
  const bool resumable = !small && !options_.ckpt_dir.empty();
  std::optional<runtime::CheckpointStore> store;
  if (resumable) {
    std::error_code ec;
    fs::create_directories(options_.ckpt_dir, ec);
    store.emplace(
        (fs::path(options_.ckpt_dir) / (query.digest() + ".ckpt")).string());
    if (auto recovery = store->load_latest()) {
      if (decode_resume_payload(recovery->checkpoint.payload, key, total, succ,
                                built)) {
        out.resumed = true;
        resume_resumed.add();
        obs::log_event(obs::LogLevel::kInfo, "service.resume",
                       {{"key", key}, {"built", built}, {"total", total}});
      }
    }
  }

  constexpr std::uint64_t kSegment = 1u << 14;
  const auto build_segments = [&](phasespace::BatchCodeStepper& stepper,
                                  runtime::RunControl& control) {
    std::uint64_t last_saved = built;
    runtime::StopReason reason = control.note_bytes(total * 8);
    while (reason == runtime::StopReason::kNone && built < total) {
      const std::uint64_t chunk = std::min(kSegment, total - built);
      stepper.step_range(built, static_cast<std::size_t>(chunk),
                         succ.data() + built);
      built += chunk;
      reason = control.note_states(chunk);
      if (store && built - last_saved >= options_.ckpt_every_states &&
          built < total) {
        runtime::Checkpoint ckpt;
        ckpt.payload = encode_resume_payload(key, succ, built);
        store->save(ckpt);
        resume_saved.add();
        last_saved = built;
      }
    }
    // Persist progress past the last cadence point when stopping early, so
    // the next identical request resumes from here.
    if (store && built < total && built > last_saved) {
      runtime::Checkpoint ckpt;
      ckpt.payload = encode_resume_payload(key, succ, built);
      store->save(ckpt);
      resume_saved.add();
    }
    return reason;
  };

  if (small) {
    small_n.add();
    runtime::RunControl control(budget.to_run_budget(), std::move(token));
    phasespace::BatchCodeStepper stepper =
        make_stepper(a, query, runtime::EngineRung::kWideSimd);
    phasespace::note_batch_fallback(stepper, a, "service.build");
    const runtime::StopReason reason = build_segments(stepper, control);
    if (built < total) {
      out.status = QueryOutcome::Status::kTruncated;
      out.stop_reason = reason;
      out.states_done = built;
      truncated.add();
      return out;
    }
  } else {
    supervised.add();
    runtime::SupervisorOptions opts = options_.supervisor;
    opts.attempt_budget = budget.to_run_budget();
    if (budget.wall_ms != 0) {
      opts.deadline = std::chrono::milliseconds(budget.wall_ms);
    }
    opts.token = std::move(token);
    runtime::Supervisor sup(opts);
    const runtime::SupervisorReport report = sup.run(
        "service.build", [&](runtime::AttemptContext& ctx) {
          phasespace::BatchCodeStepper stepper =
              make_stepper(a, query, ctx.rung);
          const runtime::StopReason reason =
              build_segments(stepper, ctx.control);
          return reason == runtime::StopReason::kNone && built == total
                     ? runtime::AttemptOutcome::kCompleted
                     : runtime::AttemptOutcome::kTruncated;
        });
    out.degraded = report.degraded;
    if (!report.ok()) {
      out.status = QueryOutcome::Status::kFailed;
      out.error_code = report.last_error;
      out.error = report.last_error_what;
      out.states_done = built;
      failed.add();
      return out;
    }
    if (built < total) {
      out.status = QueryOutcome::Status::kTruncated;
      out.stop_reason = report.last_status.stop_reason;
      out.states_done = built;
      truncated.add();
      return out;
    }
  }

  out.states_done = built;
  // Completed table -> configured storage backend. kFlat adopts the
  // vector as-is; kPacked re-encodes to n bits per successor and drops
  // the 8-byte staging table; kDisk spills under ckpt_dir/store/ and
  // streams results back with bounded RAM. Result derivation is
  // backend-generic (result_from_graph), so all three agree bit-for-bit.
  phasespace::StoreKind store_kind = options_.store;
  if (store_kind == phasespace::StoreKind::kDisk &&
      options_.ckpt_dir.empty()) {
    obs::log_event(obs::LogLevel::kWarn, "service.store.fallback",
                   {{"reason", "disk backend needs ckpt_dir"},
                    {"fallback", "flat"}});
    store_kind = phasespace::StoreKind::kFlat;
  }
  std::optional<phasespace::FunctionalGraph> fg;
  if (store_kind == phasespace::StoreKind::kFlat) {
    fg.emplace(
        phasespace::FunctionalGraph::from_table(query.n, std::move(succ)));
  } else {
    const std::string disk_dir =
        store_kind == phasespace::StoreKind::kDisk
            ? (fs::path(options_.ckpt_dir) / "store" / query.digest()).string()
            : std::string();
    std::shared_ptr<phasespace::SuccessorStore> backend =
        phasespace::make_store(store_kind, query.n, disk_dir);
    backend->put_range(0, static_cast<std::size_t>(total), succ.data());
    backend->finalize();
    succ = {};  // release the 8-byte staging table before deriving results
    fg.emplace(phasespace::FunctionalGraph::from_store(std::move(backend)));
  }
  out.result = result_from_graph(query, *fg);
  out.status = QueryOutcome::Status::kOk;

  // The spilled table is scratch space for result derivation, not a
  // cache (the RESULT cache lives in front of the engine); reclaim it.
  if (store_kind == phasespace::StoreKind::kDisk) {
    fg.reset();  // unmap before unlinking
    std::error_code ec;
    fs::remove_all(fs::path(options_.ckpt_dir) / "store" / query.digest(), ec);
  }

  // A completed build's resume checkpoints are dead weight (the RESULT is
  // now in the cache); drop them. Quarantined files are left alone.
  if (store) {
    for (const std::string& path : store->generations()) {
      std::error_code ec;
      fs::remove(path, ec);
    }
  }
  return out;
}

}  // namespace tca::service
