#pragma once
// Content-addressed result cache for the tcad daemon (docs/service.md).
//
// Phase-space answers are pure functions of their canonical query key
// (service/query.hpp), which makes caching sound by construction: no
// invalidation, no TTLs — an entry is valid forever or its key was wrong.
// Two tiers:
//
//  * MEMORY: an LRU over full canonical keys. Keys, not digests, so a
//    64-bit FNV collision can degrade to a miss but never serve the wrong
//    result.
//  * DISK (optional): one file per entry named by the key's FNV-1a digest,
//    written with the checkpoint framing of runtime/checkpoint.hpp — the
//    same magic/checksum/atomic-rename discipline long sweeps already
//    trust. The payload embeds the full canonical key on its first line;
//    a digest collision or tampered file is detected on read and the file
//    is QUARANTINED (renamed `<file>.quarantined[.n]`, never deleted),
//    exactly like runtime::CheckpointStore.
//
// Counters (docs/observability.md): service.cache.{hit,miss,evict,
// disk_hit,disk_write,disk_error,quarantined}. "hit" is a memory-tier
// hit; a disk hit counts as disk_hit only (and promotes into memory).
//
// Thread safety: one mutex guards both tiers; disk reads/writes happen
// under it. That serializes rare multi-kilobyte file I/O against hot
// memory hits — acceptable at service request rates, and it keeps the
// promote-into-LRU step atomic with the read (no torn promotions).

#include <cstddef>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/annotations.hpp"
#include "service/query.hpp"

namespace tca::service {

struct CacheOptions {
  /// Memory-tier capacity in entries (>= 1 enforced).
  std::size_t max_entries = 4096;
  /// Disk-tier directory; empty disables the disk tier. Created on first
  /// write if absent.
  std::string disk_dir;
};

/// Where a lookup was satisfied.
enum class CacheTier : std::uint8_t { kMemory = 0, kDisk };

struct CacheHit {
  std::string result_json;
  CacheTier tier = CacheTier::kMemory;
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Memory tier first, then disk. A disk hit is promoted into memory.
  [[nodiscard]] std::optional<CacheHit> lookup(const ServiceQuery& query);

  /// Inserts (or refreshes) the result under the query's canonical key;
  /// writes through to the disk tier when enabled. Disk write failures
  /// are counted and logged, never thrown — the cache is an accelerator,
  /// not a dependency.
  void insert(const ServiceQuery& query, const std::string& result_json);

  /// Entries currently in the memory tier.
  [[nodiscard]] std::size_t size() const;

  /// Memory-tier canonical keys, most recently used first (test hook for
  /// asserting LRU eviction order).
  [[nodiscard]] std::vector<std::string> keys_by_recency() const;

  /// Disk path an entry for `query` would use ("" when the disk tier is
  /// off). Exposed for tests that corrupt entries on purpose.
  [[nodiscard]] std::string disk_path(const ServiceQuery& query) const;

 private:
  struct Entry {
    std::string key;
    std::string result_json;
  };
  using LruList = std::list<Entry>;

  void touch(LruList::iterator it) TCA_REQUIRES(mu_);
  void insert_locked(const std::string& key, const std::string& result_json)
      TCA_REQUIRES(mu_);
  /// nullopt on miss; quarantines undecodable or mismatched files.
  [[nodiscard]] std::optional<std::string> disk_lookup(
      const std::string& key, const std::string& path) TCA_REQUIRES(mu_);
  void disk_insert(const std::string& key, const std::string& result_json,
                   const std::string& path) TCA_REQUIRES(mu_);

  const CacheOptions options_;

  mutable Mutex mu_;
  LruList lru_ TCA_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_
      TCA_GUARDED_BY(mu_);
};

}  // namespace tca::service
