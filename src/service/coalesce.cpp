#include "service/coalesce.hpp"

#include "obs/metrics.hpp"

namespace tca::service {

std::shared_ptr<const CoalescedResult> Coalescer::join_or_lead(
    const std::string& key) {
  static obs::Counter& coalesced = obs::counter("service.coalesced");
  static obs::Gauge& inflight = obs::gauge("service.inflight");

  LockGuard lock(mu_);
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) {
    inflight_.emplace(key, std::make_shared<Entry>());
    inflight.set(static_cast<std::int64_t>(inflight_.size()));
    return nullptr;  // caller leads
  }
  const std::shared_ptr<Entry> entry = it->second;
  ++entry->followers;
  coalesced.add();
  while (!entry->done) cv_.wait(lock);
  return entry->result;
}

void Coalescer::publish(const std::string& key, CoalescedResult result) {
  static obs::Gauge& inflight = obs::gauge("service.inflight");

  LockGuard lock(mu_);
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return;  // guard fired after explicit publish
  const std::shared_ptr<Entry> entry = it->second;
  entry->result =
      std::make_shared<const CoalescedResult>(std::move(result));
  entry->done = true;
  inflight_.erase(it);
  inflight.set(static_cast<std::int64_t>(inflight_.size()));
  cv_.notify_all();
}

std::size_t Coalescer::inflight() const {
  LockGuard lock(mu_);
  return inflight_.size();
}

}  // namespace tca::service
