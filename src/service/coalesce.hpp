#pragma once
// Request coalescing for the tcad daemon (docs/service.md).
//
// When N clients ask for the same canonical key while a computation for
// it is running, exactly ONE engine build happens: the first arrival
// becomes the LEADER and computes; the rest become FOLLOWERS and block on
// the in-flight entry until the leader publishes. This is what makes a
// thundering herd of identical phase-space queries cost one 2^n build
// instead of N (the service_test pins "N concurrent identical requests
// -> one build" on engine-side counters).
//
// Publication is by shared_ptr handoff: followers hold the entry alive,
// so the leader can publish-and-forget even if a follower is slow to wake.
// The leader MUST publish exactly once — on success, truncation, or
// failure alike (the handler publishes from a catch-all); an entry whose
// leader never publishes would block followers forever, which is why
// LeaderGuard exists (publishes a failure on unwind).
//
// Counters: service.coalesced (one per follower served), and the
// service.inflight gauge tracks the number of open entries.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/annotations.hpp"
#include "runtime/error.hpp"

namespace tca::service {

/// What the leader publishes to its followers: the finished response
/// body, or the reason there is none.
struct CoalescedResult {
  bool ok = false;
  std::string response_json;  ///< full response body when ok
  ErrorCode error_code = ErrorCode::kUnknown;
  std::string error;
};

class Coalescer {
 public:
  Coalescer() = default;
  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Joins the in-flight computation for `key`. Returns nullptr when the
  /// caller is the LEADER (an entry was opened; the caller must publish).
  /// Otherwise blocks until the leader publishes and returns the shared
  /// result (never nullptr for followers).
  [[nodiscard]] std::shared_ptr<const CoalescedResult> join_or_lead(
      const std::string& key);

  /// Publishes the leader's result for `key` and closes the entry. Wakes
  /// every follower. Publishing a key with no open entry is a no-op
  /// (the guard may fire after an explicit publish).
  void publish(const std::string& key, CoalescedResult result);

  /// Open in-flight entries (test hook; also mirrored in the
  /// service.inflight gauge).
  [[nodiscard]] std::size_t inflight() const;

 private:
  struct Entry {
    bool done = false;  // guarded by the owning Coalescer's mu_
    std::shared_ptr<const CoalescedResult> result;
    std::uint64_t followers = 0;
  };

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> inflight_
      TCA_GUARDED_BY(mu_);
};

/// RAII leader obligation: if the leader unwinds (exception between
/// join_or_lead and publish), publishes a failure so followers never
/// hang. Disarm by publishing through the guard.
class LeaderGuard {
 public:
  LeaderGuard(Coalescer& coalescer, std::string key)
      : coalescer_(coalescer), key_(std::move(key)) {}

  LeaderGuard(const LeaderGuard&) = delete;
  LeaderGuard& operator=(const LeaderGuard&) = delete;

  ~LeaderGuard() {
    if (armed_) {
      CoalescedResult failure;
      failure.error_code = ErrorCode::kUnknown;
      failure.error = "leader unwound without publishing";
      coalescer_.publish(key_, std::move(failure));
    }
  }

  void publish(CoalescedResult result) {
    armed_ = false;
    coalescer_.publish(key_, std::move(result));
  }

 private:
  Coalescer& coalescer_;
  std::string key_;
  bool armed_ = true;
};

}  // namespace tca::service
