// tcad — phase-space-as-a-service daemon (docs/service.md).
//
// Serves attractor-summary / transient-depth / goe-census / preimage-count
// queries over a Unix-domain socket (and optional loopback TCP) with
// content-addressed caching, request coalescing, and supervised
// checkpoint-backed computation. Runs until SIGTERM/SIGINT, then shuts
// down gracefully and writes a schema-versioned run manifest whose
// counters the service-smoke CI job diffs against its committed baseline.
//
// Usage:
//   tcad [--socket PATH] [--tcp PORT | --tcp-ephemeral] [--cache-dir DIR]
//        [--ckpt-dir DIR] [--cache-entries N] [--workers N]
//        [--ready-file PATH] [--manifest PATH]
//
// --ready-file is written AFTER the listeners are up: first line the
// socket path, second line the bound TCP port (0 when off). Scripts wait
// on its existence instead of sleeping.

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "service/server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

extern "C" void tcad_on_signal(int) {
  const char byte = 1;
  // Async-signal-safe wakeup; the return value is irrelevant (the pipe
  // being full still means a wakeup is already pending).
  [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe[1], &byte, 1);
}

std::uint64_t parse_u64(const std::string& flag, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    tca::obs::log_event(tca::obs::LogLevel::kError, "tcad.bad_flag",
                        {{"flag", flag}, {"value", text}});
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tca;

  service::ServerOptions options;
  options.uds_path = "tcad.sock";
  std::string ready_file;
  std::string manifest_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        obs::log_event(obs::LogLevel::kError, "tcad.bad_flag",
                       {{"flag", arg}, {"value", "(missing)"}});
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.uds_path = next();
    } else if (arg == "--tcp") {
      options.tcp_port = static_cast<std::uint16_t>(parse_u64(arg, next()));
      options.tcp_enabled = true;
    } else if (arg == "--tcp-ephemeral") {
      options.tcp_enabled = true;
    } else if (arg == "--cache-dir") {
      options.handler.cache.disk_dir = next();
    } else if (arg == "--ckpt-dir") {
      options.handler.engine.ckpt_dir = next();
    } else if (arg == "--cache-entries") {
      options.handler.cache.max_entries =
          static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--workers") {
      options.num_workers = static_cast<std::uint32_t>(parse_u64(arg, next()));
    } else if (arg == "--ready-file") {
      ready_file = next();
    } else if (arg == "--manifest") {
      manifest_out = next();
    } else {
      obs::log_event(obs::LogLevel::kError, "tcad.bad_flag",
                     {{"flag", arg}, {"value", "(unknown)"}});
      return 2;
    }
  }

  if (::pipe(g_signal_pipe) != 0) return 1;
  struct sigaction sa{};
  sa.sa_handler = tcad_on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a client vanishing must not kill the daemon

  const auto t0 = std::chrono::steady_clock::now();
  service::TcadServer server(options);
  int exit_code = 0;
  try {
    server.start();
    if (!ready_file.empty()) {
      std::ofstream ready(ready_file);
      ready << server.uds_path() << "\n" << server.tcp_port() << "\n";
    }
    // Block until a termination signal lands.
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    obs::log_event(obs::LogLevel::kInfo, "tcad.shutdown_signal", {});
  } catch (const std::exception& e) {
    obs::log_event(obs::LogLevel::kError, "tcad.fatal", {{"what", e.what()}});
    exit_code = 1;
  }
  server.stop();

  const std::uint64_t leaked = server.handler().active_requests();
  obs::RunManifest manifest;
  manifest.tool = "tcad";
  manifest.argv.assign(argv, argv + argc);
  manifest.status = exit_code == 0 && leaked == 0 ? "PASS" : "FAIL";
  manifest.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  manifest.checks.push_back(
      {"clean-shutdown", leaked == 0 ? "PASS" : "FAIL",
       "active requests after drain: " + std::to_string(leaked)});
  manifest.extra["protocol_version"] =
      std::to_string(service::kProtocolVersion);
  manifest.try_write(manifest_out.empty() ? obs::manifest_path("tcad")
                                          : manifest_out);
  return exit_code;
}
