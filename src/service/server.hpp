#pragma once
// The tcad socket server (docs/service.md).
//
// Listens on a Unix-domain socket (always) and an optional loopback TCP
// port, accepts connections on a dedicated thread, and serves them from a
// small worker pool. Each connection carries length-prefixed JSON frames
// (service/protocol.hpp); each frame is handled by the shared
// RequestHandler, so every connection sees the same cache, coalescer, and
// engine.
//
// Shutdown discipline (the "zero leaked requests" guarantee the
// service-smoke CI job checks): stop() closes the listeners, cancels the
// server-wide CancelToken (in-flight engine work stops at its next
// cooperative check and is reported truncated), shuts down every open
// connection socket so blocked reads return, then joins all threads.
// After stop() returns, handler().active_requests() == 0 — there is no
// path that leaves a request in flight.
//
// Counters: service.connections, service.conn_errors.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "runtime/budget.hpp"
#include "service/handler.hpp"

namespace tca::service {

struct ServerOptions {
  /// Unix-domain socket path (required). An existing socket file at this
  /// path is unlinked on start.
  std::string uds_path = "tcad.sock";
  /// Optional loopback TCP listener; 0 disables, any other value binds
  /// 127.0.0.1:<port> (port 0 via tcp_enabled below).
  std::uint16_t tcp_port = 0;
  /// Bind the TCP listener even when tcp_port == 0 (ephemeral port,
  /// readable via TcadServer::tcp_port()).
  bool tcp_enabled = false;
  /// Worker threads serving accepted connections.
  std::uint32_t num_workers = 2;
  HandlerOptions handler;
};

class TcadServer {
 public:
  explicit TcadServer(ServerOptions options);
  ~TcadServer();

  TcadServer(const TcadServer&) = delete;
  TcadServer& operator=(const TcadServer&) = delete;

  /// Binds, listens, and spawns the accept + worker threads. Throws
  /// tca::RuntimeError(kIo) when a socket cannot be bound.
  void start();

  /// Graceful shutdown (idempotent; see header comment).
  void stop();

  [[nodiscard]] const std::string& uds_path() const noexcept {
    return options_.uds_path;
  }
  /// Actual bound TCP port (0 when TCP is off). Valid after start().
  [[nodiscard]] std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  [[nodiscard]] RequestHandler& handler() noexcept { return handler_; }

  /// The token handed to every request (cancelled by stop()).
  [[nodiscard]] runtime::CancelToken token() const { return token_; }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  ServerOptions options_;
  RequestHandler handler_;
  runtime::CancelToken token_;
  std::uint16_t tcp_port_ = 0;

  int uds_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;

  std::vector<std::thread> threads_;

  mutable Mutex mu_;
  CondVar cv_;
  bool stopping_ TCA_GUARDED_BY(mu_) = false;
  bool started_ TCA_GUARDED_BY(mu_) = false;
  std::vector<int> pending_fds_ TCA_GUARDED_BY(mu_);  ///< accepted, unserved
  std::vector<int> active_fds_ TCA_GUARDED_BY(mu_);   ///< being served
};

}  // namespace tca::service
