#pragma once
// The tcad compute core (docs/service.md).
//
// Executes one validated ServiceQuery and returns a typed outcome. Three
// execution paths, picked per query:
//
//  * TRANSFER MATRIX — synchronous-ring preimage counts go through
//    phasespace::RingPreimageSolver: O(n) matrix products, no state
//    enumeration, answered inline (no admission slot needed).
//  * SMALL-N DIRECT — explicit builds with n <= small_n_bits run the
//    bit-sliced/SIMD batch engine in one unsupervised shot: the build is
//    cheap enough that retry/checkpoint machinery would cost more than
//    recomputing.
//  * LARGE-N SUPERVISED — everything else runs under runtime::Supervisor
//    (retry + engine-degradation ladder) with a per-request RunBudget and
//    CancelToken, in checkpointed segments: every ckpt_every_states
//    states the successor-table prefix is saved through a
//    runtime::CheckpointStore keyed by the query digest, so a budget-
//    truncated or killed build RESUMES from its last checkpoint on the
//    next identical request instead of restarting. (The synchronous GoE
//    census goes through phasespace::supervised_goe_census; its
//    reached-states bitmap is not checkpointed — a retry restarts the
//    scan. Graph-building queries are the resumable ones.)
//
// Admission control: at most max_concurrent_builds explicit builds run
// at once; excess requests queue on a condition variable (FIFO-ish) and
// their wait is recorded in the service.admission.wait_us histogram.
//
// Counters: service.engine.{builds,small_n,supervised,truncated,failed},
// service.resume.{saved,resumed}.

#include <cstdint>
#include <string>

#include "core/annotations.hpp"
#include "phasespace/successor_store.hpp"
#include "runtime/budget.hpp"
#include "runtime/supervisor.hpp"
#include "service/query.hpp"

namespace tca::service {

struct EngineOptions {
  /// Directory for resume checkpoints; empty disables resumability.
  std::string ckpt_dir;
  /// Save a resume checkpoint every this many newly built states (large-n
  /// supervised builds only).
  std::uint64_t ckpt_every_states = 1u << 18;
  /// Builds with n <= this many bits take the unsupervised direct path.
  std::uint32_t small_n_bits = 16;
  /// Explicit builds admitted concurrently; further requests queue.
  std::uint32_t max_concurrent_builds = 2;
  /// Retry/degradation policy for supervised builds. The per-request
  /// budget is layered on top as the attempt budget.
  runtime::SupervisorOptions supervisor;
  /// Successor-storage backend completed explicit graphs are held in
  /// while results are derived (docs/service.md "storage backends"):
  /// kFlat keeps the raw 8-byte table, kPacked re-encodes to n bits per
  /// successor (~8x smaller resident set per admitted build at n=26),
  /// kDisk spills the table under ckpt_dir and streams results back with
  /// bounded RAM. All backends produce bit-identical results (pinned by
  /// the store-backend-agree oracle).
  phasespace::StoreKind store = phasespace::StoreKind::kFlat;
};

/// Per-request resource limits, parsed from the request's "budget" object.
struct RequestBudget {
  std::uint64_t max_states = runtime::RunBudget::kUnlimited;
  std::uint64_t wall_ms = 0;  ///< 0 = no wall limit

  [[nodiscard]] runtime::RunBudget to_run_budget() const;
};

/// How one execution ended.
struct QueryOutcome {
  enum class Status : std::uint8_t { kOk = 0, kTruncated, kFailed };

  Status status = Status::kFailed;
  QueryResult result;  ///< valid iff status == kOk
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
  std::uint64_t states_done = 0;
  std::uint64_t states_total = 0;
  bool resumed = false;   ///< a resume checkpoint seeded this build
  bool degraded = false;  ///< the supervisor walked the engine ladder
  ErrorCode error_code = ErrorCode::kUnknown;
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `query` (already validated) under the request budget.
  /// `token` cancels cooperatively (server shutdown, client gone). Never
  /// throws for compute-path failures — they land in the outcome.
  [[nodiscard]] QueryOutcome execute(const ServiceQuery& query,
                                     const RequestBudget& budget,
                                     runtime::CancelToken token);

  /// Total explicit-graph builds started (small-n + supervised attempts
  /// are counted once per execute, not per retry). Test hook for the
  /// coalescing assertion "N identical concurrent requests -> 1 build".
  [[nodiscard]] std::uint64_t builds_started() const;

 private:
  class AdmissionSlot;

  QueryOutcome run_preimage_transfer_matrix(const ServiceQuery& query) const;
  QueryOutcome run_explicit(const ServiceQuery& query,
                            const RequestBudget& budget,
                            runtime::CancelToken token);
  QueryOutcome run_goe_supervised(const ServiceQuery& query,
                                  const RequestBudget& budget,
                                  runtime::CancelToken token);

  const EngineOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::uint32_t active_builds_ TCA_GUARDED_BY(mu_) = 0;
  std::uint64_t builds_started_ TCA_GUARDED_BY(mu_) = 0;
};

}  // namespace tca::service
