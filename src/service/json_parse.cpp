#include "service/json_parse.hpp"

#include <cmath>
#include <cstdlib>

#include "runtime/error.hpp"

namespace tca::service {
namespace {

[[noreturn]] void bad(std::size_t pos, const std::string& why) {
  throw InvalidArgumentError("json: at byte " + std::to_string(pos) + ": " +
                             why);
}

/// Recursive-descent parser over a bounded string_view. Depth is checked
/// on every container open, so adversarial input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) bad(pos_, "trailing garbage after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) bad(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      bad(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxJsonDepth) bad(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) bad(pos_, "bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) bad(pos_, "bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) bad(pos_, "bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      // Duplicate keys: last one wins (the common lenient reading);
      // canonicalization happens on the typed query, not the raw tree.
      members[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) bad(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        bad(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) bad(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) bad(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              bad(pos_ - 1, "bad hex digit in \\u escape");
            }
          }
          if (code > 0x7F) {
            bad(pos_ - 4, "\\u escape outside ASCII (protocol strings are "
                          "ASCII; send UTF-8 bytes raw instead)");
          }
          out += static_cast<char>(code);
          break;
        }
        default: bad(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) bad(pos_, "expected a number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) bad(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) bad(pos_, "digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      bad(start, "unparseable number '" + token + "'");
    }
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw InvalidArgumentError(
      std::string("json: expected ") + want + ", got kind #" +
      std::to_string(static_cast<unsigned>(got)));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

std::uint64_t JsonValue::as_u64() const {
  const double v = as_double();
  if (v < 0 || v != std::floor(v) || v > 9007199254740992.0 /* 2^53 */) {
    throw InvalidArgumentError(
        "json: number is not an exact unsigned integer");
  }
  return static_cast<std::uint64_t>(v);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_u64();
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_string();
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_bool();
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

JsonValue parse_json(std::string_view text) {
  if (text.size() > kMaxJsonBytes) {
    throw InvalidArgumentError("json: document exceeds " +
                               std::to_string(kMaxJsonBytes) + " bytes");
  }
  return Parser(text).parse_document();
}

}  // namespace tca::service
