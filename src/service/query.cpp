#include "service/query.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/fnv.hpp"
#include "obs/json.hpp"
#include "phasespace/functional_graph.hpp"
#include "runtime/error.hpp"

namespace tca::service {
namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(v));
  return buf;
}

[[noreturn]] void bad_query(const std::string& why) {
  throw InvalidArgumentError("query: " + why);
}

}  // namespace

const char* query_kind_name(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kAttractorSummary: return "attractor-summary";
    case QueryKind::kTransientDepth: return "transient-depth";
    case QueryKind::kGoeCensus: return "goe-census";
    case QueryKind::kPreimageCount: return "preimage-count";
  }
  return "unknown";
}

rules::Rule ServiceRule::materialize(std::uint32_t arity) const {
  switch (type) {
    case Type::kMajority:
      return rules::MajorityRule{rules::MajorityTie::kZero};
    case Type::kMajorityTieOne:
      return rules::MajorityRule{rules::MajorityTie::kOne};
    case Type::kParity:
      return rules::ParityRule{};
    case Type::kKOfN:
      return rules::KOfNRule{k};
    case Type::kSymmetric: {
      rules::SymmetricRule r;
      r.accept.resize(arity + 1);
      for (std::uint32_t s = 0; s <= arity && s < 64; ++s) {
        r.accept[s] = static_cast<rules::State>((mask >> s) & 1u);
      }
      return r;
    }
    case Type::kWolfram:
      return rules::wolfram(code);
  }
  bad_query("unknown rule type");
}

std::string ServiceRule::token() const {
  switch (type) {
    case Type::kMajority: return "majority";
    case Type::kMajorityTieOne: return "majority1";
    case Type::kParity: return "parity";
    case Type::kKOfN: return "kofn:" + std::to_string(k);
    case Type::kSymmetric: return "sym:" + hex_u64(mask);
    case Type::kWolfram: return "wolfram:" + std::to_string(code);
  }
  return "unknown";
}

void ServiceQuery::validate() const {
  if (n == 0) bad_query("n must be >= 1");
  if (radius < 1 || radius > 3) bad_query("radius must be in [1, 3]");
  const std::uint32_t arity = 2 * radius + 1;
  if (topology == Topology::kRing && n < arity) {
    bad_query("ring requires n >= 2*radius + 1");
  }
  if (rule.type == ServiceRule::Type::kWolfram) {
    if (radius != 1) bad_query("wolfram rules require radius 1");
    if (rule.code > 255) bad_query("wolfram code must be in [0, 255]");
  }
  if (rule.type == ServiceRule::Type::kKOfN && rule.k > 64) {
    bad_query("kofn threshold must be in [0, 64]");
  }
  if (rule.type == ServiceRule::Type::kSymmetric &&
      (mask_bits(arity) | rule.mask) != mask_bits(arity)) {
    bad_query("symmetric mask has bits above arity (normalize with "
              "ServiceRule::mask for " +
              std::to_string(arity) + " inputs)");
  }
  if (scheme == Scheme::kSweep && !order.empty()) {
    if (order.size() != n) bad_query("sweep order must list all n nodes");
    std::vector<bool> seen(n, false);
    for (core::NodeId v : order) {
      if (v >= n || seen[v]) bad_query("sweep order is not a permutation");
      seen[v] = true;
    }
    // Canonical form: the identity order is spelled as an EMPTY order, so
    // the cache key of "sweep" and "sweep with order 0..n-1" coincide.
    bool identity = true;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (order[i] != i) {
        identity = false;
        break;
      }
    }
    if (identity) {
      bad_query("identity sweep order must be omitted (canonical form)");
    }
  }
  if (scheme == Scheme::kSynchronous && !order.empty()) {
    bad_query("synchronous scheme takes no order");
  }
  if (kind == QueryKind::kPreimageCount) {
    if (n > 63) bad_query("preimage requires n <= 63 (64-bit state codes)");
    if (target >= (std::uint64_t{1} << n)) {
      bad_query("target state code has bits above n");
    }
  } else if (target != 0) {
    bad_query("target is only meaningful for preimage-count");
  }
  if (needs_explicit_graph()) {
    // Validation caps at the FLAT ceiling: the engine stages every build
    // through an in-RAM flat table (the resume-payload format) before
    // optionally re-encoding into a packed/disk backend for result
    // derivation. Raising this requires a store-native build path
    // (phasespace::build_synchronous_sharded straight into kDisk).
    const std::string context = std::string("service: ") + query_kind_name(kind);
    require_explicit_bits(
        n, phasespace::max_explicit_bits(phasespace::StoreKind::kFlat),
        context.c_str());
  }
}

std::uint64_t ServiceQuery::mask_bits(std::uint32_t arity) noexcept {
  return arity >= 63 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (arity + 1)) - 1;
}

core::Automaton ServiceQuery::automaton() const {
  const core::Boundary boundary = topology == Topology::kRing
                                      ? core::Boundary::kRing
                                      : core::Boundary::kFixedZero;
  return core::Automaton::line(n, radius, boundary,
                               rule.materialize(2 * radius + 1),
                               core::Memory::kWith);
}

std::vector<core::NodeId> ServiceQuery::effective_order() const {
  if (!order.empty()) return order;
  std::vector<core::NodeId> id(n);
  std::iota(id.begin(), id.end(), core::NodeId{0});
  return id;
}

bool ServiceQuery::needs_explicit_graph() const noexcept {
  return !(kind == QueryKind::kPreimageCount && topology == Topology::kRing &&
           scheme == Scheme::kSynchronous);
}

std::string ServiceQuery::canonical_key() const {
  // Fixed field order, versioned prefix; bump "tcad1" on any change to the
  // serialization (stale disk entries then simply miss).
  std::string key = "tcad1;kind=";
  key += query_kind_name(kind);
  key += ";topo=";
  key += topology == Topology::kRing ? "ring" : "line";
  key += ";n=" + std::to_string(n);
  key += ";r=" + std::to_string(radius);
  key += ";rule=" + rule.token();
  key += ";scheme=";
  if (scheme == Scheme::kSynchronous) {
    key += "sync";
  } else {
    key += "sweep:";
    if (order.empty()) {
      key += "id";
    } else {
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i != 0) key += ',';
        key += std::to_string(order[i]);
      }
    }
  }
  if (kind == QueryKind::kPreimageCount) {
    key += ";target=" + hex_u64(target);
  }
  return key;
}

std::string ServiceQuery::digest() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    core::fnv1a64(canonical_key())));
  return buf;
}

ServiceQuery ServiceQuery::from_json(const JsonValue& v) {
  if (!v.is_object()) bad_query("request 'query' must be an object");
  ServiceQuery q;

  const std::string kind = v.string_or("kind", "");
  if (kind == "attractor-summary") {
    q.kind = QueryKind::kAttractorSummary;
  } else if (kind == "transient-depth") {
    q.kind = QueryKind::kTransientDepth;
  } else if (kind == "goe-census") {
    q.kind = QueryKind::kGoeCensus;
  } else if (kind == "preimage-count") {
    q.kind = QueryKind::kPreimageCount;
  } else {
    bad_query("unknown kind '" + kind + "'");
  }

  q.n = static_cast<std::uint32_t>(v.u64_or("n", 0));
  q.radius = static_cast<std::uint32_t>(v.u64_or("radius", 1));

  const std::string topo = v.string_or("topology", "ring");
  if (topo == "ring") {
    q.topology = Topology::kRing;
  } else if (topo == "line") {
    q.topology = Topology::kLine;
  } else {
    bad_query("unknown topology '" + topo + "'");
  }

  // "rule" is either a shorthand string ("majority", "parity", ...) or an
  // object {"type": ..., "k"/"mask"/"code": ...}.
  const JsonValue* rule = v.find("rule");
  std::string rule_type = "majority";
  if (rule != nullptr && rule->is_string()) {
    rule_type = rule->as_string();
  } else if (rule != nullptr && rule->is_object()) {
    rule_type = rule->string_or("type", "majority");
  } else if (rule != nullptr && !rule->is_null()) {
    bad_query("'rule' must be a string or an object");
  }
  if (rule_type == "majority") {
    q.rule.type = ServiceRule::Type::kMajority;
  } else if (rule_type == "majority1") {
    q.rule.type = ServiceRule::Type::kMajorityTieOne;
  } else if (rule_type == "parity") {
    q.rule.type = ServiceRule::Type::kParity;
  } else if (rule_type == "kofn") {
    q.rule.type = ServiceRule::Type::kKOfN;
    q.rule.k = static_cast<std::uint32_t>(
        rule != nullptr && rule->is_object() ? rule->u64_or("k", 1) : 1);
  } else if (rule_type == "symmetric") {
    q.rule.type = ServiceRule::Type::kSymmetric;
    q.rule.mask =
        rule != nullptr && rule->is_object() ? rule->u64_or("mask", 0) : 0;
    // Normalize: bits above the arity can never fire; strip them so every
    // spelling of the same rule shares one cache key.
    q.rule.mask &= mask_bits(2 * q.radius + 1);
  } else if (rule_type == "wolfram") {
    q.rule.type = ServiceRule::Type::kWolfram;
    q.rule.code = static_cast<std::uint32_t>(
        rule != nullptr && rule->is_object() ? rule->u64_or("code", 0) : 0);
  } else {
    bad_query("unknown rule type '" + rule_type + "'");
  }

  const std::string scheme = v.string_or("scheme", "synchronous");
  if (scheme == "synchronous") {
    q.scheme = Scheme::kSynchronous;
  } else if (scheme == "sweep") {
    q.scheme = Scheme::kSweep;
  } else {
    bad_query("unknown scheme '" + scheme + "'");
  }

  if (const JsonValue* order = v.find("order");
      order != nullptr && !order->is_null()) {
    if (q.scheme != Scheme::kSweep) {
      bad_query("'order' is only meaningful with scheme 'sweep'");
    }
    for (const JsonValue& item : order->as_array()) {
      q.order.push_back(static_cast<core::NodeId>(item.as_u64()));
    }
    // Canonicalize an explicitly spelled identity order to the empty one
    // before validate() (which rejects non-canonical identity spellings
    // on directly constructed queries).
    bool identity = q.order.size() == q.n;
    for (std::size_t i = 0; identity && i < q.order.size(); ++i) {
      identity = q.order[i] == i;
    }
    if (identity) q.order.clear();
  }

  q.target = v.u64_or("target", 0);
  q.validate();
  return q;
}

std::string QueryResult::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("kind", query_kind_name(kind));
  w.kv("num_states", num_states);
  switch (kind) {
    case QueryKind::kAttractorSummary:
      w.kv("num_attractors", num_attractors);
      w.kv("num_fixed_points", num_fixed_points);
      w.kv("num_cycle_states", num_cycle_states);
      w.kv("num_transient_states", num_transient_states);
      w.kv("num_gardens_of_eden", num_gardens_of_eden);
      w.kv("max_period", max_period);
      w.kv("max_transient", max_transient);
      w.key("cycle_lengths").begin_array();
      for (const auto& [length, count] : cycle_lengths) {
        w.begin_object();
        w.kv("length", length);
        w.kv("count", count);
        w.end_object();
      }
      w.end_array();
      break;
    case QueryKind::kTransientDepth:
      w.kv("max_transient", max_transient);
      w.kv("num_transient_states", num_transient_states);
      break;
    case QueryKind::kGoeCensus:
      w.kv("gardens", gardens);
      w.kv("scanned", scanned);
      break;
    case QueryKind::kPreimageCount:
      w.kv("preimage_count", preimage_count);
      w.kv("is_garden_of_eden", is_garden_of_eden);
      w.kv("method", method);
      break;
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace tca::service
