#pragma once
// Minimal JSON parser for the tcad wire protocol (docs/service.md).
//
// The observability layer deliberately ships only an *emitter*
// (obs/json.hpp): telemetry is written by C++ and consumed by Python.
// The service daemon is the first subsystem that must also READ JSON —
// requests arrive as length-prefixed JSON frames — so this is the one
// parser in the tree, scoped to the service's needs:
//
//  * full JSON value model (null/bool/number/string/array/object) with
//    object key order preserved-insensitive lookup (std::map);
//  * numbers are IEEE doubles, exact for integers up to 2^53 — far above
//    the 2^26-state explicit-enumeration cap, so state codes round-trip;
//  * strict: trailing garbage, unterminated strings, bad escapes, depth
//    past kMaxDepth and inputs past kMaxBytes are rejected with
//    tca::InvalidArgumentError (the protocol layer turns that into an
//    "error" response, never a crash);
//  * \uXXXX escapes outside ASCII are rejected rather than transcoded —
//    the protocol's string fields (kinds, rule names) are ASCII by spec.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tca::service {

/// Upper bound on nesting depth a frame may use (arrays/objects).
inline constexpr std::size_t kMaxJsonDepth = 32;
/// Upper bound on accepted document size (matches the frame size cap).
inline constexpr std::size_t kMaxJsonBytes = 16u << 20;

/// One parsed JSON value. A tree, not a DOM: small and copyable enough
/// for request-sized documents.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Typed accessors; throw tca::InvalidArgumentError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// The number as an exact unsigned integer; throws when the value is
  /// not a number, is negative, has a fractional part, or exceeds 2^53
  /// (where doubles stop being exact).
  [[nodiscard]] std::uint64_t as_u64() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// find() + typed access with a default. Missing key -> fallback;
  /// present-but-wrong-kind still throws (a malformed frame should fail
  /// loudly, not silently default).
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Throws tca::InvalidArgumentError with a position-carrying
/// message on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace tca::service
