#include "service/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/error.hpp"

namespace tca::service {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kQuarantineSuffix = ".quarantined";

/// Renames a failed-validation cache file out of the candidate set,
/// preserving it for forensics — the CheckpointStore discipline
/// (runtime/ckpt_store.cpp). Never deletes; never throws.
void quarantine(const std::string& path, ErrorCode code) noexcept {
  static obs::Counter& quarantined =
      obs::counter("service.cache.quarantined");
  std::string target = path + std::string(kQuarantineSuffix);
  std::error_code ec;
  for (std::uint32_t n = 1; fs::exists(target, ec); ++n) {
    target = path + std::string(kQuarantineSuffix) + "." + std::to_string(n);
  }
  fs::rename(path, target, ec);
  if (ec) return;  // the file vanished or the fs refused; nothing to do
  quarantined.add();
  obs::log_event(obs::LogLevel::kWarn, "service.cache.quarantined",
                 {{"path", path},
                  {"quarantined_as", target},
                  {"code", error_code_name(code)}});
}

}  // namespace

ResultCache::ResultCache(CacheOptions options) : options_([&] {
  options.max_entries = std::max<std::size_t>(options.max_entries, 1);
  return options;
}()) {}

std::optional<CacheHit> ResultCache::lookup(const ServiceQuery& query) {
  static obs::Counter& hits = obs::counter("service.cache.hit");
  static obs::Counter& misses = obs::counter("service.cache.miss");
  static obs::Counter& disk_hits = obs::counter("service.cache.disk_hit");

  const std::string key = query.canonical_key();
  LockGuard lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    touch(it->second);
    hits.add();
    return CacheHit{it->second->result_json, CacheTier::kMemory};
  }
  if (!options_.disk_dir.empty()) {
    const std::string path = disk_path(query);
    if (std::optional<std::string> json = disk_lookup(key, path)) {
      insert_locked(key, *json);  // promote
      disk_hits.add();
      return CacheHit{std::move(*json), CacheTier::kDisk};
    }
  }
  misses.add();
  return std::nullopt;
}

void ResultCache::insert(const ServiceQuery& query,
                         const std::string& result_json) {
  const std::string key = query.canonical_key();
  LockGuard lock(mu_);
  insert_locked(key, result_json);
  if (!options_.disk_dir.empty()) {
    disk_insert(key, result_json, disk_path(query));
  }
}

std::size_t ResultCache::size() const {
  LockGuard lock(mu_);
  return lru_.size();
}

std::vector<std::string> ResultCache::keys_by_recency() const {
  LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(e.key);
  return out;
}

std::string ResultCache::disk_path(const ServiceQuery& query) const {
  if (options_.disk_dir.empty()) return "";
  return (fs::path(options_.disk_dir) / (query.digest() + ".tcac")).string();
}

void ResultCache::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ResultCache::insert_locked(const std::string& key,
                                const std::string& result_json) {
  static obs::Counter& evictions = obs::counter("service.cache.evict");
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->result_json = result_json;
    touch(it->second);
    return;
  }
  lru_.push_front(Entry{key, result_json});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > options_.max_entries) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions.add();
  }
}

std::optional<std::string> ResultCache::disk_lookup(const std::string& key,
                                                    const std::string& path) {
  runtime::Checkpoint ckpt;
  try {
    ckpt = runtime::load_checkpoint(path);
  } catch (const tca::Error& e) {
    // kIo = absent or unreadable: an ordinary miss. Anything else means
    // the file EXISTS but fails validation — preserve it for forensics
    // and stop consulting it.
    if (e.code() != ErrorCode::kIo) quarantine(path, e.code());
    return std::nullopt;
  }
  const std::size_t nl = ckpt.payload.find('\n');
  if (nl == std::string::npos) {
    quarantine(path, ErrorCode::kCheckpointCorrupt);
    return std::nullopt;
  }
  // The embedded canonical key makes a 64-bit digest collision (or a file
  // dropped in under the wrong name) a detected miss, not a wrong answer.
  if (ckpt.payload.compare(0, nl, key) != 0) {
    quarantine(path, ErrorCode::kCheckpointCorrupt);
    return std::nullopt;
  }
  return ckpt.payload.substr(nl + 1);
}

void ResultCache::disk_insert(const std::string& key,
                              const std::string& result_json,
                              const std::string& path) {
  static obs::Counter& writes = obs::counter("service.cache.disk_write");
  static obs::Counter& errors = obs::counter("service.cache.disk_error");
  std::error_code ec;
  fs::create_directories(options_.disk_dir, ec);
  runtime::Checkpoint ckpt;
  ckpt.payload = key + "\n" + result_json;
  try {
    runtime::save_checkpoint(path, ckpt);
    writes.add();
  } catch (const tca::Error& e) {
    errors.add();
    obs::log_event(obs::LogLevel::kWarn, "service.cache.disk_error",
                   {{"path", path}, {"code", error_code_name(e.code())}});
  }
}

}  // namespace tca::service
