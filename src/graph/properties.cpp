#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace tca::graph {
namespace {

/// BFS from every unvisited node; calls `on_component` once per component
/// start and `on_edge_color` for each tree/cross edge with both endpoint
/// colors already assigned. Returns the color array (BFS parity).
std::vector<std::uint8_t> bfs_two_color(const Graph& g,
                                        std::size_t& components,
                                        bool& odd_cycle) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> color(n, 2);  // 2 = unvisited
  components = 0;
  odd_cycle = false;
  std::queue<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (color[s] != 2) continue;
    ++components;
    color[s] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (NodeId v : g.neighbors(u)) {
        if (color[v] == 2) {
          color[v] = static_cast<std::uint8_t>(1 - color[u]);
          queue.push(v);
        } else if (color[v] == color[u]) {
          odd_cycle = true;
        }
      }
    }
  }
  return color;
}

}  // namespace

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  std::size_t components = 0;
  bool odd = false;
  bfs_two_color(g, components, odd);
  return components == 1;
}

std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g) {
  std::size_t components = 0;
  bool odd = false;
  auto color = bfs_two_color(g, components, odd);
  if (odd) return std::nullopt;
  return color;
}

std::optional<NodeId> regular_degree(const Graph& g) {
  if (g.num_nodes() == 0) return NodeId{0};
  const NodeId d = g.degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) != d) return std::nullopt;
  }
  return d;
}

std::vector<NodeId> degree_histogram(const Graph& g) {
  std::vector<NodeId> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

std::size_t component_count(const Graph& g) {
  std::size_t components = 0;
  bool odd = false;
  bfs_two_color(g, components, odd);
  return components;
}

}  // namespace tca::graph
