#pragma once
// Undirected graph substrate for cellular spaces (DESIGN.md S1).
//
// A tca::graph::Graph is an immutable undirected graph in CSR
// (compressed-sparse-row) form.  Cellular automata read a node's neighbor
// list every step, so the representation is optimized for cache-friendly
// sequential scans: all adjacency lists live in one contiguous array.
//
// Neighbor lists are sorted ascending and contain no duplicates and no
// self-loops (a CA "with memory" includes the node itself via the
// neighborhood kind, not via a loop edge; see tca::core::Automaton).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tca::graph {

/// Node identifier. Graphs are limited to 2^32-1 nodes.
using NodeId = std::uint32_t;

/// An undirected edge as an unordered pair (stored with u < v).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable undirected graph in CSR form.
class Graph {
 public:
  /// Empty graph (0 nodes).
  Graph() = default;

  /// Builds a graph on `num_nodes` nodes from an edge list.
  /// Duplicate edges and self-loops are rejected with std::invalid_argument,
  /// as is any endpoint >= num_nodes.
  Graph(NodeId num_nodes, std::span<const Edge> edges);

  /// Number of nodes.
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  /// Degree of node `v`.
  [[nodiscard]] NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_.at(v + 1) - offsets_.at(v));
  }

  /// Sorted neighbor list of node `v`. The span stays valid for the
  /// lifetime of the graph.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return std::span<const NodeId>(adjacency_)
        .subspan(offsets_.at(v), offsets_.at(v + 1) - offsets_.at(v));
  }

  /// True if {u, v} is an edge. O(log degree(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// All edges, each once, with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Maximum degree over all nodes (0 for the empty graph).
  [[nodiscard]] NodeId max_degree() const noexcept { return max_degree_; }

  /// Human-readable one-line summary, e.g. "Graph(n=8, m=12)".
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  NodeId num_nodes_ = 0;
  NodeId max_degree_ = 0;
  std::vector<std::size_t> offsets_ = {0};  // size num_nodes_+1
  std::vector<NodeId> adjacency_;           // size 2*num_edges
};

}  // namespace tca::graph
