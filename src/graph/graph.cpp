#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::graph {

Graph::Graph(NodeId num_nodes, std::span<const Edge> edges)
    : num_nodes_(num_nodes) {
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u == e.v) {
      throw tca::InvalidArgumentError("Graph: self-loop on node " +
                                  std::to_string(e.u));
    }
    if (e.u >= num_nodes || e.v >= num_nodes) {
      throw tca::InvalidArgumentError(
          "Graph: edge endpoint out of range", tca::ErrorCode::kOutOfRange);
    }
    normalized.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(normalized.begin(), normalized.end());
  if (std::adjacent_find(normalized.begin(), normalized.end()) !=
      normalized.end()) {
    throw tca::InvalidArgumentError("Graph: duplicate edge");
  }

  std::vector<NodeId> degree(num_nodes, 0);
  for (const Edge& e : normalized) {
    ++degree[e.u];
    ++degree[e.v];
  }
  offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
    max_degree_ = std::max(max_degree_, degree[v]);
  }
  adjacency_.resize(offsets_[num_nodes]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : normalized) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
  // Adjacency lists are sorted because edges were processed in sorted order
  // for the low endpoint; the high endpoint's list needs a per-list sort.
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto first = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto last = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(first, last);
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.push_back(Edge{u, v});
    }
  }
  return out;
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(num_nodes_) +
         ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace tca::graph
