#pragma once
// Builders for the cellular spaces the paper uses (DESIGN.md S1):
// 1-D lines and rings (with radius-r neighborhoods), 2-D grids and tori,
// hypercubes, complete and complete-bipartite graphs, and circulant
// (Cayley) graphs.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace tca::graph {

/// 1-D path 0-1-...-(n-1). Radius-r variant connects nodes at distance <= r.
/// Boundary nodes simply have smaller neighborhoods ("fixed" boundary).
[[nodiscard]] Graph path(NodeId n, NodeId radius = 1);

/// 1-D ring (circular boundary conditions). Radius-r variant connects nodes
/// at ring distance <= r. Requires n >= 2*radius + 1 so neighborhoods do not
/// wrap onto themselves or collide.
[[nodiscard]] Graph ring(NodeId n, NodeId radius = 1);

/// Neighborhood shape for 2-D grids.
enum class GridNeighborhood : std::uint8_t {
  kVonNeumann,  ///< 4 axis neighbors
  kMoore,       ///< 8 neighbors incl. diagonals
};

/// 2-D grid of rows x cols. `torus` wraps both dimensions (requires the
/// wrapped dimension >= 3 to avoid duplicate edges).
[[nodiscard]] Graph grid2d(NodeId rows, NodeId cols, bool torus = false,
                           GridNeighborhood nbhd = GridNeighborhood::kVonNeumann);

/// d-dimensional hypercube Q_d on 2^d nodes; node ids are bit vectors,
/// edges connect ids at Hamming distance 1. Requires d <= 20.
[[nodiscard]] Graph hypercube(NodeId dimension);

/// Complete graph K_n.
[[nodiscard]] Graph complete(NodeId n);

/// Complete bipartite graph K_{a,b}; the first `a` ids form one side.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// Circulant (cyclic Cayley) graph on n nodes: i ~ i +/- s (mod n) for each
/// connection offset s. Offsets must be in [1, n/2] and distinct; an offset
/// of exactly n/2 contributes a single perfect-matching edge per node.
[[nodiscard]] Graph circulant(NodeId n, std::span<const NodeId> offsets);

/// Star K_{1,n-1} with node 0 at the center.
[[nodiscard]] Graph star(NodeId n);

/// Arbitrary graph from an edge list (validates like the Graph ctor).
[[nodiscard]] Graph from_edges(NodeId n, std::span<const Edge> edges);

/// Erdos-Renyi G(n, p): each of the C(n,2) possible edges present
/// independently with probability p. Deterministic under `seed`.
[[nodiscard]] Graph random_gnp(NodeId n, double p, std::uint64_t seed);

/// Random d-regular graph by the configuration (pairing) model with
/// rejection of self-loops and multi-edges. Requires n*d even, d < n.
/// Deterministic under `seed`; throws after too many rejected pairings
/// (does not happen for the small d used here).
[[nodiscard]] Graph random_regular(NodeId n, NodeId d, std::uint64_t seed);

}  // namespace tca::graph
