#include "graph/builders.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>
#include <string>

#include "runtime/error.hpp"

namespace tca::graph {
namespace {

void require(bool cond, const std::string& msg) {
  if (!cond) throw tca::InvalidArgumentError(msg);
}

}  // namespace

Graph path(NodeId n, NodeId radius) {
  require(radius >= 1, "path: radius must be >= 1");
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId d = 1; d <= radius && i + d < n; ++d) {
      edges.push_back(Edge{i, i + d});
    }
  }
  return Graph(n, edges);
}

Graph ring(NodeId n, NodeId radius) {
  require(radius >= 1, "ring: radius must be >= 1");
  require(n >= 2 * radius + 1,
          "ring: need n >= 2*radius+1 (got n=" + std::to_string(n) + ")");
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId d = 1; d <= radius; ++d) {
      const NodeId j = (i + d) % n;
      edges.push_back(i < j ? Edge{i, j} : Edge{j, i});
    }
  }
  // Each undirected edge was generated exactly once because d <= radius < n/2
  // ... except when n == 2*radius+1 is odd this still holds; dedupe defensively
  std::set<Edge> unique(edges.begin(), edges.end());
  std::vector<Edge> deduped(unique.begin(), unique.end());
  return Graph(n, deduped);
}

Graph grid2d(NodeId rows, NodeId cols, bool torus, GridNeighborhood nbhd) {
  require(rows >= 1 && cols >= 1, "grid2d: empty grid");
  if (torus) {
    require(rows >= 3 && cols >= 3, "grid2d: torus needs both dims >= 3");
  }
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::set<Edge> edges;
  const auto add = [&edges](NodeId a, NodeId b) {
    if (a != b) edges.insert(a < b ? Edge{a, b} : Edge{b, a});
  };
  const NodeId n = rows * cols;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      const auto link = [&](std::int64_t dr, std::int64_t dc) {
        std::int64_t nr = static_cast<std::int64_t>(r) + dr;
        std::int64_t nc = static_cast<std::int64_t>(c) + dc;
        if (torus) {
          nr = (nr + rows) % rows;
          nc = (nc + cols) % cols;
        } else if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) {
          return;
        }
        add(id(r, c), id(static_cast<NodeId>(nr), static_cast<NodeId>(nc)));
      };
      link(0, 1);
      link(1, 0);
      if (nbhd == GridNeighborhood::kMoore) {
        link(1, 1);
        link(1, -1);
      }
    }
  }
  std::vector<Edge> list(edges.begin(), edges.end());
  return Graph(n, list);
}

Graph hypercube(NodeId dimension) {
  require(dimension <= 20, "hypercube: dimension too large");
  const NodeId n = NodeId{1} << dimension;
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId b = 0; b < dimension; ++b) {
      const NodeId w = v ^ (NodeId{1} << b);
      if (v < w) edges.push_back(Edge{v, w});
    }
  }
  return Graph(n, edges);
}

Graph complete(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return Graph(n, edges);
}

Graph complete_bipartite(NodeId a, NodeId b) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) edges.push_back(Edge{u, a + v});
  }
  return Graph(a + b, edges);
}

Graph circulant(NodeId n, std::span<const NodeId> offsets) {
  require(n >= 2, "circulant: need n >= 2");
  std::set<Edge> edges;
  std::set<NodeId> seen;
  for (NodeId s : offsets) {
    require(s >= 1 && s <= n / 2, "circulant: offset out of [1, n/2]");
    require(seen.insert(s).second, "circulant: duplicate offset");
    for (NodeId i = 0; i < n; ++i) {
      const NodeId j = (i + s) % n;
      if (i != j) edges.insert(i < j ? Edge{i, j} : Edge{j, i});
    }
  }
  std::vector<Edge> list(edges.begin(), edges.end());
  return Graph(n, list);
}

Graph star(NodeId n) {
  require(n >= 1, "star: need n >= 1");
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return Graph(n, edges);
}

Graph from_edges(NodeId n, std::span<const Edge> edges) {
  return Graph(n, edges);
}

Graph random_gnp(NodeId n, double p, std::uint64_t seed) {
  require(p >= 0.0 && p <= 1.0, "random_gnp: p must be in [0, 1]");
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(p);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng)) edges.push_back(Edge{u, v});
    }
  }
  return Graph(n, edges);
}

Graph random_regular(NodeId n, NodeId d, std::uint64_t seed) {
  require(d < n, "random_regular: need d < n");
  require((static_cast<std::uint64_t>(n) * d) % 2 == 0,
          "random_regular: n*d must be even");
  std::mt19937_64 rng(seed);
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    stubs.clear();
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId k = 0; k < d; ++k) stubs.push_back(v);
    }
    std::shuffle(stubs.begin(), stubs.end(), rng);
    std::set<Edge> edges;
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (!edges.insert(u < v ? Edge{u, v} : Edge{v, u}).second) {
        ok = false;
        break;
      }
    }
    if (ok) {
      std::vector<Edge> list(edges.begin(), edges.end());
      return Graph(n, list);
    }
  }
  throw tca::RuntimeError("random_regular: pairing model did not converge");
}

}  // namespace tca::graph
