#pragma once
// Structural graph properties used by the paper's extension results
// (DESIGN.md S1): bipartiteness (threshold CA over bipartite spaces have
// two-cycles, Section 3.2), regularity (cellular spaces are regular graphs,
// Definition 1), and connectivity.

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace tca::graph {

/// True if the graph is connected (the empty graph and K_1 count as
/// connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// If bipartite, returns a 2-coloring (color[v] in {0,1}); otherwise
/// std::nullopt. Isolated nodes get color 0.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> bipartition(
    const Graph& g);

/// True if the graph is bipartite (contains no odd cycle).
[[nodiscard]] inline bool is_bipartite(const Graph& g) {
  return bipartition(g).has_value();
}

/// If every node has the same degree, returns that degree; otherwise
/// std::nullopt. The empty graph returns 0.
[[nodiscard]] std::optional<NodeId> regular_degree(const Graph& g);

/// Histogram of node degrees: result[d] = number of nodes with degree d.
[[nodiscard]] std::vector<NodeId> degree_histogram(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::size_t component_count(const Graph& g);

}  // namespace tca::graph
