#include "testing/oracles.hpp"

#include <algorithm>
#include <filesystem>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "aca/aca.hpp"
#include "aca/explorer.hpp"
#include "analysis/energy.hpp"
#include "core/batch_isa.hpp"
#include "core/batch_kernels.hpp"
#include "core/block_sequential.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"
#include "graph/properties.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/sharded_build.hpp"
#include "phasespace/successor_store.hpp"
#include "phasespace/supervised.hpp"
#include "runtime/budget.hpp"
#include "runtime/fault.hpp"
#include "runtime/supervisor.hpp"
#include "service/handler.hpp"
#include "service/json_parse.hpp"
#include "service/query.hpp"

namespace tca::testing {
namespace {

using core::Automaton;
using core::Configuration;

/// Shared pool for the threaded engine path; sized past one worker even on
/// single-core machines so the fork-join handoff is actually exercised.
core::ThreadPool& shared_pool() {
  static core::ThreadPool pool(3);
  return pool;
}

/// Largest n whose phase space (2^n states) we enumerate explicitly.
constexpr std::uint32_t kExplicitBits = 12;

PropertyResult check_engines_agree(const TestCase& tc) {
  const auto a = tc.automaton();
  Configuration current = tc.configuration();
  Configuration generic(a.size()), fast(a.size()), threaded(a.size());
  for (std::uint32_t t = 0; t < tc.steps; ++t) {
    core::step_synchronous(a, current, generic);
    core::step_synchronous_fast(a, current, fast);
    if (fast != generic) {
      return PropertyResult::fail(
          "step_synchronous_fast diverges from step_synchronous at step " +
          std::to_string(t) + ": " + fast.to_string() + " vs " +
          generic.to_string());
    }
    core::step_synchronous_threaded(a, current, threaded, shared_pool());
    if (threaded != generic) {
      return PropertyResult::fail(
          "step_synchronous_threaded diverges from step_synchronous at step " +
          std::to_string(t) + ": " + threaded.to_string() + " vs " +
          generic.to_string());
    }
    Configuration block = current;
    core::step_block_sequential(a, block,
                                core::BlockOrder::synchronous(a.size()));
    if (block != generic) {
      return PropertyResult::fail(
          "trivial-block block_sequential diverges from step_synchronous at "
          "step " + std::to_string(t) + ": " + block.to_string() + " vs " +
          generic.to_string());
    }
    current = generic;
  }
  return PropertyResult::pass();
}

PropertyResult check_sweep_consistency(const TestCase& tc) {
  const auto a = tc.automaton();
  std::mt19937_64 rng(tc.seed ^ 0x5eedf00dull);
  const auto order = core::random_permutation(a.size(), rng);

  Configuration via_sequence = tc.configuration();
  core::apply_sequence(a, via_sequence, order);

  Configuration via_blocks = tc.configuration();
  core::step_block_sequential(a, via_blocks,
                              core::BlockOrder::sequential(order));

  Configuration via_updates = tc.configuration();
  for (const auto v : order) core::update_node(a, via_updates, v);

  if (via_sequence != via_blocks) {
    return PropertyResult::fail(
        "apply_sequence vs singleton-block block_sequential: " +
        via_sequence.to_string() + " vs " + via_blocks.to_string());
  }
  if (via_sequence != via_updates) {
    return PropertyResult::fail("apply_sequence vs update_node chain: " +
                                via_sequence.to_string() + " vs " +
                                via_updates.to_string());
  }
  return PropertyResult::pass();
}

PropertyResult check_sca_no_cycle(const TestCase& tc) {
  if (!tc.rule.monotone_symmetric()) return PropertyResult::pass();
  const auto a = tc.automaton();
  std::mt19937_64 rng(tc.seed ^ 0xc0ffeeull);

  // Certificate 1 (exhaustive, n small): the one-sweep phase space of ANY
  // fixed permutation has no proper cycle — Theorem 1 over all 2^n starts.
  if (tc.n <= kExplicitBits) {
    const auto order = core::random_permutation(a.size(), rng);
    const auto cls = phasespace::classify(
        phasespace::FunctionalGraph::sweep(a, order));
    if (cls.max_period() > 1) {
      return PropertyResult::fail(
          "sequential sweep phase space has a proper cycle of period " +
          std::to_string(cls.max_period()));
    }
  }

  // Certificate 2 (trajectory): a bounded-fair random schedule converges
  // from the case's start configuration.
  Configuration c = tc.configuration();
  core::RandomSweepSchedule schedule(a.size(), rng());
  if (!core::run_schedule_to_fixed_point(a, c, schedule, 100000).has_value()) {
    return PropertyResult::fail(
        "bounded-fair random schedule failed to reach a fixed point within "
        "100000 updates");
  }
  return PropertyResult::pass();
}

PropertyResult check_energy_descent(const TestCase& tc) {
  if (tc.rule.kind != RuleSpec::Kind::kKOfN) return PropertyResult::pass();
  const auto net = analysis::ThresholdNetwork::homogeneous(
      tc.space(), tc.rule.k, tc.memory == core::Memory::kWith);
  const auto a = net.automaton();
  auto c = tc.configuration();
  std::mt19937_64 rng(tc.seed ^ 0xe4e26eull);
  for (std::uint32_t step = 0; step < 64; ++step) {
    const auto before = analysis::sequential_energy(net, c);
    const auto v = static_cast<core::NodeId>(rng() % a.size());
    if (core::update_node(a, c, v)) {
      const auto after = analysis::sequential_energy(net, c);
      if (after > before - 1) {
        return PropertyResult::fail(
            "changing update of node " + std::to_string(v) +
            " moved the Goles-Martinez energy from " +
            std::to_string(before) + " to " + std::to_string(after) +
            " (must drop by >= 1)");
      }
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_parallel_period(const TestCase& tc) {
  if (!tc.rule.monotone_symmetric() || tc.n > kExplicitBits) {
    return PropertyResult::pass();
  }
  const auto a = tc.automaton();
  const auto cls =
      phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
  if (cls.max_period() > 2) {
    return PropertyResult::fail(
        "parallel threshold CA has an attractor of period " +
        std::to_string(cls.max_period()) + " (Proposition 1 bound is 2)");
  }
  return PropertyResult::pass();
}

PropertyResult check_bipartite_two_cycle(const TestCase& tc) {
  // Envelope: memoryless k-of-n with k <= min degree on a bipartite
  // substrate with both sides populated.
  if (tc.memory != core::Memory::kWithout ||
      tc.rule.kind != RuleSpec::Kind::kKOfN || tc.n == 0) {
    return PropertyResult::pass();
  }
  const auto g = tc.space();
  const auto coloring = graph::bipartition(g);
  if (!coloring.has_value()) return PropertyResult::pass();
  graph::NodeId min_deg = g.degree(0);
  for (graph::NodeId v = 1; v < tc.n; ++v) {
    min_deg = std::min(min_deg, g.degree(v));
  }
  if (min_deg < 1 || tc.rule.k > min_deg) return PropertyResult::pass();

  const auto a = tc.automaton();
  Configuration side0(tc.n), side1(tc.n);
  for (graph::NodeId v = 0; v < tc.n; ++v) {
    side0.set(v, (*coloring)[v] == 0 ? 1 : 0);
    side1.set(v, (*coloring)[v] == 1 ? 1 : 0);
  }
  if (side0 == side1) return PropertyResult::pass();  // one side empty

  const auto after_one = core::step_synchronous(a, side0);
  if (after_one != side1) {
    return PropertyResult::fail(
        "one parallel step from the side-0 indicator gave " +
        after_one.to_string() + ", expected the side-1 indicator " +
        side1.to_string());
  }
  const auto after_two = core::step_synchronous(a, after_one);
  if (after_two != side0) {
    return PropertyResult::fail(
        "bipartition indicator is not on a two-cycle: step^2 gave " +
        after_two.to_string() + ", expected " + side0.to_string());
  }
  return PropertyResult::pass();
}

PropertyResult check_aca_subsumption(const TestCase& tc) {
  const auto a = tc.automaton();
  // AcaSystem needs node states + channels to fit one 64-bit word; one
  // channel per non-self input slot = 2 * num_edges.
  const std::size_t state_bits = tc.n + 2 * tc.edges.size();
  if (tc.n == 0 || tc.n > 16 || state_bits > 63) return PropertyResult::pass();
  const aca::AcaSystem sys(a);

  const auto start = tc.configuration();
  const auto x0 = start.to_bits();

  // Classical parallel step == all-delivers-then-all-computes macro step.
  aca::AcaState s = sys.initial(x0);
  s = sys.synchronous_macro_step(s);
  const auto parallel = core::step_synchronous(a, start);
  if (sys.config_of(s) != parallel.to_bits()) {
    return PropertyResult::fail(
        "ACA synchronous macro step projects to " +
        std::to_string(sys.config_of(s)) + ", classical parallel step gives " +
        std::to_string(parallel.to_bits()));
  }

  // SCA chain == deliver-then-compute macro updates, node by node.
  std::mt19937_64 rng(tc.seed ^ 0xacaacaull);
  const auto order = core::random_permutation(a.size(), rng);
  aca::AcaState t = sys.initial(x0);
  Configuration sca = start;
  for (const auto v : order) {
    t = sys.sequential_macro_update(t, v);
    core::update_node(a, sca, v);
    if (sys.config_of(t) != sca.to_bits()) {
      return PropertyResult::fail(
          "ACA sequential macro updates diverge from the SCA chain after "
          "node " + std::to_string(v));
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_reach_subsumption(const TestCase& tc) {
  // Full reach-set exploration is exponential in global-state bits, so
  // only tiny systems qualify; everything else passes vacuously.
  const std::size_t state_bits = tc.n + 2 * tc.edges.size();
  if (tc.n == 0 || tc.n > 8 || state_bits > 63) return PropertyResult::pass();
  const auto a = tc.automaton();

  // Bounded exploration: on truncation the verdict's containment flags are
  // meaningless, so the oracle SKIPS (vacuous pass) rather than fails —
  // budget exhaustion is not a counterexample.
  runtime::RunBudget budget;
  budget.max_states = std::uint64_t{1} << 16;
  runtime::RunControl control(budget);
  const auto verdict =
      aca::compare_reach_sets(a, tc.configuration().to_bits(), control);
  if (verdict.truncated) return PropertyResult::pass();

  if (!verdict.contains_synchronous) {
    return PropertyResult::fail(
        "reach(CA) not contained in reach(ACA): |CA|=" +
        std::to_string(verdict.sync_total) + ", |ACA|=" +
        std::to_string(verdict.aca_total));
  }
  if (!verdict.contains_sequential) {
    return PropertyResult::fail(
        "reach(SCA) not contained in reach(ACA): |SCA|=" +
        std::to_string(verdict.seq_total) + ", |ACA|=" +
        std::to_string(verdict.aca_total));
  }
  return PropertyResult::pass();
}

PropertyResult check_budget_truncation(const TestCase& tc) {
  if (tc.n == 0 || tc.n > kExplicitBits) return PropertyResult::pass();
  const auto a = tc.automaton();
  const auto full = phasespace::FunctionalGraph::synchronous(a);
  const std::uint64_t count = full.num_states();

  // A state budget of half the space must stop the build exactly there,
  // with the computed prefix bit-identical to the full table's.
  const std::uint64_t cap = std::max<std::uint64_t>(1, count / 2);
  runtime::RunBudget budget;
  budget.max_states = cap;
  runtime::RunControl control(budget);
  const auto build = phasespace::FunctionalGraph::build_synchronous(a,
                                                                    control);
  if (cap >= count) {
    if (!build.complete() ||
        build.graph->successors() != full.successors()) {
      return PropertyResult::fail("unlimited-enough budget still truncated");
    }
    return PropertyResult::pass();
  }
  if (!build.truncated() ||
      build.status.stop_reason != runtime::StopReason::kMaxStates) {
    return PropertyResult::fail(
        "budget of " + std::to_string(cap) + "/" + std::to_string(count) +
        " states did not stop the build with max-states (got " +
        runtime::stop_reason_name(build.status.stop_reason) + ")");
  }
  if (build.states_built != cap ||
      build.partial_succ.size() != build.states_built) {
    return PropertyResult::fail(
        "truncated build reports " + std::to_string(build.states_built) +
        " states with a " + std::to_string(build.partial_succ.size()) +
        "-entry prefix; budget was " + std::to_string(cap));
  }
  for (std::uint64_t s = 0; s < build.states_built; ++s) {
    if (build.partial_succ[s] != full.succ(s)) {
      return PropertyResult::fail(
          "truncated prefix diverges from the full table at state " +
          std::to_string(s));
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_batch_isa_agree(const TestCase& tc) {
  const auto a = tc.automaton();
  // Automata the batch engine declines are covered by the scalar-fallback
  // tests; the cross-ISA property is vacuous for them.
  if (!core::batch_support(a).ok || tc.n == 0) return PropertyResult::pass();

  // Lanes: the case's start configuration plus random perturbations —
  // enough to fill the widest tier's ragged top block.
  std::mt19937_64 rng(tc.seed ^ 0x51caull);
  std::vector<Configuration> in;
  in.push_back(tc.configuration());
  while (in.size() < 8 * 64 - 5) {
    Configuration c(tc.n);
    for (std::size_t i = 0; i < tc.n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    in.push_back(c);
  }

  // Reference: the 64-lane scalar bit-slice engine.
  std::vector<Configuration> want(in.size(), Configuration(tc.n));
  {
    core::BatchStepper ref(a);
    core::BatchSlice src(tc.n);
    core::BatchSlice dst(tc.n);
    for (std::size_t done = 0; done < in.size(); done += 64) {
      const std::size_t take = std::min<std::size_t>(64, in.size() - done);
      src.load_configurations(
          std::span<const Configuration>(in.data() + done, take));
      ref.step(src, dst);
      dst.store_configurations(
          std::span<Configuration>(want.data() + done, take));
    }
  }

  for (unsigned i = 0; i < core::kNumBatchIsa; ++i) {
    const auto isa = static_cast<core::BatchIsa>(i);
    if (!core::isa_available(isa)) continue;
    const auto stepper = core::make_wide_stepper(a, isa);
    const unsigned w = stepper->lane_words();
    core::BatchSlice src(tc.n, w);
    core::BatchSlice dst(tc.n, w);
    std::vector<Configuration> got(in.size(), Configuration(tc.n));
    for (std::size_t done = 0; done < in.size(); done += 64 * w) {
      const std::size_t take =
          std::min<std::size_t>(64 * w, in.size() - done);
      src.load_configurations(
          std::span<const Configuration>(in.data() + done, take));
      stepper->step(src, dst);
      dst.store_configurations(
          std::span<Configuration>(got.data() + done, take));
    }
    for (std::size_t j = 0; j < in.size(); ++j) {
      if (got[j] != want[j]) {
        return PropertyResult::fail(
            "ISA tier " + std::string(core::isa_name(isa)) +
            " diverges from the 64-lane bit-slice engine at lane " +
            std::to_string(j) + ": " + got[j].to_string() + " vs " +
            want[j].to_string());
      }
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_supervised_equivalence(const TestCase& tc) {
  if (tc.n == 0 || tc.n > kExplicitBits) return PropertyResult::pass();
  const auto a = tc.automaton();
  const auto reference = phasespace::FunctionalGraph::synchronous(a);

  // Supervised build under one injected transient failure, starting at a
  // seed-rotated ladder rung: the supervisor must absorb the fault in
  // exactly one retry and the result must be bit-identical to the
  // fault-free baseline — a degraded/retried result IS the result.
  runtime::SupervisorOptions options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = std::chrono::milliseconds{1};
  options.retry.seed = tc.seed;
  options.apply_backoff = false;  // record delays, never sleep in PBT
  options.start_rung =
      static_cast<runtime::EngineRung>(tc.seed % runtime::kEngineRungCount);

  runtime::ScopedFaultPlan plan({.retry_transient_at = 1});
  const auto out = phasespace::supervised_synchronous(a, options);
  if (out.report.state != runtime::SupervisedState::kCompleted) {
    return PropertyResult::fail(
        "supervised build under one injected transient ended " +
        std::string(runtime::supervised_state_name(out.report.state)) +
        " (last error: " + out.report.last_error_what + ")");
  }
  if (out.report.attempts != 2) {
    return PropertyResult::fail(
        "expected exactly 2 attempts (1 injected failure + 1 success), got " +
        std::to_string(out.report.attempts));
  }
  if (!out.build.complete() ||
      out.build.graph->successors() != reference.successors()) {
    return PropertyResult::fail(
        "supervised successor table diverges from the fault-free baseline "
        "(start rung " +
        std::string(runtime::rung_name(options.start_rung)) + ")");
  }
  return PropertyResult::pass();
}

PropertyResult check_service_vs_library(const TestCase& tc) {
  if (tc.n == 0 || tc.n > kExplicitBits) return PropertyResult::pass();

  // The service speaks circulant ring/line topologies, not arbitrary edge
  // lists, so the case's substrate is ignored; n, the rule, and the seed
  // drive coverage over query kind, topology, radius, and scheme instead.
  const std::uint64_t s = tc.seed;
  const std::uint32_t radius = 1 + static_cast<std::uint32_t>(s % 3);
  const bool ring = tc.n >= 2 * radius + 1 && ((s >> 2) & 1) == 0;
  const auto kind = static_cast<service::QueryKind>((s >> 3) % 4);
  const bool sweep = ((s >> 5) & 1) == 1;
  const std::uint32_t arity = 2 * radius + 1;
  const std::uint64_t num_states = std::uint64_t{1} << tc.n;

  std::string rule_json;
  switch (tc.rule.kind) {
    case RuleSpec::Kind::kMajority:
      rule_json = "\"majority\"";
      break;
    case RuleSpec::Kind::kMajorityTieOne:
      rule_json = "\"majority1\"";
      break;
    case RuleSpec::Kind::kParity:
      rule_json = "\"parity\"";
      break;
    case RuleSpec::Kind::kKOfN:
      rule_json = "{\"type\":\"kofn\",\"k\":" +
                  std::to_string(std::min<std::uint32_t>(tc.rule.k, 64)) + "}";
      break;
    case RuleSpec::Kind::kSymmetric:
      rule_json = "{\"type\":\"symmetric\",\"mask\":" +
                  std::to_string(tc.rule.bits &
                                 service::ServiceQuery::mask_bits(arity)) +
                  "}";
      break;
  }

  std::ostringstream qjson;
  qjson << "{\"kind\":\"" << service::query_kind_name(kind) << "\""
        << ",\"n\":" << tc.n << ",\"radius\":" << radius << ",\"topology\":\""
        << (ring ? "ring" : "line") << "\",\"rule\":" << rule_json;
  if (sweep) {
    // Rotate-by-one sweep order: a valid non-identity permutation for
    // n >= 2 (for n == 1 it IS the identity, which the service requires
    // to be spelled as an omitted order).
    qjson << ",\"scheme\":\"sweep\"";
    if (tc.n >= 2) {
      qjson << ",\"order\":[";
      for (std::uint32_t i = 0; i < tc.n; ++i) {
        qjson << (i ? "," : "") << (i + 1) % tc.n;
      }
      qjson << "]";
    }
  }
  if (kind == service::QueryKind::kPreimageCount) {
    qjson << ",\"target\":" << (tc.config_bits & (num_states - 1));
  }
  qjson << "}";

  const service::ServiceQuery query =
      service::ServiceQuery::from_json(service::parse_json(qjson.str()));

  // The library side: the raw phase-space primitives, none of the service
  // stack (no engine, no cache, no JSON round trip).
  const Automaton a = query.automaton();
  const phasespace::FunctionalGraph fg =
      sweep ? phasespace::FunctionalGraph::sweep(a, query.effective_order())
            : phasespace::FunctionalGraph::synchronous(a);

  // The service side: a full in-process handler, twice — the second
  // response must come from the cache and be byte-identical.
  service::RequestHandler handler{service::HandlerOptions{}};
  const std::string request =
      "{\"op\":\"query\",\"id\":1,\"query\":" + qjson.str() + "}";
  const std::string first = handler.handle(request);
  const std::string second = handler.handle(request);

  const service::JsonValue v1 = service::parse_json(first);
  if (v1.string_or("status", "") != "ok") {
    return PropertyResult::fail("service rejected " + qjson.str() + ": " +
                                first);
  }
  if (v1.string_or("source", "") != "computed") {
    return PropertyResult::fail("first response not computed: " + first);
  }
  const service::JsonValue v2 = service::parse_json(second);
  if (v2.string_or("source", "") != "memory-cache") {
    return PropertyResult::fail("second response not a cache hit: " + second);
  }
  const auto result_of = [](const std::string& response) {
    const std::size_t pos = response.find("\"result\":");
    return pos == std::string::npos
               ? std::string()
               : response.substr(pos + 9, response.size() - pos - 10);
  };
  if (result_of(first) != result_of(second)) {
    return PropertyResult::fail(
        "cached result is not byte-identical to the computed one");
  }

  const service::JsonValue* result = v1.find("result");
  if (result == nullptr) return PropertyResult::fail("response lacks result");
  const auto expect = [&](const char* field,
                          std::uint64_t want) -> PropertyResult {
    const std::uint64_t got = result->u64_or(field, ~std::uint64_t{0});
    if (got != want) {
      return PropertyResult::fail(std::string(field) + ": service says " +
                                  std::to_string(got) + ", library says " +
                                  std::to_string(want) + " for " +
                                  qjson.str());
    }
    return PropertyResult::pass();
  };

  switch (kind) {
    case service::QueryKind::kAttractorSummary: {
      const phasespace::Classification c = phasespace::classify(fg);
      for (const PropertyResult& r : {
               expect("num_states", fg.num_states()),
               expect("num_attractors", c.attractors.size()),
               expect("num_fixed_points", c.num_fixed_points),
               expect("num_cycle_states", c.num_cycle_states),
               expect("num_transient_states", c.num_transient_states),
               expect("num_gardens_of_eden", c.num_gardens_of_eden),
               expect("max_period", c.max_period()),
               expect("max_transient", c.max_transient),
           }) {
        if (!r.ok) return r;
      }
      break;
    }
    case service::QueryKind::kTransientDepth: {
      const phasespace::Classification c = phasespace::classify(fg);
      for (const PropertyResult& r : {
               expect("max_transient", c.max_transient),
               expect("num_transient_states", c.num_transient_states),
           }) {
        if (!r.ok) return r;
      }
      break;
    }
    case service::QueryKind::kGoeCensus: {
      const phasespace::Classification c = phasespace::classify(fg);
      for (const PropertyResult& r : {
               expect("gardens", c.num_gardens_of_eden),
               expect("scanned", fg.num_states()),
           }) {
        if (!r.ok) return r;
      }
      break;
    }
    case service::QueryKind::kPreimageCount: {
      // Explicit enumeration as the reference — for synchronous rings this
      // cross-validates the service's O(n) transfer-matrix path against
      // brute force.
      std::uint64_t count = 0;
      for (const phasespace::StateCode succ : fg.successors()) {
        count += succ == query.target ? 1 : 0;
      }
      return expect("preimage_count", count);
    }
  }
  return PropertyResult::pass();
}

PropertyResult check_store_backend_agree(const TestCase& tc) {
  if (tc.n == 0 || tc.n > kExplicitBits) return PropertyResult::pass();
  const auto a = tc.automaton();

  // Reference: the serial flat build.
  const auto reference = phasespace::FunctionalGraph::synchronous(a);

  // Seed-rotated build shape so the sweep covers worker counts, shard
  // sizes (including non-multiples of 64, which straddle packed words
  // across shard boundaries), and ladder rungs.
  phasespace::ShardedBuildOptions options;
  options.workers = 1 + static_cast<unsigned>(tc.seed % 3);
  options.shard_states = 1 + (tc.seed >> 2) % 130;
  options.rung =
      static_cast<runtime::EngineRung>(tc.seed % runtime::kEngineRungCount);

  const auto check_backend =
      [&](phasespace::StoreKind kind,
          const std::string& disk_dir) -> PropertyResult {
    phasespace::ShardedBuildOptions opt = options;
    opt.store = kind;
    opt.disk_dir = disk_dir;
    runtime::RunControl control{runtime::RunBudget{}};
    const phasespace::ShardedBuild out =
        phasespace::build_synchronous_sharded(a, opt, control);
    if (!out.complete() || out.store == nullptr) {
      return PropertyResult::fail(
          std::string("unbudgeted sharded build on the ") +
          phasespace::store_kind_name(kind) + " backend did not complete");
    }
    // Successor tables must be bit-identical entry by entry...
    PropertyResult verdict = PropertyResult::pass();
    out.store->for_each_range([&](phasespace::StateCode first, std::size_t n,
                                  const phasespace::StateCode* block) {
      for (std::size_t i = 0; i < n; ++i) {
        if (verdict.ok && block[i] != reference.succ(first + i)) {
          verdict = PropertyResult::fail(
              std::string(phasespace::store_kind_name(kind)) +
              " backend diverges from the flat serial table at state " +
              std::to_string(first + i) + ": " + std::to_string(block[i]) +
              " vs " + std::to_string(reference.succ(first + i)));
        }
      }
    });
    if (!verdict.ok) return verdict;
    // ... and so must the classify summary derived THROUGH the backend.
    const phasespace::Classification got =
        phasespace::classify(*out.build.graph);
    const phasespace::Classification want = phasespace::classify(reference);
    if (got.num_fixed_points != want.num_fixed_points ||
        got.num_cycle_states != want.num_cycle_states ||
        got.num_transient_states != want.num_transient_states ||
        got.num_gardens_of_eden != want.num_gardens_of_eden ||
        got.max_period() != want.max_period() ||
        got.max_transient != want.max_transient ||
        got.attractors.size() != want.attractors.size()) {
      return PropertyResult::fail(
          std::string(phasespace::store_kind_name(kind)) +
          " backend classify summary diverges from the flat one");
    }
    return PropertyResult::pass();
  };

  for (const auto kind :
       {phasespace::StoreKind::kFlat, phasespace::StoreKind::kPacked}) {
    const PropertyResult r = check_backend(kind, "");
    if (!r.ok) return r;
  }
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("tca-store-oracle-" + std::to_string(tc.seed) + "-" +
       std::to_string(tc.n));
  std::error_code ec;
  fs::remove_all(dir, ec);
  const PropertyResult r =
      check_backend(phasespace::StoreKind::kDisk, dir.string());
  fs::remove_all(dir, ec);
  return r;
}

std::vector<Oracle> build_registry() {
  std::vector<Oracle> r;
  CaseOptions any;

  r.push_back({"engines-agree", "EnginesAgree", any, check_engines_agree});
  r.push_back({"sweep-consistency", "SweepConsistency", any,
               check_sweep_consistency});

  CaseOptions monotone;
  monotone.rules = CaseOptions::RuleClass::kMonotoneSymmetric;
  r.push_back({"sca-no-cycle", "ScaNoCycle", monotone, check_sca_no_cycle});
  r.push_back({"parallel-period-two", "ParallelPeriodAtMostTwo", monotone,
               check_parallel_period});

  CaseOptions threshold;
  threshold.rules = CaseOptions::RuleClass::kThreshold;
  r.push_back({"energy-descent", "EnergyDescent", threshold,
               check_energy_descent});

  CaseOptions bipartite;
  bipartite.substrate = CaseOptions::SubstrateClass::kBipartite;
  r.push_back({"bipartite-two-cycle", "BipartiteTwoCycle", bipartite,
               check_bipartite_two_cycle});

  CaseOptions tiny;
  tiny.substrate = CaseOptions::SubstrateClass::kTiny;
  r.push_back({"aca-subsumption", "AcaSubsumption", tiny,
               check_aca_subsumption});
  r.push_back({"reach-subsumption", "ReachSubsumption", tiny,
               check_reach_subsumption});
  r.push_back({"budget-truncation", "BudgetTruncation", any,
               check_budget_truncation});
  r.push_back({"batch-isa-agree", "BatchIsaAgree", any,
               check_batch_isa_agree});
  r.push_back({"supervised-equivalence", "SupervisedEquivalence", any,
               check_supervised_equivalence});
  r.push_back({"service-vs-library", "ServiceVsLibrary", any,
               check_service_vs_library});
  r.push_back({"store-backend-agree", "StoreBackendAgree", any,
               check_store_backend_agree});
  return r;
}

}  // namespace

const std::vector<Oracle>& oracles() {
  static const std::vector<Oracle> registry = build_registry();
  return registry;
}

const Oracle* find_oracle(std::string_view name) {
  for (const auto& o : oracles()) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

}  // namespace tca::testing
