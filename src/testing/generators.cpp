#include "testing/generators.hpp"

#include <algorithm>
#include <random>

#include "graph/builders.hpp"
#include "graph/properties.hpp"

namespace tca::testing {
namespace {

using graph::Graph;
using graph::NodeId;

std::uint32_t range(std::mt19937_64& rng, std::uint32_t lo, std::uint32_t hi) {
  return lo + static_cast<std::uint32_t>(rng() % (hi - lo + 1));
}

/// A substrate from the full builder family, capped at max_nodes nodes.
Graph any_space(std::mt19937_64& rng, std::uint32_t max_nodes) {
  const auto cap = [&](std::uint32_t lo, std::uint32_t hi) {
    return range(rng, lo, std::max(lo, std::min(hi, max_nodes)));
  };
  switch (rng() % 9) {
    case 0: return graph::ring(cap(3, 12));
    case 1: return graph::path(cap(1, 12));
    case 2: return graph::random_gnp(cap(2, 10), 0.2 + 0.05 * (rng() % 9),
                                     rng());
    case 3: return graph::grid2d(2 + rng() % 2, cap(2, 4));
    case 4: return graph::hypercube(2 + rng() % 2);
    case 5: return graph::complete(cap(2, 6));
    case 6: return graph::complete_bipartite(cap(1, 4), cap(1, 4));
    case 7: return graph::star(cap(2, 10));
    default: {
      // random 3-regular graph needs n*d even and d < n.
      const NodeId nodes = 4 + 2 * (rng() % 3);
      return graph::random_regular(nodes, 3, rng());
    }
  }
}

/// A bipartite substrate with minimum degree >= 1.
Graph bipartite_space(std::mt19937_64& rng, std::uint32_t max_nodes) {
  const auto cap = [&](std::uint32_t lo, std::uint32_t hi) {
    return range(rng, lo, std::max(lo, std::min(hi, max_nodes)));
  };
  switch (rng() % 5) {
    case 0: return graph::ring(2 * cap(2, 5));      // even rings
    case 1: return graph::path(cap(2, 10));
    case 2: return graph::grid2d(2 + rng() % 2, cap(2, 4));
    case 3: return graph::complete_bipartite(cap(1, 4), cap(1, 4));
    default: return graph::star(cap(2, 10));
  }
}

/// A tiny substrate whose explicit ACA state space fits one word.
Graph tiny_space(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0: return graph::ring(3 + rng() % 3);
    case 1: return graph::path(2 + rng() % 4);
    case 2: return graph::complete(2 + rng() % 4);
    default: return graph::random_gnp(2 + static_cast<NodeId>(rng() % 5), 0.5,
                                      rng());
  }
}

RuleSpec random_rule(std::mt19937_64& rng, CaseOptions::RuleClass cls,
                     const Graph& g) {
  const std::uint32_t max_k = std::max(1u, g.max_degree() + 1);
  switch (cls) {
    case CaseOptions::RuleClass::kThreshold:
      return RuleSpec{RuleSpec::Kind::kKOfN, range(rng, 1, std::min(4u, max_k)),
                      0};
    case CaseOptions::RuleClass::kMonotoneSymmetric:
      switch (rng() % 3) {
        case 0: return RuleSpec{RuleSpec::Kind::kMajority};
        case 1: return RuleSpec{RuleSpec::Kind::kMajorityTieOne};
        default:
          return RuleSpec{RuleSpec::Kind::kKOfN,
                          range(rng, 1, std::min(4u, max_k)), 0};
      }
    case CaseOptions::RuleClass::kAny:
      break;
  }
  switch (rng() % 5) {
    case 0: return RuleSpec{RuleSpec::Kind::kMajority};
    case 1: return RuleSpec{RuleSpec::Kind::kMajorityTieOne};
    case 2: return RuleSpec{RuleSpec::Kind::kParity};
    case 3:
      return RuleSpec{RuleSpec::Kind::kKOfN, range(rng, 1, std::min(4u, max_k)),
                      0};
    default:
      // A GENUINE random totalistic rule: the output for each count of live
      // inputs is an independent coin flip. (The pre-harness fuzzer's
      // "random symmetric" branch silently degenerated to parity; this is
      // the fixed generator.)
      return RuleSpec{RuleSpec::Kind::kSymmetric, 1, rng()};
  }
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TestCase random_case(std::uint64_t case_seed, const CaseOptions& options) {
  std::mt19937_64 rng(case_seed);
  TestCase c;
  c.seed = case_seed;

  Graph g;
  switch (options.substrate) {
    case CaseOptions::SubstrateClass::kAny:
      g = any_space(rng, options.max_nodes);
      break;
    case CaseOptions::SubstrateClass::kBipartite:
      g = bipartite_space(rng, options.max_nodes);
      break;
    case CaseOptions::SubstrateClass::kTiny:
      g = tiny_space(rng);
      break;
  }
  c.n = g.num_nodes();
  c.edges = g.edges();

  switch (options.memory) {
    case CaseOptions::MemoryPolicy::kWith:
      c.memory = core::Memory::kWith;
      break;
    case CaseOptions::MemoryPolicy::kWithout:
      c.memory = core::Memory::kWithout;
      break;
    case CaseOptions::MemoryPolicy::kEither:
      c.memory = (rng() & 1u) != 0 ? core::Memory::kWith
                                   : core::Memory::kWithout;
      break;
  }

  if (options.substrate == CaseOptions::SubstrateClass::kBipartite) {
    // Section 3.2 oracle envelope: memoryless k-of-n with k at most the
    // minimum degree, so the bipartition configuration sits on a two-cycle.
    c.memory = core::Memory::kWithout;
    NodeId min_deg = c.n == 0 ? 0 : g.degree(0);
    for (NodeId v = 1; v < c.n; ++v) min_deg = std::min(min_deg, g.degree(v));
    c.rule = RuleSpec{RuleSpec::Kind::kKOfN,
                      range(rng, 1, std::max(1u, min_deg)), 0};
  } else {
    c.rule = random_rule(rng, options.rules, g);
  }

  c.config_bits =
      c.n >= 64 ? rng() : rng() & ((std::uint64_t{1} << c.n) - 1);
  c.steps = range(rng, 1, std::max(1u, options.max_steps));
  return c;
}

}  // namespace tca::testing
