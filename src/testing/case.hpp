#pragma once
// Concrete, shrinkable property-test cases (DESIGN.md S10).
//
// The paper's claims are universally quantified, so the randomized suite
// (tests/fuzz_differential_test.cpp) draws automata at random. For a
// counterexample to be USEFUL it must be reducible: shrinking needs a case
// representation where "remove a node", "drop an edge" and "lower the
// threshold" are total operations that always yield another valid case.
// A TestCase therefore stores the substrate as an explicit edge list and
// the rule as a RuleSpec that can be materialized at ANY arity — unlike a
// rules::Rule, whose fixed-arity kinds (SymmetricRule) become invalid the
// moment the graph changes under them.
//
// Cases serialize to a single line and back, so a failure can be replayed
// exactly via the TCA_PBT_REPRO environment variable (see runner.hpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "graph/graph.hpp"
#include "rules/rule.hpp"

namespace tca::testing {

/// Arity-polymorphic rule description. `materialize(arity)` yields the
/// concrete rules::Rule for a node of that arity, so one RuleSpec works for
/// every node of an irregular graph and survives node/edge shrinking.
struct RuleSpec {
  enum class Kind : std::uint8_t {
    kMajority,        ///< strict majority (tie -> 0); monotone symmetric
    kMajorityTieOne,  ///< majority with tie -> 1; monotone symmetric
    kParity,          ///< XOR; symmetric, NOT monotone
    kKOfN,            ///< threshold k (field `k`); monotone symmetric
    kSymmetric,       ///< totalistic from `bits`: output on s ones =
                      ///< bit (s mod 64) of `bits`; generally NOT monotone
  };

  Kind kind = Kind::kMajority;
  std::uint32_t k = 1;      ///< threshold for kKOfN
  std::uint64_t bits = 0;   ///< accept mask for kSymmetric

  /// True for the paper's Theorem 1 class (monotone symmetric rules).
  [[nodiscard]] bool monotone_symmetric() const noexcept {
    return kind == Kind::kMajority || kind == Kind::kMajorityTieOne ||
           kind == Kind::kKOfN;
  }

  /// The concrete rule for a node with `arity` ordered inputs.
  [[nodiscard]] rules::Rule materialize(std::uint32_t arity) const;

  /// Short name for messages, e.g. "3-of-n", "symmetric:0x1a".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const RuleSpec&, const RuleSpec&) = default;
};

/// A fully explicit randomized test case: substrate + rule + memory flag +
/// initial configuration + step budget. n <= 64 so the configuration fits
/// one word (`config_bits`), which keeps serialization and shrinking
/// trivial.
struct TestCase {
  std::uint32_t n = 0;              ///< number of nodes
  std::vector<graph::Edge> edges;   ///< explicit undirected edge list
  RuleSpec rule;
  core::Memory memory = core::Memory::kWith;
  std::uint64_t config_bits = 0;    ///< initial configuration, bit i = cell i
  std::uint32_t steps = 8;          ///< trajectory budget for step-bounded oracles
  std::uint64_t seed = 0;           ///< provenance; also seeds per-case RNG
                                    ///< (schedules, orders) inside oracles

  /// The substrate graph (validates the edge list).
  [[nodiscard]] graph::Graph space() const;

  /// The automaton: homogeneous for arity-generic rule kinds, per-node
  /// materialized rules for fixed-arity kinds (kSymmetric).
  [[nodiscard]] core::Automaton automaton() const;

  /// The initial configuration (low n bits of config_bits).
  [[nodiscard]] core::Configuration configuration() const;

  /// One-line machine-readable form, e.g.
  /// "v1;n=5;mem=1;rule=kofn:2;cfg=0x13;steps=8;seed=0x2a;edges=0-1,1-2".
  [[nodiscard]] std::string serialize() const;

  /// Parses serialize() output; throws std::invalid_argument on malformed
  /// input.
  static TestCase deserialize(std::string_view text);

  /// Human-readable multi-line description for failure messages.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const TestCase&, const TestCase&) = default;
};

}  // namespace tca::testing
