#include "testing/shrink.hpp"

#include <algorithm>

namespace tca::testing {
namespace {

/// True if `candidate` still fails the property (exceptions count as "does
/// not fail": a reduction that breaks case validity must be rejected, not
/// crash the shrinker).
bool still_fails(const TestCase& candidate, const Property& prop,
                 ShrinkStats& stats) {
  if (stats.evaluations >= kMaxShrinkEvaluations) return false;
  ++stats.evaluations;
  try {
    return !prop(candidate).ok;
  } catch (const std::exception&) {
    return false;
  }
}

std::uint64_t splice_bit_out(std::uint64_t bits, std::uint32_t i) {
  const std::uint64_t low = bits & ((std::uint64_t{1} << i) - 1);
  const std::uint64_t high = i >= 63 ? 0 : (bits >> (i + 1)) << i;
  return low | high;
}

}  // namespace

TestCase remove_node(const TestCase& c, std::uint32_t v) {
  TestCase out = c;
  out.n = c.n - 1;
  out.edges.clear();
  for (const auto& e : c.edges) {
    if (e.u == v || e.v == v) continue;
    out.edges.push_back(graph::Edge{e.u > v ? e.u - 1 : e.u,
                                    e.v > v ? e.v - 1 : e.v});
  }
  out.config_bits = splice_bit_out(c.config_bits, v);
  if (out.n < 64) out.config_bits &= (std::uint64_t{1} << out.n) - 1;
  return out;
}

TestCase shrink(const TestCase& failing, const Property& prop,
                ShrinkStats* stats_out) {
  ShrinkStats stats;
  TestCase best = failing;

  bool improved = true;
  while (improved && stats.evaluations < kMaxShrinkEvaluations) {
    improved = false;
    ++stats.rounds;

    // 1. Remove nodes, highest id first (keeps earlier ids stable so one
    //    pass can delete several nodes).
    for (std::uint32_t v = best.n; v-- > 1;) {
      if (best.n <= 1 || v >= best.n) continue;
      const TestCase candidate = remove_node(best, v);
      if (still_fails(candidate, prop, stats)) {
        best = candidate;
        ++stats.accepted;
        improved = true;
      }
    }

    // 2. Drop edges one at a time.
    for (std::size_t i = best.edges.size(); i-- > 0;) {
      TestCase candidate = best;
      candidate.edges.erase(candidate.edges.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate, prop, stats)) {
        best = std::move(candidate);
        ++stats.accepted;
        improved = true;
      }
    }

    // 3. Simplify the rule: lower a k-of-n threshold toward 1; clear set
    //    bits of a totalistic accept mask (toward the constant-0 rule).
    if (best.rule.kind == RuleSpec::Kind::kKOfN) {
      while (best.rule.k > 1) {
        TestCase candidate = best;
        --candidate.rule.k;
        if (!still_fails(candidate, prop, stats)) break;
        best = std::move(candidate);
        ++stats.accepted;
        improved = true;
      }
    } else if (best.rule.kind == RuleSpec::Kind::kSymmetric) {
      for (std::uint32_t b = 0; b < 64; ++b) {
        if ((best.rule.bits >> b & 1u) == 0) continue;
        TestCase candidate = best;
        candidate.rule.bits &= ~(std::uint64_t{1} << b);
        if (still_fails(candidate, prop, stats)) {
          best = std::move(candidate);
          ++stats.accepted;
          improved = true;
        }
      }
    }

    // 4. Clear live cells of the start configuration.
    for (std::uint32_t b = 0; b < std::min(best.n, 64u); ++b) {
      if ((best.config_bits >> b & 1u) == 0) continue;
      TestCase candidate = best;
      candidate.config_bits &= ~(std::uint64_t{1} << b);
      if (still_fails(candidate, prop, stats)) {
        best = std::move(candidate);
        ++stats.accepted;
        improved = true;
      }
    }

    // 5. Cut the step budget: halve, then decrement.
    while (best.steps > 1) {
      TestCase candidate = best;
      candidate.steps = best.steps > 2 ? best.steps / 2 : best.steps - 1;
      if (!still_fails(candidate, prop, stats)) break;
      best = std::move(candidate);
      ++stats.accepted;
      improved = true;
    }
  }

  if (stats_out != nullptr) *stats_out = stats;
  return best;
}

}  // namespace tca::testing
