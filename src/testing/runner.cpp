#include "testing/runner.hpp"

#include <cstdlib>
#include <sstream>

namespace tca::testing {
namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// The failure note for a case we already know fails (re-runs the check;
/// exceptions become the note so reports never throw).
std::string note_for(const Oracle& oracle, const TestCase& c) {
  try {
    return oracle.check(c).note;
  } catch (const std::exception& e) {
    return std::string("check threw: ") + e.what();
  }
}

Failure make_failure(const Oracle& oracle, std::uint64_t case_seed,
                     const TestCase& original, const RunOptions& options) {
  Failure f;
  f.oracle = oracle.name;
  f.case_seed = case_seed;
  f.original = original;
  f.shrunk = options.shrink ? shrink(original, oracle.check, &f.stats)
                            : original;
  f.note = note_for(oracle, f.shrunk);
  f.repro = "TCA_PBT_SEED=" + hex(case_seed) +
            " TCA_PBT_CASES=1 ./tests/fuzz_differential_test "
            "--gtest_filter='*." + oracle.test_name + "'";
  return f;
}

}  // namespace

RunOptions RunOptions::from_env() {
  RunOptions o;
  if (const char* s = std::getenv("TCA_PBT_SEED")) {
    o.seed = std::strtoull(s, nullptr, 0);
  }
  if (const char* s = std::getenv("TCA_PBT_CASES")) {
    o.num_cases = static_cast<std::uint32_t>(std::strtoul(s, nullptr, 0));
  }
  if (const char* s = std::getenv("TCA_PBT_REPRO")) {
    o.repro = std::string(s);
  }
  return o;
}

std::string Failure::report() const {
  std::ostringstream os;
  os << "oracle '" << oracle << "' failed (case seed " << hex(case_seed)
     << ")\n  " << note << "\n  shrunk counterexample ("
     << stats.evaluations << " shrink evaluations, " << stats.accepted
     << " reductions): " << shrunk.describe()
     << "\n  repro (seeded): " << repro
     << "\n  repro (exact):  TCA_PBT_REPRO='" << shrunk.serialize()
     << "' ./tests/fuzz_differential_test";
  return os.str();
}

std::optional<Failure> check_property(const Oracle& oracle,
                                      const RunOptions& options) {
  if (options.repro.has_value()) {
    const TestCase c = TestCase::deserialize(*options.repro);
    if (oracle.check(c).ok) return std::nullopt;
    RunOptions no_gen = options;
    return make_failure(oracle, c.seed, c, no_gen);
  }
  for (std::uint32_t i = 0; i < options.num_cases; ++i) {
    // Case 0 uses the base seed verbatim, so the printed one-line repro
    // (TCA_PBT_SEED=<case seed> TCA_PBT_CASES=1) regenerates the failing
    // case exactly as case 0 of a fresh run.
    const std::uint64_t case_seed =
        i == 0 ? options.seed : mix_seed(options.seed, i);
    const TestCase c = random_case(case_seed, oracle.options);
    if (!oracle.check(c).ok) {
      return make_failure(oracle, case_seed, c, options);
    }
  }
  return std::nullopt;
}

}  // namespace tca::testing
