#pragma once
// The property-run driver (DESIGN.md S10).
//
// check_property() draws `num_cases` cases from an oracle's envelope
// (case 0's seed is the base seed itself; case i > 0 uses
// mix_seed(base, i)), checks each, and on the first
// failure shrinks it and packages everything a human needs:
//
//   * the original and the 1-minimal shrunk case (both serialized),
//   * a ONE-LINE seeded repro command — re-running with the printed
//     TCA_PBT_SEED regenerates the failing case as case 0 of a 1-case run,
//   * a TCA_PBT_REPRO form that replays the exact shrunk case.
//
// Environment overrides (read by run_options_from_env):
//   TCA_PBT_SEED=<u64>    base seed (default kDefaultSeed — runs are
//                         deterministic unless you override this)
//   TCA_PBT_CASES=<u32>   cases per oracle (default kDefaultCases)
//   TCA_PBT_REPRO=<case>  skip generation; check exactly this serialized
//                         case (see TestCase::serialize)

#include <cstdint>
#include <optional>
#include <string>

#include "testing/oracles.hpp"
#include "testing/shrink.hpp"

namespace tca::testing {

inline constexpr std::uint64_t kDefaultSeed = 0x7CA2004u;  // fixed: CI-stable
inline constexpr std::uint32_t kDefaultCases = 40;

struct RunOptions {
  std::uint64_t seed = kDefaultSeed;
  std::uint32_t num_cases = kDefaultCases;
  bool shrink = true;
  std::optional<std::string> repro;  ///< serialized case to replay instead

  /// Defaults overridden by TCA_PBT_SEED / TCA_PBT_CASES / TCA_PBT_REPRO.
  static RunOptions from_env();
};

/// Everything known about one property failure.
struct Failure {
  std::string oracle;       ///< oracle name
  std::uint64_t case_seed = 0;  ///< seed that regenerates the original case
  TestCase original;
  TestCase shrunk;
  std::string note;         ///< the property's failure note on the shrunk case
  ShrinkStats stats;
  std::string repro;        ///< one-line seeded repro command

  /// Multi-line report: note, shrunk case, repro lines.
  [[nodiscard]] std::string report() const;
};

/// Runs the oracle over seeded cases; returns the first failure (shrunk,
/// with repro commands) or nullopt if every case passes.
[[nodiscard]] std::optional<Failure> check_property(const Oracle& oracle,
                                                    const RunOptions& options);

}  // namespace tca::testing
