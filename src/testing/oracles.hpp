#pragma once
// The invariant/oracle registry (DESIGN.md S10).
//
// An Oracle is a named, machine-checkable property over a TestCase,
// together with the CaseOptions envelope its cases are drawn from. The
// registry covers two kinds of promises:
//
//  * cross-engine equalities — every synchronous engine path
//    (generic / monomorphized / threaded / trivial-block block-sequential)
//    computes bit-for-bit the same global map, every sequential path
//    (apply_sequence / singleton blocks / update_node chain) agrees, and
//    every available SIMD tier of the wide batch engine matches the
//    64-lane bit-slice reference lane-exactly (batch-isa-agree);
//
//  * theorem-level invariants — the paper's Theorem 1 (no sequential
//    interleaving of a monotone symmetric threshold CA can cycle),
//    Proposition 1 (parallel threshold CA have period <= 2), the
//    Section 3.2 bipartite two-cycles, the Goles-Martinez energy descent
//    certificate, and the Section 4/5 ACA subsumption of classical and
//    sequential trajectories.
//
// Every check re-validates its preconditions and passes VACUOUSLY when a
// case (typically a shrunk one) leaves its envelope, which is what makes
// the shrinker sound: a reduction is kept only if the property still
// genuinely fails.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "testing/case.hpp"
#include "testing/generators.hpp"

namespace tca::testing {

/// Outcome of one property check on one case.
struct PropertyResult {
  bool ok = true;
  std::string note;  ///< what failed (empty when ok)

  static PropertyResult pass() { return {true, {}}; }
  static PropertyResult fail(std::string why) { return {false, std::move(why)}; }
};

using Property = std::function<PropertyResult(const TestCase&)>;

/// A named property plus its generation envelope.
struct Oracle {
  std::string name;       ///< kebab-case id, e.g. "engines-agree"
  std::string test_name;  ///< gtest suffix used in printed repro filters
  CaseOptions options;
  Property check;
};

/// All registered oracles (built once, in registration order).
[[nodiscard]] const std::vector<Oracle>& oracles();

/// Looks up an oracle by kebab-case name; nullptr if absent.
[[nodiscard]] const Oracle* find_oracle(std::string_view name);

}  // namespace tca::testing
