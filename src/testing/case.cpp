#include "testing/case.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "graph/builders.hpp"
#include "runtime/error.hpp"

namespace tca::testing {
namespace {

using rules::State;

std::uint64_t parse_u64(std::string_view s) {
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    base = 16;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw tca::InvalidArgumentError("TestCase: bad number '" + std::string(s) +
                                "'");
  }
  return value;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const auto pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

}  // namespace

rules::Rule RuleSpec::materialize(std::uint32_t arity) const {
  switch (kind) {
    case Kind::kMajority:
      return rules::MajorityRule{rules::MajorityTie::kZero};
    case Kind::kMajorityTieOne:
      return rules::MajorityRule{rules::MajorityTie::kOne};
    case Kind::kParity:
      return rules::ParityRule{};
    case Kind::kKOfN:
      return rules::KOfNRule{k};
    case Kind::kSymmetric: {
      std::vector<State> accept(arity + 1);
      for (std::uint32_t s = 0; s <= arity; ++s) {
        accept[s] = static_cast<State>((bits >> (s % 64)) & 1u);
      }
      return rules::SymmetricRule{std::move(accept)};
    }
  }
  throw tca::StateError("RuleSpec: unknown kind");
}

std::string RuleSpec::describe() const {
  switch (kind) {
    case Kind::kMajority: return "majority";
    case Kind::kMajorityTieOne: return "majority(tie->1)";
    case Kind::kParity: return "parity";
    case Kind::kKOfN: return std::to_string(k) + "-of-n";
    case Kind::kSymmetric: return "symmetric:" + hex(bits);
  }
  return "?";
}

graph::Graph TestCase::space() const {
  return graph::from_edges(n, edges);
}

core::Automaton TestCase::automaton() const {
  const auto g = space();
  if (rule.kind != RuleSpec::Kind::kSymmetric) {
    return core::Automaton::from_graph(g, rule.materialize(0), memory);
  }
  // Fixed-arity kind: one materialized rule per node so irregular degrees
  // (and shrunk graphs) stay valid.
  std::vector<rules::Rule> per_node;
  per_node.reserve(n);
  const std::uint32_t self = memory == core::Memory::kWith ? 1u : 0u;
  for (graph::NodeId v = 0; v < n; ++v) {
    per_node.push_back(rule.materialize(g.degree(v) + self));
  }
  return core::Automaton::from_graph_per_node(g, std::move(per_node), memory);
}

core::Configuration TestCase::configuration() const {
  return core::Configuration::from_bits(
      n >= 64 ? config_bits : config_bits & ((std::uint64_t{1} << n) - 1), n);
}

std::string TestCase::serialize() const {
  std::ostringstream os;
  os << "v1;n=" << n << ";mem=" << (memory == core::Memory::kWith ? 1 : 0)
     << ";rule=";
  switch (rule.kind) {
    case RuleSpec::Kind::kMajority: os << "maj"; break;
    case RuleSpec::Kind::kMajorityTieOne: os << "maj1"; break;
    case RuleSpec::Kind::kParity: os << "par"; break;
    case RuleSpec::Kind::kKOfN: os << "kofn:" << rule.k; break;
    case RuleSpec::Kind::kSymmetric: os << "sym:" << hex(rule.bits); break;
  }
  os << ";cfg=" << hex(config_bits) << ";steps=" << steps << ";seed="
     << hex(seed) << ";edges=";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i != 0) os << ',';
    os << edges[i].u << '-' << edges[i].v;
  }
  return os.str();
}

TestCase TestCase::deserialize(std::string_view text) {
  TestCase c;
  bool saw_version = false;
  for (const auto field : split(text, ';')) {
    if (field == "v1") {
      saw_version = true;
      continue;
    }
    const auto eq = field.find('=');
    if (eq == std::string_view::npos) {
      throw tca::InvalidArgumentError("TestCase: bad field '" +
                                  std::string(field) + "'");
    }
    const auto key = field.substr(0, eq);
    const auto value = field.substr(eq + 1);
    if (key == "n") {
      c.n = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "mem") {
      c.memory =
          parse_u64(value) != 0 ? core::Memory::kWith : core::Memory::kWithout;
    } else if (key == "rule") {
      if (value == "maj") {
        c.rule = RuleSpec{RuleSpec::Kind::kMajority};
      } else if (value == "maj1") {
        c.rule = RuleSpec{RuleSpec::Kind::kMajorityTieOne};
      } else if (value == "par") {
        c.rule = RuleSpec{RuleSpec::Kind::kParity};
      } else if (value.starts_with("kofn:")) {
        c.rule = RuleSpec{RuleSpec::Kind::kKOfN,
                          static_cast<std::uint32_t>(parse_u64(value.substr(5))),
                          0};
      } else if (value.starts_with("sym:")) {
        c.rule = RuleSpec{RuleSpec::Kind::kSymmetric, 1,
                          parse_u64(value.substr(4))};
      } else {
        throw tca::InvalidArgumentError("TestCase: bad rule '" +
                                    std::string(value) + "'");
      }
    } else if (key == "cfg") {
      c.config_bits = parse_u64(value);
    } else if (key == "steps") {
      c.steps = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "seed") {
      c.seed = parse_u64(value);
    } else if (key == "edges") {
      if (!value.empty()) {
        for (const auto e : split(value, ',')) {
          const auto dash = e.find('-');
          if (dash == std::string_view::npos) {
            throw tca::InvalidArgumentError("TestCase: bad edge '" +
                                        std::string(e) + "'");
          }
          graph::Edge edge{
              static_cast<graph::NodeId>(parse_u64(e.substr(0, dash))),
              static_cast<graph::NodeId>(parse_u64(e.substr(dash + 1)))};
          if (edge.u > edge.v) std::swap(edge.u, edge.v);
          c.edges.push_back(edge);
        }
      }
    } else {
      throw tca::InvalidArgumentError("TestCase: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  if (!saw_version) {
    throw tca::InvalidArgumentError("TestCase: missing 'v1' version tag");
  }
  return c;
}

std::string TestCase::describe() const {
  std::ostringstream os;
  os << "n=" << n << " m=" << edges.size() << " rule=" << rule.describe()
     << " memory=" << (memory == core::Memory::kWith ? "with" : "without")
     << " config=" << configuration().to_string() << " steps=" << steps
     << "\n  case: " << serialize();
  return os.str();
}

}  // namespace tca::testing
