#pragma once
// Counterexample shrinking by delta debugging (DESIGN.md S10).
//
// Given a failing TestCase and the property it fails, greedily applies
// structure-reducing edits — remove a node (remapping edges and the
// configuration), drop an edge, lower a k-of-n threshold, clear a bit of a
// totalistic rule's accept mask, clear a live cell, cut the step budget —
// keeping an edit only if the reduced case STILL fails the property. The
// loop runs to a fixed point (no single edit reduces further), so reported
// counterexamples are 1-minimal with respect to the edit set.
//
// Shrinking is sound against oracle preconditions because every oracle
// passes vacuously outside its envelope (see oracles.hpp): an edit that
// breaks a precondition makes the property pass, so it is rejected.

#include <cstdint>

#include "testing/case.hpp"
#include "testing/oracles.hpp"

namespace tca::testing {

/// Bookkeeping from one shrink run.
struct ShrinkStats {
  std::uint32_t rounds = 0;       ///< full passes over the edit set
  std::uint32_t evaluations = 0;  ///< property re-checks performed
  std::uint32_t accepted = 0;     ///< edits that kept the failure
};

/// Hard cap on property re-checks per shrink (the cases are small, so this
/// is never the binding constraint in practice).
inline constexpr std::uint32_t kMaxShrinkEvaluations = 5000;

/// Removes node `v`: drops incident edges, remaps higher node ids down by
/// one, and splices bit v out of the configuration. Exposed for the
/// harness's own tests.
[[nodiscard]] TestCase remove_node(const TestCase& c, std::uint32_t v);

/// Shrinks `failing` (which must fail `prop`) to a 1-minimal failing case.
/// Returns `failing` unchanged if no edit preserves the failure.
[[nodiscard]] TestCase shrink(const TestCase& failing, const Property& prop,
                              ShrinkStats* stats = nullptr);

}  // namespace tca::testing
