#pragma once
// Seeded case generation for the property-based suite (DESIGN.md S10).
//
// Every case is a pure function of a 64-bit case seed plus the oracle's
// CaseOptions, so any failure reproduces from its printed seed alone —
// no global RNG, no time dependence. Seeds for case i of a run are derived
// from the run's base seed with a splitmix64 hop, so consecutive cases are
// statistically independent while the whole run stays one number.

#include <cstdint>

#include "testing/case.hpp"

namespace tca::testing {

/// What an oracle needs its cases to look like. Oracles still re-check
/// their preconditions and pass vacuously when a SHRUNK case drifts out of
/// this envelope (shrinking then rejects the reduction).
struct CaseOptions {
  enum class RuleClass : std::uint8_t {
    kAny,                ///< all RuleSpec kinds, incl. random totalistic
    kMonotoneSymmetric,  ///< Theorem 1 class: majority / k-of-n
    kThreshold,          ///< homogeneous k-of-n only (energy oracles)
  };
  enum class SubstrateClass : std::uint8_t {
    kAny,        ///< every builder family
    kBipartite,  ///< bipartite, min degree >= 1 (Section 3.2 oracles)
    kTiny,       ///< n <= 6 (explicit ACA state spaces)
  };
  enum class MemoryPolicy : std::uint8_t { kEither, kWith, kWithout };

  RuleClass rules = RuleClass::kAny;
  SubstrateClass substrate = SubstrateClass::kAny;
  MemoryPolicy memory = MemoryPolicy::kEither;
  std::uint32_t max_nodes = 12;  ///< generated n stays in [1, max_nodes]
  std::uint32_t max_steps = 32;
};

/// splitmix64: the seed-derivation hop (public so tests can predict it).
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index);

/// The case for a given case seed. Deterministic: equal (seed, options)
/// yield equal cases.
[[nodiscard]] TestCase random_case(std::uint64_t case_seed,
                                   const CaseOptions& options);

}  // namespace tca::testing
