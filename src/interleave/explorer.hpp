#pragma once
// Exhaustive interleaving exploration for the register VM (DESIGN.md S7).
//
// Enumerates every sequential interleaving of the processes' instructions
// (DFS with memoization over machine states) and collects the set of final
// shared-variable vectors. Also implements the truly-simultaneous
// "parallel" semantics for one-atomic-statement processes: every process
// reads the shared state of time t, computes, and the writes land in every
// possible order — the lost-update behaviour the paper's Section 1.1
// example exhibits.

#include <set>
#include <vector>

#include "interleave/vm.hpp"
#include "runtime/budget.hpp"

namespace tca::interleave {

/// All final shared-variable vectors over every interleaving.
[[nodiscard]] std::set<std::vector<std::int64_t>> interleaving_outcomes(
    const Machine& m, const MachineState& initial);

/// Result of a budgeted interleaving exploration: the outcome set collected
/// so far plus why (and whether) the DFS stopped early. Always well-formed;
/// `outcomes` is a SUBSET of the true outcome set when truncated.
struct InterleaveExploration {
  std::set<std::vector<std::int64_t>> outcomes;
  std::uint64_t machine_states = 0;  ///< distinct machine states visited
  bool truncated = false;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
};

/// Budgeted exploration of every interleaving: stops cleanly when
/// `control` trips (states / steps / bytes / deadline / cancellation).
[[nodiscard]] InterleaveExploration interleaving_outcomes(
    const Machine& m, const MachineState& initial,
    runtime::RunControl& control);

/// Number of distinct complete interleavings (schedules), counted over the
/// execution DAG (multinomial for independent programs; exact count by DFS
/// with memoization on (pc-vector) positions only).
[[nodiscard]] std::uint64_t count_interleavings(const Machine& m);

/// Truly-simultaneous outcomes for machines whose processes are each a
/// SINGLE AtomicAddVar statement: all processes read the same initial
/// shared state, then their writes are applied in every possible order
/// (each write stores its own read-modify result, clobbering earlier
/// writes to the same variable). Throws if a process has a different shape.
[[nodiscard]] std::set<std::vector<std::int64_t>> parallel_outcomes(
    const Machine& m, const MachineState& initial);

}  // namespace tca::interleave
