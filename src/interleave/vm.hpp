#pragma once
// A tiny shared-memory register machine (DESIGN.md S7).
//
// Reproduces the paper's Section 1.1 programming exercise: two processes
// running `x := x + 1` and `x := x + 2` over shared x. At STATEMENT
// granularity each assignment is one atomic instruction; at MACHINE
// granularity it is LOAD / ADDI / STORE over a private register. The
// interleaving explorer (explorer.hpp) then shows which outcome sets each
// granularity level can produce, and parallel_outcomes() gives the
// truly-simultaneous semantics (all reads, then all writes) the paper uses
// to argue that statement-level interleavings cannot reproduce parallel
// execution while machine-level ones can.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace tca::interleave {

/// reg := shared[var]
struct Load {
  std::uint8_t reg;
  std::uint8_t var;
};
/// reg := reg + imm
struct AddImm {
  std::uint8_t reg;
  std::int64_t imm;
};
/// shared[var] := reg
struct Store {
  std::uint8_t reg;
  std::uint8_t var;
};
/// shared[var] := shared[var] + imm, as ONE atomic action (statement
/// granularity).
struct AtomicAddVar {
  std::uint8_t var;
  std::int64_t imm;
};
/// dst := src (register copy).
struct Mov {
  std::uint8_t dst;
  std::uint8_t src;
};
/// Atomic compare-and-swap: if shared[var] == regs[expected] then
/// shared[var] := regs[desired], regs[result] := 1; else regs[result] := 0.
struct Cas {
  std::uint8_t var;
  std::uint8_t expected;
  std::uint8_t desired;
  std::uint8_t result;
};
/// If regs[reg] == 0, jump to instruction index `target`.
struct BranchIfZero {
  std::uint8_t reg;
  std::uint8_t target;
};

using Instr =
    std::variant<Load, AddImm, Store, AtomicAddVar, Mov, Cas, BranchIfZero>;
using Program = std::vector<Instr>;

/// Snapshot of the whole machine: shared variables, each process's
/// registers and program counter.
struct MachineState {
  std::vector<std::int64_t> shared;
  std::vector<std::vector<std::int64_t>> regs;  ///< per process
  std::vector<std::size_t> pc;                  ///< per process

  friend bool operator==(const MachineState&, const MachineState&) = default;
  friend auto operator<=>(const MachineState&, const MachineState&) = default;
};

/// A fixed set of concurrent processes over shared variables.
class Machine {
 public:
  Machine(std::vector<Program> processes, std::size_t num_shared,
          std::size_t num_regs);

  [[nodiscard]] std::size_t num_processes() const noexcept {
    return processes_.size();
  }

  /// Initial state with the given shared-variable values, zeroed registers.
  [[nodiscard]] MachineState initial(std::vector<std::int64_t> shared) const;

  /// True if process p has finished its program in `s`.
  [[nodiscard]] bool finished(const MachineState& s, std::size_t p) const {
    return s.pc[p] >= processes_[p].size();
  }

  /// True if all processes are done.
  [[nodiscard]] bool all_finished(const MachineState& s) const;

  /// Executes the next instruction of process p (must not be finished).
  void step(MachineState& s, std::size_t p) const;

  /// The program of process p.
  [[nodiscard]] const Program& program(std::size_t p) const {
    return processes_[p];
  }

 private:
  std::vector<Program> processes_;
  std::size_t num_shared_;
  std::size_t num_regs_;
};

/// The paper's example at statement granularity:
/// P1: x := x + a (atomic), P2: x := x + b (atomic).
[[nodiscard]] Machine statement_level_example(std::int64_t a, std::int64_t b);

/// The same programs compiled to LOAD/ADDI/STORE machine code.
[[nodiscard]] Machine machine_level_example(std::int64_t a, std::int64_t b);

/// The same programs compiled as LOCK-FREE retry loops over CAS:
///   loop: LOAD r0, x; MOV r1, r0; ADDI r1, imm; CAS x, r0 -> r1, r2;
///         BZ r2, loop
/// Optimistic concurrency restores statement-level atomicity: every
/// interleaving yields x = a + b again.
[[nodiscard]] Machine cas_level_example(std::int64_t a, std::int64_t b);

/// Human-readable rendering of an instruction.
[[nodiscard]] std::string to_string(const Instr& instr);

}  // namespace tca::interleave
