#include "interleave/vm.hpp"

#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::interleave {

Machine::Machine(std::vector<Program> processes, std::size_t num_shared,
                 std::size_t num_regs)
    : processes_(std::move(processes)),
      num_shared_(num_shared),
      num_regs_(num_regs) {
  for (const Program& prog : processes_) {
    for (const Instr& instr : prog) {
      std::visit(
          [&](const auto& op) {
            using T = std::decay_t<decltype(op)>;
            if constexpr (std::is_same_v<T, Load> || std::is_same_v<T, Store>) {
              if (op.var >= num_shared_ || op.reg >= num_regs_) {
                throw tca::InvalidArgumentError(
                    "Machine: operand out of range",
                    tca::ErrorCode::kOutOfRange);
              }
            } else if constexpr (std::is_same_v<T, AddImm>) {
              if (op.reg >= num_regs_) {
                throw tca::InvalidArgumentError(
                    "Machine: register out of range",
                    tca::ErrorCode::kOutOfRange);
              }
            } else if constexpr (std::is_same_v<T, AtomicAddVar>) {
              if (op.var >= num_shared_) {
                throw tca::InvalidArgumentError(
                    "Machine: variable out of range",
                    tca::ErrorCode::kOutOfRange);
              }
            } else if constexpr (std::is_same_v<T, Mov>) {
              if (op.dst >= num_regs_ || op.src >= num_regs_) {
                throw tca::InvalidArgumentError(
                    "Machine: register out of range",
                    tca::ErrorCode::kOutOfRange);
              }
            } else if constexpr (std::is_same_v<T, Cas>) {
              if (op.var >= num_shared_ || op.expected >= num_regs_ ||
                  op.desired >= num_regs_ || op.result >= num_regs_) {
                throw tca::InvalidArgumentError("Machine: CAS operand out of "
                                            "range");
              }
            } else if constexpr (std::is_same_v<T, BranchIfZero>) {
              if (op.reg >= num_regs_ || op.target >= prog.size()) {
                throw tca::InvalidArgumentError(
                    "Machine: branch out of range",
                    tca::ErrorCode::kOutOfRange);
              }
            }
          },
          instr);
    }
  }
}

MachineState Machine::initial(std::vector<std::int64_t> shared) const {
  if (shared.size() != num_shared_) {
    throw tca::InvalidArgumentError("Machine::initial: wrong shared count");
  }
  MachineState s;
  s.shared = std::move(shared);
  s.regs.assign(processes_.size(),
                std::vector<std::int64_t>(num_regs_, 0));
  s.pc.assign(processes_.size(), 0);
  return s;
}

bool Machine::all_finished(const MachineState& s) const {
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    if (!finished(s, p)) return false;
  }
  return true;
}

void Machine::step(MachineState& s, std::size_t p) const {
  if (finished(s, p)) {
    throw tca::StateError("Machine::step: process already finished");
  }
  const Instr& instr = processes_[p][s.pc[p]];
  bool jumped = false;
  std::visit(
      [&](const auto& op) {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, Load>) {
          s.regs[p][op.reg] = s.shared[op.var];
        } else if constexpr (std::is_same_v<T, AddImm>) {
          s.regs[p][op.reg] += op.imm;
        } else if constexpr (std::is_same_v<T, Store>) {
          s.shared[op.var] = s.regs[p][op.reg];
        } else if constexpr (std::is_same_v<T, AtomicAddVar>) {
          s.shared[op.var] += op.imm;
        } else if constexpr (std::is_same_v<T, Mov>) {
          s.regs[p][op.dst] = s.regs[p][op.src];
        } else if constexpr (std::is_same_v<T, Cas>) {
          if (s.shared[op.var] == s.regs[p][op.expected]) {
            s.shared[op.var] = s.regs[p][op.desired];
            s.regs[p][op.result] = 1;
          } else {
            s.regs[p][op.result] = 0;
          }
        } else if constexpr (std::is_same_v<T, BranchIfZero>) {
          if (s.regs[p][op.reg] == 0) {
            s.pc[p] = op.target;
            jumped = true;
          }
        }
      },
      instr);
  if (!jumped) ++s.pc[p];
}

Machine statement_level_example(std::int64_t a, std::int64_t b) {
  return Machine({Program{AtomicAddVar{0, a}}, Program{AtomicAddVar{0, b}}},
                 /*num_shared=*/1, /*num_regs=*/1);
}

Machine machine_level_example(std::int64_t a, std::int64_t b) {
  const auto compile = [](std::int64_t imm) {
    return Program{Load{0, 0}, AddImm{0, imm}, Store{0, 0}};
  };
  return Machine({compile(a), compile(b)}, /*num_shared=*/1, /*num_regs=*/1);
}

Machine cas_level_example(std::int64_t a, std::int64_t b) {
  const auto compile = [](std::int64_t imm) {
    return Program{
        /*0*/ Load{0, 0},       // r0 = x (expected)
        /*1*/ Mov{1, 0},        // r1 = r0
        /*2*/ AddImm{1, imm},   // r1 = old + imm (desired)
        /*3*/ Cas{0, 0, 1, 2},  // try to publish; r2 = success
        /*4*/ BranchIfZero{2, 0},  // retry from the LOAD on failure
    };
  };
  return Machine({compile(a), compile(b)}, /*num_shared=*/1, /*num_regs=*/3);
}

std::string to_string(const Instr& instr) {
  return std::visit(
      [](const auto& op) -> std::string {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, Load>) {
          return "LOAD r" + std::to_string(op.reg) + ", x" +
                 std::to_string(op.var);
        } else if constexpr (std::is_same_v<T, AddImm>) {
          return "ADDI r" + std::to_string(op.reg) + ", " +
                 std::to_string(op.imm);
        } else if constexpr (std::is_same_v<T, Store>) {
          return "STORE x" + std::to_string(op.var) + ", r" +
                 std::to_string(op.reg);
        } else if constexpr (std::is_same_v<T, Mov>) {
          return "MOV r" + std::to_string(op.dst) + ", r" +
                 std::to_string(op.src);
        } else if constexpr (std::is_same_v<T, Cas>) {
          return "CAS x" + std::to_string(op.var) + ", r" +
                 std::to_string(op.expected) + " -> r" +
                 std::to_string(op.desired) + " (ok: r" +
                 std::to_string(op.result) + ")";
        } else if constexpr (std::is_same_v<T, BranchIfZero>) {
          return "BZ r" + std::to_string(op.reg) + ", @" +
                 std::to_string(op.target);
        } else {
          std::string out = "x";
          out += std::to_string(op.var);
          out += " := x";
          out += std::to_string(op.var);
          out += " + ";
          out += std::to_string(op.imm);
          out += "  (atomic)";
          return out;
        }
      },
      instr);
}

}  // namespace tca::interleave
