#include "interleave/ca_interleave.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"
#include "runtime/error.hpp"

namespace tca::interleave {

std::optional<std::vector<NodeId>> reach_parallel_step(
    const Automaton& a, const Configuration& x, std::uint64_t max_states) {
  const Configuration target = core::step_synchronous(a, x);
  if (target == x) return std::vector<NodeId>{};

  // BFS over configurations; parent map reconstructs the witness.
  struct Parent {
    Configuration from;
    NodeId via;
  };
  std::unordered_map<Configuration, Parent, core::ConfigurationHash> parent;
  std::deque<Configuration> queue{x};
  parent.emplace(x, Parent{x, 0});
  while (!queue.empty()) {
    const Configuration current = queue.front();
    queue.pop_front();
    for (std::size_t v = 0; v < a.size(); ++v) {
      Configuration next = current;
      core::update_node(a, next, static_cast<NodeId>(v));
      if (parent.contains(next)) continue;
      parent.emplace(next, Parent{current, static_cast<NodeId>(v)});
      if (next == target) {
        std::vector<NodeId> path;
        Configuration at = next;
        while (!(at == x)) {
          const Parent& p = parent.at(at);
          path.push_back(p.via);
          at = p.from;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      if (parent.size() >= max_states) return std::nullopt;
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> permutation_sweep_reproduces(
    const Automaton& a, const Configuration& x) {
  const std::size_t n = a.size();
  if (n > 9) {
    throw tca::DomainTooLargeError("permutation_sweep_reproduces: n > 9");
  }
  const Configuration target = core::step_synchronous(a, x);
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  std::sort(perm.begin(), perm.end());
  do {
    Configuration c = x;
    core::apply_sequence(a, c, perm);
    if (c == target) return perm;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return std::nullopt;
}

std::optional<std::uint64_t> first_irreproducible_step(
    const Automaton& a, const Configuration& start, std::uint64_t max_steps) {
  const auto orbit = core::find_orbit_synchronous(a, start, max_steps);
  const std::uint64_t horizon =
      orbit ? orbit->transient + orbit->period : max_steps;
  Configuration x = start;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    if (!reach_parallel_step(a, x)) return t;
    x = core::step_synchronous(a, x);
  }
  return std::nullopt;
}

}  // namespace tca::interleave
