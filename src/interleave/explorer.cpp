#include "interleave/explorer.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"

namespace tca::interleave {

std::set<std::vector<std::int64_t>> interleaving_outcomes(
    const Machine& m, const MachineState& initial) {
  runtime::RunControl unlimited;
  return interleaving_outcomes(m, initial, unlimited).outcomes;
}

InterleaveExploration interleaving_outcomes(const Machine& m,
                                            const MachineState& initial,
                                            runtime::RunControl& control) {
  TCA_SPAN("interleave_explore");
  InterleaveExploration out;
  std::set<MachineState> seen;
  std::vector<MachineState> stack{initial};
  // Approximate bytes per memoized machine state: registers + pcs + shared
  // vector payloads plus tree-node overhead.
  const std::uint64_t bytes_per_state =
      64 + 8 * (initial.shared.size() + 2 * m.num_processes());
  std::uint64_t dedup_hits = 0;  // local tally, published once at exit
  while (!stack.empty()) {
    if (control.should_stop()) break;
    MachineState s = std::move(stack.back());
    stack.pop_back();
    if (!seen.insert(s).second) {
      ++dedup_hits;
      continue;
    }
    if (control.note_states() != runtime::StopReason::kNone ||
        control.note_bytes(bytes_per_state) != runtime::StopReason::kNone) {
      break;
    }
    if (m.all_finished(s)) {
      out.outcomes.insert(s.shared);
      continue;
    }
    for (std::size_t p = 0; p < m.num_processes(); ++p) {
      if (m.finished(s, p)) continue;
      control.note_steps();
      MachineState next = s;
      m.step(next, p);
      stack.push_back(std::move(next));
    }
  }
  out.machine_states = seen.size();
  static obs::Counter& runs = obs::counter("interleave.explore.runs");
  static obs::Counter& states = obs::counter("interleave.explore.machine_states");
  static obs::Counter& dedup = obs::counter("interleave.explore.dedup_hits");
  runs.add();
  states.add(out.machine_states);
  dedup.add(dedup_hits);
  const auto status = control.status();
  out.stop_reason = status.stop_reason;
  out.truncated = status.truncated();
  return out;
}

std::uint64_t count_interleavings(const Machine& m) {
  // Schedules = interleavings of the programs' instruction streams; count
  // by DFS over pc-vectors with memoization. Only meaningful for
  // straight-line programs: a branch makes the schedule count
  // data-dependent (and possibly unbounded).
  for (std::size_t p = 0; p < m.num_processes(); ++p) {
    for (const Instr& instr : m.program(p)) {
      if (std::holds_alternative<BranchIfZero>(instr)) {
        throw tca::InvalidArgumentError(
            "count_interleavings: straight-line programs only");
      }
    }
  }
  std::map<std::vector<std::size_t>, std::uint64_t> memo;
  std::vector<std::size_t> lengths(m.num_processes());
  for (std::size_t p = 0; p < m.num_processes(); ++p) {
    lengths[p] = m.program(p).size();
  }
  const std::function<std::uint64_t(std::vector<std::size_t>&)> count =
      [&](std::vector<std::size_t>& pc) -> std::uint64_t {
    if (pc == lengths) return 1;
    const auto it = memo.find(pc);
    if (it != memo.end()) return it->second;
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < pc.size(); ++p) {
      if (pc[p] < lengths[p]) {
        ++pc[p];
        total += count(pc);
        --pc[p];
      }
    }
    memo[pc] = total;
    return total;
  };
  std::vector<std::size_t> pc(m.num_processes(), 0);
  return count(pc);
}

std::set<std::vector<std::int64_t>> parallel_outcomes(
    const Machine& m, const MachineState& initial) {
  // Validate shape and collect each process's (var, imm).
  struct Write {
    std::uint8_t var;
    std::int64_t value;
  };
  std::vector<Write> writes;
  for (std::size_t p = 0; p < m.num_processes(); ++p) {
    const Program& prog = m.program(p);
    if (prog.size() != 1 || !std::holds_alternative<AtomicAddVar>(prog[0])) {
      throw tca::InvalidArgumentError(
          "parallel_outcomes: processes must each be one AtomicAddVar");
    }
    const auto& op = std::get<AtomicAddVar>(prog[0]);
    // Simultaneous read of the time-0 shared state:
    writes.push_back(Write{op.var, initial.shared[op.var] + op.imm});
  }
  // Apply the writes in every order; later writes clobber earlier ones.
  std::vector<std::size_t> perm(writes.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end());
  std::set<std::vector<std::int64_t>> outcomes;
  do {
    std::vector<std::int64_t> shared = initial.shared;
    for (std::size_t i : perm) shared[writes[i].var] = writes[i].value;
    outcomes.insert(std::move(shared));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return outcomes;
}

}  // namespace tca::interleave
