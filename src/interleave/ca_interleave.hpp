#pragma once
// Can sequential interleavings of node updates reproduce a parallel CA
// step or trajectory? (DESIGN.md S7; the paper's central question.)
//
// Searches over the nondeterministic single-node-update transition system:
//  * reach_parallel_step: is F(x) reachable from x by SOME finite sequence
//    of single-node updates?
//  * permutation_sweep_reproduces: is there a PERMUTATION whose one sweep
//    from x yields exactly F(x)? (exhaustive over n! for n <= 9)
//  * trajectory analysis: along the parallel orbit of x, at which step does
//    sequential reproducibility first fail (if ever)?
// For threshold CA on a two-cycle, both searches provably fail — that is
// Lemma 1 made executable.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::interleave {

using core::Automaton;
using core::Configuration;
using core::NodeId;

/// If F(x) (the parallel successor) is reachable from x via single-node
/// updates, returns a shortest witness sequence of node ids (possibly empty
/// when F(x) == x); otherwise std::nullopt. BFS over at most `max_states`
/// distinct configurations.
[[nodiscard]] std::optional<std::vector<NodeId>> reach_parallel_step(
    const Automaton& a, const Configuration& x,
    std::uint64_t max_states = 1u << 22);

/// Is there a permutation pi with sweep_pi(x) == F(x)? Exhaustive over all
/// n! permutations; requires n <= 9. Returns a witness if one exists.
[[nodiscard]] std::optional<std::vector<NodeId>> permutation_sweep_reproduces(
    const Automaton& a, const Configuration& x);

/// Walks the parallel orbit of `start` and reports the first time step t
/// such that the parallel transition x(t) -> x(t+1) is NOT reachable by any
/// sequential interleaving from x(t); std::nullopt if every step along the
/// orbit (up to its full transient + period, capped at max_steps) is
/// sequentially reproducible.
[[nodiscard]] std::optional<std::uint64_t> first_irreproducible_step(
    const Automaton& a, const Configuration& start,
    std::uint64_t max_steps = 4096);

}  // namespace tca::interleave
