#include "sds/order_equivalence.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "runtime/error.hpp"
#include "sds/sds.hpp"

namespace tca::sds {

std::vector<NodeId> canonical_order(const graph::Graph& g,
                                    std::span<const NodeId> order) {
  // Lexicographically least word of the trace class, built greedily: at
  // each step take the smallest remaining node that can be commuted to the
  // front (i.e. is graph-non-adjacent to everything before it in the
  // remaining word). This is the standard normal form for trace monoids
  // and is canonical, unlike naive bubble passes which can stall in
  // different local minima.
  std::vector<NodeId> rest(order.begin(), order.end());
  std::vector<NodeId> out;
  out.reserve(rest.size());
  while (!rest.empty()) {
    std::size_t best = 0;  // rest[0] is trivially movable to the front
    for (std::size_t i = 1; i < rest.size(); ++i) {
      if (rest[i] >= rest[best]) continue;
      bool movable = true;
      for (std::size_t j = 0; j < i; ++j) {
        if (g.has_edge(rest[i], rest[j])) {
          movable = false;
          break;
        }
      }
      if (movable) best = i;
    }
    out.push_back(rest[best]);
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return out;
}

bool commutation_equivalent(const graph::Graph& g,
                            std::span<const NodeId> order1,
                            std::span<const NodeId> order2) {
  return canonical_order(g, order1) == canonical_order(g, order2);
}

std::uint64_t count_commutation_classes(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n > 9) {
    throw tca::DomainTooLargeError("count_commutation_classes: n > 9");
  }
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  std::set<std::vector<NodeId>> canonical;
  do {
    canonical.insert(canonical_order(g, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return canonical.size();
}

std::uint64_t count_acyclic_orientations(const graph::Graph& g) {
  const auto edges = g.edges();
  const std::size_t m = edges.size();
  if (m > 24) {
    throw tca::DomainTooLargeError("count_acyclic_orientations: m > 24");
  }
  const std::size_t n = g.num_nodes();
  std::uint64_t count = 0;
  // Orientation bit e: 0 = u->v, 1 = v->u. Acyclic check: Kahn's algorithm.
  std::vector<std::uint32_t> indeg(n);
  std::vector<std::vector<NodeId>> out(n);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << m); ++bits) {
    std::fill(indeg.begin(), indeg.end(), 0u);
    for (auto& o : out) o.clear();
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId from = ((bits >> e) & 1u) ? edges[e].v : edges[e].u;
      const NodeId to = ((bits >> e) & 1u) ? edges[e].u : edges[e].v;
      out[from].push_back(to);
      ++indeg[to];
    }
    std::vector<NodeId> ready;
    for (std::size_t v = 0; v < n; ++v) {
      if (indeg[v] == 0) ready.push_back(static_cast<NodeId>(v));
    }
    std::size_t removed = 0;
    while (!ready.empty()) {
      const NodeId v = ready.back();
      ready.pop_back();
      ++removed;
      for (NodeId w : out[v]) {
        if (--indeg[w] == 0) ready.push_back(w);
      }
    }
    if (removed == n) ++count;
  }
  return count;
}

std::uint64_t count_distinct_sweep_maps(const core::Automaton& a) {
  const std::size_t n = a.size();
  if (n > 9) {
    throw tca::DomainTooLargeError("count_distinct_sweep_maps: n > 9");
  }
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  std::set<std::vector<StateCode>> maps;
  const StateCode count = StateCode{1} << n;
  do {
    const Sds sds(a, perm);
    std::vector<StateCode> table(count);
    for (StateCode s = 0; s < count; ++s) table[s] = sds.sweep(s);
    maps.insert(std::move(table));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return maps.size();
}

}  // namespace tca::sds
