#pragma once
// Word dynamical systems (DESIGN.md S6 extension): the SDS notion
// generalized from permutations to arbitrary WORDS over the node set —
// sequences that may repeat or omit nodes, matching the paper's remark
// that an SCA schedule "is an arbitrary sequence of nodes, not necessarily
// a permutation". A word w induces the deterministic map "apply the
// updates in order", and the classical facts carry over:
//  * fixed points of the automaton are fixed under EVERY word map;
//  * a word containing every node has exactly the automaton's fixed points
//    as its map's fixed points when the rules are monotone threshold
//    (tested), but may have MORE fixed points when nodes are omitted.

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "phasespace/functional_graph.hpp"

namespace tca::sds {

using core::Automaton;
using core::NodeId;
using phasespace::FunctionalGraph;
using phasespace::StateCode;

/// A word dynamical system: automaton + arbitrary update word.
class WordSystem {
 public:
  /// `word` entries must be valid node ids; repetitions/omissions allowed.
  WordSystem(Automaton a, std::vector<NodeId> word);

  [[nodiscard]] const Automaton& automaton() const noexcept { return a_; }
  [[nodiscard]] std::span<const NodeId> word() const noexcept { return word_; }

  /// True if every node occurs in the word at least once.
  [[nodiscard]] bool covers_all_nodes() const;

  /// One application of the word to an encoded state.
  [[nodiscard]] StateCode apply(StateCode s) const;

  /// Full phase space of the word map (n <= 26).
  [[nodiscard]] FunctionalGraph phase_space() const;

  /// Fixed points of the WORD MAP (apply(s) == s). A superset of the
  /// automaton's fixed points whenever the word omits nodes.
  [[nodiscard]] std::vector<StateCode> map_fixed_points() const;

  /// Fixed points of the AUTOMATON (no single update changes the state).
  [[nodiscard]] std::vector<StateCode> automaton_fixed_points() const;

 private:
  Automaton a_;
  std::vector<NodeId> word_;
};

}  // namespace tca::sds
