#include "sds/word.hpp"

#include <stdexcept>

#include "core/sequential.hpp"
#include "runtime/error.hpp"

namespace tca::sds {

WordSystem::WordSystem(Automaton a, std::vector<NodeId> word)
    : a_(std::move(a)), word_(std::move(word)) {
  for (NodeId v : word_) {
    if (v >= a_.size()) {
      throw tca::InvalidArgumentError(
          "WordSystem: node id out of range", tca::ErrorCode::kOutOfRange);
    }
  }
}

bool WordSystem::covers_all_nodes() const {
  std::vector<bool> seen(a_.size(), false);
  for (NodeId v : word_) seen[v] = true;
  for (bool s : seen) {
    if (!s) return false;
  }
  return true;
}

StateCode WordSystem::apply(StateCode s) const {
  auto c = core::Configuration::from_bits(s, a_.size());
  core::apply_sequence(a_, c, word_);
  return c.to_bits();
}

FunctionalGraph WordSystem::phase_space() const {
  return FunctionalGraph(
      static_cast<std::uint32_t>(a_.size()),
      [this](StateCode s) { return apply(s); });
}

std::vector<StateCode> WordSystem::map_fixed_points() const {
  std::vector<StateCode> out;
  const StateCode count = StateCode{1} << a_.size();
  for (StateCode s = 0; s < count; ++s) {
    if (apply(s) == s) out.push_back(s);
  }
  return out;
}

std::vector<StateCode> WordSystem::automaton_fixed_points() const {
  std::vector<StateCode> out;
  const StateCode count = StateCode{1} << a_.size();
  for (StateCode s = 0; s < count; ++s) {
    const auto c = core::Configuration::from_bits(s, a_.size());
    if (core::is_fixed_point_sequential(a_, c)) out.push_back(s);
  }
  return out;
}

}  // namespace tca::sds
