#pragma once
// Update-order equivalence for SDS (DESIGN.md S6).
//
// Two permutations that differ by swapping ADJACENT-IN-THE-ORDER nodes that
// are NOT adjacent in the graph induce the same sweep map (their updates
// commute — neither reads the other's output). The commutation classes are
// in bijection with the acyclic orientations of the graph (Cartier–Foata /
// Mortveit–Reidys), so the number of functionally distinct SDS maps is at
// most a(G), the number of acyclic orientations. Tests verify both the
// canonical-form machinery and the bound against brute-force map
// comparison.

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "graph/graph.hpp"

namespace tca::sds {

using core::NodeId;

/// Canonical representative of `order`'s commutation class w.r.t. graph
/// `g`: the lexicographically least permutation in the class, computed by
/// the standard greedy trace-monoid normal form (repeatedly extract the
/// smallest node that commutes past everything before it).
[[nodiscard]] std::vector<NodeId> canonical_order(const graph::Graph& g,
                                                  std::span<const NodeId> order);

/// True if the two orders are in the same commutation class (equal
/// canonical forms) — a SUFFICIENT condition for inducing the same sweep
/// map on any automaton over g.
[[nodiscard]] bool commutation_equivalent(const graph::Graph& g,
                                          std::span<const NodeId> order1,
                                          std::span<const NodeId> order2);

/// Number of distinct commutation classes over ALL n! permutations
/// (equals the number of acyclic orientations of g). Exhaustive; n <= 9.
[[nodiscard]] std::uint64_t count_commutation_classes(const graph::Graph& g);

/// Number of acyclic orientations of g, by brute force over all 2^m edge
/// orientations with a cycle check; m <= 24.
[[nodiscard]] std::uint64_t count_acyclic_orientations(const graph::Graph& g);

/// Number of FUNCTIONALLY distinct sweep maps of automaton `a` over all n!
/// update permutations (exhaustive map comparison; n <= 9, 2^n states
/// each). By Mortveit–Reidys this is <= count_acyclic_orientations(g).
[[nodiscard]] std::uint64_t count_distinct_sweep_maps(
    const core::Automaton& a);

}  // namespace tca::sds
