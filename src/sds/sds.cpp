#include "sds/sds.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/sequential.hpp"
#include "phasespace/classify.hpp"
#include "runtime/error.hpp"

namespace tca::sds {

Sds::Sds(Automaton a, std::vector<NodeId> order)
    : a_(std::move(a)), order_(std::move(order)) {
  if (order_.size() != a_.size()) {
    throw tca::InvalidArgumentError("Sds: order size != node count");
  }
  std::vector<bool> seen(a_.size(), false);
  for (NodeId v : order_) {
    if (v >= a_.size() || seen[v]) {
      throw tca::InvalidArgumentError("Sds: order is not a permutation");
    }
    seen[v] = true;
  }
}

StateCode Sds::sweep(StateCode s) const {
  auto c = core::Configuration::from_bits(s, a_.size());
  core::apply_sequence(a_, c, order_);
  return c.to_bits();
}

FunctionalGraph Sds::phase_space() const {
  return FunctionalGraph::sweep(a_, order_);
}

bool functionally_equivalent(const Automaton& a,
                             std::span<const NodeId> order1,
                             std::span<const NodeId> order2) {
  const Sds s1(a, {order1.begin(), order1.end()});
  const Sds s2(a, {order2.begin(), order2.end()});
  const StateCode count = StateCode{1} << a.size();
  for (StateCode s = 0; s < count; ++s) {
    if (s1.sweep(s) != s2.sweep(s)) return false;
  }
  return true;
}

bool is_invertible(const Sds& sds) {
  const auto fg = sds.phase_space();
  std::vector<std::uint8_t> hit(fg.num_states(), 0);
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    if (hit[fg.succ(s)]) return false;
    hit[fg.succ(s)] = 1;
  }
  return true;
}

GardenOfEden gardens_of_eden(const Sds& sds, std::size_t limit) {
  const auto fg = sds.phase_space();
  const auto indeg = phasespace::in_degrees(fg);
  GardenOfEden out;
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    if (indeg[s] == 0) {
      ++out.count;
      if (out.examples.size() < limit) out.examples.push_back(s);
    }
  }
  return out;
}

}  // namespace tca::sds
