#pragma once
// Sequential dynamical systems (DESIGN.md S6).
//
// The formal substrate the paper repeatedly cites ([2-6], Barrett, Mortveit,
// Reidys et al.): an SDS is a graph, one local rule per node, and a
// PERMUTATION update order pi; one "SDS step" is a full sweep applying the
// updates in order. Unlike the free-interleaving view (ChoiceDigraph), the
// sweep map is deterministic, so SDS phase spaces are functional graphs and
// all of Definition 3 applies. This module adds the SDS-specific
// questions: when do two orders induce the SAME global map, is the map
// invertible, and which states are Gardens of Eden.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "phasespace/functional_graph.hpp"

namespace tca::sds {

using core::Automaton;
using core::NodeId;
using phasespace::FunctionalGraph;
using phasespace::StateCode;

/// A sequential dynamical system: automaton + update permutation. The
/// automaton is stored by value, so temporaries are safe.
class Sds {
 public:
  /// `order` must be a permutation of {0..n-1}.
  Sds(Automaton a, std::vector<NodeId> order);

  [[nodiscard]] const Automaton& automaton() const noexcept { return a_; }
  [[nodiscard]] std::span<const NodeId> order() const noexcept {
    return order_;
  }

  /// One sweep applied to an encoded state.
  [[nodiscard]] StateCode sweep(StateCode s) const;

  /// The full phase space of the sweep map (n <= 26).
  [[nodiscard]] FunctionalGraph phase_space() const;

 private:
  Automaton a_;
  std::vector<NodeId> order_;
};

/// True if the two orders induce the same global sweep map on `a`
/// (compared exhaustively over all 2^n states; n <= 26).
[[nodiscard]] bool functionally_equivalent(const Automaton& a,
                                           std::span<const NodeId> order1,
                                           std::span<const NodeId> order2);

/// True if the sweep map is a bijection on the state space.
[[nodiscard]] bool is_invertible(const Sds& sds);

/// All Garden-of-Eden states (no preimage under the sweep map); at most
/// `limit` are returned, plus the total count.
struct GardenOfEden {
  std::uint64_t count = 0;
  std::vector<StateCode> examples;
};
[[nodiscard]] GardenOfEden gardens_of_eden(const Sds& sds,
                                           std::size_t limit = 16);

}  // namespace tca::sds
