#pragma once
// Structured JSONL event log (docs/observability.md).
//
// Replaces ad-hoc fprintf(stderr, ...) warnings in src/ with typed
// records: a level, a dotted event name (same convention as metric
// names), and key/value fields. The default sink renders one JSON object
// per line to stderr; tests and embedding binaries swap the sink
// (ScopedLogSink) to capture records instead.
//
// Records below the minimum level (default kInfo) are dropped before any
// field is formatted.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace tca::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// One typed key/value pair of a log record.
struct LogField {
  using Value =
      std::variant<std::string, std::int64_t, std::uint64_t, double, bool>;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, std::string_view v)
      : key(std::move(k)), value(std::string(v)) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(std::string(v)) {}
  LogField(std::string k, std::int64_t v) : key(std::move(k)), value(v) {}
  LogField(std::string k, std::uint64_t v) : key(std::move(k)), value(v) {}
  LogField(std::string k, int v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  LogField(std::string k, unsigned v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}
  LogField(std::string k, double v) : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v) : key(std::move(k)), value(v) {}

  std::string key;
  Value value;
};

struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string event;             ///< dotted name, e.g. "checkpoint.corrupt"
  std::vector<LogField> fields;
  std::uint64_t unix_ms = 0;     ///< wall-clock timestamp
};

/// Renders a record the way the default sink does: one JSON object
/// {"ts_ms":..., "level":..., "event":..., "fields":{...}} (no newline).
[[nodiscard]] std::string render_jsonl(const LogRecord& record);

/// Emits a record to the installed sink (default: JSONL on stderr).
/// Thread-safe; drops records below the minimum level. Also bumps the
/// "log.events.<level>" counter so tests can assert an event fired.
void log_event(LogLevel level, std::string_view event,
               std::vector<LogField> fields = {});

void set_min_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel min_log_level() noexcept;

using LogSink = std::function<void(const LogRecord&)>;

/// Installs `sink` for the lifetime of the scope, restoring the previous
/// sink on destruction (tests capture records this way).
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink sink);
  ~ScopedLogSink();

  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink previous_;
};

}  // namespace tca::obs
