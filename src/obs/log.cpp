#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "core/annotations.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tca::obs {
namespace {

std::atomic<std::uint8_t> g_min_level{
    static_cast<std::uint8_t>(LogLevel::kInfo)};

tca::Mutex g_sink_mutex;
LogSink& sink_slot() TCA_REQUIRES(g_sink_mutex) {
  static LogSink* sink = new LogSink();  // empty == default stderr sink
  return *sink;
}

void default_sink(const LogRecord& record) {
  const std::string line = render_jsonl(record);
  // tca-lint: allow(raw-stdio) this IS the terminal sink every structured
  // event in src/ funnels into; everything else must call log_event().
  std::fprintf(stderr, "%s\n", line.c_str());
}

Counter& level_counter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: {
      static Counter& c = counter("log.events.debug");
      return c;
    }
    case LogLevel::kInfo: {
      static Counter& c = counter("log.events.info");
      return c;
    }
    case LogLevel::kWarn: {
      static Counter& c = counter("log.events.warn");
      return c;
    }
    case LogLevel::kError:
    default: {
      static Counter& c = counter("log.events.error");
      return c;
    }
  }
}

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

std::string render_jsonl(const LogRecord& record) {
  JsonWriter w;
  w.begin_object()
      .kv("ts_ms", record.unix_ms)
      .kv("level", log_level_name(record.level))
      .kv("event", record.event);
  w.key("fields").begin_object();
  for (const LogField& f : record.fields) {
    w.key(f.key);
    std::visit([&w](const auto& v) { w.value(v); }, f.value);
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

void log_event(LogLevel level, std::string_view event,
               std::vector<LogField> fields) {
  if (static_cast<std::uint8_t>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  level_counter(level).add();
  LogRecord record;
  record.level = level;
  record.event = std::string(event);
  record.fields = std::move(fields);
  record.unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const tca::LockGuard lock(g_sink_mutex);
  if (sink_slot()) {
    sink_slot()(record);
  } else {
    default_sink(record);
  }
}

void set_min_log_level(LogLevel level) noexcept {
  g_min_level.store(static_cast<std::uint8_t>(level),
                    std::memory_order_relaxed);
}

LogLevel min_log_level() noexcept {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

ScopedLogSink::ScopedLogSink(LogSink sink) {
  const tca::LockGuard lock(g_sink_mutex);
  previous_ = std::move(sink_slot());
  sink_slot() = std::move(sink);
}

ScopedLogSink::~ScopedLogSink() {
  const tca::LockGuard lock(g_sink_mutex);
  sink_slot() = std::move(previous_);
}

}  // namespace tca::obs
