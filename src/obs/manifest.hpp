#pragma once
// Machine-readable run manifests (docs/observability.md).
//
// Every bench binary and the bench::ExperimentDriver end a run by writing
// a RunManifest: one schema-versioned JSON file capturing what ran (tool,
// argv, seed), against which build (git SHA, build type, compiler, flags,
// sanitizers — frozen into obs/build_info.hpp at CMake configure time),
// what happened (status, per-check verdicts, per-benchmark timings,
// StopReason, wall-clock), and the full metrics snapshot. Manifests are
// the comparable, versioned result artifacts scripts/check_bench.py
// diffs for perf regressions — no stdout scraping.
//
// Schema versioning policy: kManifestSchemaVersion bumps on any change
// that would break a reader (field removal or retyping); adding optional
// fields is NOT a bump. Readers must ignore unknown fields.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tca::obs {

/// Current manifest schema version (see versioning policy above).
inline constexpr std::uint32_t kManifestSchemaVersion = 1;

/// One named PASS/FAIL-style verdict inside a manifest.
struct ManifestCheck {
  std::string id;
  std::string status;  ///< PASS | FAIL | ERROR | TIMEOUT | SKIP | CRASH
  std::string detail;
};

/// One google-benchmark (or hand-timed) measurement.
struct BenchmarkTiming {
  std::string name;
  double real_time = 0;          ///< per-iteration, in `time_unit`
  std::string time_unit = "ns";
  double items_per_second = 0;   ///< 0 when the bench reports none
  std::uint64_t iterations = 0;
};

/// The manifest a run fills in and writes. Build info, timestamp, and the
/// metrics snapshot are added automatically at serialization time.
struct RunManifest {
  std::string tool;              ///< binary or sweep name (manifest key)
  std::string status = "UNKNOWN";  ///< overall PASS / FAIL / ERROR / ...
  std::optional<std::uint64_t> seed;
  std::vector<std::string> argv;
  std::string stop_reason = "none";  ///< runtime::stop_reason_name value
  double wall_ms = 0;
  std::map<std::string, std::string> budgets;  ///< limit name -> value
  std::vector<ManifestCheck> checks;
  std::vector<BenchmarkTiming> benchmarks;
  std::map<std::string, std::string> extra;  ///< free-form annotations
  bool include_metrics = true;  ///< embed snapshot_metrics() on write

  [[nodiscard]] std::string to_json() const;

  /// Atomically writes to_json() to `path` (tmp file + rename), creating
  /// parent directories. Throws tca::RuntimeError(kIo) on failure.
  void write(const std::string& path) const;

  /// write(), with failures logged (event "manifest.write_failed") instead
  /// of thrown — manifest emission must never take down a finished run.
  /// Returns true on success.
  bool try_write(const std::string& path) const noexcept;
};

/// Where manifests land: $TCA_RESULTS_DIR if set, else "results" under
/// the current working directory (docs/observability.md describes the
/// layout).
[[nodiscard]] std::string results_dir();

/// `<results_dir()>/<tool>.manifest.json`. Does not create anything;
/// RunManifest::write creates parent directories as needed.
[[nodiscard]] std::string manifest_path(std::string_view tool);

}  // namespace tca::obs
