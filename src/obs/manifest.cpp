#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::obs {
namespace {

void append_metrics(JsonWriter& w) {
  const MetricsSnapshot snap = snapshot_metrics();
  w.key("metrics").begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const std::uint64_t b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.kv("count", h.count).kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kManifestSchemaVersion);
  w.kv("tool", tool);
  w.kv("status", status);
  w.kv("created_unix_ms",
       static_cast<std::uint64_t>(
           std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
               .count()));

  w.key("build").begin_object();
  w.kv("git_sha", build_info::kGitSha);
  w.kv("git_dirty", build_info::kGitDirty);
  w.kv("build_type", build_info::kBuildType);
  w.kv("compiler", build_info::kCompiler);
  w.kv("cxx_flags", build_info::kCxxFlags);
  w.kv("sanitize", build_info::kSanitize);
  w.end_object();

  w.key("run").begin_object();
  if (seed.has_value()) {
    w.kv("seed", *seed);
  } else {
    w.key("seed").null();
  }
  w.key("argv").begin_array();
  for (const std::string& a : argv) w.value(a);
  w.end_array();
  w.kv("stop_reason", stop_reason);
  w.kv("wall_ms", wall_ms);
  w.key("budgets").begin_object();
  for (const auto& [name, v] : budgets) w.kv(name, v);
  w.end_object();
  w.end_object();

  w.key("checks").begin_array();
  for (const ManifestCheck& c : checks) {
    w.begin_object()
        .kv("id", c.id)
        .kv("status", c.status)
        .kv("detail", c.detail)
        .end_object();
  }
  w.end_array();

  w.key("benchmarks").begin_array();
  for (const BenchmarkTiming& b : benchmarks) {
    w.begin_object()
        .kv("name", b.name)
        .kv("real_time", b.real_time)
        .kv("time_unit", b.time_unit)
        .kv("items_per_second", b.items_per_second)
        .kv("iterations", b.iterations)
        .end_object();
  }
  w.end_array();

  w.key("extra").begin_object();
  for (const auto& [name, v] : extra) w.kv(name, v);
  w.end_object();

  if (include_metrics) append_metrics(w);
  w.end_object();
  return std::move(w).str();
}

void RunManifest::write(const std::string& path) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best effort
  }
  const std::string blob = to_json();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw tca::RuntimeError("manifest '" + path + "': cannot open tmp file",
                              tca::ErrorCode::kIo);
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.put('\n');
    out.flush();
    if (!out) {
      throw tca::RuntimeError("manifest '" + path + "': write failed",
                              tca::ErrorCode::kIo);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw tca::RuntimeError("manifest '" + path + "': rename failed",
                            tca::ErrorCode::kIo);
  }
  static Counter& writes = counter("manifest.writes");
  writes.add();
}

bool RunManifest::try_write(const std::string& path) const noexcept {
  try {
    write(path);
    return true;
  } catch (const std::exception& e) {
    try {
      log_event(LogLevel::kWarn, "manifest.write_failed",
                {{"path", path}, {"error", e.what()}});
    } catch (...) {
    }
    return false;
  }
}

std::string results_dir() {
  if (const char* dir = std::getenv("TCA_RESULTS_DIR");
      dir != nullptr && dir[0] != '\0') {
    return dir;
  }
  return "results";
}

std::string manifest_path(std::string_view tool) {
  return results_dir() + "/" + std::string(tool) + ".manifest.json";
}

}  // namespace tca::obs
