#pragma once
// Scoped trace spans with a Chrome trace_event JSON exporter
// (docs/observability.md).
//
// TCA_SPAN("phase_space_build") opens a span for the rest of the enclosing
// scope. Spans nest per thread (a thread-local depth counter tracks the
// parent/child relationship) and are exported as complete ("ph":"X")
// events on one timeline row per thread, which chrome://tracing and
// Perfetto render as a nested flame chart — so the wall-clock of an
// exponential exploration can finally be attributed to its phases.
//
// Tracing is OFF by default: a span in a hot path costs one relaxed
// atomic load until start_tracing() flips the switch. While tracing is on,
// each completed span takes two clock reads and one mutex-protected
// append; the buffer is capped (kMaxTraceEvents) and overflow is counted,
// never unbounded.
//
// Span names must be string literals (or otherwise outlive the trace
// session): the recorder stores the pointer, not a copy.

#include <cstddef>
#include <cstdint>
#include <string>

namespace tca::obs {

/// Hard cap on buffered events; past it, spans are counted as dropped
/// (counter "trace.dropped_events") instead of recorded.
inline constexpr std::size_t kMaxTraceEvents = 1 << 20;

[[nodiscard]] bool tracing_enabled() noexcept;

/// Clears the event buffer and starts recording.
void start_tracing();

/// Stops recording; buffered events are kept for export.
void stop_tracing();

/// Number of buffered (completed) span events.
[[nodiscard]] std::size_t trace_event_count();

/// Drops all buffered events.
void clear_trace();

/// The buffered events as a Chrome trace_event JSON document
/// ({"traceEvents":[...]}): load it in chrome://tracing or
/// https://ui.perfetto.dev.
[[nodiscard]] std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path` (throws tca::RuntimeError with
/// ErrorCode::kIo on filesystem failure).
void write_chrome_trace(const std::string& path);

/// RAII span; prefer the TCA_SPAN macro. No-op when tracing is off at
/// construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace tca::obs

#define TCA_OBS_CONCAT2(a, b) a##b
#define TCA_OBS_CONCAT(a, b) TCA_OBS_CONCAT2(a, b)
/// Opens a trace span named `name` (a string literal) for the rest of the
/// enclosing scope.
#define TCA_SPAN(name) \
  ::tca::obs::ScopedSpan TCA_OBS_CONCAT(tca_span_, __LINE__)(name)
