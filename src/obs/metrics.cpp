#include "obs/metrics.hpp"

#include <algorithm>
#include <memory>

#include "core/annotations.hpp"

namespace tca::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{true};

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      cells_(detail::kShards * (bounds_.size() + 1)) {}

void Histogram::record(std::uint64_t v) noexcept {
  if (!metrics_enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = detail::this_thread_shard();
  cells_[shard * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].value.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < detail::kShards; ++shard) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      out.counts[b] += cells_[shard * (bounds_.size() + 1) + b].load(
          std::memory_order_relaxed);
    }
    out.sum += sums_[shard].value.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : out.counts) out.count += c;
  return out;
}

const std::vector<std::uint64_t>& default_latency_bounds_us() {
  static const std::vector<std::uint64_t> bounds{
      1,    2,    5,     10,    20,    50,     100,    200,    500,
      1000, 2000, 5000,  10000, 20000, 50000,  100000, 200000, 500000,
      1000000};
  return bounds;
}

namespace {

/// One mutex-protected map per metric kind. Node-based maps + unique_ptr
/// keep every handed-out reference stable forever. Lookups mutate the
/// maps, so even read-shaped calls take the mutex; the handed-out
/// Counter/Gauge/Histogram cells are themselves atomic and lock-free.
struct Registry {
  tca::Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      TCA_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      TCA_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      TCA_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  const tca::LockGuard lock(r.mutex);
  const auto it = r.counters.find(name);
  if (it != r.counters.end()) return *it->second;
  return *r.counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  const tca::LockGuard lock(r.mutex);
  const auto it = r.gauges.find(name);
  if (it != r.gauges.end()) return *it->second;
  return *r.gauges.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& histogram(std::string_view name,
                     const std::vector<std::uint64_t>& bounds) {
  Registry& r = registry();
  const tca::LockGuard lock(r.mutex);
  const auto it = r.histograms.find(name);
  if (it != r.histograms.end()) return *it->second;
  return *r.histograms
              .emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  const tca::LockGuard lock(r.mutex);
  MetricsSnapshot out;
  for (const auto& [name, c] : r.counters) out.counters[name] = c->value();
  for (const auto& [name, g] : r.gauges) out.gauges[name] = g->value();
  for (const auto& [name, h] : r.histograms) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

}  // namespace tca::obs
