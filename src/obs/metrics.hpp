#pragma once
// Low-overhead metrics registry (docs/observability.md).
//
// Counters, gauges, and fixed-bucket histograms for the hot paths: the
// engines, the thread pool, the exponential-state-space explorers, and the
// checkpoint machinery all charge metrics as they work, and a snapshot is
// embedded in every RunManifest (obs/manifest.hpp).
//
// Design constraints, in order:
//  * correct under TSan — every mutable cell is a std::atomic, so
//    concurrent increments sum EXACTLY and snapshot-while-incrementing is
//    race-free by construction (tests/obs_metrics_test.cpp proves both
//    under the `tsan` preset);
//  * cheap when hot — Counter::add is one relaxed load (the global enable
//    flag) plus one relaxed fetch_add on a per-thread shard, so concurrent
//    writers do not bounce a shared cache line; the perf_engine
//    metrics-on/off ablation bounds the overhead at < 5%;
//  * cheap when disabled — set_metrics_enabled(false) reduces every
//    charge to a single relaxed load-and-branch.
//
// Naming convention: lowercase dotted paths, `<subsystem>.<object>.<what>`
// (e.g. "engine.synchronous.steps", "thread_pool.chunk_us"). Duration
// histograms end in `_us`; size histograms in `_bytes`.
//
// Handles returned by counter()/gauge()/histogram() are process-lifetime
// stable, so hot functions cache them in a function-local static:
//
//   static obs::Counter& steps = obs::counter("engine.synchronous.steps");
//   steps.add();

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tca::obs {

namespace detail {

/// Number of per-thread shards per counter. Threads are assigned shards
/// round-robin on first use; more threads than shards just share.
inline constexpr std::size_t kShards = 16;

/// Round-robin shard index of the calling thread (assigned once).
[[nodiscard]] std::size_t this_thread_shard() noexcept;

extern std::atomic<bool> g_metrics_enabled;

/// One cache-line-padded atomic cell (avoids false sharing across shards).
struct alignas(64) ShardSlot {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Global on/off switch (default ON). Disabling turns every charge into a
/// single relaxed load; already-recorded values are kept.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept;

/// Monotone counter, sharded per thread; merged on read.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    shards_[detail::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Safe to call while other threads increment; the
  /// result is then some value between "before" and "after".
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  detail::ShardSlot shards_[detail::kShards];
};

/// Last-write-wins signed gauge (pool widths, queue depths).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Read-only view of one histogram, produced by snapshot_metrics().
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;  ///< ascending upper bounds
  /// counts.size() == bounds.size() + 1; counts[i] is the number of
  /// recorded values in [bounds[i-1], bounds[i]) — closed below, open
  /// above, with bounds[-1] taken as 0 — and counts.back() is the
  /// overflow bucket: values >= bounds.back().
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  ///< total recorded values
  std::uint64_t sum = 0;    ///< sum of recorded values
};

/// Fixed-bucket histogram over unsigned values (latencies in
/// microseconds, sizes in bytes). Bucket semantics: a value v lands in
/// the FIRST bucket whose upper bound is strictly greater than v, i.e.
/// bucket i covers [bounds[i-1], bounds[i]); a value equal to a bound
/// lands in the bucket ABOVE it; v >= bounds.back() lands in the
/// overflow bucket. Cells are sharded per thread like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::vector<std::uint64_t> bounds_;
  /// Shard-major layout: cell (shard, bucket) at shard * (bounds+1) +
  /// bucket. Plain atomics — a shard's row spans >= one cache line for
  /// typical bucket counts, which is padding enough here.
  std::vector<std::atomic<std::uint64_t>> cells_;
  detail::ShardSlot sums_[detail::kShards];
};

/// Default upper bounds for `_us` latency histograms: 1us .. 1s, roughly
/// 1-2-5 per decade.
[[nodiscard]] const std::vector<std::uint64_t>& default_latency_bounds_us();

/// Registry lookups: find-or-create by name; the returned reference is
/// valid for the life of the process. For histogram(), `bounds` is used
/// only on first creation; later lookups of the same name ignore it.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name,
                                   const std::vector<std::uint64_t>& bounds);

/// Merged point-in-time view of every registered metric. Race-free with
/// concurrent charges (each cell is read atomically; the snapshot is some
/// consistent-enough interleaving, and exact once writers quiesce).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};
[[nodiscard]] MetricsSnapshot snapshot_metrics();

}  // namespace tca::obs
