#pragma once
// Minimal append-only JSON emitter (docs/observability.md).
//
// Every machine-readable artifact the observability layer produces — run
// manifests, Chrome trace timelines, JSONL log records — is assembled with
// this one writer, so escaping and number formatting are uniform and there
// is exactly one place to audit. Deliberately not a JSON *parser*: the
// repo emits telemetry, scripts/check_bench.py (Python) consumes it.
//
// Header-only so tca_obs has no dependency below it.

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

namespace tca::obs {

/// Streaming JSON writer with explicit begin/end calls. The caller is
/// responsible for well-formedness (matched begin/end, keys only inside
/// objects); the writer handles commas, colons, and escaping.
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    needs_comma_.push_back(false);
    return *this;
  }

  JsonWriter& end_object() {
    out_ += '}';
    needs_comma_.pop_back();
    mark_value();
    return *this;
  }

  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    needs_comma_.push_back(false);
    return *this;
  }

  JsonWriter& end_array() {
    out_ += ']';
    needs_comma_.pop_back();
    mark_value();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    append_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }

  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    out_ += std::to_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }

  JsonWriter& value(double v) {
    if (!std::isfinite(v)) return null();
    separate();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
    mark_value();
    return *this;
  }

  JsonWriter& value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    mark_value();
    return *this;
  }

  JsonWriter& null() {
    separate();
    out_ += "null";
    mark_value();
    return *this;
  }

  /// key + value in one call (the common case).
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const& { return out_; }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
  }

  void mark_value() {
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      const auto u = static_cast<unsigned char>(c);
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", u);
            out_ += buf;
          } else {
            out_ += c;  // UTF-8 passes through untouched
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace tca::obs
