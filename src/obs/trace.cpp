#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <vector>

#include "core/annotations.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"

namespace tca::obs {
namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t start_us;
  std::uint64_t dur_us;
  std::uint32_t tid;
  std::uint32_t depth;
};

std::atomic<bool> g_tracing{false};

tca::Mutex g_trace_mutex;
std::vector<TraceEvent>& trace_buffer() TCA_REQUIRES(g_trace_mutex) {
  static std::vector<TraceEvent>* buf = new std::vector<TraceEvent>();
  return *buf;
}

/// Microseconds since the first call (one shared epoch for all threads).
std::uint64_t now_us() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  const auto d = std::chrono::steady_clock::now() - epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

/// Small dense per-thread id for the trace's "tid" field.
std::uint32_t this_thread_trace_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void start_tracing() {
  {
    const tca::LockGuard lock(g_trace_mutex);
    trace_buffer().clear();
  }
  g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() { g_tracing.store(false, std::memory_order_relaxed); }

std::size_t trace_event_count() {
  const tca::LockGuard lock(g_trace_mutex);
  return trace_buffer().size();
}

void clear_trace() {
  const tca::LockGuard lock(g_trace_mutex);
  trace_buffer().clear();
}

std::string chrome_trace_json() {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  {
    const tca::LockGuard lock(g_trace_mutex);
    for (const TraceEvent& e : trace_buffer()) {
      w.begin_object()
          .kv("name", e.name)
          .kv("ph", "X")
          .kv("ts", e.start_us)
          .kv("dur", e.dur_us)
          .kv("pid", 1)
          .kv("tid", e.tid);
      w.key("args").begin_object().kv("depth", e.depth).end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return std::move(w).str();
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw tca::RuntimeError("write_chrome_trace: cannot open '" + path + "'",
                            tca::ErrorCode::kIo);
  }
  const std::string json = chrome_trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    throw tca::RuntimeError("write_chrome_trace: write to '" + path +
                                "' failed",
                            tca::ErrorCode::kIo);
  }
}

ScopedSpan::ScopedSpan(const char* name) noexcept : name_(name) {
  if (!tracing_enabled()) return;
  active_ = true;
  depth_ = t_span_depth++;
  start_us_ = now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  const std::uint64_t end_us = now_us();
  const TraceEvent e{name_, start_us_, end_us - start_us_,
                     this_thread_trace_id(), depth_};
  {
    const tca::LockGuard lock(g_trace_mutex);
    if (trace_buffer().size() < kMaxTraceEvents) {
      trace_buffer().push_back(e);
      return;
    }
  }
  static Counter& dropped = counter("trace.dropped_events");
  dropped.add();
}

}  // namespace tca::obs
