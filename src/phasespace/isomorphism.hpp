#pragma once
// Isomorphism of deterministic phase spaces (DESIGN.md S4 extension).
//
// The paper's Section 3.1: "one can find a CA such that no sequential CA
// with the same underlying cellular space and the same node update rule
// can reproduce identical or even ISOMORPHIC computation". Two phase
// spaces are isomorphic when a state bijection commutes with the
// successor maps — i.e. the functional graphs are isomorphic as digraphs.
//
// Functional graphs admit a canonical form in near-linear time: every
// component is a cycle of rooted trees, so
//   * each hanging tree gets its AHU canonical encoding,
//   * each cycle gets the lexicographically minimal rotation of its
//     sequence of tree encodings,
//   * the graph is the sorted multiset of component encodings.
// Equality of canonical forms is exactly digraph isomorphism.

#include <string>

#include "phasespace/functional_graph.hpp"

namespace tca::phasespace {

/// Canonical encoding of the functional graph; equal strings <=>
/// isomorphic phase spaces.
[[nodiscard]] std::string canonical_form(const FunctionalGraph& fg);

/// True iff the two phase spaces are isomorphic as digraphs (sizes may
/// differ, in which case the answer is false).
[[nodiscard]] bool isomorphic(const FunctionalGraph& a,
                              const FunctionalGraph& b);

}  // namespace tca::phasespace
